//! Experiment harness for the P2 reproduction.
//!
//! Everything needed to regenerate the paper's evaluation section:
//!
//! * [`metrics`] — histograms, CDFs and summary statistics;
//! * [`cluster`] — bring-up of whole Chord overlays (declarative or
//!   hand-coded baseline) on the simulated Emulab topology, lookup workload
//!   generation, ring-correctness checks and lookup-consistency measurement;
//! * [`churn`] — the exponential-session-time churn generator following the
//!   methodology of Rhea et al. ("Handling Churn in a DHT") used in §5.2;
//! * [`experiments`] — one function per paper figure/table (see DESIGN.md's
//!   experiment index), each returning a serializable result structure that
//!   the `p2-bench` binaries print as tables/CSV.

pub mod churn;
pub mod cluster;
pub mod experiments;
pub mod metrics;

pub use cluster::{
    BaselineCluster, ChordCluster, ChordClusterBuilder, LookupHandle, LookupOutcome,
};
pub use metrics::{Cdf, EngineOps, Histogram};
