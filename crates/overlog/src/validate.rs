//! Semantic validation of OverLog programs.
//!
//! The 2005 P2 planner supports a constrained subset of OverLog: rule bodies
//! must be collocated at a single node, joins are between one event stream
//! and materialized tables, negation is only available against tables, and
//! heads may carry at most one aggregate. This module checks those
//! restrictions ahead of planning, plus standard Datalog safety (every head
//! variable must be bound in the body).

use std::collections::{HashMap, HashSet};
use std::fmt;

use p2_pel::Builtin;

use crate::ast::{BodyTerm, Expr, Fact, HeadArg, Program, Rule, Span};

/// A single validation problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Issue {
    /// The rule (or fact) identifier the problem was found in, if any.
    pub rule: Option<String>,
    /// Source position of the offending clause, when the AST carries one.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Issue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.span.is_unknown() {
            write!(f, "{}: ", self.span)?;
        }
        match &self.rule {
            Some(r) => write!(f, "rule {r}: {}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

/// All problems found in a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    /// Individual issues, in source order.
    pub issues: Vec<Issue>,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} validation issue(s):", self.issues.len())?;
        for issue in &self.issues {
            write!(f, "\n  - {issue}")?;
        }
        Ok(())
    }
}

impl std::error::Error for ValidationError {}

/// Validates a parsed program against the planner's restrictions.
pub fn validate(program: &Program) -> Result<(), ValidationError> {
    let mut issues = Vec::new();

    // --- Duplicate rule identifiers: two rules sharing an id make
    // diagnostics and plan element names ambiguous.
    let mut seen_ids: HashMap<&str, Span> = HashMap::new();
    for rule in &program.rules {
        if let Some(first) = seen_ids.get(rule.id.as_str()) {
            issues.push(Issue {
                rule: Some(rule.id.clone()),
                span: rule.span,
                message: format!("duplicate rule id `{}` (first defined at {first})", rule.id),
            });
        } else {
            seen_ids.insert(&rule.id, rule.span);
        }
    }

    for fact in &program.facts {
        check_fact(fact, &mut issues);
    }
    for rule in &program.rules {
        check_rule(program, rule, &mut issues);
    }

    if issues.is_empty() {
        Ok(())
    } else {
        Err(ValidationError { issues })
    }
}

fn issue(issues: &mut Vec<Issue>, rule: Option<&str>, span: Span, message: impl Into<String>) {
    issues.push(Issue {
        rule: rule.map(str::to_string),
        span,
        message: message.into(),
    });
}

fn check_fact(fact: &Fact, issues: &mut Vec<Issue>) {
    for arg in &fact.args {
        match arg {
            Expr::Const(_) => {}
            Expr::Var(v) if Some(v) == fact.location.as_ref() => {}
            other => issue(
                issues,
                fact.id.as_deref(),
                fact.span,
                format!(
                    "fact `{}` arguments must be constants or the location variable, found {other:?}",
                    fact.name
                ),
            ),
        }
    }
}

fn check_rule(program: &Program, rule: &Rule, issues: &mut Vec<Issue>) {
    let id = Some(rule.id.as_str());
    let span = rule.span;
    let positives = rule.positive_predicates();

    if positives.is_empty() {
        issue(
            issues,
            id,
            span,
            "rule body must contain at least one positive predicate",
        );
        return;
    }

    // --- Collocation: all body predicates must name the same location.
    let distinct: HashSet<&str> = positives
        .iter()
        .chain(rule.negated_predicates().iter())
        .filter_map(|p| p.location.as_deref())
        .collect();
    if distinct.len() > 1 {
        issue(
            issues,
            id,
            span,
            format!(
                "rule body is not collocated: location specifiers {:?} refer to more than one node \
                 (the 2005 planner requires localized rewrites; see Appendix A of the paper)",
                distinct
            ),
        );
    }

    // --- Collect bound variables: predicate arguments bind variables.
    let mut bound: HashSet<String> = HashSet::new();
    for p in &positives {
        for (v, _) in p.variable_bindings() {
            bound.insert(v);
        }
    }

    // Assignments bind their target once their inputs are bound; iterate to a
    // fixpoint to accommodate arbitrary source order (rule order is
    // immaterial in OverLog).
    let assignments: Vec<(&String, &Expr)> = rule
        .body
        .iter()
        .filter_map(|t| match t {
            BodyTerm::Assign { var, expr } => Some((var, expr)),
            _ => None,
        })
        .collect();
    let mut progress = true;
    let mut satisfied: HashSet<usize> = HashSet::new();
    while progress {
        progress = false;
        for (i, (var, expr)) in assignments.iter().enumerate() {
            if satisfied.contains(&i) {
                continue;
            }
            if expr.variables().iter().all(|v| bound.contains(v)) {
                bound.insert((*var).clone());
                satisfied.insert(i);
                progress = true;
            }
        }
    }
    for (i, (var, _)) in assignments.iter().enumerate() {
        if !satisfied.contains(&i) {
            issue(
                issues,
                id,
                span,
                format!("assignment to `{var}` references unbound variables (or is circular)"),
            );
        }
    }

    // --- Conditions may only use bound variables.
    for term in &rule.body {
        if let BodyTerm::Condition(expr) = term {
            for v in expr.variables() {
                if !bound.contains(&v) {
                    issue(
                        issues,
                        id,
                        span,
                        format!("condition references unbound variable `{v}`"),
                    );
                }
            }
        }
    }

    // --- Negated predicates: only over materialized tables, and their
    // variables must be bound by the positive part (safe negation).
    for p in rule.negated_predicates() {
        if !program.is_materialized(&p.name) {
            issue(
                issues,
                id,
                span,
                format!(
                    "negation over `{}` requires it to be a materialized table",
                    p.name
                ),
            );
        }
        for (v, _) in p.variable_bindings() {
            if !bound.contains(&v) {
                issue(
                    issues,
                    id,
                    span,
                    format!("negated predicate `{}` uses unbound variable `{v}`", p.name),
                );
            }
        }
    }

    // --- Head safety.
    let mut agg_count = 0usize;
    for arg in &rule.head.args {
        match arg {
            HeadArg::Expr(e) => {
                for v in e.variables() {
                    if !bound.contains(&v) {
                        issue(
                            issues,
                            id,
                            span,
                            format!("head variable `{v}` is not bound in the rule body"),
                        );
                    }
                }
            }
            HeadArg::Agg(a) => {
                agg_count += 1;
                if let Some(v) = &a.var {
                    if !bound.contains(v) {
                        issue(
                            issues,
                            id,
                            span,
                            format!("aggregate variable `{v}` is not bound in the rule body"),
                        );
                    }
                }
            }
        }
    }
    if agg_count > 1 {
        issue(
            issues,
            id,
            span,
            "at most one aggregate is supported per rule head",
        );
    }
    if let Some(loc) = &rule.head.location {
        if !bound.contains(loc) {
            issue(
                issues,
                id,
                span,
                format!("head location variable `{loc}` is not bound in the rule body"),
            );
        }
    }

    // --- Built-in functions must exist.
    for term in &rule.body {
        let exprs: Vec<&Expr> = match term {
            BodyTerm::Assign { expr, .. } => vec![expr],
            BodyTerm::Condition(expr) => vec![expr],
            BodyTerm::Predicate(p) => p.args.iter().collect(),
        };
        for e in exprs {
            check_builtins(e, id, span, issues);
        }
    }
    for arg in &rule.head.args {
        if let HeadArg::Expr(e) = arg {
            check_builtins(e, id, span, issues);
        }
    }
}

fn check_builtins(expr: &Expr, rule: Option<&str>, span: Span, issues: &mut Vec<Issue>) {
    match expr {
        Expr::Call { name, args, .. } => {
            match Builtin::from_name(name) {
                None => issue(
                    issues,
                    rule,
                    span,
                    format!("unknown built-in function `{name}`"),
                ),
                Some(b) if b.arity() != args.len() => issue(
                    issues,
                    rule,
                    span,
                    format!(
                        "built-in `{name}` expects {} argument(s), got {}",
                        b.arity(),
                        args.len()
                    ),
                ),
                Some(_) => {}
            }
            for a in args {
                check_builtins(a, rule, span, issues);
            }
        }
        Expr::Unary { expr, .. } => check_builtins(expr, rule, span, issues),
        Expr::Binary { lhs, rhs, .. } => {
            check_builtins(lhs, rule, span, issues);
            check_builtins(rhs, rule, span, issues);
        }
        Expr::Range {
            value, low, high, ..
        } => {
            check_builtins(value, rule, span, issues);
            check_builtins(low, rule, span, issues);
            check_builtins(high, rule, span, issues);
        }
        Expr::Var(_) | Expr::Wildcard | Expr::Const(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn check(src: &str) -> Result<(), ValidationError> {
        validate(&parse_program(src).unwrap())
    }

    #[test]
    fn accepts_well_formed_rules() {
        let src = r#"
            materialize(succ, 10, 100, keys(2)).
            materialize(node, infinity, 1, keys(1)).
            N1 succEvent@NI(NI,S,SI) :- succ@NI(NI,S,SI).
            N2 succDist@NI(NI,S,D) :- node@NI(NI,N), succEvent@NI(NI,S,SI), D := S - N - 1.
            L1 lookupResults@R(R,K,S,SI,E) :- node@NI(NI,N), lookup@NI(NI,K,R,E),
               bestSucc@NI(NI,S,SI), K in (N,S].
        "#;
        assert!(check(src).is_ok());
    }

    #[test]
    fn rejects_unbound_head_variable() {
        let err = check("R1 out@X(X, Z) :- trigger@X(X, Y).").unwrap_err();
        assert!(err.to_string().contains('Z'), "{err}");
    }

    #[test]
    fn rejects_non_collocated_body() {
        let err =
            check("R4 member@Y(Y, A) :- refreshSeq@X(X, S), member@X(X, A), neighbor@Y(Y, X).")
                .unwrap_err();
        assert!(err.to_string().contains("collocated"), "{err}");
    }

    #[test]
    fn rejects_negation_over_streams() {
        let err = check("R1 out@X(X, Y) :- trigger@X(X, Y), not ghost@X(X, Y).").unwrap_err();
        assert!(err.to_string().contains("materialized"), "{err}");
    }

    #[test]
    fn accepts_negation_over_tables() {
        let src = r#"
            materialize(member, 120, infinity, keys(2)).
            R1 out@X(X, Y) :- trigger@X(X, Y), not member@X(X, Y).
        "#;
        assert!(check(src).is_ok());
    }

    #[test]
    fn rejects_unknown_builtin_and_bad_arity() {
        let err = check("R1 out@X(X, T) :- trigger@X(X), T := f_bogus().").unwrap_err();
        assert!(err.to_string().contains("f_bogus"), "{err}");
        let err = check("R1 out@X(X, T) :- trigger@X(X), T := f_now(3).").unwrap_err();
        assert!(err.to_string().contains("argument"), "{err}");
    }

    #[test]
    fn rejects_circular_assignments() {
        let err = check("R1 out@X(X, A) :- trigger@X(X), A := B + 1, B := A + 1.").unwrap_err();
        assert!(err.to_string().contains("unbound"), "{err}");
    }

    #[test]
    fn rejects_multiple_aggregates() {
        let err = check("R1 out@X(X, min<A>, max<B>) :- trigger@X(X, A, B).").unwrap_err();
        assert!(err.to_string().contains("one aggregate"), "{err}");
    }

    #[test]
    fn rejects_rule_without_positive_predicate() {
        let src = r#"
            materialize(member, 120, infinity, keys(2)).
            R1 out@X(X) :- not member@X(X, Y).
        "#;
        let err = check(src).unwrap_err();
        assert!(err.to_string().contains("positive"), "{err}");
    }

    #[test]
    fn rejects_bad_facts() {
        let err = check("F0 nextFingerFix@NI(NI, K).").unwrap_err();
        assert!(err.to_string().contains("constants"), "{err}");
        assert!(check("F0 nextFingerFix@NI(NI, 0).").is_ok());
    }

    #[test]
    fn rejects_unbound_condition_variable() {
        let err = check("R1 out@X(X) :- trigger@X(X), Y > 3.").unwrap_err();
        assert!(err.to_string().contains("unbound variable `Y`"), "{err}");
    }

    #[test]
    fn error_display_lists_rule_ids() {
        let err = check("R9 out@X(X, Z) :- trigger@X(X).").unwrap_err();
        assert!(err.to_string().contains("R9"));
    }

    #[test]
    fn rejects_duplicate_rule_ids() {
        let src = r#"
            R1 out@X(X, Y) :- trigger@X(X, Y).
            R1 other@X(X, Y) :- trigger@X(X, Y).
        "#;
        let err = check(src).unwrap_err();
        assert!(err.to_string().contains("duplicate rule id `R1`"), "{err}");
    }

    #[test]
    fn issues_carry_source_spans() {
        let src = "\n\nR9 out@X(X, Z) :- trigger@X(X).";
        let err = check(src).unwrap_err();
        let issue = &err.issues[0];
        assert_eq!(issue.span.line, 3, "{issue}");
        assert!(err.to_string().contains("3:"), "{err}");
    }
}
