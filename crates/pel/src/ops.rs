//! Byte-code operations for the PEL virtual machine.

use p2_value::Value;

use crate::expr::{BinOp, Builtin, IntervalKind, UnOp};

/// A single PEL byte-code operation.
///
/// The VM is a pure stack machine: operations pop their operands from the
/// evaluation stack and push their result. Programs are produced by
/// [`crate::Program::compile`] from an [`crate::Expr`] in post-order, which
/// is exactly the RPN/postfix form described in the paper.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Push a literal value.
    Push(Value),
    /// Push field `n` of the input tuple.
    Load(usize),
    /// Pop one value, apply the unary operator, push the result.
    Unary(UnOp),
    /// Pop two values (rhs first), apply the binary operator, push result.
    Binary(BinOp),
    /// Pop `arity` arguments (last argument on top), call the builtin.
    Call(Builtin),
    /// Pop high, low, value; push the ring-interval membership boolean.
    Interval(IntervalKind),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_are_cloneable_and_comparable() {
        let a = Op::Push(Value::Int(1));
        assert_eq!(a.clone(), a);
        assert_ne!(a, Op::Load(0));
        assert_ne!(Op::Binary(BinOp::Add), Op::Binary(BinOp::Sub));
    }
}
