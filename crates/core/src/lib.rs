//! P2 — the declarative overlay engine.
//!
//! This crate is the paper's primary contribution wired together: it takes a
//! parsed and validated OverLog program (from `p2-overlog`) and *plans* it
//! into a per-node dataflow graph of elements (from `p2-dataflow`) over
//! soft-state tables (from `p2-table`), then exposes the running node as
//! [`P2Node`].
//!
//! The planning pipeline follows §3.5 of the paper:
//!
//! 1. tables and indices are created for every `materialize` statement
//!    (primary-key indices plus secondary indices on equijoin columns);
//! 2. each rule becomes one or more *strands*: a triggering event source
//!    (network arrival, local table delta, or `periodic` timer) followed by
//!    a chain of equijoins against materialized tables, selection filters
//!    compiled to PEL, optional aggregation, and a projection that builds
//!    the head tuple;
//! 3. head tuples are routed by their location specifier: tuples for the
//!    local node wrap straight back into the node's main demultiplexer,
//!    tuples for other nodes leave through the network egress element;
//! 4. a shared demultiplexer classifies every incoming tuple by name and
//!    feeds table inserts, rule strands and watchpoints.
//!
//! The result is a node whose behaviour is determined entirely by the
//! OverLog text, exactly as in the original system.

pub mod binding;
pub mod error;
pub mod node;
pub mod planner;

pub use error::PlanError;
pub use node::{NodeConfig, P2Node};
pub use planner::{plan, PlanConfig, PlanOptions, Planned, PlannedProgram};

// Re-exported so downstream crates can name the types appearing in
// `P2Node`'s public API without depending on the dataflow crate directly.
pub use p2_dataflow::elements::CollectorHandle;
pub use p2_dataflow::{EngineStats, Outgoing};
