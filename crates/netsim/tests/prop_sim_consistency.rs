//! Property tests for the simulator's interned-id core: arbitrary
//! interleavings of traffic, crashes, and crash-rejoin churn must never
//! leave dangling `NodeId`s, orphaned timer entries, or spurious wakeups.

use p2_netsim::{Envelope, Host, NetworkConfig, Simulator};
use p2_value::{SimTime, Tuple, TupleBuilder};
use proptest::prelude::*;

/// A minimal periodic host: sends one `ping` to its peer every `period`
/// seconds and counts wakeups that arrive with nothing due (there must be
/// none — the timer index never fires stale entries).
struct Periodic {
    addr: String,
    peer: String,
    period: SimTime,
    next: Option<SimTime>,
    spurious_wakeups: usize,
    delivered: usize,
}

impl Periodic {
    fn new(addr: String, peer: String, period_secs: u64) -> Periodic {
        Periodic {
            addr,
            peer,
            period: SimTime::from_secs(period_secs),
            next: None,
            spurious_wakeups: 0,
            delivered: 0,
        }
    }
}

impl Host for Periodic {
    fn start(&mut self, now: SimTime) -> Vec<Envelope> {
        self.next = Some(now + self.period);
        Vec::new()
    }

    fn deliver(&mut self, _tuple: Tuple, _now: SimTime) -> Vec<Envelope> {
        self.delivered += 1;
        Vec::new()
    }

    fn advance_to(&mut self, now: SimTime) -> Vec<Envelope> {
        match self.next {
            Some(t) if t <= now => {
                self.next = Some(t + self.period);
                vec![Envelope::new(
                    self.peer.clone(),
                    TupleBuilder::new("ping").push(self.addr.as_str()).build(),
                )]
            }
            _ => {
                self.spurious_wakeups += 1;
                Vec::new()
            }
        }
    }

    fn next_deadline(&self) -> Option<SimTime> {
        self.next
    }
}

#[derive(Debug, Clone)]
enum Action {
    /// Advance virtual time by this many milliseconds.
    Run(u64),
    /// Inject a ping into node `i` (mod population).
    Inject(usize),
    /// Crash node `i`.
    TakeDown(usize),
    /// Crash-rejoin node `i` with a fresh host.
    Replace(usize),
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (1u64..30_000).prop_map(Action::Run),
        (0usize..16).prop_map(Action::Inject),
        (0usize..16).prop_map(Action::TakeDown),
        (0usize..16).prop_map(Action::Replace),
    ]
}

fn addr(i: usize) -> String {
    format!("n{i}")
}

fn host(i: usize, n: usize) -> Periodic {
    Periodic::new(addr(i), addr((i + 1) % n), 2 + (i as u64 % 5))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn churn_never_leaves_dangling_ids_or_timers(
        n in 2usize..10,
        actions in proptest::collection::vec(arb_action(), 1..60),
    ) {
        let mut sim: Simulator<Periodic> =
            Simulator::new(NetworkConfig::emulab_default(11));
        for i in 0..n {
            sim.add_node(addr(i), host(i, n));
        }
        sim.start_all();
        sim.check_consistency();

        for action in actions {
            let desc = format!("{action:?}");
            match action {
                Action::Run(ms) => sim.run_for(SimTime::from_millis(ms)),
                Action::Inject(i) => {
                    let a = addr(i % n);
                    sim.inject(&a, TupleBuilder::new("ping").push(a.as_str()).build());
                }
                Action::TakeDown(i) => sim.take_down(&addr(i % n)),
                Action::Replace(i) => sim.replace_node(&addr(i % n), host(i % n, n)),
            }

            sim.check_consistency();
            // Ids are dense and stable: every address resolves, round-trips,
            // and stays within the slot table.
            for i in 0..n {
                let a = addr(i);
                let id = sim.node_id(&a);
                prop_assert!(id.is_some(), "{a} lost its id after {desc}");
                let id = id.unwrap();
                prop_assert!(id.index() < sim.node_count());
                prop_assert_eq!(sim.addr_of(id), a.as_str());
            }
            // At most one timer entry per node, none for down nodes.
            prop_assert!(
                sim.scheduled_wakeups() <= sim.up_count(),
                "timer entries leaked after {}", desc
            );
        }

        // Drain remaining traffic; no host may ever have seen a stale wakeup.
        sim.run_for(SimTime::from_secs(60));
        sim.check_consistency();
        for i in 0..n {
            let a = addr(i);
            prop_assert_eq!(
                sim.node(&a).unwrap().spurious_wakeups,
                0,
                "{} saw spurious wakeups", a
            );
        }
    }
}
