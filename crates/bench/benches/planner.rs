//! Benchmarks of the OverLog front end and planner: parsing and planning the
//! full Chord specification (the paper's "life of a query": parse → plan →
//! execute), plus a single-node end-to-end event cascade.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use p2_core::{NodeConfig, P2Node};
use p2_overlays::chord;
use p2_overlog::{compile_checked, parse_program};
use p2_value::SimTime;

fn bench_front_end(c: &mut Criterion) {
    c.bench_function("parse_chord_47_rules", |b| {
        b.iter(|| parse_program(black_box(chord::CHORD_OLG)).unwrap())
    });
    c.bench_function("parse_validate_chord", |b| {
        b.iter(|| compile_checked(black_box(chord::CHORD_OLG)).unwrap())
    });
    c.bench_function("plan_chord_node", |b| {
        let program = chord::program();
        b.iter(|| {
            P2Node::with_facts(
                program,
                NodeConfig::new("node0:11111", 7).without_jitter(),
                chord::base_facts("node0:11111", None),
            )
            .unwrap()
        })
    });
}

fn bench_node_cascade(c: &mut Criterion) {
    // A single Chord node processing a lookup for a key it owns: measures
    // the full demux -> join -> select -> project -> wrap-around path.
    let mut node = P2Node::with_facts(
        chord::program(),
        NodeConfig::new("node0:11111", 7).without_jitter(),
        chord::base_facts("node0:11111", None),
    )
    .unwrap();
    node.start(SimTime::ZERO);
    node.deliver(chord::join_tuple("node0:11111", 1), SimTime::from_secs(1));
    node.advance_to(SimTime::from_secs(60));
    let key = chord::key_id("benchmark key");
    let mut event = 10_000i64;
    c.bench_function("chord_node_local_lookup_cascade", |b| {
        b.iter(|| {
            event += 1;
            node.deliver(
                chord::lookup_tuple("node0:11111", key, "node0:11111", event),
                SimTime::from_secs(120),
            )
        })
    });
}

criterion_group!(benches, bench_front_end, bench_node_cascade);
criterion_main!(benches);
