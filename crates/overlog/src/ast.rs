//! Abstract syntax tree for OverLog programs.

use p2_pel::{BinOp, IntervalKind, UnOp};
use p2_table::{AggFunc, TableSpec};
use p2_value::Value;

/// Source position of a clause (1-based line/column of its first token).
///
/// Spans are carried for diagnostics only and are deliberately transparent
/// to comparison: two ASTs that differ only in where their clauses sat in
/// the source text are equal. This keeps pretty-print → reparse round-trips
/// (`assert_eq!(original, reparsed)`) meaningful while still letting the
/// validator and analyzer print `file:line:col`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Span {
    /// 1-based source line (0 when the clause was built programmatically).
    pub line: usize,
    /// 1-based source column (0 when built programmatically).
    pub column: usize,
}

impl Span {
    /// Creates a span at the given 1-based position.
    pub fn new(line: usize, column: usize) -> Span {
        Span { line, column }
    }

    /// True for spans from programmatically built ASTs (no source text).
    pub fn is_unknown(&self) -> bool {
        self.line == 0
    }
}

impl PartialEq for Span {
    fn eq(&self, _other: &Span) -> bool {
        true // positions never participate in AST equality
    }
}

impl Eq for Span {}

impl std::hash::Hash for Span {
    fn hash<H: std::hash::Hasher>(&self, _state: &mut H) {} // matches Eq
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// A complete OverLog program: table declarations, base facts, and rules.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// `materialize(...)` statements.
    pub materializations: Vec<Materialize>,
    /// Ground facts (clauses without a body), installed at start-up.
    pub facts: Vec<Fact>,
    /// Deduction rules.
    pub rules: Vec<Rule>,
}

impl Program {
    /// True if `name` was declared as a materialized table (everything else
    /// is a transient stream).
    pub fn is_materialized(&self, name: &str) -> bool {
        self.materializations.iter().any(|m| m.name == name)
    }

    /// Returns the materialization statement for `name`, if any.
    pub fn materialization(&self, name: &str) -> Option<&Materialize> {
        self.materializations.iter().find(|m| m.name == name)
    }

    /// Returns the rule with the given identifier, if any.
    pub fn rule(&self, id: &str) -> Option<&Rule> {
        self.rules.iter().find(|r| r.id == id)
    }

    /// Total number of rules (the paper's headline compactness metric).
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Merges another program into this one (used to compose overlay
    /// specifications, e.g. Chord + a monitoring mix-in).
    pub fn merge(&mut self, other: Program) {
        for m in other.materializations {
            if !self.is_materialized(&m.name) {
                self.materializations.push(m);
            }
        }
        self.facts.extend(other.facts);
        self.rules.extend(other.rules);
    }
}

/// Soft-state lifetime in a `materialize` statement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Lifetime {
    /// Tuples never expire.
    Infinity,
    /// Tuples expire after this many seconds.
    Secs(f64),
}

/// Size bound in a `materialize` statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeBound {
    /// Unbounded table.
    Infinity,
    /// At most this many rows.
    Rows(usize),
}

/// A `materialize(name, lifetime, size, keys(...))` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Materialize {
    /// Table name.
    pub name: String,
    /// Soft-state lifetime.
    pub lifetime: Lifetime,
    /// Maximum number of rows.
    pub max_size: SizeBound,
    /// Primary-key field positions **as written in the source (1-based)**.
    pub keys: Vec<usize>,
    /// Source position of the declaration (diagnostics only).
    pub span: Span,
}

impl Materialize {
    /// Converts the declaration into a runtime [`TableSpec`]
    /// (key positions become 0-based).
    pub fn to_spec(&self) -> TableSpec {
        let mut spec = TableSpec::new(
            self.name.clone(),
            self.keys.iter().map(|k| k.saturating_sub(1)).collect(),
        );
        if let Lifetime::Secs(s) = self.lifetime {
            spec.lifetime = Some(p2_value::SimTime::from_secs_f64(s));
        }
        if let SizeBound::Rows(n) = self.max_size {
            spec = spec.with_max_size(n);
        }
        spec
    }
}

/// A ground fact: a head with no body, e.g. `F0 nextFingerFix@NI(NI, 0).`
///
/// At installation time the location variable (and any occurrence of it in
/// the arguments) is bound to the local node's address.
#[derive(Debug, Clone, PartialEq)]
pub struct Fact {
    /// Optional rule identifier (`F0`, `SB0`, ...).
    pub id: Option<String>,
    /// Relation name.
    pub name: String,
    /// Location variable, if written.
    pub location: Option<String>,
    /// Argument expressions (constants or the location variable).
    pub args: Vec<Expr>,
    /// Source position of the fact (diagnostics only).
    pub span: Span,
}

/// A deduction rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Rule identifier (`L1`, `SB5`, ...). Rules without an explicit
    /// identifier get a generated one.
    pub id: String,
    /// True for `delete` rules, which remove the derived tuple from the head
    /// table instead of inserting it.
    pub delete: bool,
    /// The rule head.
    pub head: Head,
    /// The rule body, a conjunction of terms.
    pub body: Vec<BodyTerm>,
    /// Source position of the rule (diagnostics only).
    pub span: Span,
}

impl Rule {
    /// All positive (non-negated) body predicates, in source order.
    pub fn positive_predicates(&self) -> Vec<&Predicate> {
        self.body
            .iter()
            .filter_map(|t| match t {
                BodyTerm::Predicate(p) if !p.negated => Some(p),
                _ => None,
            })
            .collect()
    }

    /// All negated body predicates.
    pub fn negated_predicates(&self) -> Vec<&Predicate> {
        self.body
            .iter()
            .filter_map(|t| match t {
                BodyTerm::Predicate(p) if p.negated => Some(p),
                _ => None,
            })
            .collect()
    }

    /// True if the head contains an aggregate argument.
    pub fn has_aggregate(&self) -> bool {
        self.head.args.iter().any(|a| matches!(a, HeadArg::Agg(_)))
    }
}

/// The head of a rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Head {
    /// Relation name being derived.
    pub name: String,
    /// Location variable: the node at which derived tuples should appear.
    pub location: Option<String>,
    /// Head arguments.
    pub args: Vec<HeadArg>,
}

/// One argument position in a rule head.
#[derive(Debug, Clone, PartialEq)]
pub enum HeadArg {
    /// An ordinary expression (usually a variable).
    Expr(Expr),
    /// An aggregate such as `min<D>` or `count<*>`.
    Agg(AggSpec),
}

/// An aggregate specification in a rule head.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// The aggregation function.
    pub func: AggFunc,
    /// The aggregated variable; `None` for `count<*>`.
    pub var: Option<String>,
}

/// A (possibly negated) predicate occurrence in a rule body.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Relation name.
    pub name: String,
    /// Location variable, if written.
    pub location: Option<String>,
    /// Argument patterns: variables, wildcards or constants.
    pub args: Vec<Expr>,
    /// True when prefixed with `not`.
    pub negated: bool,
}

impl Predicate {
    /// Variables bound by this predicate (argument positions holding plain
    /// variables), with their positions.
    pub fn variable_bindings(&self) -> Vec<(String, usize)> {
        self.args
            .iter()
            .enumerate()
            .filter_map(|(i, a)| match a {
                Expr::Var(v) => Some((v.clone(), i)),
                _ => None,
            })
            .collect()
    }
}

/// A term in a rule body.
#[derive(Debug, Clone, PartialEq)]
pub enum BodyTerm {
    /// A stream or table predicate.
    Predicate(Predicate),
    /// An assignment `Var := Expr`.
    Assign {
        /// The variable being bound.
        var: String,
        /// The expression producing its value.
        expr: Expr,
    },
    /// A boolean condition (selection filter).
    Condition(Expr),
}

/// An OverLog expression (over named variables; the planner later resolves
/// variables to tuple field positions and compiles into PEL).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A variable reference.
    Var(String),
    /// The don't-care variable `_`.
    Wildcard,
    /// A literal value.
    Const(Value),
    /// A function call, e.g. `f_now()`; the location annotation of
    /// section-2-style programs (`f_now@Y()`) is recorded but ignored.
    Call {
        /// Function name (`f_now`, `f_rand`, ...).
        name: String,
        /// Optional location annotation.
        location: Option<String>,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// A unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// A binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// A ring-interval membership test, `K in (A, B]`.
    Range {
        /// Which endpoints are included.
        kind: IntervalKind,
        /// Tested value.
        value: Box<Expr>,
        /// Lower endpoint.
        low: Box<Expr>,
        /// Upper endpoint.
        high: Box<Expr>,
    },
}

impl Expr {
    /// Collects every variable name referenced by this expression.
    pub fn variables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Var(v) => out.push(v.clone()),
            Expr::Wildcard | Expr::Const(_) => {}
            Expr::Call { args, .. } => {
                for a in args {
                    a.collect_vars(out);
                }
            }
            Expr::Unary { expr, .. } => expr.collect_vars(out),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.collect_vars(out);
                rhs.collect_vars(out);
            }
            Expr::Range {
                value, low, high, ..
            } => {
                value.collect_vars(out);
                low.collect_vars(out);
                high.collect_vars(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn materialize_to_spec_converts_keys_to_zero_based() {
        let m = Materialize {
            name: "succ".into(),
            lifetime: Lifetime::Secs(10.0),
            max_size: SizeBound::Rows(100),
            keys: vec![2],
            span: Span::default(),
        };
        let spec = m.to_spec();
        assert_eq!(spec.primary_key, vec![1]);
        assert_eq!(spec.lifetime, Some(p2_value::SimTime::from_secs(10)));
        assert_eq!(spec.max_size, Some(100));

        let m = Materialize {
            name: "node".into(),
            lifetime: Lifetime::Infinity,
            max_size: SizeBound::Infinity,
            keys: vec![1],
            span: Span::default(),
        };
        let spec = m.to_spec();
        assert_eq!(spec.lifetime, None);
        assert_eq!(spec.max_size, None);
    }

    #[test]
    fn expr_variable_collection() {
        let e = Expr::Binary {
            op: BinOp::Add,
            lhs: Box::new(Expr::Var("A".into())),
            rhs: Box::new(Expr::Call {
                name: "f_sha1".into(),
                location: None,
                args: vec![Expr::Var("B".into())],
            }),
        };
        assert_eq!(e.variables(), vec!["A".to_string(), "B".to_string()]);
    }

    #[test]
    fn program_merge_dedups_materializations() {
        let mat = |name: &str| Materialize {
            name: name.into(),
            lifetime: Lifetime::Infinity,
            max_size: SizeBound::Infinity,
            keys: vec![1],
            span: Span::default(),
        };
        let mut a = Program {
            materializations: vec![mat("node")],
            ..Default::default()
        };
        let b = Program {
            materializations: vec![mat("node"), mat("succ")],
            ..Default::default()
        };
        a.merge(b);
        assert_eq!(a.materializations.len(), 2);
    }
}
