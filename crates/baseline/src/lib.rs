//! Hand-coded Chord baseline.
//!
//! The paper compares its 47-rule declarative Chord against hand-tuned
//! imperative implementations (MIT Chord, MACEDON). This crate provides that
//! comparison point on *our* substrate: a conventional, state-machine-style
//! Chord node written directly against the network simulator's [`Host`]
//! interface, with the same protocol constants as the OverLog specification
//! (successor set of 4, 160-bit identifiers, 15 s stabilization, 10 s finger
//! fixing, 5 s liveness pings) and the same wire tuple names, so byte-level
//! traffic accounting is directly comparable.

pub mod chord;

pub use chord::{BaselineChord, BaselineConfig};
