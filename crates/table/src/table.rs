//! The in-memory soft-state table.

use std::collections::{HashMap, HashSet};

use p2_pel::{EvalContext, Program};
use p2_value::{SimTime, Tuple, Value, ValueError};

use crate::aggregate::AggFunc;
use crate::spec::TableSpec;

/// Result of inserting a tuple into a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The primary key was not present; a new row was added.
    New,
    /// A row with the same primary key and identical fields existed; its
    /// soft-state timestamp was refreshed.
    Refreshed,
    /// A row with the same primary key but different fields was replaced;
    /// the displaced tuple is returned.
    Replaced(Tuple),
}

#[derive(Debug, Clone)]
struct Row {
    tuple: Tuple,
    inserted_at: SimTime,
}

/// A node-local, in-memory, soft-state table.
///
/// Rows are keyed by the primary key declared in the [`TableSpec`]; optional
/// secondary indices support the equality lookups performed by equijoin
/// elements. Rows expire after the spec's lifetime and the oldest row is
/// evicted when the size bound is exceeded.
#[derive(Debug)]
pub struct Table {
    spec: TableSpec,
    rows: HashMap<Vec<Value>, Row>,
    /// Secondary indices: indexed column positions -> column values -> set of
    /// primary keys.
    secondary: HashMap<Vec<usize>, HashMap<Vec<Value>, HashSet<Vec<Value>>>>,
}

impl Table {
    /// Creates an empty table from its declaration.
    pub fn new(spec: TableSpec) -> Table {
        Table {
            spec,
            rows: HashMap::new(),
            secondary: HashMap::new(),
        }
    }

    /// The table's declaration.
    pub fn spec(&self) -> &TableSpec {
        &self.spec
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Approximate resident size in bytes (used by the footprint benchmark).
    pub fn resident_bytes(&self) -> usize {
        self.rows
            .values()
            .map(|r| r.tuple.wire_size() + std::mem::size_of::<Row>())
            .sum()
    }

    /// Declares a secondary index over the given (zero-based) columns.
    ///
    /// Existing rows are indexed immediately; declaring the same index twice
    /// is a no-op.
    pub fn add_index(&mut self, mut cols: Vec<usize>) {
        cols.sort_unstable();
        cols.dedup();
        if cols.is_empty() || self.secondary.contains_key(&cols) {
            return;
        }
        let mut index: HashMap<Vec<Value>, HashSet<Vec<Value>>> = HashMap::new();
        for (key, row) in &self.rows {
            if let Some(ix_key) = extract(&row.tuple, &cols) {
                index.entry(ix_key).or_default().insert(key.clone());
            }
        }
        self.secondary.insert(cols, index);
    }

    /// The set of secondary index column lists (for planner introspection).
    pub fn indexes(&self) -> Vec<Vec<usize>> {
        self.secondary.keys().cloned().collect()
    }

    fn primary_key_of(&self, tuple: &Tuple) -> Result<Vec<Value>, ValueError> {
        let positions = self.spec.key_positions(tuple.arity());
        let mut key = Vec::with_capacity(positions.len());
        for p in positions {
            key.push(tuple.get(p)?.clone());
        }
        Ok(key)
    }

    fn index_insert(&mut self, key: &[Value], tuple: &Tuple) {
        for (cols, index) in self.secondary.iter_mut() {
            if let Some(ix_key) = extract(tuple, cols) {
                index.entry(ix_key).or_default().insert(key.to_vec());
            }
        }
    }

    fn index_remove(&mut self, key: &[Value], tuple: &Tuple) {
        for (cols, index) in self.secondary.iter_mut() {
            if let Some(ix_key) = extract(tuple, cols) {
                if let Some(set) = index.get_mut(&ix_key) {
                    set.remove(key);
                    if set.is_empty() {
                        index.remove(&ix_key);
                    }
                }
            }
        }
    }

    /// Inserts a tuple, returning the outcome and any rows evicted to honour
    /// the size bound.
    pub fn insert(
        &mut self,
        tuple: Tuple,
        now: SimTime,
    ) -> Result<(InsertOutcome, Vec<Tuple>), ValueError> {
        let key = self.primary_key_of(&tuple)?;
        let outcome = if let Some(existing) = self.rows.get_mut(&key) {
            if existing.tuple.values() == tuple.values() {
                existing.inserted_at = now;
                InsertOutcome::Refreshed
            } else {
                let old = existing.tuple.clone();
                // Replace the row and fix up the secondary indices.
                existing.tuple = tuple.clone();
                existing.inserted_at = now;
                self.index_remove(&key, &old);
                self.index_insert(&key, &tuple);
                InsertOutcome::Replaced(old)
            }
        } else {
            self.rows.insert(
                key.clone(),
                Row {
                    tuple: tuple.clone(),
                    inserted_at: now,
                },
            );
            self.index_insert(&key, &tuple);
            InsertOutcome::New
        };

        let mut evicted = Vec::new();
        if let Some(max) = self.spec.max_size {
            while self.rows.len() > max {
                // Evict the stalest row (FIFO on refresh-adjusted time), but
                // never the row we just inserted.
                let victim = self
                    .rows
                    .iter()
                    .filter(|(k, _)| **k != key)
                    .min_by_key(|(_, r)| r.inserted_at)
                    .map(|(k, _)| k.clone());
                match victim {
                    Some(vk) => {
                        if let Some(row) = self.rows.remove(&vk) {
                            self.index_remove(&vk, &row.tuple);
                            evicted.push(row.tuple);
                        }
                    }
                    None => break,
                }
            }
        }
        Ok((outcome, evicted))
    }

    /// Removes rows whose primary key matches `tuple`'s and whose remaining
    /// fields are equal to `tuple`'s; returns the removed tuples.
    ///
    /// This backs OverLog `delete` rules, which name the full tuple to
    /// remove.
    pub fn delete_matching(&mut self, tuple: &Tuple) -> Result<Vec<Tuple>, ValueError> {
        let key = self.primary_key_of(tuple)?;
        let mut removed = Vec::new();
        if let Some(row) = self.rows.get(&key) {
            if row.tuple.values() == tuple.values() || row_matches_loosely(&row.tuple, tuple) {
                let row = self.rows.remove(&key).expect("present");
                self.index_remove(&key, &row.tuple);
                removed.push(row.tuple);
            }
        }
        Ok(removed)
    }

    /// Removes the row with the given primary key, if present.
    pub fn delete_key(&mut self, key: &[Value]) -> Option<Tuple> {
        let row = self.rows.remove(key)?;
        self.index_remove(key, &row.tuple);
        Some(row.tuple)
    }

    /// Removes and returns every row older than the table's lifetime.
    pub fn expire(&mut self, now: SimTime) -> Vec<Tuple> {
        let Some(lifetime) = self.spec.lifetime else {
            return Vec::new();
        };
        let stale: Vec<Vec<Value>> = self
            .rows
            .iter()
            .filter(|(_, r)| now.saturating_sub(r.inserted_at) > lifetime)
            .map(|(k, _)| k.clone())
            .collect();
        let mut out = Vec::with_capacity(stale.len());
        for key in stale {
            if let Some(row) = self.rows.remove(&key) {
                self.index_remove(&key, &row.tuple);
                out.push(row.tuple);
            }
        }
        out
    }

    /// Returns all live rows (in unspecified order).
    pub fn scan(&self) -> Vec<Tuple> {
        self.rows.values().map(|r| r.tuple.clone()).collect()
    }

    /// Returns rows whose values at `cols` equal `values`.
    ///
    /// Uses a secondary index when one has been declared over exactly these
    /// columns (after sorting); otherwise falls back to a scan.
    pub fn lookup(&self, cols: &[usize], values: &[Value]) -> Vec<Tuple> {
        let mut pairs: Vec<(usize, &Value)> = cols.iter().copied().zip(values.iter()).collect();
        pairs.sort_by_key(|(c, _)| *c);
        let sorted_cols: Vec<usize> = pairs.iter().map(|(c, _)| *c).collect();
        let sorted_vals: Vec<Value> = pairs.iter().map(|(_, v)| (*v).clone()).collect();

        if let Some(index) = self.secondary.get(&sorted_cols) {
            let Some(keys) = index.get(&sorted_vals) else {
                return Vec::new();
            };
            return keys
                .iter()
                .filter_map(|k| self.rows.get(k))
                .map(|r| r.tuple.clone())
                .collect();
        }

        self.rows
            .values()
            .filter(|r| {
                sorted_cols
                    .iter()
                    .zip(sorted_vals.iter())
                    .all(|(c, v)| r.tuple.get(*c).map(|f| f == v).unwrap_or(false))
            })
            .map(|r| r.tuple.clone())
            .collect()
    }

    /// Returns the single row with the given primary key, if any.
    pub fn get(&self, key: &[Value]) -> Option<Tuple> {
        self.rows.get(key).map(|r| r.tuple.clone())
    }

    /// Returns rows accepted by a PEL filter program.
    pub fn filter_scan(
        &self,
        filter: &Program,
        ctx: &mut EvalContext,
    ) -> Result<Vec<Tuple>, ValueError> {
        let mut out = Vec::new();
        for row in self.rows.values() {
            if filter.eval_bool(&row.tuple, ctx)? {
                out.push(row.tuple.clone());
            }
        }
        Ok(out)
    }

    /// Computes `func` over column `agg_col` of every live row, grouped by
    /// `group_cols`. Returns one `(group_values, aggregate)` pair per group.
    ///
    /// For `count<*>` pass `agg_col = None`.
    pub fn aggregate(
        &self,
        func: AggFunc,
        agg_col: Option<usize>,
        group_cols: &[usize],
    ) -> Result<Vec<(Vec<Value>, Value)>, ValueError> {
        let mut groups: HashMap<Vec<Value>, Vec<Value>> = HashMap::new();
        for row in self.rows.values() {
            let Some(group_key) = extract(&row.tuple, group_cols) else {
                continue;
            };
            let contribution = match agg_col {
                Some(c) => match row.tuple.get(c) {
                    Ok(v) => v.clone(),
                    Err(_) => continue,
                },
                None => Value::Int(1),
            };
            groups.entry(group_key).or_default().push(contribution);
        }
        let mut out = Vec::with_capacity(groups.len());
        for (key, vals) in groups {
            if let Some(agg) = func.apply(&vals)? {
                out.push((key, agg));
            }
        }
        Ok(out)
    }
}

/// Extracts the values at `cols`, or `None` if any column is out of range.
fn extract(tuple: &Tuple, cols: &[usize]) -> Option<Vec<Value>> {
    cols.iter()
        .map(|&c| tuple.get(c).ok().cloned())
        .collect::<Option<Vec<Value>>>()
}

/// A delete pattern matches a stored row if every non-null field is equal;
/// null fields in the pattern act as wildcards.
fn row_matches_loosely(stored: &Tuple, pattern: &Tuple) -> bool {
    if stored.arity() != pattern.arity() {
        return false;
    }
    stored
        .values()
        .iter()
        .zip(pattern.values())
        .all(|(s, p)| p.is_null() || s == p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_value::TupleBuilder;

    fn succ_spec() -> TableSpec {
        TableSpec::new("succ", vec![1]).with_lifetime_secs(10).with_max_size(4)
    }

    fn succ(s: i64, si: &str) -> Tuple {
        TupleBuilder::new("succ").push("n1").push(s).push(si).build()
    }

    #[test]
    fn insert_new_refresh_replace() {
        let mut t = Table::new(succ_spec());
        let (o, ev) = t.insert(succ(5, "n5"), SimTime::from_secs(1)).unwrap();
        assert_eq!(o, InsertOutcome::New);
        assert!(ev.is_empty());
        assert_eq!(t.len(), 1);

        // Same primary key (field 1) and same fields -> refresh.
        let (o, _) = t.insert(succ(5, "n5"), SimTime::from_secs(2)).unwrap();
        assert_eq!(o, InsertOutcome::Refreshed);
        assert_eq!(t.len(), 1);

        // Same primary key, different payload -> replace.
        let (o, _) = t.insert(succ(5, "n5-alias"), SimTime::from_secs(3)).unwrap();
        assert!(matches!(o, InsertOutcome::Replaced(_)));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&[Value::Int(5)]).unwrap().field(2), &Value::str("n5-alias"));
    }

    #[test]
    fn size_bound_evicts_stalest() {
        let mut t = Table::new(succ_spec());
        for (i, s) in [10i64, 20, 30, 40].iter().enumerate() {
            t.insert(succ(*s, "x"), SimTime::from_secs(i as u64)).unwrap();
        }
        assert_eq!(t.len(), 4);
        // Refresh the oldest so it is no longer the eviction victim.
        t.insert(succ(10, "x"), SimTime::from_secs(50)).unwrap();
        let (_, evicted) = t.insert(succ(99, "x"), SimTime::from_secs(51)).unwrap();
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].field(1), &Value::Int(20));
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn expiry_honours_lifetime() {
        let mut t = Table::new(succ_spec());
        t.insert(succ(1, "a"), SimTime::from_secs(0)).unwrap();
        t.insert(succ(2, "b"), SimTime::from_secs(8)).unwrap();
        let gone = t.expire(SimTime::from_secs(11));
        assert_eq!(gone.len(), 1);
        assert_eq!(gone[0].field(1), &Value::Int(1));
        assert_eq!(t.len(), 1);
        // Refreshing extends the lifetime.
        t.insert(succ(2, "b"), SimTime::from_secs(12)).unwrap();
        assert!(t.expire(SimTime::from_secs(20)).is_empty());
        assert_eq!(t.expire(SimTime::from_secs(23)).len(), 1);
    }

    #[test]
    fn infinite_lifetime_never_expires() {
        let mut t = Table::new(TableSpec::new("node", vec![0]));
        t.insert(
            TupleBuilder::new("node").push("n1").push(5i64).build(),
            SimTime::ZERO,
        )
        .unwrap();
        assert!(t.expire(SimTime::from_secs(1_000_000)).is_empty());
    }

    #[test]
    fn secondary_index_lookup() {
        let mut t = Table::new(TableSpec::new("member", vec![1]).with_max_size(100));
        t.add_index(vec![2]);
        for i in 0..20i64 {
            let tup = TupleBuilder::new("member")
                .push("n1")
                .push(format!("m{i}"))
                .push(i % 4)
                .build();
            t.insert(tup, SimTime::ZERO).unwrap();
        }
        let hits = t.lookup(&[2], &[Value::Int(3)]);
        assert_eq!(hits.len(), 5);
        assert!(hits.iter().all(|h| h.field(2) == &Value::Int(3)));
        // Lookup on a non-indexed column falls back to scanning.
        let hits = t.lookup(&[1], &[Value::str("m7")]);
        assert_eq!(hits.len(), 1);
        // Index declared after the fact still sees existing rows.
        t.add_index(vec![1]);
        assert_eq!(t.lookup(&[1], &[Value::str("m7")]).len(), 1);
    }

    #[test]
    fn index_consistency_across_replace_and_delete() {
        let mut t = Table::new(TableSpec::new("finger", vec![1]));
        t.add_index(vec![2]);
        let f = |i: i64, b: &str| {
            TupleBuilder::new("finger").push("n1").push(i).push(b).build()
        };
        t.insert(f(0, "a"), SimTime::ZERO).unwrap();
        t.insert(f(1, "a"), SimTime::ZERO).unwrap();
        t.insert(f(0, "b"), SimTime::ZERO).unwrap(); // replaces finger 0
        assert_eq!(t.lookup(&[2], &[Value::str("a")]).len(), 1);
        assert_eq!(t.lookup(&[2], &[Value::str("b")]).len(), 1);
        t.delete_key(&[Value::Int(1)]);
        assert!(t.lookup(&[2], &[Value::str("a")]).is_empty());
    }

    #[test]
    fn delete_matching_full_tuple() {
        let mut t = Table::new(TableSpec::new("neighbor", vec![1]));
        let n = |y: &str| TupleBuilder::new("neighbor").push("n1").push(y).build();
        t.insert(n("n2"), SimTime::ZERO).unwrap();
        t.insert(n("n3"), SimTime::ZERO).unwrap();
        let removed = t.delete_matching(&n("n2")).unwrap();
        assert_eq!(removed.len(), 1);
        assert_eq!(t.len(), 1);
        // Deleting a non-existent row is a no-op.
        assert!(t.delete_matching(&n("n9")).unwrap().is_empty());
    }

    #[test]
    fn aggregates_over_table() {
        let mut t = Table::new(TableSpec::new("succDist", vec![1]));
        for (s, d) in [(5i64, 4i64), (9, 8), (3, 2)] {
            let tup = TupleBuilder::new("succDist").push("n1").push(s).push(d).build();
            t.insert(tup, SimTime::ZERO).unwrap();
        }
        let agg = t.aggregate(AggFunc::Min, Some(2), &[0]).unwrap();
        assert_eq!(agg.len(), 1);
        assert_eq!(agg[0].0, vec![Value::str("n1")]);
        assert_eq!(agg[0].1, Value::Int(2));

        let count = t.aggregate(AggFunc::Count, None, &[0]).unwrap();
        assert_eq!(count[0].1, Value::Int(3));

        // Empty table: min produces no groups, so nothing is emitted.
        let empty = Table::new(TableSpec::new("x", vec![0]));
        assert!(empty.aggregate(AggFunc::Min, Some(1), &[0]).unwrap().is_empty());
    }

    #[test]
    fn filter_scan_with_pel() {
        use p2_pel::{BinOp, Expr};
        let mut t = Table::new(TableSpec::new("member", vec![1]));
        for i in 0..10i64 {
            let tup = TupleBuilder::new("member").push("n1").push(i).push(i * 10).build();
            t.insert(tup, SimTime::ZERO).unwrap();
        }
        let filter = Program::compile(&Expr::bin(BinOp::Ge, Expr::Field(2), Expr::int(70)));
        let mut ctx = EvalContext::new("n1", 1);
        let hits = t.filter_scan(&filter, &mut ctx).unwrap();
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn resident_bytes_grows_with_rows() {
        let mut t = Table::new(TableSpec::new("m", vec![1]));
        let before = t.resident_bytes();
        t.insert(
            TupleBuilder::new("m").push("n1").push(1i64).build(),
            SimTime::ZERO,
        )
        .unwrap();
        assert!(t.resident_bytes() > before);
    }
}
