//! Property test pinning strand fusion to the generic translation: a node
//! planned with fused strands and a node planned with the generic element
//! chains must produce **identical** output streams — same outgoing
//! tuples, in the same order (the simulator's determinism contract keys
//! packet ordering on the per-sender emission index, so order is
//! semantics) — and identical final table state, under arbitrary input
//! tuple sequences covering every fused shape: select-project with
//! assignments, single-join with join checks and conditions, anti-joins,
//! and delete routing.

use p2_overlog::compile_checked;
use p2_value::{SimTime, Tuple, Value};
use proptest::prelude::*;

/// One rule per fused shape; `score`/`member` give the joins and
/// anti-joins real state to probe.
const PROGRAM: &str = r#"
    materialize(member, 30, 6, keys(2)).
    materialize(score, infinity, infinity, keys(2)).
    R1 member@X(X, Y, S) :- add@X(X, Y, S).
    R2 out@X(X, Y, D) :- ev@X(X, Y), member@X(X, Y, S), S > 2, D := S + 1.
    R3 far@Y(Y, X) :- ev@X(X, Y), X != Y.
    R4 delete member@X(X, Y, S) :- del@X(X, Y), member@X(X, Y, S).
    R5 lone@Y(Y, X) :- probe@X(X, Y), not score@X(X, Y).
    R6 score@X(X, Y) :- mark@X(X, Y).
"#;

#[derive(Debug, Clone)]
enum Input {
    Add { y: usize, s: i64 },
    Ev { y: usize },
    Del { y: usize },
    Probe { y: usize },
    Mark { y: usize },
    Advance { secs: u64 },
}

fn arb_input() -> impl Strategy<Value = Input> {
    prop_oneof![
        (0usize..4, -3i64..8).prop_map(|(y, s)| Input::Add { y, s }),
        (0usize..4).prop_map(|y| Input::Ev { y }),
        (0usize..4).prop_map(|y| Input::Del { y }),
        (0usize..4).prop_map(|y| Input::Probe { y }),
        (0usize..4).prop_map(|y| Input::Mark { y }),
        (1u64..40).prop_map(|secs| Input::Advance { secs }),
    ]
}

fn peer(y: usize) -> Value {
    // y == 0 maps to the local address, exercising the local wrap-around.
    let names = ["n1", "n2", "n3", "n4"];
    Value::str(names[y])
}

fn tuple(input: &Input) -> Option<Tuple> {
    let me = Value::str("n1");
    Some(match input {
        Input::Add { y, s } => Tuple::new("add", vec![me, peer(*y), Value::Int(*s)]),
        Input::Ev { y } => Tuple::new("ev", vec![me, peer(*y)]),
        Input::Del { y } => Tuple::new("del", vec![me, peer(*y)]),
        Input::Probe { y } => Tuple::new("probe", vec![me, peer(*y)]),
        Input::Mark { y } => Tuple::new("mark", vec![me, peer(*y)]),
        Input::Advance { .. } => return None,
    })
}

fn table_rows(node: &p2_core::P2Node, name: &str) -> Vec<Vec<Value>> {
    let mut rows: Vec<Vec<Value>> = node
        .table(name)
        .map(|t| {
            t.lock()
                .scan_iter()
                .map(|tu| tu.values().to_vec())
                .collect()
        })
        .unwrap_or_default();
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fused_and_generic_nodes_are_observationally_identical(
        inputs in proptest::collection::vec(arb_input(), 1..60),
    ) {
        let program = compile_checked(PROGRAM).expect("test program compiles");
        let build = |fuse: bool| {
            let mut config = p2_core::PlanConfig::new().without_jitter();
            if !fuse {
                config = config.without_fusion();
            }
            let shared = p2_core::PlannedProgram::compile(&program, &config)
                .expect("test program plans");
            let mut node = p2_core::P2Node::from_plan(&shared, "n1", 7, vec![]);
            node.start(SimTime::ZERO);
            node
        };
        let mut fused = build(true);
        let mut generic = build(false);

        let mut now = SimTime::from_secs(1);
        for input in &inputs {
            match input {
                Input::Advance { secs } => {
                    now += SimTime::from_secs(*secs);
                    let a = fused.advance_to(now);
                    let b = generic.advance_to(now);
                    prop_assert_eq!(a, b, "advance_to diverged at {:?}", now);
                }
                _ => {
                    let t = tuple(input).expect("non-advance inputs carry a tuple");
                    let a = fused.deliver(t.clone(), now);
                    let b = generic.deliver(t, now);
                    prop_assert_eq!(a, b, "deliver diverged for {:?}", input);
                }
            }
        }
        for table in ["member", "score"] {
            prop_assert_eq!(
                table_rows(&fused, table),
                table_rows(&generic, table),
                "final `{}` state diverged",
                table
            );
        }
    }
}

#[test]
fn the_test_program_actually_fuses() {
    let program = compile_checked(PROGRAM).unwrap();
    let fused =
        p2_core::PlannedProgram::compile(&program, &p2_core::PlanConfig::new().without_jitter())
            .unwrap();
    // R2, R3, R4, R5 fuse (R1/R6 are bare head projections, which stay
    // generic by design).
    assert_eq!(fused.fused_strand_count(), 4, "fusion coverage changed");
}
