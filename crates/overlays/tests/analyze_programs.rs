//! End-to-end front-end coverage for every shipped overlay program:
//! parse → validate → analyze, pinning each program's per-rule
//! [`RuleClass`] so a change in the delta-safety classification (which
//! gates planner fusion/view/incremental-aggregate decisions) shows up as
//! a reviewable diff, not a silent plan change.

use p2_overlog::analyze::{analyze, Analysis, Severity};
use p2_overlog::parse_program;

const CHORD: &str = include_str!("../programs/chord.olg");
const CHORD_JOIN_SEED: &str = include_str!("../programs/chord_join_seed.olg");
const NARADA: &str = include_str!("../programs/narada_mesh.olg");
const GOSSIP: &str = include_str!("../programs/gossip.olg");
const MONITOR: &str = include_str!("../programs/latency_monitor.olg");

/// Parses, validates, and analyzes one shipped program.
fn front_end(name: &str, source: &str) -> Analysis {
    let program = parse_program(source).unwrap_or_else(|e| panic!("{name}: parse: {e}"));
    p2_overlog::validate(&program).unwrap_or_else(|e| panic!("{name}: validate: {e}"));
    let analysis = analyze(&program);
    // Shipped programs must be deployable: no analyzer errors, no warnings.
    for d in &analysis.diagnostics {
        assert!(
            d.severity < Severity::Warning,
            "{name}: unexpected {}: {d}",
            d.severity
        );
    }
    analysis
}

/// One line per rule: `id: class`.
fn class_summary(name: &str, source: &str) -> Vec<String> {
    let program = parse_program(source).unwrap();
    let analysis = front_end(name, source);
    program
        .rules
        .iter()
        .zip(&analysis.rule_classes)
        .map(|(r, c)| format!("{}: {}", r.id, c))
        .collect()
}

#[track_caller]
fn assert_classes(name: &str, source: &str, expected: &[&str]) {
    let got = class_summary(name, source);
    assert_eq!(
        got,
        expected,
        "{name}: RuleClass summary drifted:\n{}",
        got.join("\n")
    );
}

#[test]
fn chord_notes_are_pinned() {
    let analysis = front_end("chord", CHORD);
    // Exactly two informational findings, both known-benign recursion:
    // the S1..S4 successor-eviction loop through the count aggregate
    // (bounded by the materialized succ/succCount tables) and F6's
    // guarded eagerFinger self-step.
    let notes: Vec<String> = analysis
        .diagnostics
        .iter()
        .map(|d| format!("{}:{}", d.code, d.rule.as_deref().unwrap_or("?")))
        .collect();
    assert_eq!(
        notes,
        ["strat-guarded-recursion:F6", "strat-agg-soft-state:S1"],
        "{notes:?}"
    );
}

#[test]
fn fragment_has_no_actionable_findings() {
    // chord_join_seed.olg has no materialize statements: it is a fragment
    // merged into chord.olg, so undeclared-predicate findings demote to
    // notes and nothing may reach warning severity.
    front_end("chord_join_seed", CHORD_JOIN_SEED);
}

#[test]
fn narada_gossip_monitor_are_clean() {
    for (name, src) in [
        ("narada_mesh", NARADA),
        ("gossip", GOSSIP),
        ("latency_monitor", MONITOR),
    ] {
        let analysis = front_end(name, src);
        assert!(
            analysis.diagnostics.is_empty(),
            "{name}: {:?}",
            analysis.diagnostics
        );
    }
}

#[test]
fn chord_rule_classes() {
    assert_classes(
        "chord",
        CHORD,
        &[
            "L1: pure+monotone+refresh-transparent",
            "L2: pure",
            "L3: pure",
            "SU0: pure+monotone+refresh-transparent",
            "SU1: pure+refresh-transparent",
            "SU2: pure+monotone",
            "SU3: pure+monotone+refresh-transparent",
            "S1: pure+refresh-transparent",
            "S2: pure+monotone+refresh-transparent",
            "S3: pure+refresh-transparent",
            "S4: pure",
            "J2: pure+monotone+refresh-transparent",
            "J3: pure+monotone+refresh-transparent",
            "J4: pure+monotone+refresh-transparent",
            "J5: pure+monotone+refresh-transparent",
            "SB1: pure+monotone+refresh-transparent",
            "SB2: pure+monotone+refresh-transparent",
            "SB3: pure+monotone+refresh-transparent",
            "SB4: pure+monotone+refresh-transparent",
            "SB5: pure+monotone",
            "SB6: pure+monotone",
            "SB7: pure+monotone+refresh-transparent",
            "SB8: pure+monotone+refresh-transparent",
            "SB9: pure+monotone+refresh-transparent",
            "F1: pure+monotone+refresh-transparent",
            "F2: pure+monotone",
            "F3: pure+monotone+refresh-transparent",
            "F4: pure+monotone",
            "F5: pure+monotone+refresh-transparent",
            "F6: pure+monotone+refresh-transparent",
            "F7: pure",
            "F8: pure+monotone+refresh-transparent",
            "F9: pure+monotone+refresh-transparent",
            "CM1: pure+monotone+refresh-transparent",
            "CM2: pure+monotone",
            "CM3: pure+monotone+refresh-transparent",
            "CM4: deterministic+time-dependent+monotone",
            "CM5: pure+monotone+refresh-transparent",
            "CM6: deterministic+time-dependent+monotone",
            "CM7: pure+refresh-transparent",
            "CM8: pure+monotone",
            "CM9: pure+monotone+refresh-transparent",
            "FD2: deterministic+time-dependent+monotone",
            "FD3: pure",
            "FD4: pure+monotone+refresh-transparent",
        ],
    );
}

#[test]
fn chord_join_seed_rule_classes() {
    assert_classes(
        "chord_join_seed",
        CHORD_JOIN_SEED,
        &[
            "JS1: pure+monotone+refresh-transparent",
            "JS2: pure+monotone+refresh-transparent",
        ],
    );
}

#[test]
fn narada_rule_classes() {
    assert_classes(
        "narada_mesh",
        NARADA,
        &[
            "E1: pure+monotone+refresh-transparent",
            "M0: deterministic+time-dependent+monotone",
            "M1: deterministic+time-dependent+monotone",
            "R1: pure+monotone+refresh-transparent",
            "R2: pure+monotone+refresh-transparent",
            "R3: pure+monotone+refresh-transparent",
            "R4: pure+monotone",
            "R5: pure+refresh-transparent",
            "R6: deterministic+time-dependent+monotone",
            "R7: deterministic+time-dependent+monotone",
            "R8: pure+monotone+refresh-transparent",
            "R9: deterministic+time-dependent+monotone",
            "L1: pure+monotone+refresh-transparent",
            "L2: deterministic+time-dependent+monotone",
            "L3: pure+refresh-transparent",
            "L4: deterministic+time-dependent+monotone",
        ],
    );
}

#[test]
fn gossip_rule_classes() {
    assert_classes(
        "gossip",
        GOSSIP,
        &[
            "G1: pure+monotone+refresh-transparent",
            "G2: nondeterministic",
            "G3: pure+monotone",
        ],
    );
}

#[test]
fn monitor_rule_classes() {
    assert_classes(
        "latency_monitor",
        MONITOR,
        &[
            "P0: nondeterministic",
            "P1: deterministic+time-dependent+monotone",
            "P2: pure+monotone+refresh-transparent",
            "P3: deterministic+time-dependent+monotone",
        ],
    );
}

#[test]
fn shipped_rule_census() {
    // The acceptance bar for this analyzer: all 68 shipped rules flow
    // through it (Chord 45, Narada 16, monitor 4, gossip 3).
    let count = |src: &str| parse_program(src).unwrap().rules.len();
    assert_eq!(count(CHORD), 45);
    assert_eq!(count(NARADA), 16);
    assert_eq!(count(MONITOR), 4);
    assert_eq!(count(GOSSIP), 3);
}
