//! Reproduces the specification-compactness claims of §1/§2.3/§4:
//! "P2 can express a Narada-style mesh network in 16 rules, and the Chord
//! structured overlay in only 47 rules" — versus hand-coded implementations.

use p2_bench::to_json;
use p2_harness::experiments::compactness;

fn main() {
    let report = compactness();
    println!("=== Specification compactness (E7) ===");
    println!(
        "{:<42} {:>10} {:>14}",
        "system", "this repo", "paper figure"
    );
    println!(
        "{:<42} {:>10} {:>14}",
        "Chord in OverLog (rules + base facts)",
        format!("{}+{}", report.chord_rules, report.chord_facts),
        report.paper_chord_rules
    );
    println!(
        "{:<42} {:>10} {:>14}",
        "Narada mesh in OverLog (rules)", report.narada_rules, report.paper_narada_rules
    );
    println!(
        "{:<42} {:>10} {:>14}",
        "Latency monitor (rules, §2.3 P0-P3)", report.monitor_rules, "-"
    );
    println!(
        "{:<42} {:>10} {:>14}",
        "Epidemic gossip (rules)", report.gossip_rules, "-"
    );
    println!(
        "{:<42} {:>10} {:>14}",
        "Hand-coded Chord baseline (Rust LoC)",
        report.baseline_chord_loc,
        format!(">{}", report.macedon_chord_statements)
    );
    println!();
    println!(
        "ratio: hand-coded baseline is {:.1}x larger than the declarative Chord specification",
        report.baseline_chord_loc as f64 / (report.chord_rules + report.chord_facts) as f64
    );
    if std::env::args().any(|a| a == "--json") {
        println!("{}", to_json(&report));
    }
}
