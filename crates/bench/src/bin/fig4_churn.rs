//! Reproduces Figure 4 of the paper: a Chord overlay under churn.
//!
//! * (i)   per-node maintenance bandwidth vs mean session time;
//! * (ii)  CDF of lookup consistency;
//! * (iii) CDF of lookup latency under churn.
//!
//! By default a scaled-down configuration is used; pass `--paper` for the
//! paper's 400-node, 20-minute-churn runs at session times 8–128 minutes.

use p2_bench::{paper_scale, print_cdf_summary, to_json};
use p2_harness::experiments::{churn_chord, ChurnParams};

fn main() {
    let params = if paper_scale() {
        ChurnParams::paper()
    } else {
        ChurnParams::quick()
    };
    eprintln!(
        "running churn experiment: {} nodes, session times {:?} min, churn for {}s (use --paper for full scale)",
        params.n, params.session_minutes, params.churn_secs
    );

    let results = churn_chord(&params);

    println!("=== Figure 4(i): maintenance bandwidth under churn ===");
    println!("{:>14} {:>22}", "session (min)", "maintenance (bytes/s)");
    for r in &results {
        println!(
            "{:>14} {:>22.1}",
            r.session_minutes, r.maintenance_bw_per_node
        );
    }

    println!();
    println!("=== Figure 4(ii): lookup consistency under churn ===");
    println!(
        "{:>14} {:>18} {:>22} {:>14}",
        "session (min)", "mean consistency", ">=99% consistent (%)", "completion (%)"
    );
    for r in &results {
        println!(
            "{:>14} {:>18.3} {:>22.1} {:>14.1}",
            r.session_minutes,
            r.mean_consistency,
            r.fully_consistent_fraction * 100.0,
            r.completion_rate * 100.0
        );
    }

    println!();
    println!("=== Figure 4(iii): lookup latency under churn ===");
    for r in &results {
        print_cdf_summary(
            &format!("session {} min", r.session_minutes),
            &r.latency_cdf,
        );
    }

    if std::env::args().any(|a| a == "--json") {
        println!("{}", to_json(&results));
    }
}
