//! Vendored stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace ships a minimal implementation of the small parking_lot API
//! surface the repository uses: non-poisoning [`Mutex`] and [`RwLock`]
//! wrappers over the `std::sync` primitives. The semantic difference that
//! matters to callers — `lock()` returns the guard directly instead of a
//! `Result` — is preserved; a poisoned std lock is recovered transparently,
//! matching parking_lot's behaviour of not having poisoning at all.

use std::fmt;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with the parking_lot API (no poisoning).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking
    /// needed: `&mut self` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with the parking_lot API (no poisoning).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_locks_and_unlocks() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
