//! `olg_lint` — command-line front end for the OverLog validator and
//! whole-program analyzer.
//!
//! ```text
//! olg_lint [--json] [--deny-warnings] [--expect-fixtures] FILE.olg...
//! ```
//!
//! Each file is parsed, validated ([`p2_overlog::validate`]), and — when it
//! validates — analyzed ([`p2_overlog::analyze`]). Diagnostics print as
//! `file:line:col: severity[code]: message`, or as a JSON array with
//! `--json` for tooling.
//!
//! Exit status is non-zero when any file has an error; `--deny-warnings`
//! also rejects warnings (notes never reject), which is how CI gates the
//! shipped overlay programs.
//!
//! `--expect-fixtures` flips the polarity for the bad-program corpus: each
//! file must carry `expect-error:`/`expect-warning:` markers in comments,
//! and the lint passes only if every marker matches a produced diagnostic
//! of (at least) that severity. A fixture that comes up clean, or whose
//! markers go unmatched, fails the gate — so the corpus proves the
//! analyzer still rejects what it is supposed to reject.

use std::fmt::Write as _;
use std::process::ExitCode;

use p2_overlog::analyze::{analyze, Severity};
use p2_overlog::{parse_program, validate};

/// One rendered finding, normalized across parser/validator/analyzer.
struct Finding {
    severity: Severity,
    code: String,
    rule: Option<String>,
    line: usize,
    column: usize,
    message: String,
}

fn main() -> ExitCode {
    let mut json = false;
    let mut deny_warnings = false;
    let mut expect_fixtures = false;
    let mut files: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--expect-fixtures" => expect_fixtures = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: olg_lint [--json] [--deny-warnings] [--expect-fixtures] FILE.olg..."
                );
                return ExitCode::SUCCESS;
            }
            other if other.starts_with("--") => {
                eprintln!("olg_lint: unknown flag `{other}`");
                return ExitCode::from(2);
            }
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("olg_lint: no input files");
        return ExitCode::from(2);
    }

    let mut failed = false;
    let mut json_entries: Vec<String> = Vec::new();
    for file in &files {
        let source = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("olg_lint: {file}: {e}");
                failed = true;
                continue;
            }
        };
        let findings = lint(&source);
        if expect_fixtures {
            match check_expectations(&source, &findings) {
                Ok(matched) => {
                    println!("olg_lint: {file}: rejected as expected ({matched} expectation(s))");
                }
                Err(msg) => {
                    eprintln!("olg_lint: {file}: FIXTURE FAILED: {msg}");
                    for f in &findings {
                        eprintln!("  produced: {}", render(file, f));
                    }
                    failed = true;
                }
            }
            continue;
        }

        let reject = findings.iter().any(|f| {
            f.severity == Severity::Error || (deny_warnings && f.severity == Severity::Warning)
        });
        failed |= reject;
        if json {
            for f in &findings {
                json_entries.push(render_json(file, f));
            }
        } else {
            for f in &findings {
                println!("{}", render(file, f));
            }
            if findings.is_empty() {
                println!("olg_lint: {file}: clean");
            }
        }
    }
    if json && !expect_fixtures {
        println!("[{}]", json_entries.join(","));
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Parse + validate + analyze one source, normalizing everything to
/// [`Finding`]s. Analyzer runs only on programs that validate: its results
/// assume a well-formed AST, and double-reporting (e.g. duplicate rule ids,
/// checked by both passes) would be noise.
fn lint(source: &str) -> Vec<Finding> {
    let program = match parse_program(source) {
        Ok(p) => p,
        Err(e) => {
            return vec![Finding {
                severity: Severity::Error,
                code: "parse".to_string(),
                rule: None,
                line: 0,
                column: 0,
                message: e.to_string(),
            }];
        }
    };
    if let Err(e) = validate(&program) {
        return e
            .issues
            .into_iter()
            .map(|i| Finding {
                severity: Severity::Error,
                code: "validate".to_string(),
                rule: i.rule.clone(),
                line: i.span.line,
                column: i.span.column,
                message: i.message,
            })
            .collect();
    }
    analyze(&program)
        .diagnostics
        .into_iter()
        .map(|d| Finding {
            severity: d.severity,
            code: d.code.to_string(),
            rule: d.rule,
            line: d.span.line,
            column: d.span.column,
            message: d.message,
        })
        .collect()
}

/// Scans fixture comments for `expect-error:`/`expect-warning:` markers and
/// checks each names a substring of some produced diagnostic of at least
/// that severity. Returns the number of matched expectations.
fn check_expectations(source: &str, findings: &[Finding]) -> Result<usize, String> {
    let mut expectations: Vec<(Severity, String)> = Vec::new();
    for line in source.lines() {
        for (marker, severity) in [
            ("expect-error:", Severity::Error),
            ("expect-warning:", Severity::Warning),
        ] {
            if let Some(pos) = line.find(marker) {
                let rest = line[pos + marker.len()..].trim();
                let needle = rest.strip_suffix("*/").unwrap_or(rest).trim().to_string();
                if !needle.is_empty() {
                    expectations.push((severity, needle));
                }
            }
        }
    }
    if expectations.is_empty() {
        return Err("fixture has no expect-error/expect-warning markers".to_string());
    }
    for (severity, needle) in &expectations {
        let matched = findings.iter().any(|f| {
            f.severity >= *severity
                && (f.message.contains(needle.as_str()) || f.code.contains(needle.as_str()))
        });
        if !matched {
            return Err(format!(
                "no {severity} diagnostic matching `{needle}` was produced"
            ));
        }
    }
    Ok(expectations.len())
}

fn render(file: &str, f: &Finding) -> String {
    let mut out = String::new();
    if f.line > 0 {
        let _ = write!(out, "{file}:{}:{}: ", f.line, f.column);
    } else {
        let _ = write!(out, "{file}: ");
    }
    let _ = write!(out, "{}[{}]: ", f.severity, f.code);
    if let Some(r) = &f.rule {
        let _ = write!(out, "rule {r}: ");
    }
    let _ = write!(out, "{}", f.message);
    out
}

fn render_json(file: &str, f: &Finding) -> String {
    let mut out = String::from("{");
    let _ = write!(out, "\"file\":\"{}\"", escape(file));
    let _ = write!(out, ",\"severity\":\"{}\"", f.severity);
    let _ = write!(out, ",\"code\":\"{}\"", escape(&f.code));
    match &f.rule {
        Some(r) => {
            let _ = write!(out, ",\"rule\":\"{}\"", escape(r));
        }
        None => out.push_str(",\"rule\":null"),
    }
    let _ = write!(out, ",\"line\":{},\"column\":{}", f.line, f.column);
    let _ = write!(out, ",\"message\":\"{}\"", escape(&f.message));
    out.push('}');
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}
