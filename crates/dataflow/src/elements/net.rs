//! Network egress element.

use std::sync::Arc;

use p2_value::{Tuple, Value};

use crate::element::{Element, ElementCtx};

/// Routes derived tuples by their destination address.
///
/// The planner arranges for every head tuple to carry its destination
/// address (the head's location specifier) in a known field. `NetOut`
/// compares that field with the local address: local tuples wrap around on
/// port 0 (back into the node's main demultiplexer, like the "local" arc of
/// Figure 2), remote tuples are handed to the network substrate.
pub struct NetOut {
    dest_field: usize,
    /// Tuples dropped because the destination field was missing or empty.
    pub malformed: u64,
}

impl NetOut {
    /// Creates a network egress element reading the destination from
    /// `dest_field`.
    pub fn new(dest_field: usize) -> NetOut {
        NetOut {
            dest_field,
            malformed: 0,
        }
    }
}

impl Element for NetOut {
    fn class(&self) -> &'static str {
        "NetOut"
    }

    fn push(&mut self, _port: usize, tuple: &Tuple, ctx: &mut ElementCtx<'_>) {
        let Ok(dest) = tuple.get(self.dest_field) else {
            self.malformed += 1;
            return;
        };
        // Hot path: the destination is a string value, whose `Arc<str>` is
        // shared into `Outgoing.dst` directly — no allocation per send.
        let dest: Arc<str> = match dest {
            Value::Str(s) => s.clone(),
            other => Arc::from(other.to_display_string()),
        };
        if dest.is_empty() || &*dest == "null" {
            self.malformed += 1;
            return;
        }
        if &*dest == ctx.local_addr() {
            ctx.emit(0, tuple.clone());
        } else {
            ctx.send(dest, tuple.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::Collector;
    use crate::engine::{Engine, Graph, Route};
    use p2_value::{SimTime, TupleBuilder};

    #[test]
    fn local_wraps_and_remote_sends() {
        let mut g = Graph::new();
        let n = g.add("netout", Box::new(NetOut::new(0)));
        let (c, local_buf) = Collector::new();
        let c = g.add("local", Box::new(c));
        g.connect(n, 0, c, 0);
        let mut engine = Engine::new(g, "n1", 1);
        engine.set_entry(Route {
            element: n,
            port: 0,
        });

        let local = TupleBuilder::new("succ").push("n1").push(5i64).build();
        let out = engine.deliver(local, SimTime::ZERO);
        assert!(out.is_empty());
        assert_eq!(local_buf.lock().len(), 1);

        let remote = TupleBuilder::new("succ").push("n7").push(5i64).build();
        let out = engine.deliver(remote, SimTime::ZERO);
        assert_eq!(out.len(), 1);
        assert_eq!(&*out[0].dst, "n7");
        assert_eq!(local_buf.lock().len(), 1);
    }

    #[test]
    fn malformed_destinations_are_dropped() {
        let mut g = Graph::new();
        let n = g.add("netout", Box::new(NetOut::new(5)));
        let mut engine = Engine::new(g, "n1", 1);
        engine.set_entry(Route {
            element: n,
            port: 0,
        });
        let out = engine.deliver(TupleBuilder::new("x").push("n1").build(), SimTime::ZERO);
        assert!(out.is_empty());
    }
}
