//! End-to-end test: a small Chord ring built from the declarative
//! specification forms, stabilizes, and routes lookups to the correct owner
//! over the simulated network.

use p2_netsim::{NetworkConfig, Simulator};
use p2_overlays::chord;
use p2_overlays::P2Host;
use p2_value::{SimTime, Uint160, Value};

fn addr(i: usize) -> String {
    format!("node{i}:11111")
}

/// Brings up an `n`-node Chord ring: node0 is the bootstrap landmark, all
/// other nodes join through it, with joins staggered and re-issued until
/// every node has a best successor.
fn bring_up(n: usize, seed: u64) -> Simulator<P2Host> {
    let mut sim = Simulator::new(NetworkConfig::emulab_default(seed));
    for i in 0..n {
        let landmark = if i == 0 { None } else { Some(addr(0)) };
        let host = chord::build_node(&addr(i), landmark.as_deref(), seed + i as u64, true)
            .expect("chord node plans");
        sim.add_node(addr(i), host);
    }
    for i in 0..n {
        sim.start_node(&addr(i));
        sim.inject(&addr(i), chord::join_tuple(&addr(i), 1_000 + i as i64));
        sim.run_for(SimTime::from_secs(2));
    }
    // Re-issue joins for nodes that have not learned a successor yet (the
    // `join` soft state only lives 10 seconds), then let the ring stabilize.
    for round in 0..10 {
        sim.run_for(SimTime::from_secs(20));
        let mut all_joined = true;
        for i in 0..n {
            let joined = sim
                .node(&addr(i))
                .map(|h| !h.node().table("bestSucc").unwrap().lock().is_empty())
                .unwrap_or(false);
            if !joined {
                all_joined = false;
                sim.inject(
                    &addr(i),
                    chord::join_tuple(&addr(i), 2_000 + (round * 100 + i) as i64),
                );
            }
        }
        if all_joined {
            break;
        }
    }
    // Let stabilization and finger fixing run.
    sim.run_for(SimTime::from_secs(120));
    sim
}

/// The correct owner of a key: the node whose identifier is the key's
/// clockwise successor.
fn expected_owner(key: Uint160, nodes: &[String]) -> String {
    let mut ids: Vec<(Uint160, &String)> = nodes.iter().map(|a| (chord::node_id(a), a)).collect();
    ids.sort();
    for (id, a) in &ids {
        if key <= *id {
            return (*a).clone();
        }
    }
    ids[0].1.clone()
}

#[test]
fn ring_forms_and_lookups_find_the_correct_owner() {
    let n = 8;
    let mut sim = bring_up(n, 42);
    let nodes: Vec<String> = (0..n).map(addr).collect();

    // Every node has a best successor, and the successor pointers form the
    // correct ring: each node's best successor is the next node clockwise.
    let mut ids: Vec<(Uint160, String)> = nodes
        .iter()
        .map(|a| (chord::node_id(a), a.clone()))
        .collect();
    ids.sort();
    let ring_next = |a: &str| {
        let pos = ids.iter().position(|(_, x)| x == a).unwrap();
        ids[(pos + 1) % ids.len()].1.clone()
    };
    for a in &nodes {
        let best = sim
            .node(a)
            .unwrap()
            .node()
            .table("bestSucc")
            .unwrap()
            .lock()
            .scan();
        assert_eq!(best.len(), 1, "{a} has no best successor");
        let succ_addr = best[0].field(2).to_display_string();
        assert_eq!(
            succ_addr,
            ring_next(a),
            "{a}'s best successor should be its ring successor"
        );
    }

    // Issue lookups for a set of keys from random nodes and check that the
    // result reports the correct owner.
    let mut correct = 0;
    let total = 20;
    for k in 0..total {
        let key = Uint160::hash_of(format!("key-{k}").as_bytes());
        let origin = &nodes[k % n];
        let event = 50_000 + k as i64;
        sim.inject(origin, chord::lookup_tuple(origin, key, origin, event));
        sim.run_for(SimTime::from_secs(8));

        let results = sim
            .node(origin)
            .unwrap()
            .node()
            .collector("lookupResults")
            .unwrap();
        let results = results.lock();
        let answer = results
            .iter()
            .rev()
            .find(|(_, t)| t.field(4) == &Value::Int(event))
            .map(|(_, t)| t.field(3).to_display_string());
        if let Some(owner) = answer {
            if owner == expected_owner(key, &nodes) {
                correct += 1;
            }
        }
    }
    assert!(
        correct >= total * 9 / 10,
        "only {correct}/{total} lookups returned the correct owner"
    );
}

#[test]
fn maintenance_traffic_flows_and_is_classified() {
    let mut sim = bring_up(4, 7);
    sim.reset_stats();
    sim.run_for(SimTime::from_secs(60));
    let stats = sim.stats();
    assert!(
        stats.maintenance_bytes() > 0,
        "no maintenance traffic observed"
    );
    // With no application lookups in this window, the only lookup-classified
    // traffic is finger-fixing lookups, which the paper counts as
    // maintenance; our classifier counts tuple names, so allow either but
    // require the bulk of traffic to be maintenance.
    assert!(stats.maintenance_bytes() * 2 > stats.bytes_sent);
    assert!(stats.bytes_by_name.contains_key("pingReq"));
    assert!(stats.bytes_by_name.contains_key("returnSuccessor"));
}
