//! Whole-overlay benchmark: wall-clock cost of simulating a small Chord ring
//! for one minute of virtual time, and of a burst of lookups against it.
//! This keeps the figure-scale experiments honest about simulator overhead
//! (the heavy experiments themselves run from the `fig3_static` /
//! `fig4_churn` binaries, not under Criterion).

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};

use p2_harness::ChordCluster;
use p2_value::Uint160;

fn bench_overlay(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlay");
    group.sample_size(10);

    group.bench_function("simulate_8_node_ring_60s_virtual", |b| {
        b.iter_batched(
            || ChordCluster::build(8, 60, 3),
            |mut cluster| {
                cluster.run_for(60.0);
                black_box(cluster.ring_correctness())
            },
            BatchSize::PerIteration,
        )
    });

    group.bench_function("lookup_burst_on_8_node_ring", |b| {
        let mut cluster = ChordCluster::build(8, 120, 5);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let key = Uint160::hash_of(&i.to_be_bytes());
            let origin = cluster.addrs()[(i % 8) as usize].clone();
            let handle = cluster.issue_lookup_from(&origin, key);
            cluster.run_for(3.0);
            black_box(cluster.outcome(&handle))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_overlay);
criterion_main!(benches);
