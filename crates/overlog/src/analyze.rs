//! Whole-program static analysis of OverLog programs.
//!
//! [`validate`](crate::validate) checks each clause in isolation; this module
//! looks at the program as a whole. [`analyze`] builds the **predicate
//! dependency graph** across every rule, fact, and `materialize` declaration
//! and derives four results from it:
//!
//! 1. **Stratification.** Rules are nodes in a trigger graph: an edge runs
//!    from a body predicate to the head whenever a new tuple of the body
//!    predicate *re-fires* the rule locally — the event stream of a
//!    stream-triggered rule, every table of an all-table delta rule, the
//!    aggregated table of a `TableAgg` rule. Probed tables do not cascade,
//!    and heads shipped to a *different* location variable are deferred
//!    through the network, so neither contributes an edge. Strongly
//!    connected components of this graph are the program's strata; a
//!    component that closes a cycle through negation is rejected
//!    (unstratifiable), a cycle through aggregation is rejected unless a
//!    materialized table inside the component bounds it (soft-state-sustained
//!    recursion, e.g. Chord's successor-eviction loop, is reported as a
//!    note), and recursion purely through event streams earns a warning
//!    (an unguarded stream loop never terminates) or a note when every rule
//!    on the cycle carries a selection guard.
//!
//! 2. **Schema inference.** Every use of a predicate — declaration, fact,
//!    rule head, body literal — votes on its arity and on the argument
//!    position that carries the location specifier. Disagreements are
//!    errors, as are primary-key positions past the inferred arity.  A body
//!    predicate that is neither materialized, derived by some head, seeded
//!    by a fact, nor external (`periodic`) is almost always a typo that
//!    silently becomes a never-firing event stream, and is flagged.
//!
//! 3. **Lifetime flow.** Deriving from short-lived soft state into a
//!    longer-lived table defeats the paper's TTL-as-garbage-collection
//!    design: the derived row outlives every fact that justified it. A rule
//!    whose head table outlives *all* of its materialized sources gets a
//!    warning (delete rules and aggregates are maintained continuously and
//!    are exempt; an infinity-lifetime source justifies any head).
//!
//! 4. **Delta-safety classification.** Every rule is labelled with a
//!    [`RuleClass`]:
//!
//!    * `deterministic` — no `f_rand`/`f_coinFlip`; same inputs, same
//!      outputs. Gate for strand fusion, which reorders evaluation.
//!    * `pure` — deterministic and no `f_now`; output depends only on the
//!      joined tuples, so derivations may be replayed at delta time. Gate
//!      for materialized views and incremental aggregate maintenance.
//!    * `monotone` — no negation, no deletion, no aggregation; new inputs
//!      can only add outputs, never retract them.
//!    * `refresh_transparent` — pure, and every finite-lifetime
//!      materialized body predicate is read only at its primary-key
//!      positions (the location argument is exempt: body locations are
//!      pinned to the local address). A keyed soft-state *refresh*
//!      (same key, new TTL) can then never change the rule's output, so a
//!      delta-driven scheduler may skip re-evaluation on refreshes.
//!
//! The planner consumes `RuleClass` for its fusion / view / incremental
//! aggregate eligibility decisions; `olg_lint` surfaces the diagnostics
//! with source spans in human-readable and JSON form.
//!
//! The pass is **total**: it never fails, it only reports. Run
//! [`validate`](crate::validate::validate) first for per-clause safety
//! errors; `analyze` assumes nothing about its input beyond a parsed AST.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

use p2_pel::Builtin;

use crate::ast::{BodyTerm, Expr, HeadArg, Lifetime, Predicate, Program, Rule, Span};

/// How bad a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: something worth knowing, never a rejection.
    Note,
    /// Probably a mistake; rejected under `--deny-warnings`.
    Warning,
    /// The program is wrong; always a rejection.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A single analysis finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// How bad it is.
    pub severity: Severity,
    /// Stable machine-readable code, e.g. `strat-negation`.
    pub code: &'static str,
    /// The rule id the finding is anchored to, if any.
    pub rule: Option<String>,
    /// Source position (line/column of the offending clause).
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.span.is_unknown() {
            write!(f, "{}: ", self.span)?;
        }
        write!(f, "{}[{}]: ", self.severity, self.code)?;
        if let Some(r) = &self.rule {
            write!(f, "rule {r}: ")?;
        }
        write!(f, "{}", self.message)
    }
}

/// Delta-safety classification of one rule (see the module docs for the
/// taxonomy). `pure` implies `deterministic`; `refresh_transparent`
/// implies `pure`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RuleClass {
    /// No `f_rand`/`f_coinFlip` anywhere in the rule.
    pub deterministic: bool,
    /// Deterministic and no `f_now`: replayable at delta time.
    pub pure: bool,
    /// No negation, no `delete`, no head aggregate.
    pub monotone: bool,
    /// Pure, and keyed soft-state refreshes cannot change the output.
    pub refresh_transparent: bool,
}

impl fmt::Display for RuleClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut tags: Vec<&str> = Vec::new();
        if self.pure {
            tags.push("pure");
        } else if self.deterministic {
            tags.push("deterministic");
        } else {
            tags.push("nondeterministic");
        }
        if !self.pure && self.deterministic {
            tags.push("time-dependent");
        }
        if self.monotone {
            tags.push("monotone");
        }
        if self.refresh_transparent {
            tags.push("refresh-transparent");
        }
        write!(f, "{}", tags.join("+"))
    }
}

/// Why an edge exists in the predicate dependency graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EdgeKind {
    /// An event-stream trigger re-fires the rule.
    Trigger,
    /// A table delta re-fires an all-table rule.
    Delta,
    /// The aggregated table of an incrementally maintained aggregate.
    Aggregate,
    /// The head depends on the *absence* of tuples in this predicate.
    Negation,
}

/// One edge of the predicate dependency graph: a new `from` tuple can
/// change `to`, via `rule`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    /// Source predicate.
    pub from: String,
    /// Head predicate.
    pub to: String,
    /// Why the edge exists.
    pub kind: EdgeKind,
    /// The rule that contributes the edge.
    pub rule: String,
}

/// What the analyzer inferred about one predicate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PredicateInfo {
    /// Inferred arity (first use wins; disagreements are diagnosed).
    pub arity: Option<usize>,
    /// Argument position carrying the location specifier, when one is
    /// syntactically identifiable.
    pub location_position: Option<usize>,
    /// Declared via `materialize`.
    pub materialized: bool,
    /// Appears as some rule head.
    pub derived: bool,
    /// Seeded by a ground fact.
    pub seeded: bool,
    /// External input (`periodic`).
    pub external: bool,
}

/// The result of [`analyze`]: diagnostics plus the artifacts downstream
/// consumers (planner, scheduler, lint) build on.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// All findings, roughly in source order per pass.
    pub diagnostics: Vec<Diagnostic>,
    /// Per-rule classification, parallel to `program.rules` (rule ids may
    /// collide in erroneous programs, so position is the key).
    pub rule_classes: Vec<RuleClass>,
    /// The predicate dependency graph, sorted for stable comparison.
    pub edges: Vec<Edge>,
    /// Per-predicate inferred schema.
    pub predicates: BTreeMap<String, PredicateInfo>,
}

impl Analysis {
    /// Whether any diagnostic is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Whether any diagnostic is at least a [`Severity::Warning`].
    pub fn has_warnings(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity >= Severity::Warning)
    }

    /// The classification of the rule at `index` in the program's rule
    /// list.
    pub fn class_of(&self, index: usize) -> RuleClass {
        self.rule_classes[index]
    }
}

/// Runs the whole-program analysis. Total: always returns an [`Analysis`],
/// never fails, even on programs that [`validate`](crate::validate::validate)
/// rejects.
pub fn analyze(program: &Program) -> Analysis {
    let mut cx = Context::new(program);
    cx.infer_schemas();
    cx.classify_rules();
    cx.build_graph();
    cx.stratify();
    cx.check_lifetimes();
    cx.edges.sort();
    Analysis {
        diagnostics: cx.diagnostics,
        rule_classes: cx.rule_classes,
        edges: cx.edges,
        predicates: cx.predicates,
    }
}

struct Context<'a> {
    program: &'a Program,
    /// A program with no `materialize` statements is a *fragment* meant to
    /// be merged into a larger program (e.g. `chord_join_seed.olg`): its
    /// body predicates are declared elsewhere, so undeclared-predicate
    /// findings demote to notes and planner-shape restrictions are skipped.
    fragment: bool,
    diagnostics: Vec<Diagnostic>,
    rule_classes: Vec<RuleClass>,
    edges: Vec<Edge>,
    predicates: BTreeMap<String, PredicateInfo>,
}

impl<'a> Context<'a> {
    fn new(program: &'a Program) -> Context<'a> {
        Context {
            program,
            fragment: program.materializations.is_empty(),
            diagnostics: Vec::new(),
            rule_classes: Vec::new(),
            edges: Vec::new(),
            predicates: BTreeMap::new(),
        }
    }

    fn push(
        &mut self,
        severity: Severity,
        code: &'static str,
        rule: Option<&str>,
        span: Span,
        message: impl Into<String>,
    ) {
        self.diagnostics.push(Diagnostic {
            severity,
            code,
            rule: rule.map(str::to_string),
            span,
            message: message.into(),
        });
    }

    // --- Schema inference -------------------------------------------------

    fn infer_schemas(&mut self) {
        // Duplicate rule ids: the dependency graph and the per-rule class
        // table key rules by id for reporting; collisions poison both.
        let mut seen: HashMap<&str, Span> = HashMap::new();
        let rules = &self.program.rules;
        let mut dups = Vec::new();
        for rule in rules {
            if let Some(first) = seen.get(rule.id.as_str()) {
                dups.push((rule.id.clone(), rule.span, *first));
            } else {
                seen.insert(&rule.id, rule.span);
            }
        }
        for (id, span, first) in dups {
            self.push(
                Severity::Error,
                "schema-dup-rule-id",
                Some(&id),
                span,
                format!("duplicate rule id `{id}` (first defined at {first})"),
            );
        }

        for m in &self.program.materializations {
            let entry = self.predicates.entry(m.name.clone()).or_default();
            entry.materialized = true;
        }
        // periodic is the planner-injected external clock stream.
        self.predicates
            .entry("periodic".into())
            .or_default()
            .external = true;

        // Each use votes on arity and location position:
        // (predicate, arity, location position, anchoring rule/fact id, span).
        type Vote = (String, usize, Option<usize>, Option<String>, Span);
        let mut votes: Vec<Vote> = Vec::new();
        for fact in &self.program.facts {
            let loc_pos = fact.args.iter().position(|a| match a {
                Expr::Var(v) => Some(v) == fact.location.as_ref(),
                _ => false,
            });
            self.predicates.entry(fact.name.clone()).or_default().seeded = true;
            votes.push((
                fact.name.clone(),
                fact.args.len(),
                loc_pos,
                fact.id.clone(),
                fact.span,
            ));
        }
        for rule in &self.program.rules {
            let head = &rule.head;
            let loc_pos = head.args.iter().position(|a| match a {
                HeadArg::Expr(Expr::Var(v)) => Some(v) == head.location.as_ref(),
                HeadArg::Agg(agg) => {
                    agg.var.as_ref() == head.location.as_ref() && agg.var.is_some()
                }
                _ => false,
            });
            self.predicates
                .entry(head.name.clone())
                .or_default()
                .derived = true;
            votes.push((
                head.name.clone(),
                head.args.len(),
                loc_pos,
                Some(rule.id.clone()),
                rule.span,
            ));
            for p in rule
                .positive_predicates()
                .into_iter()
                .chain(rule.negated_predicates())
            {
                let loc_pos = p.args.iter().position(|a| match a {
                    Expr::Var(v) => Some(v) == p.location.as_ref(),
                    _ => false,
                });
                votes.push((
                    p.name.clone(),
                    p.args.len(),
                    loc_pos,
                    Some(rule.id.clone()),
                    rule.span,
                ));
            }
        }

        for (name, arity, loc_pos, rule, span) in votes {
            // `periodic(@NI, E, Period, ...)` carries planner-interpreted
            // trailing arguments; arity is intentionally variable, but
            // fewer than three arguments cannot name a period.
            if name == "periodic" {
                if arity < 3 {
                    self.push(
                        Severity::Error,
                        "schema-periodic-arity",
                        rule.as_deref(),
                        span,
                        format!(
                            "`periodic` needs at least 3 arguments (location, id, period), found {arity}"
                        ),
                    );
                }
                continue;
            }
            let info = self.predicates.entry(name.clone()).or_default();
            match info.arity {
                None => info.arity = Some(arity),
                Some(a) if a != arity => {
                    let msg = format!(
                        "predicate `{name}` used with {arity} argument(s) here but {a} elsewhere"
                    );
                    self.push(Severity::Error, "schema-arity", rule.as_deref(), span, msg);
                }
                Some(_) => {}
            }
            if let Some(pos) = loc_pos {
                let info = self.predicates.entry(name.clone()).or_default();
                match info.location_position {
                    None => info.location_position = Some(pos),
                    Some(p) if p != pos => {
                        let msg = format!(
                            "predicate `{name}` carries its location specifier at argument {} here \
                             but at argument {} elsewhere",
                            pos + 1,
                            p + 1
                        );
                        self.push(
                            Severity::Error,
                            "schema-location",
                            rule.as_deref(),
                            span,
                            msg,
                        );
                    }
                    Some(_) => {}
                }
            }
        }

        // Primary keys must address existing columns.
        for m in &self.program.materializations {
            if let Some(arity) = self.predicates.get(&m.name).and_then(|i| i.arity) {
                for &k in &m.keys {
                    if k > arity {
                        self.push(
                            Severity::Error,
                            "schema-key-bounds",
                            None,
                            m.span,
                            format!(
                                "materialize({}): key position {k} exceeds the table's arity {arity}",
                                m.name
                            ),
                        );
                    }
                }
            }
        }

        // The silent-typo hazard: a body predicate nobody declares, derives,
        // or seeds is an event stream that can never fire.
        let undeclared_severity = if self.fragment {
            Severity::Note
        } else {
            Severity::Warning
        };
        for rule in &self.program.rules {
            for p in rule
                .positive_predicates()
                .into_iter()
                .chain(rule.negated_predicates())
            {
                let known = self
                    .predicates
                    .get(&p.name)
                    .map(|i| i.materialized || i.derived || i.seeded || i.external)
                    .unwrap_or(false);
                if !known {
                    self.push(
                        undeclared_severity,
                        "schema-undeclared",
                        Some(&rule.id),
                        rule.span,
                        format!(
                            "body predicate `{}` is neither declared (materialize), derived by a \
                             rule, seeded by a fact, nor external — it can never fire",
                            p.name
                        ),
                    );
                }
            }
        }
    }

    // --- Delta-safety classification --------------------------------------

    fn classify_rules(&mut self) {
        for rule in &self.program.rules {
            let class = classify_rule(self.program, rule);
            self.rule_classes.push(class);
        }
    }

    // --- Dependency graph -------------------------------------------------

    /// Mirrors the planner's trigger selection (`Builder::plan_rule`): the
    /// edges recorded here are exactly the tuples whose arrival re-runs the
    /// rule *on the same node*. Heads addressed to a different location
    /// variable are shipped through the network (deferred), which breaks
    /// synchronous cascades, so they contribute no edge.
    fn build_graph(&mut self) {
        for rule in &self.program.rules {
            let positives = rule.positive_predicates();
            let periodics: Vec<&&Predicate> =
                positives.iter().filter(|p| p.name == "periodic").collect();
            let streams: Vec<&&Predicate> = positives
                .iter()
                .filter(|p| p.name != "periodic" && !self.program.is_materialized(&p.name))
                .collect();
            let tables: Vec<&&Predicate> = positives
                .iter()
                .filter(|p| p.name != "periodic" && self.program.is_materialized(&p.name))
                .collect();

            // Planner shape restrictions, surfaced early with spans. A
            // fragment's undeclared predicates all parse as streams, so the
            // stream-join shape is unknowable there.
            if !self.fragment {
                if streams.len() > 1 || (!periodics.is_empty() && !streams.is_empty()) {
                    self.push(
                        Severity::Error,
                        "plan-stream-join",
                        Some(&rule.id),
                        rule.span,
                        "stream-stream joins are not supported (the 2005 planner joins one \
                         event stream with materialized tables); materialize one of the streams",
                    );
                }
                if periodics.is_empty()
                    && streams.is_empty()
                    && rule.has_aggregate()
                    && tables.len() != 1
                {
                    self.push(
                        Severity::Error,
                        "plan-agg-shape",
                        Some(&rule.id),
                        rule.span,
                        "a materialized aggregate must range over exactly one table",
                    );
                }
            }

            // Local delivery only: the head must land on the same location
            // variable the (collocated) body is bound to.
            let body_loc = positives.iter().find_map(|p| p.location.as_deref());
            let local = match (&rule.head.location, body_loc) {
                (Some(h), Some(b)) => h == b,
                _ => true, // no specifiers: conservatively assume local
            };
            if !local {
                continue;
            }

            let head = rule.head.name.clone();
            if !periodics.is_empty() {
                // External clock: no incoming edge.
            } else if let Some(stream) = streams.first() {
                // A stream-triggered rule may still aggregate in its head
                // (e.g. Chord S3); the cycle is then "through aggregation"
                // no matter what fires it.
                let kind = if rule.has_aggregate() {
                    EdgeKind::Aggregate
                } else {
                    EdgeKind::Trigger
                };
                self.edge(&stream.name, &head, kind, &rule.id);
            } else if rule.has_aggregate() {
                // Incrementally maintained TableAgg: deltas of the
                // aggregated table re-fire the rule.
                for t in &tables {
                    self.edge(&t.name, &head, EdgeKind::Aggregate, &rule.id);
                }
            } else {
                for t in &tables {
                    self.edge(&t.name, &head, EdgeKind::Delta, &rule.id);
                }
            }
            // Negation: the head depends non-monotonically on these tables.
            // The runtime does not cascade deletions through anti-joins, but
            // a derivation cycle through `not` has no stratified meaning at
            // all, so the edges participate in stratification.
            for n in rule.negated_predicates() {
                self.edge(&n.name, &head, EdgeKind::Negation, &rule.id);
            }
        }
    }

    fn edge(&mut self, from: &str, to: &str, kind: EdgeKind, rule: &str) {
        self.edges.push(Edge {
            from: from.to_string(),
            to: to.to_string(),
            kind,
            rule: rule.to_string(),
        });
    }

    // --- Stratification ---------------------------------------------------

    fn stratify(&mut self) {
        // Tarjan-free SCC via Kosaraju on the (small) predicate graph.
        let mut names: Vec<&str> = Vec::new();
        let mut index: HashMap<&str, usize> = HashMap::new();
        for e in &self.edges {
            for n in [e.from.as_str(), e.to.as_str()] {
                if !index.contains_key(n) {
                    index.insert(n, names.len());
                    names.push(n);
                }
            }
        }
        let n = names.len();
        let mut fwd: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in &self.edges {
            let (a, b) = (index[e.from.as_str()], index[e.to.as_str()]);
            fwd[a].push(b);
            rev[b].push(a);
        }
        // First pass: finish order.
        let mut visited = vec![false; n];
        let mut order: Vec<usize> = Vec::with_capacity(n);
        for start in 0..n {
            if visited[start] {
                continue;
            }
            // Iterative DFS with an explicit done-marker.
            let mut stack = vec![(start, false)];
            while let Some((v, done)) = stack.pop() {
                if done {
                    order.push(v);
                    continue;
                }
                if visited[v] {
                    continue;
                }
                visited[v] = true;
                stack.push((v, true));
                for &w in &fwd[v] {
                    if !visited[w] {
                        stack.push((w, false));
                    }
                }
            }
        }
        // Second pass: components on the reversed graph.
        let mut comp = vec![usize::MAX; n];
        let mut ncomp = 0;
        for &start in order.iter().rev() {
            if comp[start] != usize::MAX {
                continue;
            }
            let mut stack = vec![start];
            comp[start] = ncomp;
            while let Some(v) = stack.pop() {
                for &w in &rev[v] {
                    if comp[w] == usize::MAX {
                        comp[w] = ncomp;
                        stack.push(w);
                    }
                }
            }
            ncomp += 1;
        }

        // Collect, per component, the internal edges (both endpoints inside).
        let mut pending: Vec<(Severity, &'static str, Option<String>, Span, String)> = Vec::new();
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); ncomp];
        for (v, &c) in comp.iter().enumerate() {
            members[c].push(v);
        }
        for (c, group) in members.iter().enumerate() {
            let internal: Vec<&Edge> = self
                .edges
                .iter()
                .filter(|e| comp[index[e.from.as_str()]] == c && comp[index[e.to.as_str()]] == c)
                .collect();
            // A component is cyclic if it has >1 node, or a self-loop edge.
            let cyclic = group.len() > 1 || internal.iter().any(|e| e.from == e.to);
            if !cyclic {
                continue;
            }
            let mut preds: Vec<&str> = group.iter().map(|&v| names[v]).collect();
            preds.sort_unstable();
            let cycle_desc = preds.join(" -> ");
            let rule_ids: Vec<&str> = {
                let mut ids: Vec<&str> = internal.iter().map(|e| e.rule.as_str()).collect();
                ids.sort_unstable();
                ids.dedup();
                ids
            };
            let anchor = rule_ids
                .first()
                .and_then(|id| self.program.rule(id))
                .map(|r| (r.id.clone(), r.span));
            let (anchor_id, anchor_span) = match anchor {
                Some((id, span)) => (Some(id), span),
                None => (None, Span::default()),
            };

            let has_negation = internal.iter().any(|e| e.kind == EdgeKind::Negation);
            let has_aggregate = internal.iter().any(|e| e.kind == EdgeKind::Aggregate);
            let has_materialized = group
                .iter()
                .any(|&v| self.program.is_materialized(names[v]));
            // A rule "guards" its step of the cycle if it filters with
            // conditions (e.g. Chord F6's `K in (N, B]`), which can bottom
            // out the recursion.
            let all_guarded = rule_ids.iter().all(|id| {
                self.program
                    .rule(id)
                    .map(|r| r.body.iter().any(|t| matches!(t, BodyTerm::Condition(_))))
                    .unwrap_or(false)
            });

            let findings: Vec<(Severity, &'static str, String)> = if has_negation {
                vec![(
                    Severity::Error,
                    "strat-negation",
                    format!(
                        "unstratifiable: cycle through negation ({cycle_desc}; rules {})",
                        rule_ids.join(", ")
                    ),
                )]
            } else if has_aggregate {
                if has_materialized {
                    vec![(
                        Severity::Note,
                        "strat-agg-soft-state",
                        format!(
                            "soft-state-sustained aggregate recursion: {cycle_desc} closes a \
                             cycle through an aggregate, bounded by materialized state \
                             (rules {})",
                            rule_ids.join(", ")
                        ),
                    )]
                } else {
                    vec![(
                        Severity::Error,
                        "strat-aggregation",
                        format!(
                            "unstratifiable: cycle through aggregation with no materialized \
                             table to bound it ({cycle_desc}; rules {})",
                            rule_ids.join(", ")
                        ),
                    )]
                }
            } else if has_materialized || all_guarded {
                vec![(
                    Severity::Note,
                    "strat-guarded-recursion",
                    format!(
                        "recursion through {cycle_desc} (rules {}) is {}",
                        rule_ids.join(", "),
                        if has_materialized {
                            "bounded by materialized state"
                        } else {
                            "guarded by selection conditions"
                        }
                    ),
                )]
            } else {
                vec![(
                    Severity::Warning,
                    "strat-stream-recursion",
                    format!(
                        "unguarded recursion through event streams ({cycle_desc}; rules {}): \
                         nothing bounds this cascade",
                        rule_ids.join(", ")
                    ),
                )]
            };
            for (severity, code, message) in findings {
                pending.push((severity, code, anchor_id.clone(), anchor_span, message));
            }
        }
        for (severity, code, rule, span, message) in pending {
            self.push(severity, code, rule.as_deref(), span, message);
        }
    }

    // --- Lifetime flow ----------------------------------------------------

    fn check_lifetimes(&mut self) {
        for rule in &self.program.rules {
            if rule.delete || rule.has_aggregate() {
                // Deletions and incrementally maintained aggregates are
                // refreshed continuously; they do not pin stale state.
                continue;
            }
            let Some(head_m) = self.program.materialization(&rule.head.name) else {
                continue;
            };
            let sources: Vec<(&str, Lifetime)> = rule
                .positive_predicates()
                .iter()
                .filter_map(|p| {
                    self.program
                        .materialization(&p.name)
                        .map(|m| (p.name.as_str(), m.lifetime))
                })
                .collect();
            if sources.is_empty() {
                continue;
            }
            let head_secs = match head_m.lifetime {
                Lifetime::Infinity => f64::INFINITY,
                Lifetime::Secs(s) => s,
            };
            let max_source = sources
                .iter()
                .map(|(_, l)| match l {
                    Lifetime::Infinity => f64::INFINITY,
                    Lifetime::Secs(s) => *s,
                })
                .fold(f64::NEG_INFINITY, f64::max);
            if max_source < head_secs {
                let lifetimes: Vec<String> = sources
                    .iter()
                    .map(|(n, l)| match l {
                        Lifetime::Infinity => format!("{n}(infinity)"),
                        Lifetime::Secs(s) => format!("{n}({s}s)"),
                    })
                    .collect();
                let head_desc = match head_m.lifetime {
                    Lifetime::Infinity => "infinity".to_string(),
                    Lifetime::Secs(s) => format!("{s}s"),
                };
                self.push(
                    Severity::Warning,
                    "lifetime-flow",
                    Some(&rule.id),
                    rule.span,
                    format!(
                        "derived table `{}` (lifetime {head_desc}) outlives every source it is \
                         derived from ({}); rows will survive the soft state that justified them",
                        rule.head.name,
                        lifetimes.join(", ")
                    ),
                );
            }
        }
    }
}

/// Classifies one rule. Exposed for the planner, which consults the class
/// instead of re-deriving eligibility from compiled PEL stages.
fn classify_rule(program: &Program, rule: &Rule) -> RuleClass {
    let mut uses_random = false;
    let mut uses_time = false;
    visit_rule_exprs(rule, &mut |e| {
        if let Expr::Call { name, .. } = e {
            if let Some(b) = Builtin::from_name(name) {
                uses_random |= b.is_random();
                uses_time |= b.is_time();
            }
        }
    });
    let deterministic = !uses_random;
    let pure = deterministic && !uses_time;
    let monotone = !rule.delete && rule.negated_predicates().is_empty() && !rule.has_aggregate();
    let refresh_transparent = pure && refresh_transparent(program, rule);
    RuleClass {
        deterministic,
        pure,
        monotone,
        refresh_transparent,
    }
}

/// Whether a keyed refresh (same primary key, new TTL, possibly updated
/// non-key columns) of any finite-lifetime materialized body table can
/// change the rule's output. The rule is transparent when every such table
/// is *read* only at primary-key positions: a read is a constant match, a
/// join/repeat of a variable, or a variable consumed elsewhere in the rule;
/// a position holding a single-occurrence variable or wildcard is
/// projection-free dead weight. The location argument is exempt — body
/// locations are always the local address, which a refresh cannot change.
/// Infinite-lifetime tables never refresh, so they are exempt too.
fn refresh_transparent(program: &Program, rule: &Rule) -> bool {
    // Count every variable occurrence across the rule.
    let mut counts: HashMap<String, usize> = HashMap::new();
    let mut bump = |v: &str| *counts.entry(v.to_string()).or_insert(0) += 1;
    for p in rule
        .positive_predicates()
        .into_iter()
        .chain(rule.negated_predicates())
    {
        if let Some(l) = &p.location {
            bump(l);
        }
        for a in &p.args {
            for v in a.variables() {
                bump(&v);
            }
        }
    }
    if let Some(l) = &rule.head.location {
        bump(l);
    }
    for a in &rule.head.args {
        match a {
            HeadArg::Expr(e) => {
                for v in e.variables() {
                    bump(&v);
                }
            }
            HeadArg::Agg(agg) => {
                if let Some(v) = &agg.var {
                    bump(v);
                }
            }
        }
    }
    for t in &rule.body {
        match t {
            BodyTerm::Assign { expr, .. } | BodyTerm::Condition(expr) => {
                for v in expr.variables() {
                    bump(&v);
                }
            }
            BodyTerm::Predicate(_) => {}
        }
    }

    for p in rule.positive_predicates() {
        let Some(m) = program.materialization(&p.name) else {
            continue;
        };
        if m.lifetime == Lifetime::Infinity {
            continue;
        }
        let keys: HashSet<usize> = m.keys.iter().map(|k| k.saturating_sub(1)).collect();
        for (i, arg) in p.args.iter().enumerate() {
            let is_location = matches!(arg, Expr::Var(v) if Some(v) == p.location.as_ref());
            if is_location || keys.contains(&i) {
                continue;
            }
            let read = match arg {
                Expr::Wildcard => false,
                // The location occurrence bumped the count once; any var
                // with more than one occurrence is joined or consumed.
                Expr::Var(v) => counts.get(v.as_str()).copied().unwrap_or(0) > 1,
                _ => true, // constants and computed expressions filter rows
            };
            if read {
                return false;
            }
        }
    }
    true
}

/// Calls `f` on every expression in the rule, recursively.
fn visit_rule_exprs(rule: &Rule, f: &mut impl FnMut(&Expr)) {
    fn walk(e: &Expr, f: &mut impl FnMut(&Expr)) {
        f(e);
        match e {
            Expr::Call { args, .. } => {
                for a in args {
                    walk(a, f);
                }
            }
            Expr::Unary { expr, .. } => walk(expr, f),
            Expr::Binary { lhs, rhs, .. } => {
                walk(lhs, f);
                walk(rhs, f);
            }
            Expr::Range {
                value, low, high, ..
            } => {
                walk(value, f);
                walk(low, f);
                walk(high, f);
            }
            Expr::Var(_) | Expr::Wildcard | Expr::Const(_) => {}
        }
    }
    for t in &rule.body {
        match t {
            BodyTerm::Predicate(p) => {
                for a in &p.args {
                    walk(a, f);
                }
            }
            BodyTerm::Assign { expr, .. } | BodyTerm::Condition(expr) => walk(expr, f),
        }
    }
    for a in &rule.head.args {
        if let HeadArg::Expr(e) = a {
            walk(e, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn run(src: &str) -> Analysis {
        analyze(&parse_program(src).unwrap())
    }

    fn codes(a: &Analysis) -> Vec<&'static str> {
        a.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_program_has_no_diagnostics() {
        let a = run(r#"
            materialize(node, infinity, 1, keys(1)).
            materialize(succ, 10, 100, keys(2)).
            N1 succEvent@NI(NI, S, SI) :- succ@NI(NI, S, SI).
        "#);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
        assert_eq!(a.rule_classes.len(), 1);
        let c = a.rule_classes[0];
        assert!(c.pure && c.deterministic && c.monotone);
    }

    #[test]
    fn negation_cycle_is_an_error() {
        let a = run(r#"
            materialize(p, 10, 10, keys(1)).
            materialize(q, 10, 10, keys(1)).
            R1 p@X(X) :- tick@X(X), not q@X(X).
            R2 q@X(X) :- tock@X(X), not p@X(X).
            R3 tick@X(X) :- p@X(X).
            R4 tock@X(X) :- q@X(X).
        "#);
        assert!(
            a.diagnostics
                .iter()
                .any(|d| d.code == "strat-negation" && d.severity == Severity::Error),
            "{:?}",
            a.diagnostics
        );
    }

    #[test]
    fn aggregate_cycle_over_streams_is_an_error() {
        let a = run(r#"
            materialize(seed, infinity, 1, keys(1)).
            A1 total@X(X, count<*>) :- ping@X(X, Y).
            A2 ping@X(X, C) :- total@X(X, C).
        "#);
        assert!(
            a.diagnostics
                .iter()
                .any(|d| d.code == "strat-aggregation" && d.severity == Severity::Error),
            "{:?}",
            a.diagnostics
        );
    }

    #[test]
    fn aggregate_cycle_through_soft_state_is_a_note() {
        // Chord's eviction pattern in miniature: succ -> succCount -> evict
        // -> succ, sustained by the materialized tables on the cycle.
        let a = run(r#"
            materialize(succ, 10, 100, keys(2)).
            materialize(succCount, infinity, 1, keys(1)).
            C1 succCount@NI(NI, count<*>) :- succ@NI(NI, S).
            C2 evictSucc@NI(NI) :- succCount@NI(NI, C), C > 4.
            C3 delete succ@NI(NI, S) :- evictSucc@NI(NI), succ@NI(NI, S).
        "#);
        let notes: Vec<_> = a
            .diagnostics
            .iter()
            .filter(|d| d.code == "strat-agg-soft-state")
            .collect();
        assert_eq!(notes.len(), 1, "{:?}", a.diagnostics);
        assert_eq!(notes[0].severity, Severity::Note);
        assert!(!a.has_warnings());
    }

    #[test]
    fn unguarded_stream_recursion_warns_and_guards_demote() {
        let a = run(r#"
            materialize(seed, infinity, 1, keys(1)).
            R1 ping@X(X, Y) :- pong@X(X, Y).
            R2 pong@X(X, Y) :- ping@X(X, Y).
        "#);
        assert!(
            codes(&a).contains(&"strat-stream-recursion"),
            "{:?}",
            a.diagnostics
        );
        let a = run(r#"
            materialize(seed, infinity, 1, keys(1)).
            R1 ping@X(X, Y) :- pong@X(X, Y), Y > 0.
            R2 pong@X(X, Y) :- ping@X(X, Y), Y < 100.
        "#);
        assert!(
            codes(&a).contains(&"strat-guarded-recursion"),
            "{:?}",
            a.diagnostics
        );
        assert!(!a.has_warnings());
    }

    #[test]
    fn remote_heads_break_cycles() {
        // Same shape as the unguarded loop above, but each hop ships the
        // head to a different node: deferred delivery, no local cascade.
        let a = run(r#"
            materialize(seed, infinity, 1, keys(1)).
            R1 ping@Y(Y, X) :- pong@X(X, Y).
            R2 pong@Y(Y, X) :- ping@X(X, Y).
        "#);
        assert!(
            !codes(&a).iter().any(|c| c.starts_with("strat-")),
            "{:?}",
            a.diagnostics
        );
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let a = run(r#"
            materialize(member, 120, 100, keys(2)).
            R1 out@X(X, Y) :- member@X(X, Y).
            R2 other@X(X) :- member@X(X, Y, Z).
        "#);
        assert!(codes(&a).contains(&"schema-arity"), "{:?}", a.diagnostics);
    }

    #[test]
    fn inconsistent_location_position_is_an_error() {
        let a = run(r#"
            materialize(member, 120, 100, keys(2)).
            R1 out@X(X, Y) :- member@X(X, Y).
            R2 out@X(Y, X) :- member@X(X, Y).
        "#);
        assert!(
            codes(&a).contains(&"schema-location"),
            "{:?}",
            a.diagnostics
        );
    }

    #[test]
    fn undeclared_body_predicate_warns() {
        let a = run(r#"
            materialize(member, 120, 100, keys(2)).
            R1 out@X(X, Y) :- membr@X(X, Y).
        "#);
        let d = a
            .diagnostics
            .iter()
            .find(|d| d.code == "schema-undeclared")
            .expect("undeclared diagnostic");
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("membr"));
    }

    #[test]
    fn fragments_demote_undeclared_to_note() {
        // No materialize statements: this is a fragment to be merged.
        let a = run("JS1 join@NI(NI, E) :- joinEvent@NI(NI, E).");
        for d in &a.diagnostics {
            assert_eq!(d.severity, Severity::Note, "{d}");
        }
    }

    #[test]
    fn key_past_arity_is_an_error() {
        let a = run(r#"
            materialize(member, 120, 100, keys(5)).
            R1 out@X(X, Y) :- member@X(X, Y).
        "#);
        assert!(
            codes(&a).contains(&"schema-key-bounds"),
            "{:?}",
            a.diagnostics
        );
    }

    #[test]
    fn duplicate_rule_ids_are_an_error() {
        let a = run(r#"
            R1 out@X(X, Y) :- ping@X(X, Y).
            R1 out@X(X, Y) :- pong@X(X, Y).
        "#);
        assert!(
            codes(&a).contains(&"schema-dup-rule-id"),
            "{:?}",
            a.diagnostics
        );
    }

    #[test]
    fn lifetime_escalation_warns() {
        let a = run(r#"
            materialize(gossip, 10, 100, keys(2)).
            materialize(archive, infinity, infinity, keys(2)).
            R1 archive@X(X, Y) :- gossip@X(X, Y).
        "#);
        let d = a
            .diagnostics
            .iter()
            .find(|d| d.code == "lifetime-flow")
            .expect("lifetime diagnostic");
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("archive"));
    }

    #[test]
    fn infinite_source_launders_lifetimes() {
        let a = run(r#"
            materialize(gossip, 10, 100, keys(2)).
            materialize(node, infinity, 1, keys(1)).
            materialize(archive, infinity, infinity, keys(2)).
            R1 archive@X(X, Y) :- gossip@X(X, Y), node@X(X).
        "#);
        assert!(!codes(&a).contains(&"lifetime-flow"), "{:?}", a.diagnostics);
    }

    #[test]
    fn classification_flags_builtins() {
        let a = run(r#"
            materialize(t, 10, 10, keys(1)).
            R1 out@X(X, R) :- ping@X(X), R := f_rand().
            R2 out@X(X, T) :- ping@X(X), T := f_now().
            R3 out@X(X, H) :- ping@X(X), H := f_sha1(X).
        "#);
        let [r1, r2, r3] = [a.rule_classes[0], a.rule_classes[1], a.rule_classes[2]];
        assert!(!r1.deterministic && !r1.pure);
        assert!(r2.deterministic && !r2.pure && !r2.refresh_transparent);
        assert!(r3.deterministic && r3.pure);
    }

    #[test]
    fn classification_monotonicity() {
        let a = run(r#"
            materialize(t, infinity, 10, keys(1)).
            R1 out@X(X) :- ping@X(X), not t@X(X).
            R2 out@X(X, count<*>) :- ping@X(X).
            R3 delete t@X(X) :- ping@X(X), t@X(X).
            R4 out@X(X) :- ping@X(X).
        "#);
        assert!(!a.rule_classes[0].monotone);
        assert!(!a.rule_classes[1].monotone);
        assert!(!a.rule_classes[2].monotone);
        assert!(a.rule_classes[3].monotone);
    }

    #[test]
    fn refresh_transparency_tracks_key_reads() {
        let a = run(r#"
            materialize(succ, 10, 100, keys(2)).
            R1 out@NI(NI, S) :- ping@NI(NI), succ@NI(NI, S, SI).
            R2 out@NI(NI, SI) :- ping@NI(NI), succ@NI(NI, S, SI).
        "#);
        // R1 reads succ at its key column (S, position 1 = keys(2)) plus the
        // exempt location; the don't-care SI is never consumed: transparent.
        assert!(
            a.rule_classes[0].refresh_transparent,
            "{:?}",
            a.rule_classes
        );
        // R2 projects the non-key column SI into its head: a refresh that
        // rewrites SI changes the output.
        assert!(
            !a.rule_classes[1].refresh_transparent,
            "{:?}",
            a.rule_classes
        );
    }

    #[test]
    fn analysis_is_total_on_invalid_programs() {
        // validate() rejects this (unbound head var), analyze still runs.
        let a = run("R1 out@X(X, Z) :- ping@X(X).");
        assert_eq!(a.rule_classes.len(), 1);
    }
}
