//! A 160-bit unsigned integer with wrapping (ring) arithmetic.
//!
//! Chord identifies nodes and keys with 160-bit identifiers (SHA-1 output in
//! the original paper) and all identifier arithmetic is performed modulo
//! 2^160. The P2 Chord specification in OverLog relies on this directly:
//! finger targets are computed as `K := (1 << I) + N` for `I` up to 159 and
//! distances as `D := K - B - 1`, both wrapping around the ring.
//!
//! The value is stored as three little-endian 64-bit limbs; the most
//! significant limb only ever holds 32 significant bits so every operation
//! re-applies [`Uint160::MASK_TOP`].

use std::cmp::Ordering;
use std::fmt;

/// A 160-bit unsigned integer; all arithmetic wraps modulo 2^160.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Uint160 {
    /// Little-endian limbs: `limbs[0]` is the least significant.
    limbs: [u64; 3],
}

impl Uint160 {
    /// Mask applied to the most significant limb (only 32 bits are used).
    const MASK_TOP: u64 = 0xFFFF_FFFF;

    /// The value zero.
    pub const ZERO: Uint160 = Uint160 { limbs: [0, 0, 0] };

    /// The value one.
    pub const ONE: Uint160 = Uint160 { limbs: [1, 0, 0] };

    /// The maximum representable value, 2^160 - 1.
    pub const MAX: Uint160 = Uint160 {
        limbs: [u64::MAX, u64::MAX, Self::MASK_TOP],
    };

    /// Number of bits in the identifier space.
    pub const BITS: u32 = 160;

    /// Creates a value from raw little-endian limbs, masking the top limb.
    pub const fn from_limbs(limbs: [u64; 3]) -> Self {
        Uint160 {
            limbs: [limbs[0], limbs[1], limbs[2] & Self::MASK_TOP],
        }
    }

    /// Returns the raw little-endian limbs.
    pub const fn limbs(&self) -> [u64; 3] {
        self.limbs
    }

    /// Creates a value from a `u64`.
    pub const fn from_u64(v: u64) -> Self {
        Uint160 { limbs: [v, 0, 0] }
    }

    /// Creates a value from a `u128`.
    pub const fn from_u128(v: u128) -> Self {
        Uint160 {
            limbs: [v as u64, (v >> 64) as u64, 0],
        }
    }

    /// Truncates to a `u64` (low 64 bits).
    pub const fn low_u64(&self) -> u64 {
        self.limbs[0]
    }

    /// Returns true if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs == [0, 0, 0]
    }

    /// Wrapping addition modulo 2^160.
    pub fn wrapping_add(self, rhs: Uint160) -> Uint160 {
        let (l0, c0) = self.limbs[0].overflowing_add(rhs.limbs[0]);
        let (l1a, c1a) = self.limbs[1].overflowing_add(rhs.limbs[1]);
        let (l1, c1b) = l1a.overflowing_add(c0 as u64);
        let l2 = self.limbs[2]
            .wrapping_add(rhs.limbs[2])
            .wrapping_add((c1a as u64) + (c1b as u64));
        Uint160::from_limbs([l0, l1, l2])
    }

    /// Wrapping subtraction modulo 2^160.
    pub fn wrapping_sub(self, rhs: Uint160) -> Uint160 {
        // a - b mod 2^160 == a + (2^160 - b) == a + (!b + 1) under the mask.
        self.wrapping_add(rhs.not_160()).wrapping_add(Uint160::ONE)
    }

    /// Bitwise complement within 160 bits.
    pub fn not_160(self) -> Uint160 {
        Uint160::from_limbs([!self.limbs[0], !self.limbs[1], !self.limbs[2]])
    }

    /// Left shift by `n` bits, wrapping modulo 2^160 (bits shifted above bit
    /// 159 are discarded). Shifts of 160 or more yield zero.
    #[allow(clippy::should_implement_trait)] // saturating u32-shift API, not ops::Shl
    pub fn shl(self, n: u32) -> Uint160 {
        if n >= Self::BITS {
            return Uint160::ZERO;
        }
        let limb_shift = (n / 64) as usize;
        let bit_shift = n % 64;
        let mut out = [0u64; 3];
        for (i, slot) in out.iter_mut().enumerate() {
            if i >= limb_shift {
                let src = i - limb_shift;
                *slot |= self.limbs[src] << bit_shift;
                if bit_shift > 0 && src >= 1 {
                    *slot |= self.limbs[src - 1] >> (64 - bit_shift);
                }
            }
        }
        Uint160::from_limbs(out)
    }

    /// Logical right shift by `n` bits. Shifts of 160 or more yield zero.
    #[allow(clippy::should_implement_trait)] // saturating u32-shift API, not ops::Shr
    pub fn shr(self, n: u32) -> Uint160 {
        if n >= Self::BITS {
            return Uint160::ZERO;
        }
        let limb_shift = (n / 64) as usize;
        let bit_shift = n % 64;
        let mut out = [0u64; 3];
        for (i, slot) in out.iter_mut().enumerate() {
            let src = i + limb_shift;
            if src < 3 {
                *slot |= self.limbs[src] >> bit_shift;
                if bit_shift > 0 && src + 1 < 3 {
                    *slot |= self.limbs[src + 1] << (64 - bit_shift);
                }
            }
        }
        Uint160::from_limbs(out)
    }

    /// Returns 2^n (a single set bit), for `n < 160`.
    pub fn pow2(n: u32) -> Uint160 {
        Uint160::ONE.shl(n)
    }

    /// Ring distance from `self` to `other` travelling clockwise
    /// (i.e. `other - self` modulo 2^160).
    pub fn ring_distance_to(self, other: Uint160) -> Uint160 {
        other.wrapping_sub(self)
    }

    /// Membership of `self` in the *open-open* ring interval `(a, b)`.
    ///
    /// When `a == b` the interval covers the whole ring except `a` itself,
    /// matching the convention of the Chord pseudocode.
    pub fn in_oo(self, a: Uint160, b: Uint160) -> bool {
        if a == b {
            self != a
        } else if a < b {
            a < self && self < b
        } else {
            self > a || self < b
        }
    }

    /// Membership of `self` in the *open-closed* ring interval `(a, b]`.
    ///
    /// When `a == b` the interval covers the whole ring (a lookup on a
    /// one-node Chord ring must always succeed locally).
    pub fn in_oc(self, a: Uint160, b: Uint160) -> bool {
        if a == b {
            true
        } else if a < b {
            a < self && self <= b
        } else {
            self > a || self <= b
        }
    }

    /// Membership of `self` in the *closed-open* ring interval `[a, b)`.
    pub fn in_co(self, a: Uint160, b: Uint160) -> bool {
        if a == b {
            true
        } else if a < b {
            a <= self && self < b
        } else {
            self >= a || self < b
        }
    }

    /// Membership of `self` in the *closed-closed* ring interval `[a, b]`.
    pub fn in_cc(self, a: Uint160, b: Uint160) -> bool {
        if a == b {
            self == a
        } else if a < b {
            a <= self && self <= b
        } else {
            self >= a || self <= b
        }
    }

    /// Deterministically hashes an arbitrary byte string into the identifier
    /// space.
    ///
    /// The original system uses SHA-1; what the overlay actually requires is
    /// a deterministic, well-spread mapping from node addresses and keys to
    /// identifiers. We use three rounds of 64-bit FNV-1a with different
    /// offsets, which gives 160 well-mixed bits without a crypto dependency.
    pub fn hash_of(bytes: &[u8]) -> Uint160 {
        const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut limbs = [0u64; 3];
        for (i, limb) in limbs.iter_mut().enumerate() {
            let mut h: u64 =
                0xcbf2_9ce4_8422_2325 ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
            // Extra avalanche so that short inputs still differ across limbs.
            h ^= h >> 33;
            h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
            h ^= h >> 33;
            *limb = h;
        }
        Uint160::from_limbs(limbs)
    }

    /// Parses a hexadecimal string (without `0x` prefix) of up to 40 digits.
    pub fn from_hex(s: &str) -> Option<Uint160> {
        if s.is_empty() || s.len() > 40 || !s.chars().all(|c| c.is_ascii_hexdigit()) {
            return None;
        }
        let mut v = Uint160::ZERO;
        for c in s.chars() {
            let digit = c.to_digit(16).expect("checked hexdigit") as u64;
            v = v.shl(4).wrapping_add(Uint160::from_u64(digit));
        }
        Some(v)
    }

    /// Formats the value as a lower-case hexadecimal string without leading
    /// zeros (at least one digit).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let full = format!(
            "{:08x}{:016x}{:016x}",
            self.limbs[2], self.limbs[1], self.limbs[0]
        );
        full.trim_start_matches('0').to_string()
    }
}

impl Ord for Uint160 {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..3).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                non_eq => return non_eq,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for Uint160 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Uint160 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl From<u64> for Uint160 {
    fn from(v: u64) -> Self {
        Uint160::from_u64(v)
    }
}

impl From<u128> for Uint160 {
    fn from(v: u128) -> Self {
        Uint160::from_u128(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_constants() {
        assert!(Uint160::ZERO.is_zero());
        assert_eq!(Uint160::ONE.low_u64(), 1);
        assert_eq!(Uint160::MAX.wrapping_add(Uint160::ONE), Uint160::ZERO);
    }

    #[test]
    fn add_sub_wrap() {
        let a = Uint160::from_u128(u128::MAX);
        let b = Uint160::from_u64(1);
        let c = a.wrapping_add(b);
        assert_eq!(c, Uint160::from_limbs([0, 0, 1]));
        assert_eq!(c.wrapping_sub(b), a);
        assert_eq!(Uint160::ZERO.wrapping_sub(Uint160::ONE), Uint160::MAX);
    }

    #[test]
    fn shifts() {
        assert_eq!(Uint160::pow2(0), Uint160::ONE);
        assert_eq!(Uint160::pow2(64), Uint160::from_limbs([0, 1, 0]));
        assert_eq!(Uint160::pow2(159), Uint160::from_limbs([0, 0, 0x8000_0000]));
        assert_eq!(Uint160::ONE.shl(160), Uint160::ZERO);
        assert_eq!(Uint160::pow2(100).shr(100), Uint160::ONE);
        assert_eq!(Uint160::pow2(159).shl(1), Uint160::ZERO);
        // shl then shr round-trips when no bits fall off the top.
        let v = Uint160::from_u128(0xDEAD_BEEF_CAFE_BABE_1234_5678_9ABC_DEF0);
        assert_eq!(v.shl(17).shr(17), v);
    }

    #[test]
    fn ordering_uses_most_significant_limb_first() {
        let small = Uint160::from_limbs([u64::MAX, u64::MAX, 0]);
        let big = Uint160::from_limbs([0, 0, 1]);
        assert!(small < big);
        assert!(Uint160::MAX > big);
    }

    #[test]
    fn ring_intervals_non_wrapping() {
        let a = Uint160::from_u64(10);
        let b = Uint160::from_u64(20);
        assert!(Uint160::from_u64(15).in_oo(a, b));
        assert!(!Uint160::from_u64(10).in_oo(a, b));
        assert!(!Uint160::from_u64(20).in_oo(a, b));
        assert!(Uint160::from_u64(20).in_oc(a, b));
        assert!(Uint160::from_u64(10).in_co(a, b));
        assert!(Uint160::from_u64(10).in_cc(a, b) && Uint160::from_u64(20).in_cc(a, b));
        assert!(!Uint160::from_u64(25).in_cc(a, b));
    }

    #[test]
    fn ring_intervals_wrapping() {
        // Interval that wraps around zero: (2^160 - 5, 10]
        let a = Uint160::MAX.wrapping_sub(Uint160::from_u64(4));
        let b = Uint160::from_u64(10);
        assert!(Uint160::ZERO.in_oc(a, b));
        assert!(Uint160::from_u64(10).in_oc(a, b));
        assert!(Uint160::MAX.in_oc(a, b));
        assert!(!Uint160::from_u64(11).in_oc(a, b));
        assert!(!a.in_oc(a, b));
        assert!(a.in_cc(a, b));
    }

    #[test]
    fn degenerate_intervals_match_chord_convention() {
        let a = Uint160::from_u64(42);
        let k = Uint160::from_u64(7);
        // (a, a] covers the whole ring: single-node lookups succeed.
        assert!(k.in_oc(a, a));
        assert!(a.in_oc(a, a));
        // (a, a) covers everything but a.
        assert!(k.in_oo(a, a));
        assert!(!a.in_oo(a, a));
        // [a, a] is just a.
        assert!(a.in_cc(a, a));
        assert!(!k.in_cc(a, a));
    }

    #[test]
    fn ring_distance() {
        let a = Uint160::from_u64(100);
        let b = Uint160::from_u64(40);
        assert_eq!(b.ring_distance_to(a), Uint160::from_u64(60));
        // Going the other way wraps around the whole ring.
        assert_eq!(
            a.ring_distance_to(b),
            Uint160::ZERO.wrapping_sub(Uint160::from_u64(60))
        );
        assert_eq!(a.ring_distance_to(a), Uint160::ZERO);
    }

    #[test]
    fn hashing_is_deterministic_and_spread() {
        let a = Uint160::hash_of(b"node-1");
        let b = Uint160::hash_of(b"node-2");
        assert_eq!(a, Uint160::hash_of(b"node-1"));
        assert_ne!(a, b);
        // Top limb should not be systematically zero.
        let any_high =
            (0..64).any(|i| Uint160::hash_of(format!("n{i}").as_bytes()).limbs()[2] != 0);
        assert!(any_high);
    }

    #[test]
    fn hex_round_trip() {
        let v = Uint160::hash_of(b"hex me");
        let parsed = Uint160::from_hex(&v.to_hex()).unwrap();
        assert_eq!(parsed, v);
        assert_eq!(Uint160::from_hex("0").unwrap(), Uint160::ZERO);
        assert_eq!(Uint160::from_hex("ff").unwrap(), Uint160::from_u64(255));
        assert!(Uint160::from_hex("").is_none());
        assert!(Uint160::from_hex("xyz").is_none());
        assert!(Uint160::from_hex(&"f".repeat(41)).is_none());
        assert_eq!(Uint160::from_hex(&"f".repeat(40)).unwrap(), Uint160::MAX);
    }

    #[test]
    fn display_format() {
        assert_eq!(Uint160::from_u64(255).to_string(), "0xff");
        assert_eq!(Uint160::ZERO.to_string(), "0x0");
    }
}
