//! The element library.
//!
//! These are the building blocks the OverLog planner assembles into per-node
//! dataflow graphs (paper §3.4): relational operators (equijoin, anti-join,
//! selection, projection, aggregation), bridges to stored tables (insert,
//! delete, materialized aggregates), event sources (`periodic`), network
//! egress, and general-purpose glue (demultiplexers, queues, taps).

mod glue;
mod mat_view;
mod net;
mod relational;
mod source;
mod strand;
mod table_ops;

pub use glue::{Collector, CollectorHandle, Demux, Queue};
pub use mat_view::{MatView, ViewInput};
pub use net::NetOut;
pub use relational::{AntiJoin, Join, ProbeKey, Project, Select};
pub use source::Periodic;
pub use strand::{FusedStrand, Pad, StrandOp, MAX_STRAND_PROBES};
pub use table_ops::{AggProbe, Delete, Insert, TableAgg};
