//! Run the Narada mesh-membership overlay (Appendix A) on a line of seed
//! neighbours and watch epidemic membership propagation fill every node's
//! member table.
//!
//! Run with: `cargo run --release --example narada_mesh`

use p2_suite::prelude::*;

fn main() {
    let n = 8;
    let addrs: Vec<String> = (0..n).map(|i| format!("mesh{i}:9000")).collect();

    // Seed topology: a line — node i initially knows only node i-1.
    let mut sim: Simulator<P2Host> = Simulator::new(NetworkConfig::emulab_default(11));
    for i in 0..n {
        let neighbors: Vec<&str> = if i == 0 {
            vec![]
        } else {
            vec![addrs[i - 1].as_str()]
        };
        let host =
            narada::build_node(&addrs[i], &neighbors, 50 + i as u64, true).expect("narada plans");
        sim.add_node(addrs[i].clone(), host);
    }
    for a in &addrs {
        sim.start_node(a);
    }

    println!("running the mesh for 2 virtual minutes of refresh gossip...");
    for checkpoint in [15u64, 30, 60, 120] {
        sim.run_until(SimTime::from_secs(checkpoint));
        let sizes: Vec<usize> = addrs
            .iter()
            .map(|a| {
                sim.node(a)
                    .unwrap()
                    .node()
                    .table("member")
                    .unwrap()
                    .lock()
                    .len()
            })
            .collect();
        println!("  t={checkpoint:>3}s  member-table sizes: {sizes:?}");
    }

    println!("\nfinal membership at {}:", addrs[n - 1]);
    let members = sim
        .node(&addrs[n - 1])
        .unwrap()
        .node()
        .table("member")
        .unwrap()
        .lock()
        .scan();
    for m in members {
        println!("  {m}");
    }
    let neighbors = sim
        .node(&addrs[0])
        .unwrap()
        .node()
        .table("neighbor")
        .unwrap()
        .lock()
        .len();
    println!(
        "\nnode {} now has {} mesh neighbours (started with 0)",
        addrs[0], neighbors
    );
}
