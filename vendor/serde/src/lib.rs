//! Vendored stand-in for `serde`.
//!
//! The real serde is unavailable offline, so this workspace ships a small
//! serialization facade: [`Serialize`] renders a value into the [`Json`]
//! tree, and the companion `serde_json` stub pretty-prints that tree. The
//! `#[derive(Serialize)]` macro (from the vendored `serde_derive`) works for
//! named-field structs, which is every shape the workspace serializes.

use std::collections::{BTreeMap, HashMap};

// Lets the derive macro's generated `::serde::` paths resolve inside this
// crate's own tests as well.
extern crate self as serde;

pub use serde_derive::Serialize;

/// An owned JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A double-precision number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

/// Types that can render themselves into a [`Json`] tree.
pub trait Serialize {
    /// Renders this value as JSON.
    fn to_json(&self) -> Json;
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json { Json::UInt(*self as u64) }
        }
    )*};
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json { Json::Int(*self as i64) }
        }
    )*};
}

impl_ser_uint!(u8, u16, u32, u64, usize);
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> Json {
        Json::Float(f64::from(*self))
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl Serialize for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_json(&self) -> Json {
        // Sort for stable output: HashMap iteration order is unspecified.
        let sorted: BTreeMap<&String, &V> = self.iter().collect();
        Json::Object(
            sorted
                .into_iter()
                .map(|(k, v)| (k.clone(), v.to_json()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Object(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl Serialize for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_and_container_impls() {
        assert_eq!(3u32.to_json(), Json::UInt(3));
        assert_eq!((-4i64).to_json(), Json::Int(-4));
        assert_eq!(
            vec![(1usize, 0.5f64)].to_json(),
            Json::Array(vec![Json::Array(vec![Json::UInt(1), Json::Float(0.5)])])
        );
        assert_eq!(Option::<u32>::None.to_json(), Json::Null);
    }

    #[test]
    fn derive_handles_named_fields() {
        #[derive(Serialize)]
        struct S {
            alpha: u32,
            beta: Vec<(usize, f64)>,
        }
        let s = S {
            alpha: 1,
            beta: vec![(2, 0.5)],
        };
        match s.to_json() {
            Json::Object(fields) => {
                assert_eq!(fields[0].0, "alpha");
                assert_eq!(fields[1].0, "beta");
            }
            other => panic!("expected object, got {other:?}"),
        }
    }
}
