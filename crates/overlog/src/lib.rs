//! OverLog — the declarative overlay specification language of P2.
//!
//! OverLog is an adaptation of Datalog for a distributed setting: programs
//! consist of `materialize` table declarations, facts, and rules of the form
//!
//! ```text
//! R1 head@Loc(Args...) :- body1@Loc(Args...), Var := Expr, Cond, ... .
//! ```
//!
//! extended with location specifiers (`@Loc`), per-rule aggregates in the
//! head (`min<D>`, `count<*>`, ...), soft-state table declarations, `delete`
//! rules, periodic event streams, and ring-interval tests (`K in (N,S]`).
//!
//! This crate contains the front half of P2: the lexer ([`lexer`]), parser
//! ([`parser`]), abstract syntax tree ([`ast`]), a semantic validator
//! ([`validate`]) that enforces the restrictions of the 2005 planner
//! (collocated rule bodies, stream/table equijoins, safe head variables),
//! a pretty-printer ([`pretty`]) used for round-trip testing and
//! debugging, and a whole-program static analyzer ([`analyze`]) that
//! stratifies the predicate dependency graph, infers schemas, tracks
//! soft-state lifetime flow, and classifies every rule's delta-safety
//! ([`RuleClass`]) for the planner. Compilation of validated programs into
//! dataflow graphs lives in the `p2-core` crate.

pub mod analyze;
pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod validate;

pub use analyze::{analyze, Analysis, Diagnostic, RuleClass, Severity};
pub use ast::{
    AggSpec, BodyTerm, Expr, Fact, Head, HeadArg, Lifetime, Materialize, Predicate, Program, Rule,
    SizeBound, Span,
};
pub use error::ParseError;
pub use parser::parse_program;
pub use validate::{validate, ValidationError};

/// Parses and validates an OverLog program in one step.
///
/// This is the entry point most callers want: it accepts the textual
/// specification (e.g. the Chord program from Appendix B of the paper) and
/// returns an AST that the planner can compile, or the first error
/// encountered.
pub fn compile_checked(source: &str) -> Result<Program, error::OverlogError> {
    let program = parse_program(source).map_err(error::OverlogError::Parse)?;
    validate(&program).map_err(error::OverlogError::Validation)?;
    Ok(program)
}
