//! Property test pinning the incremental `TableAgg` to the
//! recompute-per-poke semantics it replaced: under arbitrary interleavings
//! of insert / delete / expire / evict (the full delta vocabulary), for
//! every `AggFunc`, the element's emission stream must be identical to a
//! reference model that recomputes `Table::aggregate` from scratch at
//! every poke and diffs against its memo.

use p2_dataflow::elements::{Collector, Delete, Demux, Insert, TableAgg};
use p2_dataflow::{Engine, Graph, Route};
use p2_table::{AggFunc, TableRef, TableSpec};
use p2_value::{SimTime, Tuple, Value};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Action {
    /// Insert `t(group, key, payload)` (pokes the aggregate).
    Insert {
        group: i64,
        key: i64,
        payload: i64,
        at_secs: u64,
    },
    /// Delete by key (pokes the aggregate when a row is removed).
    Delete { key: i64 },
    /// Expire soft state directly on the table (observable to the
    /// aggregate only through the delta stream).
    Expire { at_secs: u64 },
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0i64..3, 0i64..12, -50i64..50, 0u64..300).prop_map(|(group, key, payload, at_secs)| {
            Action::Insert {
                group,
                key,
                payload,
                at_secs,
            }
        }),
        (0i64..3, 0i64..12, -50i64..50, 0u64..300).prop_map(|(group, key, payload, at_secs)| {
            Action::Insert {
                group,
                key,
                payload,
                at_secs,
            }
        }),
        (0i64..12).prop_map(|key| Action::Delete { key }),
        (0u64..400).prop_map(|at_secs| Action::Expire { at_secs }),
    ]
}

fn arb_func() -> impl Strategy<Value = AggFunc> {
    prop_oneof![
        Just(AggFunc::Count),
        Just(AggFunc::Sum),
        Just(AggFunc::Avg),
        Just(AggFunc::Min),
        Just(AggFunc::Max),
    ]
}

/// The recompute-per-poke reference model: a from-scratch
/// `Table::aggregate` diffed against the last-emitted memo, vanished and
/// changed groups emitted in one sorted pass (the element's documented
/// emission contract).
struct RecomputeModel {
    func: AggFunc,
    agg_col: Option<usize>,
    group_cols: Vec<usize>,
    last: HashMap<Vec<Value>, Value>,
}

impl RecomputeModel {
    fn poke(&mut self, table: &TableRef) -> Vec<Vec<Value>> {
        let live: HashMap<Vec<Value>, Value> = table
            .lock()
            .aggregate(self.func, self.agg_col, &self.group_cols)
            .expect("test values are always aggregable")
            .into_iter()
            .collect();
        let mut keys: Vec<Vec<Value>> = live.keys().chain(self.last.keys()).cloned().collect();
        keys.sort();
        keys.dedup();
        let empty_value = self.func.apply(&[]).ok().flatten();
        let mut out = Vec::new();
        for key in keys {
            match live.get(&key) {
                Some(agg) => {
                    if self.last.get(&key) != Some(agg) {
                        self.last.insert(key.clone(), agg.clone());
                        let mut values = key;
                        values.push(agg.clone());
                        out.push(values);
                    }
                }
                None => {
                    if self.last.remove(&key).is_some() {
                        if let Some(v) = &empty_value {
                            let mut values = key;
                            values.push(v.clone());
                            out.push(values);
                        }
                    }
                }
            }
        }
        out
    }
}

fn row(group: i64, key: i64, payload: i64) -> Tuple {
    Tuple::new(
        "t",
        vec![Value::Int(group), Value::Int(key), Value::Int(payload)],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn incremental_table_agg_matches_from_scratch_recompute(
        func in arb_func(),
        actions in proptest::collection::vec(arb_action(), 1..80),
        max_size in 2usize..8,
    ) {
        // The planner's wiring in miniature: inserts and deletes bridge
        // into the table and poke the aggregate; an extra poke stream lets
        // the test surface expiry-only changes the way any later poke
        // would.
        let agg_col = match func {
            AggFunc::Count => None,
            _ => Some(2),
        };
        let spec = TableSpec::new("t", vec![1])
            .with_lifetime_secs(50)
            .with_max_size(max_size);
        let table: TableRef =
            std::sync::Arc::new(parking_lot::Mutex::new(p2_table::Table::new(spec)));

        let mut g = Graph::new();
        let demux = g.add(
            "demux",
            Box::new(Demux::new(vec!["t".into(), "zap".into(), "poke".into()])),
        );
        let ins = g.add("insert", Box::new(Insert::new(table.clone())));
        let del = g.add("delete", Box::new(Delete::new(table.clone())));
        let agg = g.add(
            "agg",
            Box::new(TableAgg::new(table.clone(), func, agg_col, vec![0], "out")),
        );
        let (c, buf) = Collector::new();
        let tap = g.add("tap", Box::new(c));
        g.connect(demux, 0, ins, 0);
        g.connect(demux, 1, del, 0);
        g.connect(ins, 0, agg, 0);
        g.connect(del, 0, agg, 0);
        g.connect(demux, 2, agg, 0);
        g.connect(agg, 0, tap, 0);
        let mut engine = Engine::new(g, "n1", 1);
        engine.set_entry(Route {
            element: demux,
            port: 0,
        });
        engine.start(SimTime::ZERO);

        let mut model = RecomputeModel {
            func,
            agg_col,
            group_cols: vec![0],
            last: HashMap::new(),
        };
        let mut now = SimTime::ZERO;
        let mut seen = 0usize;
        for action in actions {
            match action {
                Action::Insert { group, key, payload, at_secs } => {
                    now = now.max(SimTime::from_secs(at_secs));
                    engine.deliver(row(group, key, payload), now);
                }
                Action::Delete { key } => {
                    let pattern = Tuple::new(
                        "zap",
                        vec![Value::Null, Value::Int(key), Value::Null],
                    );
                    engine.deliver(pattern, now);
                }
                Action::Expire { at_secs } => {
                    now = now.max(SimTime::from_secs(at_secs));
                    table.lock().expire(now);
                }
            }
            // A trailing poke flushes any delta the action itself did not
            // poke for (expiry, no-op deletes); redundant pokes must be
            // silent in both the element and the model.
            engine.deliver(Tuple::new("poke", vec![]), now);

            let expected = model.poke(&table);
            let emitted: Vec<Vec<Value>> = {
                let guard = buf.lock();
                guard[seen..].iter().map(|(_, t)| t.values().to_vec()).collect()
            };
            seen += emitted.len();
            prop_assert_eq!(
                emitted,
                expected,
                "divergence for {:?} after {:?}",
                func,
                now
            );
            table.lock().check_consistency().unwrap();
        }
    }
}
