//! Epidemic push-gossip overlay.

use std::sync::OnceLock;

use p2_core::{NodeConfig, P2Node, PlanError};
use p2_overlog::{compile_checked, Program};
use p2_value::{Tuple, TupleBuilder};

use crate::host::P2Host;

/// The OverLog source text of the gossip overlay.
pub const GOSSIP_OLG: &str = include_str!("../programs/gossip.olg");

/// Parses and validates the gossip program (cached after the first call).
pub fn program() -> &'static Program {
    static PROGRAM: OnceLock<Program> = OnceLock::new();
    PROGRAM.get_or_init(|| {
        compile_checked(GOSSIP_OLG).expect("the shipped gossip program must parse and validate")
    })
}

/// Number of rules in the gossip specification.
pub fn rule_count() -> usize {
    program().rule_count()
}

/// Link facts declaring a node's gossip peers.
pub fn link_facts(addr: &str, peers: &[&str]) -> Vec<Tuple> {
    peers
        .iter()
        .map(|p| TupleBuilder::new("link").push(addr).push(*p).build())
        .collect()
}

/// A rumor tuple to inject at a node.
pub fn rumor_tuple(addr: &str, id: i64, payload: &str) -> Tuple {
    TupleBuilder::new("rumor")
        .push(addr)
        .push(id)
        .push(payload)
        .build()
}

/// Builds a ready-to-run gossip node wrapped for the simulator.
pub fn build_node(
    addr: &str,
    peers: &[&str],
    seed: u64,
    jitter: bool,
) -> Result<P2Host, PlanError> {
    let mut config = NodeConfig::new(addr, seed);
    if !jitter {
        config = config.without_jitter();
    }
    let node = P2Node::with_facts(program(), config, link_facts(addr, peers))?;
    Ok(P2Host::new(node))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_parses_and_plans() {
        assert_eq!(rule_count(), 3);
        let host = build_node("n1", &["n2", "n3"], 1, false).unwrap();
        assert_eq!(host.node().table("link").unwrap().lock().len(), 2);
        assert!(host.node().graph_description().contains("G2:agg:link"));
    }

    #[test]
    fn rumor_shape() {
        let r = rumor_tuple("n1", 7, "hello");
        assert_eq!(r.name(), "rumor");
        assert_eq!(r.arity(), 3);
    }
}
