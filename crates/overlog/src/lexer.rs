//! Tokenizer for OverLog source text.

use crate::error::ParseError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier starting with a lower-case letter: predicate names,
    /// function names and keywords (`materialize`, `delete`, `in`, ...).
    Ident(String),
    /// Variable starting with an upper-case letter (`NI`, `NewSeq`, ...).
    Variable(String),
    /// The don't-care variable `_`.
    Wildcard,
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Double(f64),
    /// Identifier-space literal, written with an `I` suffix (`1I`).
    IdLit(u64),
    /// Double-quoted string literal.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `.` statement terminator.
    Dot,
    /// `@` location specifier marker.
    At,
    /// `:-`
    Implies,
    /// `:=`
    Assign,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
}

/// A token plus its source position (1-based line/column).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token itself.
    pub token: Token,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub column: usize,
}

/// Tokenizes an OverLog source string.
///
/// Comments (`/* ... */`, `// ...`, `# ...`) and whitespace are skipped.
pub fn tokenize(source: &str) -> Result<Vec<Spanned>, ParseError> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    column: usize,
    source: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Lexer<'a> {
        Lexer {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            column: 1,
            source,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(self.line, self.column, message)
    }

    fn run(mut self) -> Result<Vec<Spanned>, ParseError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let (line, column) = (self.line, self.column);
            let Some(c) = self.peek() else { break };
            let token = self.next_token(c)?;
            out.push(Spanned {
                token,
                line,
                column,
            });
        }
        // A rough sanity check that we consumed the whole input.
        debug_assert!(self.pos >= self.source.chars().count());
        Ok(out)
    }

    fn skip_trivia(&mut self) -> Result<(), ParseError> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('#') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') if self.peek2() == Some('*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some('*'), Some('/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => return Err(self.error("unterminated block comment")),
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self, c: char) -> Result<Token, ParseError> {
        match c {
            '(' => {
                self.bump();
                Ok(Token::LParen)
            }
            ')' => {
                self.bump();
                Ok(Token::RParen)
            }
            '[' => {
                self.bump();
                Ok(Token::LBracket)
            }
            ']' => {
                self.bump();
                Ok(Token::RBracket)
            }
            ',' => {
                self.bump();
                Ok(Token::Comma)
            }
            '@' => {
                self.bump();
                Ok(Token::At)
            }
            '.' => {
                self.bump();
                Ok(Token::Dot)
            }
            '+' => {
                self.bump();
                Ok(Token::Plus)
            }
            '-' => {
                self.bump();
                Ok(Token::Minus)
            }
            '*' => {
                self.bump();
                Ok(Token::Star)
            }
            '/' => {
                self.bump();
                Ok(Token::Slash)
            }
            '%' => {
                self.bump();
                Ok(Token::Percent)
            }
            ':' => {
                self.bump();
                match self.peek() {
                    Some('-') => {
                        self.bump();
                        Ok(Token::Implies)
                    }
                    Some('=') => {
                        self.bump();
                        Ok(Token::Assign)
                    }
                    _ => Err(self.error("expected `:-` or `:=`")),
                }
            }
            '<' => {
                self.bump();
                match self.peek() {
                    Some('<') => {
                        self.bump();
                        Ok(Token::Shl)
                    }
                    Some('=') => {
                        self.bump();
                        Ok(Token::Le)
                    }
                    _ => Ok(Token::Lt),
                }
            }
            '>' => {
                self.bump();
                match self.peek() {
                    Some('>') => {
                        self.bump();
                        Ok(Token::Shr)
                    }
                    Some('=') => {
                        self.bump();
                        Ok(Token::Ge)
                    }
                    _ => Ok(Token::Gt),
                }
            }
            '=' => {
                self.bump();
                if self.peek() == Some('=') {
                    self.bump();
                    Ok(Token::EqEq)
                } else {
                    Err(self.error("single `=` is not an OverLog operator (use `==` or `:=`)"))
                }
            }
            '!' => {
                self.bump();
                if self.peek() == Some('=') {
                    self.bump();
                    Ok(Token::Ne)
                } else {
                    Ok(Token::Bang)
                }
            }
            '&' => {
                self.bump();
                if self.peek() == Some('&') {
                    self.bump();
                    Ok(Token::AndAnd)
                } else {
                    Err(self.error("single `&` is not an OverLog operator"))
                }
            }
            '|' => {
                self.bump();
                if self.peek() == Some('|') {
                    self.bump();
                    Ok(Token::OrOr)
                } else {
                    Err(self.error("single `|` is not an OverLog operator"))
                }
            }
            '"' => self.string(),
            '_' => {
                // `_` alone is the wildcard; `_x` style identifiers are not
                // used by OverLog programs.
                self.bump();
                if self.peek().map(|c| c.is_alphanumeric() || c == '_') == Some(true) {
                    Err(self.error("identifiers may not start with `_`"))
                } else {
                    Ok(Token::Wildcard)
                }
            }
            c if c.is_ascii_digit() => self.number(),
            c if c.is_alphabetic() => Ok(self.word()),
            other => Err(self.error(format!("unexpected character `{other}`"))),
        }
    }

    fn string(&mut self) -> Result<Token, ParseError> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(Token::Str(s)),
                Some('\\') => match self.bump() {
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some(c) => s.push(c),
                    None => return Err(self.error("unterminated string")),
                },
                Some(c) => s.push(c),
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Token, ParseError> {
        let mut digits = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                digits.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // An `I` suffix marks an identifier-space literal (e.g. `1I << 7`).
        if self.peek() == Some('I') {
            self.bump();
            let v = digits
                .parse::<u64>()
                .map_err(|_| self.error("identifier literal out of range"))?;
            return Ok(Token::IdLit(v));
        }
        // A fractional part makes it a double, but only when the dot is
        // followed by a digit (otherwise the dot terminates the statement).
        if self.peek() == Some('.') && self.peek2().map(|c| c.is_ascii_digit()) == Some(true) {
            digits.push('.');
            self.bump();
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() {
                    digits.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            let v = digits
                .parse::<f64>()
                .map_err(|_| self.error("bad floating point literal"))?;
            return Ok(Token::Double(v));
        }
        let v = digits
            .parse::<i64>()
            .map_err(|_| self.error("integer literal out of range"))?;
        Ok(Token::Int(v))
    }

    fn word(&mut self) -> Token {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        let first_upper = s.chars().next().map(|c| c.is_uppercase()).unwrap_or(false);
        if first_upper {
            Token::Variable(s)
        } else {
            Token::Ident(s)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src)
            .unwrap()
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    #[test]
    fn materialize_statement() {
        let t = toks("materialize(succ, 10, 100, keys(2)).");
        assert_eq!(
            t,
            vec![
                Token::Ident("materialize".into()),
                Token::LParen,
                Token::Ident("succ".into()),
                Token::Comma,
                Token::Int(10),
                Token::Comma,
                Token::Int(100),
                Token::Comma,
                Token::Ident("keys".into()),
                Token::LParen,
                Token::Int(2),
                Token::RParen,
                Token::RParen,
                Token::Dot,
            ]
        );
    }

    #[test]
    fn rule_with_location_and_assignment() {
        let t = toks("R2 refreshSeq@X(X, NewSeq) :- refreshEvent@X(X), NewSeq := Seq + 1.");
        assert!(t.contains(&Token::Variable("NewSeq".into())));
        assert!(t.contains(&Token::Implies));
        assert!(t.contains(&Token::Assign));
        assert!(t.contains(&Token::At));
        assert_eq!(*t.last().unwrap(), Token::Dot);
    }

    #[test]
    fn operators_and_intervals() {
        let t = toks("K in (N, S], D == K - B - 1, ((I == 159) || (BI != NI)), X >= 2, Y <= 3");
        assert!(t.contains(&Token::Ident("in".into())));
        assert!(t.contains(&Token::RBracket));
        assert!(t.contains(&Token::EqEq));
        assert!(t.contains(&Token::OrOr));
        assert!(t.contains(&Token::Ne));
        assert!(t.contains(&Token::Ge));
        assert!(t.contains(&Token::Le));
    }

    #[test]
    fn numbers_doubles_and_id_literals() {
        assert_eq!(
            toks("3 0.5 1I 42I"),
            vec![
                Token::Int(3),
                Token::Double(0.5),
                Token::IdLit(1),
                Token::IdLit(42)
            ]
        );
        // A trailing dot is a statement terminator, not a decimal point.
        assert_eq!(toks("3."), vec![Token::Int(3), Token::Dot]);
    }

    #[test]
    fn shift_vs_aggregate_angle_brackets() {
        assert_eq!(
            toks("min<D> 1I << I"),
            vec![
                Token::Ident("min".into()),
                Token::Lt,
                Token::Variable("D".into()),
                Token::Gt,
                Token::IdLit(1),
                Token::Shl,
                Token::Variable("I".into()),
            ]
        );
    }

    #[test]
    fn strings_and_wildcards() {
        assert_eq!(
            toks(r#"pred@NI(NI, "-", _)"#),
            vec![
                Token::Ident("pred".into()),
                Token::At,
                Token::Variable("NI".into()),
                Token::LParen,
                Token::Variable("NI".into()),
                Token::Comma,
                Token::Str("-".into()),
                Token::Comma,
                Token::Wildcard,
                Token::RParen,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let src = r#"
            /** Base tables */
            materialize(node, infinity, 1, keys(1)). // trailing
            # hash comment
            /* block
               spanning lines */ R1 a(X) :- b(X).
        "#;
        let t = toks(src);
        assert!(t.contains(&Token::Ident("materialize".into())));
        assert!(t.contains(&Token::Ident("infinity".into())));
        assert!(t.iter().filter(|t| **t == Token::Dot).count() == 2);
    }

    #[test]
    fn positions_are_tracked() {
        let spanned = tokenize("a(X).\n  b(Y).").unwrap();
        let b = spanned
            .iter()
            .find(|s| s.token == Token::Ident("b".into()))
            .unwrap();
        assert_eq!(b.line, 2);
        assert_eq!(b.column, 3);
    }

    #[test]
    fn lexer_errors() {
        assert!(tokenize("a = b").is_err());
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("/* open").is_err());
        assert!(tokenize("a & b").is_err());
        assert!(tokenize("a : b").is_err());
        assert!(tokenize("_x").is_err());
        assert!(tokenize("a $ b").is_err());
    }
}
