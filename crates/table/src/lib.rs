//! Soft-state tables for the P2 dataflow engine.
//!
//! OverLog `materialize(name, lifetime, size, keys(...))` statements declare
//! tables; everything else is a transient stream. This crate implements the
//! table layer described in §3.2 of the paper:
//!
//! * tuples are retained for at most `lifetime` seconds (soft state) and the
//!   table holds at most `size` rows (FIFO eviction);
//! * every table has a primary key — inserting a tuple with an existing key
//!   replaces the old row (this is how `sequence`, `bestSucc`,
//!   `nextFingerFix` behave as updatable singletons);
//! * in-memory secondary indices provide fast equality lookups for the
//!   equijoin elements;
//! * filters written in PEL can be applied to table scans;
//! * incremental aggregates (min/max/count/sum) can be computed over a table
//!   with optional group-by, which backs the "aggregate elements that
//!   maintain an up-to-date aggregate on a table" of §3.4.
//!
//! # Storage engine
//!
//! [`table::Table`] is a slab-backed storage engine: rows live in
//! `Vec<Option<Row>>` slots addressed by a compact [`RowId`], the primary
//! and secondary indices map 64-bit value hashes to `RowId`s (no key-vector
//! cloning), and a `BTreeSet<(SimTime, RowId)>` staleness queue makes
//! eviction-victim selection O(log n) and `expire(now)` O(rows actually
//! expired) — the seed implementation paid an O(n) scan for both on every
//! bounded insert and engine tick. Borrowing accessors
//! ([`Table::scan_iter`], [`Table::lookup_iter`], [`Table::get_ref`],
//! [`Table::contains_match`]) give the dataflow elements allocation-free
//! probe paths; see `table.rs`'s module docs for the full complexity table,
//! and [`TableStats`] for the per-table operation counters (including the
//! `full_scans` counter that makes un-indexed lookups observable).

pub mod aggregate;
pub mod catalog;
pub mod spec;
pub mod table;

pub use aggregate::{AggFunc, AggState};
pub use catalog::{Catalog, TableRef};
pub use spec::TableSpec;
pub use table::{
    DeltaKind, DeltaSubscription, InsertOutcome, LookupIter, ProbeValue, RowId, Table, TableDelta,
    TableDeltaKind, TableStats, DELTA_LOG_CAP,
};
