//! Property tests for the soft-state table invariants:
//! primary-key uniqueness, size bounds, lifetime expiry,
//! secondary-index/scan agreement, and delta-stream completeness under
//! arbitrary operation sequences.

use p2_table::{Table, TableDeltaKind, TableSpec};
use p2_value::{SimTime, Tuple, Value};
use proptest::prelude::*;
use std::collections::{BTreeMap, HashSet};

#[derive(Debug, Clone)]
enum Action {
    Insert {
        key: i64,
        payload: i64,
        at_secs: u64,
    },
    Delete {
        key: i64,
    },
    Expire {
        at_secs: u64,
    },
}

fn arb_action() -> impl Strategy<Value = Action> {
    // The narrow payload range makes identical re-inserts (lazy refreshes)
    // and replacements both common.
    prop_oneof![
        (0i64..30, 0i64..5, 0u64..200).prop_map(|(key, payload, at_secs)| Action::Insert {
            key,
            payload,
            at_secs
        }),
        (0i64..30).prop_map(|key| Action::Delete { key }),
        (0u64..400).prop_map(|at_secs| Action::Expire { at_secs }),
    ]
}

fn row(key: i64, payload: i64) -> Tuple {
    Tuple::new(
        "t",
        vec![Value::str("n1"), Value::Int(key), Value::Int(payload)],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn table_invariants_hold(actions in proptest::collection::vec(arb_action(), 1..120),
                             max_size in 1usize..12) {
        let spec = TableSpec::new("t", vec![1])
            .with_lifetime_secs(50)
            .with_max_size(max_size);
        let mut table = Table::new(spec);
        table.add_index(vec![2]);

        // Delta-stream completeness: replaying the subscription against an
        // empty keyed map must reconstruct the live rows after every
        // action, whatever mix of insert/replace/refresh/delete/expiry/
        // eviction produced them.
        let sub = table.subscribe_deltas();
        let mut deltas = Vec::new();
        let mut shadow: BTreeMap<i64, Vec<Value>> = BTreeMap::new();

        for a in actions {
            let action_desc = format!("{a:?}");
            match a {
                Action::Insert { key, payload, at_secs } => {
                    table.insert(row(key, payload), SimTime::from_secs(at_secs)).unwrap();
                }
                Action::Delete { key } => {
                    table.delete_key(&[Value::Int(key)]);
                }
                Action::Expire { at_secs } => {
                    table.expire(SimTime::from_secs(at_secs));
                }
            }

            // Size bound always holds.
            prop_assert!(table.len() <= max_size);

            // Replay the action's deltas into the shadow map.
            deltas.clear();
            prop_assert!(!table.drain_deltas(&sub, &mut deltas), "unexpected overflow");
            for d in &deltas {
                let key = d.tuple.field(1).to_int().unwrap();
                match d.kind {
                    TableDeltaKind::Insert => {
                        shadow.insert(key, d.tuple.values().to_vec());
                    }
                    TableDeltaKind::Delete | TableDeltaKind::Expire | TableDeltaKind::Evict => {
                        let removed = shadow.remove(&key);
                        prop_assert_eq!(
                            removed.as_deref(),
                            Some(d.tuple.values()),
                            "removal delta does not match the shadowed row"
                        );
                    }
                }
            }
            let mut live: Vec<Vec<Value>> =
                table.scan().iter().map(|t| t.values().to_vec()).collect();
            live.sort();
            let mut replayed: Vec<Vec<Value>> = shadow.values().cloned().collect();
            replayed.sort();
            prop_assert_eq!(live, replayed, "delta replay diverged from table state");

            // The storage engine's internal cross-references (slab, free
            // list, primary/secondary indices, staleness queue) stay exact.
            if let Err(e) = table.check_consistency() {
                panic!("storage inconsistency after {action_desc}: {e}");
            }

            // Primary keys are unique.
            let scan = table.scan();
            let keys: HashSet<Value> = scan.iter().map(|t| t.field(1).clone()).collect();
            prop_assert_eq!(keys.len(), scan.len());

            // Every scan row is findable through the secondary index and
            // vice versa.
            for t in &scan {
                let hits = table.lookup(&[2], &[t.field(2).clone()]);
                prop_assert!(hits.iter().any(|h| h.values() == t.values()));
            }
            let mut indexed = 0usize;
            let payloads: HashSet<Value> = scan.iter().map(|t| t.field(2).clone()).collect();
            for p in &payloads {
                indexed += table.lookup(&[2], std::slice::from_ref(p)).len();
            }
            prop_assert_eq!(indexed, scan.len());
        }
    }

    #[test]
    fn expiry_is_exactly_lifetime_bounded(inserts in proptest::collection::vec((0i64..50, 0u64..100), 1..40)) {
        let spec = TableSpec::new("t", vec![1]).with_lifetime_secs(20);
        let mut table = Table::new(spec);
        // The table keeps the timestamp of the *last* insert for a key
        // (re-insertion refreshes soft state), so model exactly that.
        let mut last_insert: std::collections::HashMap<i64, u64> = Default::default();
        for (key, at) in &inserts {
            table.insert(row(*key, 0), SimTime::from_secs(*at)).unwrap();
            last_insert.insert(*key, *at);
        }
        let now = 110u64;
        table.expire(SimTime::from_secs(now));
        for t in table.scan() {
            let key = t.field(1).to_int().unwrap();
            let inserted = last_insert[&key];
            prop_assert!(now - inserted <= 20, "row {key} inserted at {inserted} survived to {now}");
        }
        for (key, at) in &last_insert {
            if now - at <= 20 {
                prop_assert!(table.get(&[Value::Int(*key)]).is_some());
            }
        }
    }
}
