//! Error types for OverLog parsing and validation.

use std::fmt;

/// A syntax error with source position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub column: usize,
    /// Description of what went wrong.
    pub message: String,
}

impl ParseError {
    /// Creates a new parse error.
    pub fn new(line: usize, column: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            line,
            column,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Either a parse error or a semantic validation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OverlogError {
    /// The program is not syntactically valid OverLog.
    Parse(ParseError),
    /// The program parsed but violates a planner restriction.
    Validation(crate::validate::ValidationError),
}

impl fmt::Display for OverlogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OverlogError::Parse(e) => write!(f, "{e}"),
            OverlogError::Validation(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for OverlogError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_position() {
        let e = ParseError::new(3, 14, "unexpected token");
        assert!(e.to_string().contains("3:14"));
        assert!(e.to_string().contains("unexpected token"));
    }
}
