//! Dataflow-engine benchmark: measures what the PR-3 overhaul targets
//! (compiled adjacency dispatch, scratch-buffer element calls, `Arc<str>`
//! sends, batched delivery, and shared-plan instantiation) and writes the
//! results to `BENCH_engine.json` so the engine gets the same perf
//! trajectory tracking as `BENCH_table.json` and `BENCH_sim.json`.
//!
//! Three sections:
//!
//! * `pipeline` — a synthetic chain of pass-through elements with fan-out,
//!   no tables or PEL. This isolates the engine's per-handoff cost: queue
//!   pop, adjacency lookup, tuple clone per route.
//! * `chord_deliver` — a single-node Chord ring answering `lookup` tuples
//!   end-to-end (demux, joins, agg probes, head projection, netout),
//!   through both the one-at-a-time and the batched delivery entry points.
//! * `plan_sharing` — wall time and resident memory to bring up many Chord
//!   nodes by re-planning per node (the pre-PR-3 path) versus instantiating
//!   from one shared `PlannedProgram`.
//!
//! Usage: `cargo run --release --bin engine_bench [-- --smoke] [--out PATH]`

use std::time::Instant;

use p2_bench::to_json;
use p2_core::{P2Node, PlanConfig, PlannedProgram};
use p2_dataflow::{Element, ElementCtx, Engine, Graph, Route};
use p2_overlays::chord;
use p2_value::{SimTime, Tuple, TupleBuilder, Uint160};
use serde::Serialize;

/// Forwards every tuple on all connected output ports.
struct Repeat {
    ports: usize,
}

impl Element for Repeat {
    fn class(&self) -> &'static str {
        "Repeat"
    }
    fn push(&mut self, _port: usize, tuple: &Tuple, ctx: &mut ElementCtx<'_>) {
        for p in 0..self.ports {
            ctx.emit(p, tuple.clone());
        }
    }
}

/// Terminal element: counts arrivals, emits nothing.
struct Count {
    seen: u64,
}

impl Element for Count {
    fn class(&self) -> &'static str {
        "Count"
    }
    fn push(&mut self, _port: usize, _tuple: &Tuple, _ctx: &mut ElementCtx<'_>) {
        self.seen += 1;
    }
}

#[derive(Debug, Clone, Serialize)]
struct PipelineResult {
    chain_len: usize,
    fanout: usize,
    deliveries: u64,
    handoffs: u64,
    wall_secs: f64,
    ns_per_handoff: f64,
    handoffs_per_sec: f64,
}

/// A chain of `chain_len` single-port repeaters ending in a `fanout`-way
/// split into counters: every delivery costs `chain_len + fanout` handoffs.
fn bench_pipeline(chain_len: usize, fanout: usize, deliveries: u64) -> PipelineResult {
    let mut g = Graph::new();
    let mut prev = None;
    let mut first = None;
    for i in 0..chain_len {
        let id = g.add(format!("repeat{i}"), Box::new(Repeat { ports: 1 }));
        if let Some(p) = prev {
            g.connect(p, 0, id, 0);
        }
        first.get_or_insert(id);
        prev = Some(id);
    }
    let tail = g.add("split", Box::new(Repeat { ports: 1 }));
    if let Some(p) = prev {
        g.connect(p, 0, tail, 0);
    }
    for i in 0..fanout {
        let c = g.add(format!("count{i}"), Box::new(Count { seen: 0 }));
        g.connect(tail, 0, c, 0);
    }
    let mut engine = Engine::new(g, "n1", 1);
    engine.set_entry(Route {
        element: first.unwrap_or(tail),
        port: 0,
    });
    engine.start(SimTime::ZERO);

    let tuple = TupleBuilder::new("x").push("payload").push(7i64).build();
    let start = Instant::now();
    for _ in 0..deliveries {
        engine.deliver(tuple.clone(), SimTime::from_secs(1));
    }
    let wall = start.elapsed().as_secs_f64();
    let handoffs = engine.stats().handoffs;
    PipelineResult {
        chain_len,
        fanout,
        deliveries,
        handoffs,
        wall_secs: wall,
        ns_per_handoff: wall * 1e9 / handoffs.max(1) as f64,
        handoffs_per_sec: handoffs as f64 / wall.max(1e-12),
    }
}

#[derive(Debug, Clone, Serialize)]
struct ChordDeliverResult {
    lookups: u64,
    batched: bool,
    wall_secs: f64,
    us_per_lookup: f64,
    lookups_per_sec: f64,
    handoffs_per_lookup: f64,
}

/// A one-node Chord ring (the node is its own successor) answering lookups
/// locally: the full demux → rule-strand → netout path with real tables.
fn bench_chord_deliver(lookups: u64, batch: usize) -> ChordDeliverResult {
    let mut host = chord::build_node("n0:11111", None, 7, false).expect("chord node plans");
    let node = host.node_mut();
    node.start(SimTime::ZERO);
    node.deliver(chord::join_tuple("n0:11111", 1), SimTime::from_secs(1));
    node.advance_to(SimTime::from_secs(30));
    assert!(
        node.table("bestSucc").map(|t| !t.lock().is_empty()) == Some(true),
        "single-node ring did not converge"
    );
    let handoffs_before = node.stats().handoffs;

    let mut made = 0u64;
    let mut key_seq = 0u64;
    let mut next_key = || {
        key_seq += 1;
        Uint160::hash_of(&key_seq.to_le_bytes())
    };
    let start = Instant::now();
    let now = SimTime::from_secs(31);
    while made < lookups {
        let n = batch.min((lookups - made) as usize);
        if n == 1 {
            node.deliver(
                chord::lookup_tuple("n0:11111", next_key(), "n0:11111", made as i64),
                now,
            );
        } else {
            let batch_tuples: Vec<Tuple> = (0..n)
                .map(|i| {
                    chord::lookup_tuple(
                        "n0:11111",
                        next_key(),
                        "n0:11111",
                        (made as usize + i) as i64,
                    )
                })
                .collect();
            node.deliver_many(batch_tuples, now);
        }
        made += n as u64;
        // Keep the observation taps from growing without bound.
        if made.is_multiple_of(8192) {
            for name in ["lookup", "lookupResults"] {
                if let Some(c) = node.collector(name) {
                    c.lock().clear();
                }
            }
        }
    }
    let wall = start.elapsed().as_secs_f64();
    let handoffs = node.stats().handoffs - handoffs_before;
    ChordDeliverResult {
        lookups,
        batched: batch > 1,
        wall_secs: wall,
        us_per_lookup: wall * 1e6 / lookups.max(1) as f64,
        lookups_per_sec: lookups as f64 / wall.max(1e-12),
        handoffs_per_lookup: handoffs as f64 / lookups.max(1) as f64,
    }
}

#[derive(Debug, Clone, Serialize)]
struct PlanSharingResult {
    nodes: usize,
    fresh_plan_wall_secs: f64,
    fresh_plan_us_per_node: f64,
    shared_plan_wall_secs: f64,
    shared_plan_us_per_node: f64,
    instantiation_speedup: f64,
    fresh_rss_bytes_per_node: f64,
    shared_rss_bytes_per_node: f64,
}

/// Resident-set size of this process in bytes (Linux; 0 elsewhere).
fn rss_bytes() -> u64 {
    let Ok(statm) = std::fs::read_to_string("/proc/self/statm") else {
        return 0;
    };
    let pages: u64 = statm
        .split_whitespace()
        .nth(1)
        .and_then(|f| f.parse().ok())
        .unwrap_or(0);
    pages * 4096
}

fn chord_facts(addr: &str) -> Vec<Tuple> {
    chord::base_facts(addr, Some("node0:11111"))
}

fn bench_plan_sharing(nodes: usize) -> PlanSharingResult {
    let program = chord::program();
    let config = PlanConfig::new()
        .watch("lookupResults")
        .watch("lookup")
        .without_jitter();

    // Shared path first, from the cleanest heap baseline: one compile, N
    // instantiations.
    let rss0 = rss_bytes();
    let start = Instant::now();
    let shared_plan = PlannedProgram::compile(program, &config).expect("chord plans");
    let shared: Vec<P2Node> = (0..nodes)
        .map(|i| {
            let addr = format!("node{i}:11111");
            P2Node::from_plan(&shared_plan, &addr, i as u64, chord_facts(&addr))
        })
        .collect();
    let shared_wall = start.elapsed().as_secs_f64();
    let shared_rss = rss_bytes().saturating_sub(rss0);

    // Pre-PR-3 path: full compile per node. Measured second, so any pages
    // recycled from the shared run's temporaries shrink this delta — the
    // comparison is conservative for the shared-plan claim.
    let rss1 = rss_bytes();
    let start = Instant::now();
    let fresh: Vec<P2Node> = (0..nodes)
        .map(|i| {
            let addr = format!("node{i}:11111");
            let plan = PlannedProgram::compile(program, &config).expect("chord plans");
            P2Node::from_plan(&plan, &addr, i as u64, chord_facts(&addr))
        })
        .collect();
    let fresh_wall = start.elapsed().as_secs_f64();
    let fresh_rss = rss_bytes().saturating_sub(rss1);

    // Touch both fleets so the optimizer cannot elide them, and count a
    // value the fleets agree on.
    let sanity: usize = fresh
        .iter()
        .chain(shared.iter())
        .filter(|n| {
            n.table("node")
                .map(|t| t.lock().len() == 1)
                .unwrap_or(false)
        })
        .count();
    assert_eq!(sanity, 2 * nodes, "fleet sanity check failed");

    PlanSharingResult {
        nodes,
        fresh_plan_wall_secs: fresh_wall,
        fresh_plan_us_per_node: fresh_wall * 1e6 / nodes.max(1) as f64,
        shared_plan_wall_secs: shared_wall,
        shared_plan_us_per_node: shared_wall * 1e6 / nodes.max(1) as f64,
        instantiation_speedup: fresh_wall / shared_wall.max(1e-12),
        fresh_rss_bytes_per_node: fresh_rss as f64 / nodes.max(1) as f64,
        shared_rss_bytes_per_node: shared_rss as f64 / nodes.max(1) as f64,
    }
}

#[derive(Debug, Clone, Serialize)]
struct BenchReport {
    bench: String,
    pipeline: Vec<PipelineResult>,
    chord_deliver: Vec<ChordDeliverResult>,
    plan_sharing: PlanSharingResult,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };

    let out_path = value("--out").unwrap_or_else(|| "BENCH_engine.json".to_string());
    let smoke = flag("--smoke");
    let (pipe_deliveries, lookups, fleet) = if smoke {
        (50_000u64, 20_000u64, 64usize)
    } else {
        (500_000, 100_000, 512)
    };

    // Fail on an unwritable output path up front.
    if let Err(e) = std::fs::write(&out_path, "{}") {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(2);
    }

    // Plan sharing first: its RSS deltas are cleanest before the other
    // sections grow (and then recycle) the heap.
    eprintln!("plan sharing: {fleet} chord nodes...");
    let plan_sharing = bench_plan_sharing(fleet);
    eprintln!(
        "  fresh {:>8.1} us/node ({:.0} KiB RSS) vs shared {:>8.1} us/node ({:.0} KiB RSS): {:.1}x",
        plan_sharing.fresh_plan_us_per_node,
        plan_sharing.fresh_rss_bytes_per_node / 1024.0,
        plan_sharing.shared_plan_us_per_node,
        plan_sharing.shared_rss_bytes_per_node / 1024.0,
        plan_sharing.instantiation_speedup
    );

    let mut pipeline = Vec::new();
    for (chain, fanout) in [(32usize, 1usize), (8, 8), (1, 32)] {
        eprintln!("pipeline: chain {chain}, fanout {fanout}...");
        let r = bench_pipeline(chain, fanout, pipe_deliveries);
        eprintln!(
            "  {} handoffs in {:.3} s -> {:>7.1} ns/handoff ({:>12.0} handoffs/s)",
            r.handoffs, r.wall_secs, r.ns_per_handoff, r.handoffs_per_sec
        );
        pipeline.push(r);
    }

    let mut chord_deliver = Vec::new();
    for batch in [1usize, 64] {
        eprintln!("chord lookups: batch {batch}...");
        let r = bench_chord_deliver(lookups, batch);
        eprintln!(
            "  {} lookups in {:.3} s -> {:>7.2} us/lookup ({:>9.0} lookups/s, {:.1} handoffs each)",
            r.lookups, r.wall_secs, r.us_per_lookup, r.lookups_per_sec, r.handoffs_per_lookup
        );
        chord_deliver.push(r);
    }

    let report = BenchReport {
        bench: "dataflow_engine".to_string(),
        pipeline,
        chord_deliver,
        plan_sharing,
    };
    let json = to_json(&report);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(2);
    }
    println!("{json}");
    eprintln!("wrote {out_path}");
}
