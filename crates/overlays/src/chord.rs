//! The full Chord DHT overlay (Appendix B of the paper).

use std::sync::OnceLock;

use p2_core::{P2Node, PlanConfig, PlanError, PlannedProgram};
use p2_overlog::{compile_checked, Program};
use p2_value::{Tuple, TupleBuilder, Uint160, Value};

use crate::host::P2Host;

/// The OverLog source text of the Chord specification.
pub const CHORD_OLG: &str = include_str!("../programs/chord.olg");

/// The optional join-time successor-seeding extension (rule JS1): a joiner
/// immediately requests its new successor's successor list through the
/// SB5/SB6 machinery instead of waiting for the first stabilization period.
pub const CHORD_JOIN_SEED_OLG: &str = include_str!("../programs/chord_join_seed.olg");

/// Parses and validates the Chord program (cached after the first call).
pub fn program() -> &'static Program {
    static PROGRAM: OnceLock<Program> = OnceLock::new();
    PROGRAM.get_or_init(|| {
        compile_checked(CHORD_OLG).expect("the shipped Chord program must parse and validate")
    })
}

/// The Chord program extended with join-time successor-list seeding
/// ([`CHORD_JOIN_SEED_OLG`]). Kept separate from [`program`] so the base
/// specification stays at the paper's 45 rules and the golden determinism
/// pins stay valid; rings built with seeding opt in explicitly.
pub fn program_with_join_seed() -> &'static Program {
    static PROGRAM: OnceLock<Program> = OnceLock::new();
    PROGRAM.get_or_init(|| {
        compile_checked(&format!("{CHORD_OLG}\n{CHORD_JOIN_SEED_OLG}"))
            .expect("the join-seeded Chord program must parse and validate")
    })
}

/// Plan-variant selection for a Chord node: periodic jitter, the JS1
/// join-seeding program extension, rule-strand fusion, and incremental view
/// materialization (both on by default; the generic element graph is kept
/// for the strand- and view-equivalence gates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChordOpts {
    /// Whether periodic sources start at a random phase.
    pub jitter: bool,
    /// Whether the JS1/JS2 join-time successor-seeding rules are included.
    pub join_seed: bool,
    /// Whether eligible rule strands are compiled into fused elements.
    pub fuse_strands: bool,
    /// Whether pure table-join rules are lowered to materialized views and
    /// eligible aggregate probes maintain delta-fed per-group state.
    pub materialize_views: bool,
    /// Whether delta-driven rule scheduling suppresses provably no-op
    /// pokes (refresh-masked strand entries plus `would_wake` guards).
    pub delta_schedule: bool,
}

impl Default for ChordOpts {
    fn default() -> ChordOpts {
        ChordOpts {
            jitter: true,
            join_seed: false,
            fuse_strands: true,
            materialize_views: true,
            delta_schedule: true,
        }
    }
}

impl ChordOpts {
    fn cache_index(self) -> usize {
        usize::from(self.jitter)
            | (usize::from(self.join_seed) << 1)
            | (usize::from(self.fuse_strands) << 2)
            | (usize::from(self.materialize_views) << 3)
            | (usize::from(self.delta_schedule) << 4)
    }
}

/// The shared, node-independent plan of the Chord program with the standard
/// harness watches (`lookupResults`, `lookup`), compiled once per process
/// and per jitter mode. A thousand-node ring instantiates its engines from
/// this instead of re-planning the 45 rules per node.
pub fn shared_plan(jitter: bool) -> &'static PlannedProgram {
    shared_plan_opts(jitter, false)
}

/// Like [`shared_plan`], additionally selecting the join-seeded program
/// variant.
pub fn shared_plan_opts(jitter: bool, join_seed: bool) -> &'static PlannedProgram {
    shared_plan_for(ChordOpts {
        jitter,
        join_seed,
        ..ChordOpts::default()
    })
}

/// The fully variant-selected shared plan: one cached compilation per
/// (jitter, join_seed, fuse_strands, materialize_views, delta_schedule)
/// combination.
pub fn shared_plan_for(opts: ChordOpts) -> &'static PlannedProgram {
    #[allow(clippy::declare_interior_mutable_const)]
    const PLAN_CELL: OnceLock<PlannedProgram> = OnceLock::new();
    static PLANS: [OnceLock<PlannedProgram>; 32] = [PLAN_CELL; 32];
    let cell = &PLANS[opts.cache_index()];
    cell.get_or_init(|| {
        let mut config = PlanConfig::new().watch("lookupResults").watch("lookup");
        if !opts.jitter {
            config = config.without_jitter();
        }
        if !opts.fuse_strands {
            config = config.without_fusion();
        }
        if !opts.materialize_views {
            config = config.without_views();
        }
        if !opts.delta_schedule {
            config = config.without_scheduling();
        }
        let program = if opts.join_seed {
            program_with_join_seed()
        } else {
            program()
        };
        PlannedProgram::compile(program, &config).expect("the shipped Chord program must plan")
    })
}

/// Number of rules in the Chord specification (the paper's compactness
/// metric counts rules plus the two base-tuple clauses as "47 rules").
pub fn rule_count() -> usize {
    program().rule_count()
}

/// Number of base-fact clauses in the specification.
pub fn fact_count() -> usize {
    program().facts.len()
}

/// The 160-bit Chord identifier of a node address.
pub fn node_id(addr: &str) -> Uint160 {
    Uint160::hash_of(addr.as_bytes())
}

/// The 160-bit Chord identifier of an application key.
pub fn key_id(key: &str) -> Uint160 {
    Uint160::hash_of(key.as_bytes())
}

/// The per-node base facts: `node(NI, N)` and `landmark(NI, LI)`.
///
/// Pass `None` as the landmark for the bootstrap node (the specification's
/// `"-"` landmark), which then forms a one-node ring on joining.
pub fn base_facts(addr: &str, landmark: Option<&str>) -> Vec<Tuple> {
    vec![
        TupleBuilder::new("node")
            .push(addr)
            .push(Value::Id(node_id(addr)))
            .build(),
        TupleBuilder::new("landmark")
            .push(addr)
            .push(landmark.unwrap_or("-"))
            .build(),
    ]
}

/// The application event that makes a node join the ring.
pub fn join_tuple(addr: &str, event_id: i64) -> Tuple {
    TupleBuilder::new("join").push(addr).push(event_id).build()
}

/// A lookup request for `key`, issued at `at`, with results reported to
/// `requester`.
pub fn lookup_tuple(at: &str, key: Uint160, requester: &str, event_id: i64) -> Tuple {
    TupleBuilder::new("lookup")
        .push(at)
        .push(Value::Id(key))
        .push(requester)
        .push(event_id)
        .build()
}

/// Builds a ready-to-run Chord node wrapped for the network simulator.
///
/// The node watches `lookupResults` so the harness can observe completed
/// lookups arriving back at the requester. Nodes are stamped out from the
/// process-wide [`shared_plan`], so building the N-th node costs
/// instantiation only, never re-planning.
pub fn build_node(
    addr: &str,
    landmark: Option<&str>,
    seed: u64,
    jitter: bool,
) -> Result<P2Host, PlanError> {
    build_node_opts(addr, landmark, seed, jitter, false)
}

/// Like [`build_node`], additionally selecting join-time successor-list
/// seeding (the JS1 rule).
pub fn build_node_opts(
    addr: &str,
    landmark: Option<&str>,
    seed: u64,
    jitter: bool,
    join_seed: bool,
) -> Result<P2Host, PlanError> {
    build_node_for(
        addr,
        landmark,
        seed,
        ChordOpts {
            jitter,
            join_seed,
            ..ChordOpts::default()
        },
    )
}

/// Builds a Chord node from the fully variant-selected shared plan.
pub fn build_node_for(
    addr: &str,
    landmark: Option<&str>,
    seed: u64,
    opts: ChordOpts,
) -> Result<P2Host, PlanError> {
    let node = P2Node::from_plan(
        shared_plan_for(opts),
        addr,
        seed,
        base_facts(addr, landmark),
    );
    Ok(P2Host::new(node))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_parses_and_validates() {
        let p = program();
        assert!(p.is_materialized("succ"));
        assert!(p.is_materialized("finger"));
        assert!(!p.is_materialized("lookup"));
        assert!(p.rule("L1").is_some());
        assert!(p.rule("CM9").is_some());
    }

    #[test]
    fn rule_count_matches_the_paper() {
        // The paper counts 47 OverLog "rules" for full Chord; two of those
        // are the base-tuple clauses F0 and SB0, which our parser classifies
        // as facts.
        assert_eq!(rule_count(), 45);
        assert_eq!(fact_count(), 2);
        assert_eq!(rule_count() + fact_count(), 47);
    }

    #[test]
    fn node_plans_successfully() {
        let host = build_node("n0:10000", None, 1, false).unwrap();
        let desc = host.node().graph_description();
        // L1 (a two-table join) compiles to a fused strand; aggregation
        // probes keep the generic chain.
        assert!(desc.contains("L1:strand"));
        assert!(desc.contains("L2:agg:finger"));
        assert!(desc.contains("S1:tableagg:succ"));
        assert!(desc.contains("F1:periodic"));
        assert!(host.node().table("node").unwrap().lock().len() == 1);
        assert!(host.node().table("landmark").unwrap().lock().len() == 1);
        assert!(host.node().table("nextFingerFix").unwrap().lock().len() == 1);
        assert!(host.node().table("pred").unwrap().lock().len() == 1);
    }

    #[test]
    fn join_seed_variant_plans_and_keeps_the_base_program_intact() {
        // The seeded program carries exactly two extra rules; the base
        // program (and the paper's compactness count) is untouched.
        let seeded = program_with_join_seed();
        assert_eq!(seeded.rule_count(), rule_count() + 2);
        assert!(seeded.rule("JS1").is_some());
        assert!(seeded.rule("JS2").is_some());
        assert!(program().rule("JS1").is_none());

        let host = build_node_opts("n0:10000", None, 1, false, true).unwrap();
        let desc = host.node().graph_description();
        // JS1 is a single-join rule, so it compiles to a fused strand.
        assert!(desc.contains("JS1:strand"), "{desc}");
        // The two variants plan to distinct shared plans, cached per mode.
        assert!(!std::ptr::eq(
            shared_plan_opts(false, false),
            shared_plan_opts(false, true)
        ));
        assert!(std::ptr::eq(
            shared_plan(false),
            shared_plan_opts(false, false)
        ));
    }

    #[test]
    fn strand_fusion_covers_the_dominant_chord_shapes() {
        let fused = shared_plan(false);
        // The join / select-project shapes dominate the 45-rule program;
        // only the aggregation-probe rules keep the generic chain, so the
        // fused plan must cover most strands (34 at last count: the
        // single-join/select-project shapes plus the two-join rules L1,
        // SU2, SB4, SB8, SB9, J2, J3, and S4).
        assert!(
            fused.fused_strand_count() >= 28,
            "only {} strands fused",
            fused.fused_strand_count()
        );
        let generic = shared_plan_for(ChordOpts {
            jitter: false,
            fuse_strands: false,
            ..ChordOpts::default()
        });
        assert_eq!(generic.fused_strand_count(), 0);
        assert!(!std::ptr::eq(fused, generic));
        // Aggregate rules (L2/L3, SU1, S3) keep the generic chain; the hot
        // ping-refresh rule CM8 fuses.
        let desc = fused.instantiate("n1", 1).engine.describe();
        assert!(desc.contains("L2:agg:finger"), "{desc}");
        assert!(desc.contains("CM8:strand"), "{desc}");
        assert!(desc.contains("SB5:strand"), "{desc}");
    }

    #[test]
    fn view_materialization_covers_the_pure_join_rules() {
        // The pure table-join rules (successor/finger bookkeeping and the
        // connectivity-monitor pair) lower to materialized views; everything
        // else keeps its strand or aggregate chain.
        let viewed = shared_plan(false);
        assert!(
            viewed.mat_view_count() >= 6,
            "only {} rules lowered to views",
            viewed.mat_view_count()
        );
        let desc = viewed.instantiate("n1", 1).engine.describe();
        for rule in ["SU0", "SU3", "S2", "F2", "CM2", "CM3"] {
            assert!(desc.contains(&format!("{rule}:view")), "{rule} not a view");
        }
        // The escape hatch keeps the rescanning translation available.
        let plain = shared_plan_for(ChordOpts {
            jitter: false,
            materialize_views: false,
            ..ChordOpts::default()
        });
        assert_eq!(plain.mat_view_count(), 0);
        assert!(!std::ptr::eq(viewed, plain));
    }

    #[test]
    fn delta_scheduling_proves_chord_refresh_cascades_load_bearing() {
        // The planner's transitive TTL-neutrality fixpoint masks *no*
        // Chord strand entry: every refresh cascade in the program
        // sustains soft state (succ refreshes keep bestSucc→finger[0]
        // alive, succ/pred feed the 10-second pingNode table, …), so the
        // static refresh masks stay empty and the scheduling win comes
        // entirely from the dynamic `would_wake` guards. The scheduler-off
        // escape hatch is a distinct cached plan.
        let scheduled = shared_plan(false);
        assert!(scheduled.delta_scheduled());
        assert_eq!(scheduled.refresh_mask_count(), 0);
        let unscheduled = shared_plan_for(ChordOpts {
            jitter: false,
            delta_schedule: false,
            ..ChordOpts::default()
        });
        assert!(!unscheduled.delta_scheduled());
        assert!(!std::ptr::eq(scheduled, unscheduled));
    }

    #[test]
    fn identifiers_are_deterministic_and_spread() {
        assert_eq!(node_id("n1"), node_id("n1"));
        assert_ne!(node_id("n1"), node_id("n2"));
        assert_eq!(key_id("object-7"), Uint160::hash_of(b"object-7"));
    }

    #[test]
    fn helper_tuples_have_the_expected_shape() {
        let j = join_tuple("n3", 42);
        assert_eq!(j.name(), "join");
        assert_eq!(j.arity(), 2);
        let l = lookup_tuple("n3", Uint160::from_u64(9), "n5", 7);
        assert_eq!(l.name(), "lookup");
        assert_eq!(l.field(2), &Value::str("n5"));
        let facts = base_facts("n3", Some("n0"));
        assert_eq!(facts[0].field(1), &Value::Id(node_id("n3")));
        assert_eq!(facts[1].field(1), &Value::str("n0"));
        let facts = base_facts("n0", None);
        assert_eq!(facts[1].field(1), &Value::str("-"));
    }
}
