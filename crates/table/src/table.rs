//! The in-memory soft-state table storage engine.
//!
//! # Design
//!
//! Rows live in a slab — `Vec<Option<Row>>` plus a free list — addressed by
//! a compact [`RowId`] (a `u32` slot index). All index structures refer to
//! rows by `RowId` instead of cloning `Vec<Value>` keys around:
//!
//! * the **primary index** maps the 64-bit hash of a row's primary-key
//!   values to the `RowId`s whose key hashes there (almost always exactly
//!   one; hash collisions are resolved by comparing the actual key fields);
//! * **secondary indices** map the hash of the indexed column values to the
//!   set of matching `RowId`s, again verified against the stored tuple on
//!   lookup, so no per-row key vectors are materialized;
//! * a **staleness queue** — `BTreeSet<(SimTime, RowId)>` ordered by
//!   refresh-adjusted insertion time — drives both eviction and expiry.
//!
//! # Complexity
//!
//! | operation | seed (pre-overhaul) | this engine |
//! |---|---|---|
//! | `insert` within size bound | O(1) | O(log n) (staleness queue update) |
//! | `insert` evicting a victim | **O(n)** scan per eviction | O(log n) |
//! | `expire(now)` | **O(n)** full-row scan per tick | O(expired · log n) |
//! | indexed `lookup` | O(hits) + key-vector alloc | O(hits), allocation-free probe |
//! | `get` by primary key | O(1) | O(1) |
//!
//! The borrowing APIs ([`Table::scan_iter`], [`Table::lookup_iter`],
//! [`Table::get_ref`]) let dataflow elements probe without materializing
//! `Vec<Tuple>` results; the owning `scan`/`lookup`/`get` APIs are preserved
//! unchanged for existing callers.
//!
//! # Delta protocol
//!
//! Every mutation path — insert, replace, explicit delete, soft-state
//! expiry, and size-bound eviction — emits a [`TableDelta`] describing
//! exactly what changed. Consumers (the dataflow layer's incremental
//! `TableAgg` is the canonical one) call [`Table::subscribe_deltas`] once
//! and then [`Table::drain_deltas`] whenever they want to catch up; each
//! subscription has its own queue, so independent consumers never steal
//! each other's deltas. The contract:
//!
//! * a **refresh** (re-insert of an identical tuple) changes no visible
//!   state and emits no delta;
//! * a **replace** emits `Delete` of the displaced tuple followed by
//!   `Insert` of the new one, so aggregate maintainers see an exact
//!   retraction;
//! * **expiry** and **eviction** emit `Expire` / `Evict` deltas — state
//!   that previously vanished silently is now observable;
//! * deltas are queued in mutation order, which is deterministic under the
//!   simulator's determinism contract (`p2_netsim::parsim`): mutation order
//!   is driven entirely by the deterministic event stream, so the delta
//!   stream is bit-identical across runs and worker counts;
//! * replaying a subscription's delta stream against an empty keyed map
//!   reconstructs the live row set exactly (property-tested).
//!
//! ## DeltaKind: the poke-stream discriminant
//!
//! The delta log above carries only *real* state changes — pure refreshes
//! never appear in it. But the dataflow layer also propagates mutations as
//! *pokes* (element emissions routed through the engine), and there a
//! keyed soft-state refresh **does** flow: the `Insert` element emits the
//! refreshed tuple downstream so time-dependent rules still see it.
//! [`DeltaKind`] is the three-way discriminant for that emission stream:
//!
//! * [`DeltaKind::Assert`] — a genuine new row (or the new half of a
//!   replacement): `InsertOutcome::New` / `InsertOutcome::Replaced`, and
//!   [`TableDeltaKind::Insert`];
//! * [`DeltaKind::Retract`] — a row left the table: explicit delete,
//!   expiry, or eviction ([`TableDeltaKind::Delete`] / `Expire` / `Evict`);
//! * [`DeltaKind::Refresh`] — a keyed soft-state refresh
//!   ([`InsertOutcome::Refreshed`]): the stored tuple is bit-identical,
//!   only its staleness timestamp moved. Refreshes exist **only** on the
//!   poke stream — they are never logged as [`TableDelta`]s.
//!
//! The planner compiles per-element *refresh suppression masks* from this
//! discriminant: rules the whole-program analyzer proves refresh-transparent
//! (`RuleClass::refresh_transparent`) need not be poked on `Refresh`-kind
//! emissions at all, because their output provably cannot change. See the
//! scheduling section of `p2-dataflow`'s crate docs for the engine half of
//! the contract.
//!
//! A subscription queue that is never drained is bounded: past
//! [`DELTA_LOG_CAP`] entries it is discarded and flagged, and the next
//! [`Table::drain_deltas`] reports the overflow so the consumer can fall
//! back to a from-scratch rebuild. Overflows increment
//! [`TableStats::overflows`]; consumers that rebuild report it back via
//! [`Table::note_rebuild`], so a rebuild storm (queues sized below the
//! mutation rate) is visible in the stats instead of silently degrading
//! every consumer to recompute.
//!
//! ## Multi-subscriber drain contract
//!
//! Any number of consumers may subscribe to one table (`TableAgg`,
//! `AggProbe`, and `MatView` routinely share the tables of one node). The
//! contract each can rely on:
//!
//! * every subscription owns a **private queue**: each mutation appends to
//!   all of them, and draining one queue never consumes or reorders another
//!   subscriber's deltas;
//! * each subscriber therefore sees the **full stream** — including
//!   `Expire` and `Evict` — in the same mutation order as every other
//!   subscriber, regardless of when or how often it drains;
//! * overflow is **per queue**: a slow subscriber that overflows (and must
//!   rebuild) does not disturb subscribers that drain promptly;
//! * subscriptions are permanent for the table's lifetime (there is no
//!   unsubscribe), so a [`DeltaSubscription`] handle never dangles;
//! * the handle's [`DeltaSubscription::has_pending`] flag is readable
//!   **without the table lock** and is `true` exactly when draining would
//!   yield deltas (or an overflow signal) — sync paths poked on every
//!   event use it to skip the lock/drain round trip entirely when quiet,
//!   which under refresh-heavy workloads is almost always (refreshes log
//!   no delta).
//!
//! # Batched refresh
//!
//! Soft-state refresh storms (Chord's `pingResp`-driven re-inserts touch
//! every successor row once per ping period) used to pay a
//! `BTreeSet` remove + insert per refreshed row. Refreshes that move a
//! row's timestamp *forward* are now recorded in a small pending map and
//! applied lazily — the staleness queue is only updated when the row
//! actually reaches the front of an expiry sweep or eviction scan, so any
//! number of refreshes between sweeps collapse into **one** queue update
//! (and rows that stay hot never pay it at all). Backward refreshes (clock
//! replays in tests) are applied eagerly so the queue order stays exact.
//! The pending time is always strictly later than the queued time, which
//! keeps the front-of-queue normalization loop sound: once the front entry
//! has no pending refresh, it is the true minimum over effective times.

use std::cell::Cell;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use p2_pel::{EvalContext, Program};
use p2_value::{SimTime, Tuple, Value, ValueError};

use crate::aggregate::{AggFunc, AggState};
use crate::spec::TableSpec;

/// Compact slab address of a stored row.
///
/// `RowId`s are internal to one table: they are reused after deletion (via
/// the free list) and must never be held across mutations by external code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowId(u32);

impl RowId {
    /// The raw slot index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The kind of state change a [`TableDelta`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TableDeltaKind {
    /// A row was added (or the new half of a replacement).
    Insert,
    /// A row was removed by an explicit delete (or the retracted half of a
    /// replacement).
    Delete,
    /// A row was removed because its soft-state lifetime elapsed.
    Expire,
    /// A row was removed to honour the size bound.
    Evict,
}

impl TableDeltaKind {
    /// True for the kinds that remove a row (everything but `Insert`).
    pub fn is_removal(self) -> bool {
        !matches!(self, TableDeltaKind::Insert)
    }

    /// The poke-stream discriminant for this logged delta. Logged deltas
    /// are always real changes, so the answer is never
    /// [`DeltaKind::Refresh`].
    pub fn delta_kind(self) -> DeltaKind {
        match self {
            TableDeltaKind::Insert => DeltaKind::Assert,
            TableDeltaKind::Delete | TableDeltaKind::Expire | TableDeltaKind::Evict => {
                DeltaKind::Retract
            }
        }
    }
}

/// Three-way discriminant carried by every dataflow emission, telling
/// downstream consumers whether the tuple represents a real assertion, a
/// real retraction, or a keyed soft-state refresh that changed nothing but
/// a staleness timestamp (see the module-level *DeltaKind* section).
///
/// `Refresh` arises only from [`InsertOutcome::Refreshed`] on the poke
/// stream; the logged [`TableDelta`] stream never contains it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeltaKind {
    /// A genuine new derivation / inserted row.
    Assert,
    /// A row or derivation was withdrawn (delete, expiry, eviction).
    Retract,
    /// A keyed soft-state refresh: bit-identical tuple, timestamp only.
    Refresh,
}

impl DeltaKind {
    /// True for refreshes — the kind refresh-transparent rules may skip.
    pub fn is_refresh(self) -> bool {
        matches!(self, DeltaKind::Refresh)
    }
}

/// One exact state change of a table, emitted uniformly by every mutation
/// path (see the module-level *Delta protocol* section).
#[derive(Debug, Clone, PartialEq)]
pub struct TableDelta {
    /// What happened.
    pub kind: TableDeltaKind,
    /// The slab address the row occupied (or occupies). Valid only until
    /// the next mutation; carried for diagnostics and dedup, not for
    /// dereferencing.
    pub row: RowId,
    /// The affected tuple (the removed tuple for removals).
    pub tuple: Tuple,
}

/// Handle identifying one delta subscription of a table.
///
/// The handle carries a lock-free *pending* flag shared with the table:
/// [`DeltaSubscription::has_pending`] tells a consumer whether draining
/// would yield anything **without taking the table lock**, so quiet sync
/// paths (the common case under refresh-heavy workloads, where pure
/// refreshes log no delta at all) cost one atomic load instead of a
/// lock/drain round trip.
#[derive(Debug, Clone)]
pub struct DeltaSubscription {
    idx: usize,
    pending: Arc<AtomicBool>,
}

impl DeltaSubscription {
    /// True if the subscription has undrained deltas (or an undrained
    /// overflow signal). Readable without the table lock; a `false` result
    /// means [`Table::drain_deltas`] would be a no-op right now.
    pub fn has_pending(&self) -> bool {
        self.pending.load(Ordering::Acquire)
    }
}

/// Bound on an undrained subscription queue; beyond this the queue is
/// discarded and the subscriber is told to rebuild from a table scan.
pub const DELTA_LOG_CAP: usize = 8192;

/// One subscriber's pending delta queue.
#[derive(Debug, Default)]
struct SubQueue {
    log: Vec<TableDelta>,
    overflowed: bool,
    /// Mirror of `!log.is_empty() || overflowed`, shared with the
    /// subscriber's [`DeltaSubscription`] for lock-free quiet checks.
    pending: Arc<AtomicBool>,
}

/// Result of inserting a tuple into a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The primary key was not present; a new row was added.
    New,
    /// A row with the same primary key and identical fields existed; its
    /// soft-state timestamp was refreshed.
    Refreshed,
    /// A row with the same primary key but different fields was replaced;
    /// the displaced tuple is returned.
    Replaced(Tuple),
}

/// Monotonic per-table operation counters.
///
/// `full_scans` is the observability hook for un-indexed lookups: a lookup
/// that can use neither the primary key nor a declared secondary index falls
/// back to scanning every row, and planners/operators can watch this counter
/// to find missing index declarations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Lookups served by the primary-key index.
    pub primary_lookups: u64,
    /// Lookups served by a secondary index.
    pub indexed_lookups: u64,
    /// Lookups that fell back to a full-table scan (no usable index).
    pub full_scans: u64,
    /// Rows removed because their soft-state lifetime elapsed.
    pub expired: u64,
    /// Rows evicted to honour the size bound.
    pub evicted: u64,
    /// Delta-subscription queues that hit [`DELTA_LOG_CAP`] and were
    /// discarded (one count per queue per overflow episode).
    pub overflows: u64,
    /// From-scratch rebuilds reported by incremental consumers via
    /// [`Table::note_rebuild`] after an overflow or state incoherence.
    pub rebuilds: u64,
}

impl std::ops::AddAssign for TableStats {
    fn add_assign(&mut self, rhs: TableStats) {
        self.primary_lookups += rhs.primary_lookups;
        self.indexed_lookups += rhs.indexed_lookups;
        self.full_scans += rhs.full_scans;
        self.expired += rhs.expired;
        self.evicted += rhs.evicted;
        self.overflows += rhs.overflows;
        self.rebuilds += rhs.rebuilds;
    }
}

/// Interior-mutable counters (lookups take `&self`).
#[derive(Debug, Default)]
struct StatCells {
    primary_lookups: Cell<u64>,
    indexed_lookups: Cell<u64>,
    full_scans: Cell<u64>,
    expired: Cell<u64>,
    evicted: Cell<u64>,
    overflows: Cell<u64>,
    rebuilds: Cell<u64>,
}

#[derive(Debug, Clone)]
struct Row {
    tuple: Tuple,
    inserted_at: SimTime,
}

/// Bucket of rows sharing one primary-key hash (len > 1 only on a 64-bit
/// hash collision between distinct keys).
type PrimaryBucket = Vec<u32>;

/// One secondary index: hash of the indexed column values → matching rows.
///
/// The bucket is a `BTreeSet`, not a `HashSet`, so an indexed probe yields
/// matches in ascending `RowId` order. `HashSet` iteration order depends on
/// the process-random hasher state, which made the *emission order* of
/// multi-row joins (e.g. Chord's per-successor ping fan-out) differ from
/// run to run — invisible in aggregate statistics, but a violation of the
/// simulator's determinism contract (`p2_netsim::parsim`).
type SecondaryIndex = HashMap<u64, BTreeSet<u32>>;

/// A node-local, in-memory, soft-state table.
///
/// Rows are keyed by the primary key declared in the [`TableSpec`]; optional
/// secondary indices support the equality lookups performed by equijoin
/// elements. Rows expire after the spec's lifetime and the stalest row is
/// evicted when the size bound is exceeded (both via the staleness queue —
/// see the module docs for the storage layout and complexity bounds).
#[derive(Debug)]
pub struct Table {
    spec: TableSpec,
    /// Primary-key positions sorted ascending (for lookup fast-path tests).
    sorted_pk: Vec<usize>,
    slots: Vec<Option<Row>>,
    free: Vec<u32>,
    live: usize,
    primary: HashMap<u64, PrimaryBucket>,
    secondary: HashMap<Vec<usize>, SecondaryIndex>,
    /// Rows ordered by refresh-adjusted insertion time.
    staleness: BTreeSet<(SimTime, u32)>,
    /// Lazily applied forward refreshes: `id -> effective time`, always
    /// strictly later than the row's queued `inserted_at` (see the
    /// module-level *Batched refresh* section).
    pending_refresh: HashMap<u32, SimTime>,
    /// Per-subscription delta queues (usually empty or a single entry).
    subs: Vec<SubQueue>,
    stats: StatCells,
}

/// Values usable as lookup probes: owned `Value`s or borrowed `&Value`s
/// (join elements probe straight out of the stream tuple without cloning).
pub trait ProbeValue {
    /// The probed value.
    fn value(&self) -> &Value;
}

impl ProbeValue for Value {
    fn value(&self) -> &Value {
        self
    }
}

impl ProbeValue for &Value {
    fn value(&self) -> &Value {
        self
    }
}

fn hash_values<'a>(values: impl Iterator<Item = &'a Value>) -> u64 {
    let mut h = DefaultHasher::new();
    for v in values {
        v.hash(&mut h);
    }
    h.finish()
}

impl Table {
    /// Creates an empty table from its declaration.
    pub fn new(spec: TableSpec) -> Table {
        let mut sorted_pk = spec.primary_key.clone();
        sorted_pk.sort_unstable();
        sorted_pk.dedup();
        Table {
            spec,
            sorted_pk,
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            primary: HashMap::new(),
            secondary: HashMap::new(),
            staleness: BTreeSet::new(),
            pending_refresh: HashMap::new(),
            subs: Vec::new(),
            stats: StatCells::default(),
        }
    }

    /// The table's declaration.
    pub fn spec(&self) -> &TableSpec {
        &self.spec
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Snapshot of the operation counters.
    pub fn stats(&self) -> TableStats {
        TableStats {
            primary_lookups: self.stats.primary_lookups.get(),
            indexed_lookups: self.stats.indexed_lookups.get(),
            full_scans: self.stats.full_scans.get(),
            expired: self.stats.expired.get(),
            evicted: self.stats.evicted.get(),
            overflows: self.stats.overflows.get(),
            rebuilds: self.stats.rebuilds.get(),
        }
    }

    /// Records that an incremental consumer of this table's deltas fell back
    /// to a from-scratch rebuild (after a queue overflow or a state
    /// incoherence it could not repair incrementally). Purely an
    /// observability hook — see [`TableStats::rebuilds`].
    pub fn note_rebuild(&self) {
        self.stats.rebuilds.set(self.stats.rebuilds.get() + 1);
    }

    // ----- delta subscriptions ----------------------------------------

    /// Registers a new delta subscriber; every subsequent mutation appends
    /// a [`TableDelta`] to the subscription's private queue.
    pub fn subscribe_deltas(&mut self) -> DeltaSubscription {
        self.subs.push(SubQueue::default());
        DeltaSubscription {
            idx: self.subs.len() - 1,
            pending: self.subs.last().expect("just pushed").pending.clone(),
        }
    }

    /// True if anyone subscribed to this table's deltas.
    pub fn has_delta_subscribers(&self) -> bool {
        !self.subs.is_empty()
    }

    /// Moves the subscription's pending deltas into `out` (appending, in
    /// mutation order). Returns `true` if the queue overflowed since the
    /// last drain — the deltas are gone and the subscriber must rebuild
    /// from a table scan instead.
    pub fn drain_deltas(&mut self, sub: &DeltaSubscription, out: &mut Vec<TableDelta>) -> bool {
        let q = &mut self.subs[sub.idx];
        let overflowed = q.overflowed;
        q.overflowed = false;
        if overflowed {
            q.log.clear();
        } else {
            out.append(&mut q.log);
        }
        q.pending.store(false, Ordering::Release);
        overflowed
    }

    /// Appends a delta to every subscription queue (no-op with none).
    fn log_delta(&mut self, kind: TableDeltaKind, id: u32, tuple: &Tuple) {
        for q in &mut self.subs {
            if q.overflowed {
                continue;
            }
            q.pending.store(true, Ordering::Release);
            if q.log.len() >= DELTA_LOG_CAP {
                q.log.clear();
                q.overflowed = true;
                self.stats.overflows.set(self.stats.overflows.get() + 1);
                continue;
            }
            q.log.push(TableDelta {
                kind,
                row: RowId(id),
                tuple: tuple.clone(),
            });
        }
    }

    /// Approximate resident size in bytes (used by the footprint benchmark).
    pub fn resident_bytes(&self) -> usize {
        self.scan_iter()
            .map(|t| t.wire_size() + std::mem::size_of::<Row>())
            .sum()
    }

    // ----- key and index hashing --------------------------------------

    fn row(&self, id: u32) -> &Row {
        self.slots[id as usize].as_ref().expect("live RowId")
    }

    /// Hash of `tuple`'s primary-key values; errors if a key position is out
    /// of range (matching the seed's `primary_key_of` contract).
    fn primary_hash_of(&self, tuple: &Tuple) -> Result<u64, ValueError> {
        if self.spec.primary_key.is_empty() {
            return Ok(hash_values(tuple.values().iter()));
        }
        let mut h = DefaultHasher::new();
        for &p in &self.spec.primary_key {
            tuple.get(p)?.hash(&mut h);
        }
        Ok(h.finish())
    }

    /// True if `row`'s primary-key fields equal `key` (in declared key
    /// order, matching the owned-key layout the seed used).
    fn row_key_matches(&self, row: &Tuple, key: &[Value]) -> bool {
        if self.spec.primary_key.is_empty() {
            return row.values() == key;
        }
        self.spec.primary_key.len() == key.len()
            && self
                .spec
                .primary_key
                .iter()
                .zip(key)
                .all(|(&p, v)| row.get(p).map(|f| f == v).unwrap_or(false))
    }

    /// True if two tuples agree on every primary-key field.
    fn same_primary_key(&self, a: &Tuple, b: &Tuple) -> bool {
        if self.spec.primary_key.is_empty() {
            return a.values() == b.values();
        }
        self.spec
            .primary_key
            .iter()
            .all(|&p| match (a.get(p), b.get(p)) {
                (Ok(x), Ok(y)) => x == y,
                _ => false,
            })
    }

    /// Hash of the values at `cols`, or `None` if any column is out of
    /// range (such rows simply do not appear in that index).
    fn index_hash(tuple: &Tuple, cols: &[usize]) -> Option<u64> {
        let mut h = DefaultHasher::new();
        for &c in cols {
            tuple.get(c).ok()?.hash(&mut h);
        }
        Some(h.finish())
    }

    /// The live `RowId` holding `tuple`'s primary key, if any.
    fn find_by_key_of(&self, hash: u64, tuple: &Tuple) -> Option<u32> {
        self.primary
            .get(&hash)?
            .iter()
            .copied()
            .find(|&id| self.same_primary_key(&self.row(id).tuple, tuple))
    }

    // ----- slab and index maintenance ---------------------------------

    fn alloc(&mut self, row: Row) -> u32 {
        match self.free.pop() {
            Some(id) => {
                self.slots[id as usize] = Some(row);
                id
            }
            None => {
                self.slots.push(Some(row));
                (self.slots.len() - 1) as u32
            }
        }
    }

    fn secondary_insert(&mut self, id: u32, tuple: &Tuple) {
        for (cols, index) in self.secondary.iter_mut() {
            if let Some(h) = Self::index_hash(tuple, cols) {
                index.entry(h).or_default().insert(id);
            }
        }
    }

    fn secondary_remove(&mut self, id: u32, tuple: &Tuple) {
        for (cols, index) in self.secondary.iter_mut() {
            if let Some(h) = Self::index_hash(tuple, cols) {
                if let Some(set) = index.get_mut(&h) {
                    set.remove(&id);
                    if set.is_empty() {
                        index.remove(&h);
                    }
                }
            }
        }
    }

    /// Moves the row's staleness-queue entry to `to` and clears any pending
    /// lazy refresh (the one queue update a batch of refreshes collapses
    /// into).
    fn reposition(&mut self, id: u32, to: SimTime) {
        let slot = self.slots[id as usize].as_mut().expect("live RowId");
        let from = slot.inserted_at;
        if from != to {
            slot.inserted_at = to;
            self.staleness.remove(&(from, id));
            self.staleness.insert((to, id));
        }
        self.pending_refresh.remove(&id);
    }

    /// Applies the row's pending lazy refresh, if any; returns whether one
    /// was applied (callers re-examine the staleness front afterwards).
    fn apply_pending_refresh(&mut self, id: u32) -> bool {
        match self.pending_refresh.get(&id).copied() {
            Some(eff) => {
                self.reposition(id, eff);
                true
            }
            None => false,
        }
    }

    /// Unlinks and returns the row at `id`, fixing up every index and the
    /// staleness queue. O(log n + indices).
    fn remove_row(&mut self, id: u32) -> Row {
        let row = self.slots[id as usize].take().expect("live RowId");
        self.live -= 1;
        self.free.push(id);
        self.pending_refresh.remove(&id);
        self.staleness.remove(&(row.inserted_at, id));
        let hash = self
            .primary_hash_of(&row.tuple)
            .expect("stored rows have valid keys");
        if let Some(bucket) = self.primary.get_mut(&hash) {
            bucket.retain(|&x| x != id);
            if bucket.is_empty() {
                self.primary.remove(&hash);
            }
        }
        // `secondary_remove` needs `&mut self` while `row` is already
        // detached from the slab, so borrowing is clean here.
        let tuple = row.tuple.clone();
        self.secondary_remove(id, &tuple);
        row
    }

    // ----- declarations ------------------------------------------------

    /// Declares a secondary index over the given (zero-based) columns.
    ///
    /// Existing rows are indexed immediately; declaring the same index twice
    /// is a no-op.
    pub fn add_index(&mut self, mut cols: Vec<usize>) {
        cols.sort_unstable();
        cols.dedup();
        if cols.is_empty() || self.secondary.contains_key(&cols) {
            return;
        }
        let mut index: SecondaryIndex = HashMap::new();
        for (i, slot) in self.slots.iter().enumerate() {
            if let Some(row) = slot {
                if let Some(h) = Self::index_hash(&row.tuple, &cols) {
                    index.entry(h).or_default().insert(i as u32);
                }
            }
        }
        self.secondary.insert(cols, index);
    }

    /// The set of secondary index column lists (for planner introspection).
    pub fn indexes(&self) -> Vec<Vec<usize>> {
        self.secondary.keys().cloned().collect()
    }

    // ----- mutation -----------------------------------------------------

    /// Inserts a tuple, returning the outcome and any rows evicted to honour
    /// the size bound.
    ///
    /// Allocates a fresh eviction vector per call; hot callers that insert
    /// in a loop should reuse one buffer through [`Table::insert_spill`].
    pub fn insert(
        &mut self,
        tuple: Tuple,
        now: SimTime,
    ) -> Result<(InsertOutcome, Vec<Tuple>), ValueError> {
        let mut evicted = Vec::new();
        let outcome = self.insert_spill(tuple, now, &mut evicted)?;
        Ok((outcome, evicted))
    }

    /// Inserts a tuple, appending any rows evicted to honour the size bound
    /// to the caller-provided `spill` buffer (which is *not* cleared — the
    /// caller owns its lifecycle and can drain it between inserts).
    ///
    /// Within the size bound this is O(log n); eviction picks the stalest
    /// row from the front of the staleness queue in O(log n) rather than
    /// scanning the table. Eviction-heavy workloads (bounded soft-state
    /// tables under refresh storms) hit this path once per insert, so the
    /// dataflow `Insert` element reuses one spill buffer across all calls
    /// instead of allocating a `Vec` per tuple.
    pub fn insert_spill(
        &mut self,
        tuple: Tuple,
        now: SimTime,
        spill: &mut Vec<Tuple>,
    ) -> Result<InsertOutcome, ValueError> {
        let hash = self.primary_hash_of(&tuple)?;
        let existing = self.find_by_key_of(hash, &tuple);
        let (outcome, kept) = match existing {
            Some(id) => {
                let row = self.slots[id as usize].as_ref().expect("live RowId");
                let old_at = row.inserted_at;
                if row.tuple.values() == tuple.values() {
                    // Refresh: no visible state change, no delta. Forward
                    // refreshes are recorded lazily (one staleness-queue
                    // update per sweep instead of one per refresh);
                    // backward refreshes reposition eagerly so the queue
                    // order stays exact.
                    if now > old_at {
                        self.pending_refresh.insert(id, now);
                    } else {
                        self.reposition(id, now);
                    }
                    (InsertOutcome::Refreshed, id)
                } else {
                    let old = row.tuple.clone();
                    self.secondary_remove(id, &old);
                    self.secondary_insert(id, &tuple);
                    self.staleness.remove(&(old_at, id));
                    self.staleness.insert((now, id));
                    self.pending_refresh.remove(&id);
                    let slot = self.slots[id as usize].as_mut().expect("live RowId");
                    slot.tuple = tuple.clone();
                    slot.inserted_at = now;
                    // A replacement is an exact retraction plus assertion.
                    self.log_delta(TableDeltaKind::Delete, id, &old);
                    self.log_delta(TableDeltaKind::Insert, id, &tuple);
                    (InsertOutcome::Replaced(old), id)
                }
            }
            None => {
                let id = self.alloc(Row {
                    tuple: tuple.clone(),
                    inserted_at: now,
                });
                self.live += 1;
                self.primary.entry(hash).or_default().push(id);
                self.secondary_insert(id, &tuple);
                self.staleness.insert((now, id));
                self.log_delta(TableDeltaKind::Insert, id, &tuple);
                (InsertOutcome::New, id)
            }
        };

        if let Some(max) = self.spec.max_size {
            while self.live > max {
                // The stalest row (FIFO on refresh-adjusted time) is at the
                // front of the staleness queue; never evict the row we just
                // inserted. Rows with a pending lazy refresh are repositioned
                // before being trusted as victims.
                let victim = self
                    .staleness
                    .iter()
                    .map(|&(_, id)| id)
                    .find(|&id| id != kept);
                match victim {
                    Some(id) => {
                        if self.apply_pending_refresh(id) {
                            continue;
                        }
                        let row = self.remove_row(id);
                        self.stats.evicted.set(self.stats.evicted.get() + 1);
                        self.log_delta(TableDeltaKind::Evict, id, &row.tuple);
                        spill.push(row.tuple);
                    }
                    None => break,
                }
            }
        }
        Ok(outcome)
    }

    /// Removes rows whose primary key matches `tuple`'s and whose remaining
    /// fields match `tuple`'s pattern (null fields act as wildcards);
    /// returns the removed tuples.
    ///
    /// This backs OverLog `delete` rules, which name the full tuple to
    /// remove.
    ///
    /// Allocates a fresh result vector per call; hot callers (the dataflow
    /// `Delete` element) should reuse one buffer through
    /// [`Table::delete_matching_spill`].
    pub fn delete_matching(&mut self, tuple: &Tuple) -> Result<Vec<Tuple>, ValueError> {
        let mut removed = Vec::new();
        self.delete_matching_spill(tuple, &mut removed)?;
        Ok(removed)
    }

    /// Like [`Table::delete_matching`] but appends the removed tuples to the
    /// caller-provided `spill` buffer (not cleared — the caller owns its
    /// lifecycle), returning how many rows were removed. Keeps the delete
    /// hot path allocation-free, mirroring [`Table::insert_spill`].
    pub fn delete_matching_spill(
        &mut self,
        tuple: &Tuple,
        spill: &mut Vec<Tuple>,
    ) -> Result<usize, ValueError> {
        let hash = self.primary_hash_of(tuple)?;
        if let Some(id) = self.find_by_key_of(hash, tuple) {
            // Exact equality is subsumed by the loose match: a pattern with
            // no nulls matches only a field-identical row.
            if row_matches_loosely(&self.row(id).tuple, tuple) {
                let row = self.remove_row(id);
                self.log_delta(TableDeltaKind::Delete, id, &row.tuple);
                spill.push(row.tuple);
                return Ok(1);
            }
        }
        Ok(0)
    }

    /// Removes the row with the given primary key, if present.
    pub fn delete_key(&mut self, key: &[Value]) -> Option<Tuple> {
        let hash = hash_values(key.iter());
        let id = self
            .primary
            .get(&hash)?
            .iter()
            .copied()
            .find(|&id| self.row_key_matches(&self.row(id).tuple, key))?;
        let row = self.remove_row(id);
        self.log_delta(TableDeltaKind::Delete, id, &row.tuple);
        Some(row.tuple)
    }

    /// Removes and returns every row older than the table's lifetime.
    ///
    /// O(expired · log n): only rows that actually expire are visited, via
    /// the time-ordered staleness queue.
    pub fn expire(&mut self, now: SimTime) -> Vec<Tuple> {
        let mut out = Vec::new();
        self.expire_with(now, |t| out.push(t));
        out
    }

    /// Like [`Table::expire`] but only counts the expired rows, avoiding the
    /// result vector allocation (the engine's periodic sweep discards the
    /// tuples).
    pub fn expire_count(&mut self, now: SimTime) -> usize {
        let mut n = 0;
        self.expire_with(now, |_| n += 1);
        n
    }

    fn expire_with(&mut self, now: SimTime, mut sink: impl FnMut(Tuple)) {
        let Some(lifetime) = self.spec.lifetime else {
            return;
        };
        while let Some(&(at, id)) = self.staleness.first() {
            // A lazily refreshed row is repositioned (its one coalesced
            // queue update) before the front is trusted.
            if self.apply_pending_refresh(id) {
                continue;
            }
            if now.saturating_sub(at) > lifetime {
                let row = self.remove_row(id);
                self.stats.expired.set(self.stats.expired.get() + 1);
                self.log_delta(TableDeltaKind::Expire, id, &row.tuple);
                sink(row.tuple);
            } else {
                // Entries are time-ordered and pending refreshes only move
                // rows later: the first non-expired, non-pending row ends
                // the sweep.
                break;
            }
        }
    }

    // ----- queries ------------------------------------------------------

    /// Returns all live rows (in unspecified order).
    pub fn scan(&self) -> Vec<Tuple> {
        self.scan_iter().cloned().collect()
    }

    /// Borrowing iterator over all live rows (in unspecified order).
    pub fn scan_iter(&self) -> impl Iterator<Item = &Tuple> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|r| &r.tuple))
    }

    /// Like [`Table::scan_iter`] but counted as a full scan in
    /// [`TableStats`]. Dataflow elements that derive output by walking the
    /// whole table (recompute-style probes, incremental-consumer rebuilds)
    /// use this so un-indexed O(n) work stays observable; bookkeeping walks
    /// like [`Table::resident_bytes`] stay on the uncounted iterator.
    pub fn scan_iter_counted(&self) -> impl Iterator<Item = &Tuple> {
        self.stats.full_scans.set(self.stats.full_scans.get() + 1);
        self.scan_iter()
    }

    /// Counted scan yielding each live row with its [`RowId`], in ascending
    /// `RowId` order (the same order as [`Table::scan_iter`]). Incremental
    /// consumers use the ids to key row mirrors that later deltas address
    /// by `RowId`; the ids obey the usual caveat of being valid only until
    /// the next mutation.
    pub fn scan_rows_counted(&self) -> impl Iterator<Item = (RowId, &Tuple)> {
        self.stats.full_scans.set(self.stats.full_scans.get() + 1);
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|r| (RowId(i as u32), &r.tuple)))
    }

    /// Returns rows whose values at `cols` equal `values`.
    ///
    /// Uses the primary index when `cols` covers exactly the primary-key
    /// columns, a secondary index when one has been declared over exactly
    /// these columns (after sorting), and otherwise falls back to a counted
    /// full scan.
    pub fn lookup(&self, cols: &[usize], values: &[Value]) -> Vec<Tuple> {
        let mut pairs: Vec<(usize, &Value)> = cols.iter().copied().zip(values.iter()).collect();
        pairs.sort_by_key(|(c, _)| *c);
        // Fold duplicate columns: equal probe values collapse to one
        // constraint; conflicting values can match nothing.
        let mut sorted_cols: Vec<usize> = Vec::with_capacity(pairs.len());
        let mut sorted_vals: Vec<&Value> = Vec::with_capacity(pairs.len());
        for (c, v) in pairs {
            match sorted_cols.last() {
                Some(&c0) if c0 == c => {
                    if sorted_vals.last().map(|v0| *v0 != v).unwrap_or(false) {
                        return Vec::new();
                    }
                }
                _ => {
                    sorted_cols.push(c);
                    sorted_vals.push(v);
                }
            }
        }
        self.lookup_iter(&sorted_cols, &sorted_vals)
            .cloned()
            .collect()
    }

    /// Borrowing lookup: yields rows whose values at `cols` equal the
    /// corresponding probe value, without allocating a result vector.
    ///
    /// `cols` must be sorted ascending (the planner pre-sorts join keys;
    /// [`Table::lookup`] sorts on behalf of ad-hoc callers). Probe values
    /// may be owned `Value`s or `&Value` references borrowed from a stream
    /// tuple, making the whole probe path allocation-free.
    pub fn lookup_iter<'a, V: ProbeValue>(
        &'a self,
        cols: &'a [usize],
        values: &'a [V],
    ) -> LookupIter<'a, V> {
        debug_assert!(
            cols.windows(2).all(|w| w[0] < w[1]),
            "lookup_iter requires sorted, deduplicated columns"
        );
        debug_assert_eq!(cols.len(), values.len());

        // Primary-key fast path: the probe covers exactly the key columns.
        if !self.sorted_pk.is_empty() && self.sorted_pk == cols {
            self.stats
                .primary_lookups
                .set(self.stats.primary_lookups.get() + 1);
            // Hash in declared key order (may differ from sorted order).
            let mut h = DefaultHasher::new();
            for &p in &self.spec.primary_key {
                let at = cols.binary_search(&p).expect("cols == sorted_pk");
                values[at].value().hash(&mut h);
            }
            let bucket = self.primary.get(&h.finish());
            return LookupIter {
                table: self,
                cols,
                values,
                inner: match bucket {
                    Some(b) => LookupSource::Primary(b.iter()),
                    None => LookupSource::Empty,
                },
            };
        }

        if let Some(index) = self.secondary.get(cols) {
            self.stats
                .indexed_lookups
                .set(self.stats.indexed_lookups.get() + 1);
            let hash = hash_values(values.iter().map(ProbeValue::value));
            return LookupIter {
                table: self,
                cols,
                values,
                inner: match index.get(&hash) {
                    Some(set) => LookupSource::Indexed(set.iter()),
                    None => LookupSource::Empty,
                },
            };
        }

        self.stats.full_scans.set(self.stats.full_scans.get() + 1);
        LookupIter {
            table: self,
            cols,
            values,
            inner: LookupSource::Scan(0),
        }
    }

    /// True if at least one row matches the probe (anti-join test); stops at
    /// the first hit.
    pub fn contains_match<V: ProbeValue>(&self, cols: &[usize], values: &[V]) -> bool {
        self.lookup_iter(cols, values).next().is_some()
    }

    /// Returns the single row with the given primary key, if any.
    pub fn get(&self, key: &[Value]) -> Option<Tuple> {
        self.get_ref(key).cloned()
    }

    /// Borrowing variant of [`Table::get`].
    pub fn get_ref(&self, key: &[Value]) -> Option<&Tuple> {
        let hash = hash_values(key.iter());
        self.primary.get(&hash)?.iter().copied().find_map(|id| {
            let tuple = &self.row(id).tuple;
            self.row_key_matches(tuple, key).then_some(tuple)
        })
    }

    /// Returns rows accepted by a PEL filter program.
    pub fn filter_scan(
        &self,
        filter: &Program,
        ctx: &mut EvalContext,
    ) -> Result<Vec<Tuple>, ValueError> {
        let mut out = Vec::new();
        for tuple in self.scan_iter() {
            if filter.eval_bool(tuple, ctx)? {
                out.push(tuple.clone());
            }
        }
        Ok(out)
    }

    /// Computes `func` over column `agg_col` of every live row, grouped by
    /// `group_cols`. Returns one `(group_values, aggregate)` pair per group.
    ///
    /// For `count<*>` pass `agg_col = None`. Aggregation folds row by row —
    /// no per-group contribution vectors are materialized.
    pub fn aggregate(
        &self,
        func: AggFunc,
        agg_col: Option<usize>,
        group_cols: &[usize],
    ) -> Result<Vec<(Vec<Value>, Value)>, ValueError> {
        let mut groups: HashMap<Vec<Value>, AggState> = HashMap::new();
        for tuple in self.scan_iter() {
            let Some(group_key) = extract(tuple, group_cols) else {
                continue;
            };
            let contribution = match agg_col {
                Some(c) => match tuple.get(c) {
                    Ok(v) => v,
                    Err(_) => continue,
                },
                None => &Value::Int(1),
            };
            groups
                .entry(group_key)
                .or_insert_with(|| AggState::new(func))
                .accumulate(contribution)?;
        }
        let mut out = Vec::with_capacity(groups.len());
        for (key, state) in groups {
            if let Some(agg) = state.finish() {
                out.push((key, agg));
            }
        }
        Ok(out)
    }

    // ----- invariant checking -------------------------------------------

    /// Exhaustively verifies the storage invariants: slab/free-list
    /// disjointness, primary and secondary indices referencing exactly the
    /// live rows under the correct hashes, and the staleness queue mirroring
    /// every live row's timestamp. Returns a description of the first
    /// violation found.
    ///
    /// Intended for tests and debugging; cost is O(rows · indices).
    pub fn check_consistency(&self) -> Result<(), String> {
        let live_ids: Vec<u32> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| i as u32))
            .collect();
        if live_ids.len() != self.live {
            return Err(format!(
                "live count {} != occupied slots {}",
                self.live,
                live_ids.len()
            ));
        }

        let free: HashSet<u32> = self.free.iter().copied().collect();
        if free.len() != self.free.len() {
            return Err("free list contains duplicates".into());
        }
        for &id in &self.free {
            if self
                .slots
                .get(id as usize)
                .map(Option::is_some)
                .unwrap_or(true)
            {
                return Err(format!(
                    "free-list id {id} names a live or out-of-range slot"
                ));
            }
        }
        if free.len() + self.live != self.slots.len() {
            return Err("slots not partitioned between free list and live rows".into());
        }

        // Staleness queue == live rows with their timestamps.
        if self.staleness.len() != self.live {
            return Err(format!(
                "staleness queue has {} entries for {} live rows",
                self.staleness.len(),
                self.live
            ));
        }
        for &(at, id) in &self.staleness {
            match self.slots.get(id as usize).and_then(Option::as_ref) {
                Some(row) if row.inserted_at == at => {}
                Some(row) => {
                    return Err(format!(
                        "staleness entry ({at}, {id}) disagrees with row time {}",
                        row.inserted_at
                    ))
                }
                None => return Err(format!("staleness entry ({at}, {id}) dangles")),
            }
        }

        // Pending lazy refreshes name live rows and are strictly later than
        // the queued time (backward refreshes apply eagerly), which is what
        // keeps the front-normalization loops of expiry/eviction sound.
        for (&id, &eff) in &self.pending_refresh {
            match self.slots.get(id as usize).and_then(Option::as_ref) {
                Some(row) if eff > row.inserted_at => {}
                Some(row) => {
                    return Err(format!(
                        "pending refresh ({id}, {eff}) not later than queued time {}",
                        row.inserted_at
                    ))
                }
                None => return Err(format!("pending refresh names dead row {id}")),
            }
        }

        // Primary index: every live row present exactly once under its hash.
        let mut indexed = 0usize;
        for (&hash, bucket) in &self.primary {
            for &id in bucket {
                let row = match self.slots.get(id as usize).and_then(Option::as_ref) {
                    Some(r) => r,
                    None => return Err(format!("primary bucket {hash:#x} holds dangling id {id}")),
                };
                let actual = self
                    .primary_hash_of(&row.tuple)
                    .map_err(|e| format!("stored row has invalid key: {e}"))?;
                if actual != hash {
                    return Err(format!(
                        "row {id} filed under primary hash {hash:#x}, hashes to {actual:#x}"
                    ));
                }
                indexed += 1;
            }
        }
        if indexed != self.live {
            return Err(format!(
                "primary index holds {indexed} ids for {} rows",
                self.live
            ));
        }

        // Secondary indices: bucket membership ⇔ matching index hash.
        for (cols, index) in &self.secondary {
            let mut entries = 0usize;
            for (&hash, set) in index {
                if set.is_empty() {
                    return Err(format!("index {cols:?} retains empty bucket {hash:#x}"));
                }
                for &id in set {
                    let row = match self.slots.get(id as usize).and_then(Option::as_ref) {
                        Some(r) => r,
                        None => {
                            return Err(format!(
                                "index {cols:?} bucket {hash:#x} holds dangling id {id}"
                            ))
                        }
                    };
                    match Self::index_hash(&row.tuple, cols) {
                        Some(actual) if actual == hash => {}
                        other => {
                            return Err(format!(
                                "row {id} filed under {cols:?} hash {hash:#x}, hashes to {other:?}"
                            ))
                        }
                    }
                    entries += 1;
                }
            }
            let expected = live_ids
                .iter()
                .filter(|&&id| Self::index_hash(&self.row(id).tuple, cols).is_some())
                .count();
            if entries != expected {
                return Err(format!(
                    "index {cols:?} holds {entries} entries, {expected} rows are indexable"
                ));
            }
        }
        Ok(())
    }
}

enum LookupSource<'a> {
    Empty,
    Primary(std::slice::Iter<'a, u32>),
    Indexed(std::collections::btree_set::Iter<'a, u32>),
    /// Fallback scan cursor (next slot index to examine).
    Scan(usize),
}

/// Borrowing iterator returned by [`Table::lookup_iter`].
pub struct LookupIter<'a, V: ProbeValue> {
    table: &'a Table,
    cols: &'a [usize],
    values: &'a [V],
    inner: LookupSource<'a>,
}

impl<'a, V: ProbeValue> LookupIter<'a, V> {
    fn matches(&self, tuple: &Tuple) -> bool {
        self.cols
            .iter()
            .zip(self.values)
            .all(|(&c, v)| tuple.get(c).map(|f| f == v.value()).unwrap_or(false))
    }
}

impl<'a, V: ProbeValue> Iterator for LookupIter<'a, V> {
    type Item = &'a Tuple;

    fn next(&mut self) -> Option<&'a Tuple> {
        loop {
            let candidate = match &mut self.inner {
                LookupSource::Empty => return None,
                LookupSource::Primary(ids) => {
                    let id = *ids.next()?;
                    &self.table.row(id).tuple
                }
                LookupSource::Indexed(ids) => {
                    let id = *ids.next()?;
                    &self.table.row(id).tuple
                }
                LookupSource::Scan(next) => {
                    let slot = self.table.slots.get(*next)?;
                    *next += 1;
                    match slot {
                        Some(row) => &row.tuple,
                        None => continue,
                    }
                }
            };
            if self.matches(candidate) {
                return Some(candidate);
            }
        }
    }
}

/// Extracts the values at `cols`, or `None` if any column is out of range.
fn extract(tuple: &Tuple, cols: &[usize]) -> Option<Vec<Value>> {
    cols.iter()
        .map(|&c| tuple.get(c).ok().cloned())
        .collect::<Option<Vec<Value>>>()
}

/// A delete pattern matches a stored row if every non-null field is equal;
/// null fields in the pattern act as wildcards.
fn row_matches_loosely(stored: &Tuple, pattern: &Tuple) -> bool {
    if stored.arity() != pattern.arity() {
        return false;
    }
    stored
        .values()
        .iter()
        .zip(pattern.values())
        .all(|(s, p)| p.is_null() || s == p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_value::TupleBuilder;

    fn succ_spec() -> TableSpec {
        TableSpec::new("succ", vec![1])
            .with_lifetime_secs(10)
            .with_max_size(4)
    }

    fn succ(s: i64, si: &str) -> Tuple {
        TupleBuilder::new("succ")
            .push("n1")
            .push(s)
            .push(si)
            .build()
    }

    #[test]
    fn insert_new_refresh_replace() {
        let mut t = Table::new(succ_spec());
        let (o, ev) = t.insert(succ(5, "n5"), SimTime::from_secs(1)).unwrap();
        assert_eq!(o, InsertOutcome::New);
        assert!(ev.is_empty());
        assert_eq!(t.len(), 1);

        // Same primary key (field 1) and same fields -> refresh.
        let (o, _) = t.insert(succ(5, "n5"), SimTime::from_secs(2)).unwrap();
        assert_eq!(o, InsertOutcome::Refreshed);
        assert_eq!(t.len(), 1);

        // Same primary key, different payload -> replace.
        let (o, _) = t
            .insert(succ(5, "n5-alias"), SimTime::from_secs(3))
            .unwrap();
        assert!(matches!(o, InsertOutcome::Replaced(_)));
        assert_eq!(t.len(), 1);
        assert_eq!(
            t.get(&[Value::Int(5)]).unwrap().field(2),
            &Value::str("n5-alias")
        );
        t.check_consistency().unwrap();
    }

    #[test]
    fn size_bound_evicts_stalest() {
        let mut t = Table::new(succ_spec());
        for (i, s) in [10i64, 20, 30, 40].iter().enumerate() {
            t.insert(succ(*s, "x"), SimTime::from_secs(i as u64))
                .unwrap();
        }
        assert_eq!(t.len(), 4);
        // Refresh the oldest so it is no longer the eviction victim.
        t.insert(succ(10, "x"), SimTime::from_secs(50)).unwrap();
        let (_, evicted) = t.insert(succ(99, "x"), SimTime::from_secs(51)).unwrap();
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].field(1), &Value::Int(20));
        assert_eq!(t.len(), 4);
        assert_eq!(t.stats().evicted, 1);
        t.check_consistency().unwrap();
    }

    #[test]
    fn insert_spill_reuses_the_caller_buffer() {
        let mut t = Table::new(succ_spec());
        let mut spill = Vec::new();
        // Fill to the size bound (4), then keep inserting through the
        // spilling path: each insert appends exactly its victim, the buffer
        // is drained by the caller, and no per-call Vec is created.
        for (i, s) in [10i64, 20, 30, 40].iter().enumerate() {
            let o = t
                .insert_spill(succ(*s, "x"), SimTime::from_secs(i as u64), &mut spill)
                .unwrap();
            assert_eq!(o, InsertOutcome::New);
            assert!(spill.is_empty());
        }
        for (i, s) in [50i64, 60, 70].iter().enumerate() {
            t.insert_spill(succ(*s, "x"), SimTime::from_secs(10 + i as u64), &mut spill)
                .unwrap();
            assert_eq!(spill.len(), 1, "one victim per over-bound insert");
            let victim = spill.pop().unwrap();
            assert_eq!(victim.field(1), &Value::Int(10 + 10 * i as i64));
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.stats().evicted, 3);
        t.check_consistency().unwrap();
    }

    #[test]
    fn expiry_honours_lifetime() {
        let mut t = Table::new(succ_spec());
        t.insert(succ(1, "a"), SimTime::from_secs(0)).unwrap();
        t.insert(succ(2, "b"), SimTime::from_secs(8)).unwrap();
        let gone = t.expire(SimTime::from_secs(11));
        assert_eq!(gone.len(), 1);
        assert_eq!(gone[0].field(1), &Value::Int(1));
        assert_eq!(t.len(), 1);
        // Refreshing extends the lifetime.
        t.insert(succ(2, "b"), SimTime::from_secs(12)).unwrap();
        assert!(t.expire(SimTime::from_secs(20)).is_empty());
        assert_eq!(t.expire(SimTime::from_secs(23)).len(), 1);
        assert_eq!(t.stats().expired, 2);
        t.check_consistency().unwrap();
    }

    #[test]
    fn infinite_lifetime_never_expires() {
        let mut t = Table::new(TableSpec::new("node", vec![0]));
        t.insert(
            TupleBuilder::new("node").push("n1").push(5i64).build(),
            SimTime::ZERO,
        )
        .unwrap();
        assert!(t.expire(SimTime::from_secs(1_000_000)).is_empty());
    }

    #[test]
    fn secondary_index_lookup() {
        let mut t = Table::new(TableSpec::new("member", vec![1]).with_max_size(100));
        t.add_index(vec![2]);
        for i in 0..20i64 {
            let tup = TupleBuilder::new("member")
                .push("n1")
                .push(format!("m{i}"))
                .push(i % 4)
                .build();
            t.insert(tup, SimTime::ZERO).unwrap();
        }
        let hits = t.lookup(&[2], &[Value::Int(3)]);
        assert_eq!(hits.len(), 5);
        assert!(hits.iter().all(|h| h.field(2) == &Value::Int(3)));
        // Lookup on the key column uses the primary index.
        let hits = t.lookup(&[1], &[Value::str("m7")]);
        assert_eq!(hits.len(), 1);
        assert_eq!(t.stats().primary_lookups, 1);
        // Index declared after the fact still sees existing rows.
        t.add_index(vec![1]);
        assert_eq!(t.lookup(&[1], &[Value::str("m7")]).len(), 1);
        t.check_consistency().unwrap();
    }

    #[test]
    fn unindexed_lookup_counts_a_full_scan() {
        let mut t = Table::new(TableSpec::new("member", vec![1]));
        for i in 0..4i64 {
            t.insert(
                TupleBuilder::new("member")
                    .push("n1")
                    .push(i)
                    .push(i * 2)
                    .build(),
                SimTime::ZERO,
            )
            .unwrap();
        }
        assert_eq!(t.stats().full_scans, 0);
        assert_eq!(t.lookup(&[2], &[Value::Int(4)]).len(), 1);
        assert_eq!(t.stats().full_scans, 1);
        t.add_index(vec![2]);
        assert_eq!(t.lookup(&[2], &[Value::Int(4)]).len(), 1);
        assert_eq!(t.stats().full_scans, 1);
        assert_eq!(t.stats().indexed_lookups, 1);
    }

    #[test]
    fn overflow_and_rebuild_are_counted() {
        let mut t = Table::new(TableSpec::new("x", vec![0]));
        let sub = t.subscribe_deltas();
        for i in 0..(DELTA_LOG_CAP as i64 + 1) {
            t.insert(TupleBuilder::new("x").push(i).build(), SimTime::ZERO)
                .unwrap();
        }
        assert_eq!(t.stats().overflows, 1);
        let mut out = Vec::new();
        assert!(t.drain_deltas(&sub, &mut out));
        assert!(out.is_empty(), "overflowed queue is discarded");
        // The consumer's from-scratch recovery is reported back.
        t.note_rebuild();
        assert_eq!(t.stats().rebuilds, 1);
        // Further inserts queue normally again.
        t.insert(TupleBuilder::new("x").push(-1i64).build(), SimTime::ZERO)
            .unwrap();
        assert!(!t.drain_deltas(&sub, &mut out));
        assert_eq!(out.len(), 1);
        assert_eq!(t.stats().overflows, 1);
    }

    #[test]
    fn counted_scan_increments_full_scans() {
        let mut t = Table::new(TableSpec::new("x", vec![0]));
        t.insert(TupleBuilder::new("x").push(1i64).build(), SimTime::ZERO)
            .unwrap();
        assert_eq!(t.scan_iter().count(), 1);
        assert_eq!(t.stats().full_scans, 0);
        assert_eq!(t.scan_iter_counted().count(), 1);
        assert_eq!(t.stats().full_scans, 1);
    }

    #[test]
    fn index_consistency_across_replace_and_delete() {
        let mut t = Table::new(TableSpec::new("finger", vec![1]));
        t.add_index(vec![2]);
        let f = |i: i64, b: &str| {
            TupleBuilder::new("finger")
                .push("n1")
                .push(i)
                .push(b)
                .build()
        };
        t.insert(f(0, "a"), SimTime::ZERO).unwrap();
        t.insert(f(1, "a"), SimTime::ZERO).unwrap();
        t.insert(f(0, "b"), SimTime::ZERO).unwrap(); // replaces finger 0
        assert_eq!(t.lookup(&[2], &[Value::str("a")]).len(), 1);
        assert_eq!(t.lookup(&[2], &[Value::str("b")]).len(), 1);
        t.delete_key(&[Value::Int(1)]);
        assert!(t.lookup(&[2], &[Value::str("a")]).is_empty());
        t.check_consistency().unwrap();
    }

    #[test]
    fn delete_matching_full_tuple() {
        let mut t = Table::new(TableSpec::new("neighbor", vec![1]));
        let n = |y: &str| TupleBuilder::new("neighbor").push("n1").push(y).build();
        t.insert(n("n2"), SimTime::ZERO).unwrap();
        t.insert(n("n3"), SimTime::ZERO).unwrap();
        let removed = t.delete_matching(&n("n2")).unwrap();
        assert_eq!(removed.len(), 1);
        assert_eq!(t.len(), 1);
        // Deleting a non-existent row is a no-op.
        assert!(t.delete_matching(&n("n9")).unwrap().is_empty());
    }

    #[test]
    fn delete_matching_null_wildcards() {
        let mut t = Table::new(TableSpec::new("pending", vec![1]));
        let row = TupleBuilder::new("pending")
            .push("n1")
            .push(7i64)
            .push("payload")
            .build();
        t.insert(row.clone(), SimTime::ZERO).unwrap();

        // A pattern whose non-key fields are null matches any stored values
        // there (OverLog delete rules may not know every field).
        let wild = TupleBuilder::new("pending")
            .push(Value::Null)
            .push(7i64)
            .push(Value::Null)
            .build();
        let removed = t.delete_matching(&wild).unwrap();
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].values(), row.values());
        assert!(t.is_empty());

        // A pattern with a mismatched concrete field removes nothing.
        t.insert(row, SimTime::ZERO).unwrap();
        let miss = TupleBuilder::new("pending")
            .push(Value::Null)
            .push(7i64)
            .push("other")
            .build();
        assert!(t.delete_matching(&miss).unwrap().is_empty());
        assert_eq!(t.len(), 1);
        t.check_consistency().unwrap();
    }

    #[test]
    fn aggregates_over_table() {
        let mut t = Table::new(TableSpec::new("succDist", vec![1]));
        for (s, d) in [(5i64, 4i64), (9, 8), (3, 2)] {
            let tup = TupleBuilder::new("succDist")
                .push("n1")
                .push(s)
                .push(d)
                .build();
            t.insert(tup, SimTime::ZERO).unwrap();
        }
        let agg = t.aggregate(AggFunc::Min, Some(2), &[0]).unwrap();
        assert_eq!(agg.len(), 1);
        assert_eq!(agg[0].0, vec![Value::str("n1")]);
        assert_eq!(agg[0].1, Value::Int(2));

        let count = t.aggregate(AggFunc::Count, None, &[0]).unwrap();
        assert_eq!(count[0].1, Value::Int(3));

        // Empty table: min produces no groups, so nothing is emitted.
        let empty = Table::new(TableSpec::new("x", vec![0]));
        assert!(empty
            .aggregate(AggFunc::Min, Some(1), &[0])
            .unwrap()
            .is_empty());
    }

    #[test]
    fn filter_scan_with_pel() {
        use p2_pel::{BinOp, Expr};
        let mut t = Table::new(TableSpec::new("member", vec![1]));
        for i in 0..10i64 {
            let tup = TupleBuilder::new("member")
                .push("n1")
                .push(i)
                .push(i * 10)
                .build();
            t.insert(tup, SimTime::ZERO).unwrap();
        }
        let filter = Program::compile(&Expr::bin(BinOp::Ge, Expr::Field(2), Expr::int(70)));
        let mut ctx = EvalContext::new("n1", 1);
        let hits = t.filter_scan(&filter, &mut ctx).unwrap();
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn resident_bytes_grows_with_rows() {
        let mut t = Table::new(TableSpec::new("m", vec![1]));
        let before = t.resident_bytes();
        t.insert(
            TupleBuilder::new("m").push("n1").push(1i64).build(),
            SimTime::ZERO,
        )
        .unwrap();
        assert!(t.resident_bytes() > before);
    }

    #[test]
    fn borrowing_apis_agree_with_owning_ones() {
        let mut t = Table::new(TableSpec::new("member", vec![1]).with_max_size(100));
        t.add_index(vec![2]);
        for i in 0..12i64 {
            let tup = TupleBuilder::new("member")
                .push("n1")
                .push(i)
                .push(i % 3)
                .build();
            t.insert(tup, SimTime::from_secs(i as u64)).unwrap();
        }
        assert_eq!(t.scan_iter().count(), t.scan().len());

        let probe = [Value::Int(2)];
        let borrowed = t.lookup_iter(&[2], &probe).count();
        assert_eq!(borrowed, t.lookup(&[2], &[Value::Int(2)]).len());

        // Reference probes work without cloning values.
        let two = Value::Int(2);
        let refs = [&two];
        assert_eq!(t.lookup_iter(&[2], &refs).count(), borrowed);

        let key = [Value::Int(7)];
        assert_eq!(t.get_ref(&key), t.get(&key).as_ref());
        assert!(t.get_ref(&[Value::Int(99)]).is_none());
        assert!(t.contains_match(&[2], &refs));
        assert!(!t.contains_match(&[2], &[&Value::Int(9)]));
    }

    #[test]
    fn interleaved_operations_keep_indices_consistent() {
        // insert → replace → refresh → expire → evict interleavings; the
        // secondary index and staleness queue must never hold dangling
        // RowIds (check_consistency verifies every cross-reference).
        let mut t = Table::new(
            TableSpec::new("soup", vec![1])
                .with_lifetime_secs(20)
                .with_max_size(6),
        );
        t.add_index(vec![2]);
        t.add_index(vec![0, 2]);
        let mk = |k: i64, p: i64| TupleBuilder::new("soup").push("n1").push(k).push(p).build();
        for step in 0..200u64 {
            let now = SimTime::from_secs(step);
            match step % 7 {
                0 | 1 => {
                    t.insert(mk((step % 11) as i64, 0), now).unwrap();
                }
                2 => {
                    t.insert(mk((step % 11) as i64, (step % 5) as i64), now)
                        .unwrap();
                }
                3 => {
                    t.delete_key(&[Value::Int((step % 13) as i64)]);
                }
                4 => {
                    t.expire(now);
                }
                5 => {
                    // Burst of inserts to force evictions.
                    for j in 0..4 {
                        t.insert(mk(100 + j, j), now).unwrap();
                    }
                }
                _ => {
                    t.delete_matching(&mk((step % 11) as i64, 0)).unwrap();
                }
            }
            t.check_consistency()
                .unwrap_or_else(|e| panic!("step {step}: {e}"));
            assert!(t.len() <= 6);
        }
        // Force a final expiry sweep well past every lifetime.
        t.insert(mk(500, 0), SimTime::from_secs(200)).unwrap();
        let final_len = t.len();
        assert_eq!(t.expire(SimTime::from_secs(400)).len(), final_len);
        assert!(t.is_empty());
        t.check_consistency().unwrap();
        let stats = t.stats();
        assert!(stats.evicted > 0 && stats.expired > 0);
    }

    #[test]
    fn deltas_cover_every_mutation_path() {
        let mut t = Table::new(succ_spec()); // lifetime 10 s, max 4 rows
        let sub = t.subscribe_deltas();
        let mut log = Vec::new();

        // New insert.
        t.insert(succ(5, "n5"), SimTime::from_secs(1)).unwrap();
        // Refresh: no delta.
        t.insert(succ(5, "n5"), SimTime::from_secs(2)).unwrap();
        // Replace: Delete(old) + Insert(new).
        t.insert(succ(5, "n5b"), SimTime::from_secs(3)).unwrap();
        // Explicit delete.
        t.delete_key(&[Value::Int(5)]);
        assert!(!t.drain_deltas(&sub, &mut log));
        let kinds: Vec<TableDeltaKind> = log.iter().map(|d| d.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TableDeltaKind::Insert,
                TableDeltaKind::Delete,
                TableDeltaKind::Insert,
                TableDeltaKind::Delete,
            ]
        );
        assert_eq!(log[1].tuple.field(2), &Value::str("n5"));
        assert_eq!(log[2].tuple.field(2), &Value::str("n5b"));
        log.clear();

        // Eviction: fill past the bound.
        for (i, s) in [10i64, 20, 30, 40, 50].iter().enumerate() {
            t.insert(succ(*s, "x"), SimTime::from_secs(10 + i as u64))
                .unwrap();
        }
        t.drain_deltas(&sub, &mut log);
        assert_eq!(
            log.iter()
                .filter(|d| d.kind == TableDeltaKind::Evict)
                .count(),
            1
        );
        assert_eq!(log.last().unwrap().kind, TableDeltaKind::Evict);
        assert_eq!(log.last().unwrap().tuple.field(1), &Value::Int(10));
        log.clear();

        // Expiry.
        t.expire(SimTime::from_secs(40));
        t.drain_deltas(&sub, &mut log);
        assert_eq!(log.len(), 4);
        assert!(log.iter().all(|d| d.kind == TableDeltaKind::Expire));
        assert!(TableDeltaKind::Expire.is_removal());
        assert!(!TableDeltaKind::Insert.is_removal());
        t.check_consistency().unwrap();
    }

    #[test]
    fn delta_overflow_reports_once_and_recovers() {
        let mut t = Table::new(TableSpec::new("t", vec![1]));
        let sub = t.subscribe_deltas();
        for i in 0..(DELTA_LOG_CAP as i64 + 10) {
            t.insert(succ(i, "x"), SimTime::ZERO).unwrap();
        }
        let mut log = Vec::new();
        assert!(
            t.drain_deltas(&sub, &mut log),
            "queue should have overflowed"
        );
        assert!(log.is_empty(), "overflow discards the partial log");
        // After the rebuild signal, the stream resumes normally.
        t.insert(succ(-1, "x"), SimTime::ZERO).unwrap();
        assert!(!t.drain_deltas(&sub, &mut log));
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn independent_subscriptions_see_the_same_stream() {
        let mut t = Table::new(TableSpec::new("t", vec![1]));
        let a = t.subscribe_deltas();
        t.insert(succ(1, "x"), SimTime::ZERO).unwrap();
        let b = t.subscribe_deltas();
        t.insert(succ(2, "y"), SimTime::ZERO).unwrap();
        let (mut la, mut lb) = (Vec::new(), Vec::new());
        t.drain_deltas(&a, &mut la);
        t.drain_deltas(&b, &mut lb);
        assert_eq!(la.len(), 2, "first subscriber sees both inserts");
        assert_eq!(lb.len(), 1, "late subscriber sees only later mutations");
        assert_eq!(la[1], lb[0]);
    }

    #[test]
    fn lazy_refresh_coalesces_and_preserves_expiry_eviction_order() {
        let mut t = Table::new(succ_spec()); // lifetime 10 s, max 4
        for (i, s) in [1i64, 2, 3, 4].iter().enumerate() {
            t.insert(succ(*s, "x"), SimTime::from_secs(i as u64))
                .unwrap();
        }
        // Refresh row 1 repeatedly: the staleness queue must not be
        // touched until a sweep forces the single coalesced update.
        for at in [20u64, 21, 22] {
            let (o, _) = t.insert(succ(1, "x"), SimTime::from_secs(at)).unwrap();
            assert_eq!(o, InsertOutcome::Refreshed);
        }
        t.check_consistency().unwrap();
        // An expiry sweep at t=13 must expire rows 2 and 3 (inserted at 1
        // and 2, lifetime 10; row 4 at t=3 is exactly at the bound) but
        // keep the refreshed row 1 (effective time 22, queued time 0).
        let gone = t.expire(SimTime::from_secs(13));
        assert_eq!(gone.len(), 2);
        assert!(t.get(&[Value::Int(1)]).is_some());
        assert!(t.get(&[Value::Int(4)]).is_some());
        t.check_consistency().unwrap();

        // Eviction must also respect the lazy refresh: refill and confirm
        // the refreshed row is not picked as the stale victim. Inserting
        // keys 5..7 overflows once: the victim must be the unrefreshed row
        // 4 (queued at t=3), not row 1 (queued at t=0 but effective t=22).
        let mut spill = Vec::new();
        for (i, s) in [5i64, 6, 7].iter().enumerate() {
            t.insert_spill(succ(*s, "y"), SimTime::from_secs(23 + i as u64), &mut spill)
                .unwrap();
        }
        assert_eq!(spill.len(), 1);
        assert_eq!(spill[0].field(1), &Value::Int(4));
        assert!(t.get(&[Value::Int(1)]).is_some());

        t.insert(succ(1, "x"), SimTime::from_secs(40)).unwrap(); // lazy refresh again
        let (_, evicted) = t.insert(succ(8, "z"), SimTime::from_secs(41)).unwrap();
        assert_eq!(evicted.len(), 1);
        assert_eq!(
            evicted[0].field(1),
            &Value::Int(5),
            "the stalest unrefreshed row is the victim"
        );
        assert!(t.get(&[Value::Int(1)]).is_some());
        t.check_consistency().unwrap();
    }

    #[test]
    fn backward_refresh_applies_eagerly() {
        let mut t = Table::new(succ_spec());
        t.insert(succ(1, "x"), SimTime::from_secs(30)).unwrap();
        t.insert(succ(2, "y"), SimTime::from_secs(5)).unwrap();
        // Re-insert row 1 at an *earlier* time: must reposition eagerly so
        // the queue order reflects effective times exactly.
        let (o, _) = t.insert(succ(1, "x"), SimTime::from_secs(2)).unwrap();
        assert_eq!(o, InsertOutcome::Refreshed);
        t.check_consistency().unwrap();
        let gone = t.expire(SimTime::from_secs(13));
        assert_eq!(gone.len(), 1);
        assert_eq!(gone[0].field(1), &Value::Int(1));
    }

    #[test]
    fn delete_matching_spill_reuses_the_caller_buffer() {
        let mut t = Table::new(TableSpec::new("neighbor", vec![1]));
        let n = |y: &str| TupleBuilder::new("neighbor").push("n1").push(y).build();
        t.insert(n("n2"), SimTime::ZERO).unwrap();
        t.insert(n("n3"), SimTime::ZERO).unwrap();
        let mut spill = Vec::new();
        assert_eq!(t.delete_matching_spill(&n("n2"), &mut spill).unwrap(), 1);
        assert_eq!(spill.len(), 1);
        assert_eq!(t.delete_matching_spill(&n("n9"), &mut spill).unwrap(), 0);
        assert_eq!(spill.len(), 1, "misses append nothing");
        spill.clear();
        assert_eq!(t.delete_matching_spill(&n("n3"), &mut spill).unwrap(), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn expire_count_matches_expire() {
        let mut a = Table::new(TableSpec::new("t", vec![1]).with_lifetime_secs(5));
        let mut b = Table::new(TableSpec::new("t", vec![1]).with_lifetime_secs(5));
        for i in 0..10i64 {
            let tup = TupleBuilder::new("t").push("n1").push(i).build();
            a.insert(tup.clone(), SimTime::from_secs(i as u64)).unwrap();
            b.insert(tup, SimTime::from_secs(i as u64)).unwrap();
        }
        let now = SimTime::from_secs(9);
        assert_eq!(a.expire(now).len(), b.expire_count(now));
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn whole_tuple_key_tables_still_work() {
        // An empty declared key means the whole tuple is the key.
        let mut t = Table::new(TableSpec::new("link", vec![]));
        let l = |a: &str, b: &str| TupleBuilder::new("link").push(a).push(b).build();
        t.insert(l("a", "b"), SimTime::ZERO).unwrap();
        t.insert(l("a", "c"), SimTime::ZERO).unwrap();
        let (o, _) = t.insert(l("a", "b"), SimTime::from_secs(1)).unwrap();
        assert_eq!(o, InsertOutcome::Refreshed);
        assert_eq!(t.len(), 2);
        assert!(t.get(&[Value::str("a"), Value::str("b")]).is_some());
        assert_eq!(
            t.delete_key(&[Value::str("a"), Value::str("c")])
                .unwrap()
                .field(1),
            &Value::str("c")
        );
        t.check_consistency().unwrap();
    }
}
