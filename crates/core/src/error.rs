//! Planner errors.

use std::fmt;

/// An error raised while compiling an OverLog program into a dataflow graph.
///
/// These are programmer-facing: they indicate that the program uses a
/// construct outside the subset the planner supports (mirroring the
/// restrictions of the 2005 planner described in §7 of the paper) or that a
/// rule is internally inconsistent in a way validation could not catch
/// without table information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError {
    /// Rule identifier the problem was found in, if applicable.
    pub rule: Option<String>,
    /// Description of the problem.
    pub message: String,
}

impl PlanError {
    /// Creates an error tied to a rule.
    pub fn in_rule(rule: impl Into<String>, message: impl Into<String>) -> PlanError {
        PlanError {
            rule: Some(rule.into()),
            message: message.into(),
        }
    }

    /// Creates a program-level error.
    pub fn program(message: impl Into<String>) -> PlanError {
        PlanError {
            rule: None,
            message: message.into(),
        }
    }
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.rule {
            Some(r) => write!(f, "plan error in rule {r}: {}", self.message),
            None => write!(f, "plan error: {}", self.message),
        }
    }
}

impl std::error::Error for PlanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_rule() {
        let e = PlanError::in_rule("L2", "two aggregates");
        assert!(e.to_string().contains("L2"));
        let e = PlanError::program("no rules");
        assert!(e.to_string().contains("no rules"));
    }
}
