//! Quickstart: write a tiny OverLog program, compile it into a dataflow
//! node, and watch it derive tuples.
//!
//! Run with: `cargo run --example quickstart`

use p2_suite::prelude::*;

/// A three-rule "who do I know" program: every time a `hello` event arrives
/// from some peer, remember the peer in the `acquaintance` table, count how
/// many peers we know, and greet the peer back.
const PROGRAM: &str = r#"
    materialize(acquaintance, infinity, infinity, keys(2)).

    A1 acquaintance@X(X, Y, T) :- hello@X(X, Y), T := f_now().
    A2 acquaintanceCount@X(X, count<*>) :- acquaintance@X(X, Y, T).
    A3 greeting@Y(Y, X) :- hello@X(X, Y).
"#;

fn main() {
    // 1. Parse and validate the OverLog text.
    let program = compile_checked(PROGRAM).expect("program is valid OverLog");
    println!(
        "parsed {} rules and {} table declaration(s)",
        program.rule_count(),
        program.materializations.len()
    );

    // 2. Plan it into a dataflow graph for a node called alice.
    let mut node = P2Node::new(
        &program,
        NodeConfig::new("alice", 1)
            .watch("acquaintanceCount")
            .without_jitter(),
    )
    .expect("program plans into a dataflow");
    println!("\nplanned dataflow graph:\n{}", node.graph_description());

    // 3. Drive it: deliver a few hello events, as the network would.
    node.start(SimTime::ZERO);
    for (t, peer) in ["bob", "carol", "bob", "dave"].iter().enumerate() {
        let hello = TupleBuilder::new("hello").push("alice").push(*peer).build();
        let outgoing = node.deliver(hello, SimTime::from_secs(t as u64 + 1));
        for env in &outgoing {
            println!("t={}s  alice sends {} to {}", t + 1, env.tuple, env.dst);
        }
    }

    // 4. Inspect the derived state.
    let table = node.table("acquaintance").expect("declared table");
    println!(
        "\nacquaintance table now holds {} rows:",
        table.lock().len()
    );
    for row in table.lock().scan() {
        println!("  {row}");
    }
    let counts = node.collector("acquaintanceCount").expect("watched");
    let counts = counts.lock();
    let last = counts.last().expect("at least one count emitted");
    println!("\nlatest acquaintanceCount tuple: {}", last.1);
}
