//! Whole-overlay cluster bring-up, workload generation and measurement.

use p2_baseline::{BaselineChord, BaselineConfig};
use p2_netsim::{AnySimulator, NetworkConfig, Simulator};
use p2_overlays::{chord, P2Host};
use p2_value::{SimTime, Tuple, TupleBuilder, Uint160, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A lookup in flight, identified by its origin and event identifier.
#[derive(Debug, Clone)]
pub struct LookupHandle {
    /// Node at which the lookup was issued (and to which the result
    /// returns).
    pub origin: String,
    /// The looked-up key.
    pub key: Uint160,
    /// Event identifier correlating request and response.
    pub event: i64,
    /// Virtual time at which the lookup was injected.
    pub issued_at: SimTime,
}

/// The observed completion of a lookup.
#[derive(Debug, Clone)]
pub struct LookupOutcome {
    /// Address reported as the key's owner (successor of the key).
    pub owner: String,
    /// Seconds from issue to the result arriving back at the origin.
    pub latency: f64,
    /// Number of overlay hops the request traversed.
    pub hops: usize,
}

fn node_addr(i: usize) -> String {
    format!("node{i}:11111")
}

/// Fraction of up nodes whose reported successor (per `successor_of`) is
/// the correct clockwise ring successor among up nodes. Shared by the
/// declarative and baseline clusters; iterates borrowed addresses, no list
/// clone.
fn ring_correctness_of<'a>(
    up_addresses: impl Iterator<Item = &'a str>,
    successor_of: impl Fn(&str) -> Option<String>,
) -> f64 {
    let mut ids: Vec<(Uint160, &str)> = up_addresses.map(|a| (chord::node_id(a), a)).collect();
    if ids.len() < 2 {
        return 1.0;
    }
    ids.sort();
    let correct = (0..ids.len())
        .filter(|&pos| {
            let a = ids[pos].1;
            let expect = ids[(pos + 1) % ids.len()].1;
            successor_of(a).as_deref() == Some(expect)
        })
        .count();
    correct as f64 / ids.len() as f64
}

/// The correct owner of `key` among `nodes`: the node whose identifier is
/// the key's clockwise successor on the ring.
pub fn expected_owner(key: Uint160, nodes: &[String]) -> Option<String> {
    if nodes.is_empty() {
        return None;
    }
    let mut ids: Vec<(Uint160, &String)> = nodes.iter().map(|a| (chord::node_id(a), a)).collect();
    ids.sort();
    for (id, a) in &ids {
        if key <= *id {
            return Some((*a).clone());
        }
    }
    Some(ids[0].1.clone())
}

/// Configuration knobs for building a [`ChordCluster`]: the simulation
/// engine (sequential or sharded multi-core) and the Chord program variant.
#[derive(Debug, Clone)]
pub struct ChordClusterBuilder {
    n: usize,
    seed: u64,
    par_threads: Option<usize>,
    join_seed: bool,
    fuse_strands: bool,
    materialize_views: bool,
    delta_schedule: bool,
}

impl ChordClusterBuilder {
    /// Runs the cluster on the sharded [`p2_netsim::ParSimulator`] with
    /// `workers` worker threads (default: the sequential engine).
    pub fn par_threads(mut self, workers: usize) -> ChordClusterBuilder {
        self.par_threads = Some(workers);
        self
    }

    /// Enables join-time successor-list seeding (the JS1 rule): joiners
    /// request their successor's successor list the moment the join lookup
    /// answers, instead of waiting for the first stabilization period.
    pub fn join_seed(mut self, on: bool) -> ChordClusterBuilder {
        self.join_seed = on;
        self
    }

    /// Selects rule-strand fusion (default on). The generic element graph
    /// is kept available for the strand-equivalence gates, which assert
    /// that both translations produce bit-identical event streams.
    pub fn fuse_strands(mut self, on: bool) -> ChordClusterBuilder {
        self.fuse_strands = on;
        self
    }

    /// Selects incremental view materialization (default on): pure
    /// table-join rules become [`p2_dataflow::elements::MatView`] elements
    /// and eligible aggregate probes keep delta-fed per-group state. The
    /// rescanning translation is kept available for the view-equivalence
    /// gate, which asserts both produce bit-identical event streams.
    pub fn materialize_views(mut self, on: bool) -> ChordClusterBuilder {
        self.materialize_views = on;
        self
    }

    /// Selects delta-driven rule scheduling (default on): refresh-kind
    /// pokes into masked strands are dropped at routing time and elements
    /// veto provably no-op invocations via `would_wake`. The
    /// poke-everything behaviour is kept available for the
    /// scheduling-equivalence gate and reproduces the historical golden
    /// pins bit-for-bit.
    pub fn delta_schedule(mut self, on: bool) -> ChordClusterBuilder {
        self.delta_schedule = on;
        self
    }

    /// Builds and boots the ring with the paper's staggered bring-up (see
    /// [`ChordCluster::build`]).
    pub fn build(self, warmup_secs: u64) -> ChordCluster {
        let mut cluster = ChordCluster::new_unbooted(self);
        cluster.boot(warmup_secs);
        cluster
    }

    /// Builds and boots the ring with the batched doubling-wave bring-up
    /// (see [`ChordCluster::build_fast`]).
    pub fn build_fast(self, warmup_secs: u64) -> ChordCluster {
        let cluster = ChordCluster::new_unbooted(self);
        ChordCluster::boot_fast(cluster, warmup_secs)
    }
}

/// A cluster of declarative (P2) Chord nodes running on the simulated
/// Emulab-like topology.
pub struct ChordCluster {
    /// The underlying simulator; exposed for stats access and advanced use.
    /// Either the sequential engine or the sharded multi-core one,
    /// depending on [`ChordClusterBuilder::par_threads`].
    pub sim: AnySimulator<P2Host>,
    addrs: Vec<String>,
    seed: u64,
    join_seed: bool,
    fuse_strands: bool,
    materialize_views: bool,
    delta_schedule: bool,
    next_event: i64,
    rng: SmallRng,
    brought_up_at: SimTime,
    obs_enabled: bool,
    trace_tag: Option<Value>,
}

impl ChordCluster {
    /// Starts configuring a cluster of `n` nodes (sequential simulation,
    /// base Chord program unless overridden).
    pub fn builder(n: usize, seed: u64) -> ChordClusterBuilder {
        ChordClusterBuilder {
            n,
            seed,
            par_threads: None,
            join_seed: false,
            fuse_strands: true,
            materialize_views: true,
            delta_schedule: true,
        }
    }

    /// Builds and boots an `n`-node ring: node 0 is the bootstrap landmark,
    /// every other node joins through it. Joins are staggered and re-issued
    /// until every node has learned a successor, then the ring is left to
    /// stabilize for `warmup_secs` of virtual time.
    pub fn build(n: usize, warmup_secs: u64, seed: u64) -> ChordCluster {
        ChordCluster::builder(n, seed).build(warmup_secs)
    }

    /// Plans `n` Chord nodes and adds them to a fresh simulator without
    /// starting any of them (shared prelude of the bring-up paths).
    fn new_unbooted(config: ChordClusterBuilder) -> ChordCluster {
        let ChordClusterBuilder {
            n,
            seed,
            par_threads,
            join_seed,
            fuse_strands,
            materialize_views,
            delta_schedule,
        } = config;
        let mut sim = AnySimulator::build(NetworkConfig::emulab_default(seed), par_threads);
        let addrs: Vec<String> = (0..n).map(node_addr).collect();
        for (i, addr) in addrs.iter().enumerate() {
            let landmark = if i == 0 {
                None
            } else {
                Some(addrs[0].as_str())
            };
            let host = chord::build_node_for(
                addr,
                landmark,
                seed.wrapping_add(i as u64),
                chord::ChordOpts {
                    jitter: true,
                    join_seed,
                    fuse_strands,
                    materialize_views,
                    delta_schedule,
                },
            )
            .expect("chord node must plan");
            sim.add_node(addr.clone(), host);
        }
        ChordCluster {
            sim,
            addrs,
            seed,
            join_seed,
            fuse_strands,
            materialize_views,
            delta_schedule,
            next_event: 1_000_000,
            rng: SmallRng::seed_from_u64(seed ^ 0x5EED),
            brought_up_at: SimTime::ZERO,
            obs_enabled: false,
            trace_tag: None,
        }
    }

    /// Builds an `n`-node ring with the batched bring-up path: every node is
    /// started at the same virtual instant (`start_all`) and joins are
    /// injected in *doubling waves*, each wave landing on a ring already
    /// stabilized by its predecessors.
    ///
    /// The original all-at-once batch funnelled every join through the
    /// single landmark's trivial one-node ring, whose lookups handed every
    /// joiner the same successor — rings of 500+ nodes never sorted
    /// themselves out (ROADMAP bottleneck 2). A wave is therefore sized to
    /// the ring formed so far: with at most about one joiner landing
    /// between any two existing nodes, Chord's stabilization integrates a
    /// whole wave in a couple of periods, and `n` nodes join in `O(log n)`
    /// waves. [`ChordCluster::build`] remains the paper's staggered
    /// bring-up.
    pub fn build_fast(n: usize, warmup_secs: u64, seed: u64) -> ChordCluster {
        ChordCluster::builder(n, seed).build_fast(warmup_secs)
    }

    fn boot_fast(mut cluster: ChordCluster, warmup_secs: u64) -> ChordCluster {
        let n = cluster.addrs.len();
        cluster.sim.start_all();
        // Sample wave progress in short slices: a wave that is already
        // ring-consistent proceeds immediately instead of idling out the
        // full SB1 stabilization period. With join-time seeding (JS1/JS2)
        // joiners learn their successor lists from the join lookup itself
        // rather than from the next stabilization round, so the seeded
        // wave policy samples in 2 s slices (vs 5 s unseeded, a third of
        // the SB1 period) — the finer sampling is what converts seeding's
        // faster convergence into shorter settle rounds; the total settle
        // budget per wave (120 virtual s) is unchanged.
        let (settle, slices) = if cluster.join_seed {
            (SimTime::from_secs(2), 60)
        } else {
            (SimTime::from_secs(5), 24)
        };
        let mut joined = 0usize;
        let max_waves = 4 * (usize::BITS - n.max(1).leading_zeros()) as usize + 16;
        for _ in 0..max_waves {
            // Ring size so far bounds the next wave (≈ one joiner per gap);
            // the first wave seeds the ring with the landmark plus a few
            // followers.
            let wave = joined.max(4).min(n);
            let joins = cluster.join_batch(wave);
            if joins.is_empty() {
                break;
            }
            cluster.sim.inject_many(joins);
            // Let the wave integrate before the next one relies on its
            // lookups: settle until the joined subset is ring-consistent
            // again (bounded at the previous 8 × 15 s budget — stragglers
            // are re-issued next wave).
            for _ in 0..slices {
                cluster.sim.run_for(settle);
                if cluster.joined_ring_correctness() >= 0.97 {
                    break;
                }
            }
            joined = cluster
                .addrs
                .iter()
                .filter(|a| cluster.is_joined(a))
                .count();
        }
        cluster.brought_up_at = cluster.sim.now();
        cluster.sim.run_for(SimTime::from_secs(warmup_secs));
        cluster.clear_observations();
        cluster.sim.reset_stats();
        cluster
    }

    /// Virtual seconds the bring-up phase spent until every node had joined
    /// and the ring settled (measured before the warm-up window). The
    /// join-seed benchmark reports the delta of this between the base and
    /// the JS1-seeded program.
    pub fn bring_up_virtual_secs(&self) -> f64 {
        self.brought_up_at.as_secs_f64()
    }

    /// Fraction of *joined* nodes whose best successor is their correct
    /// clockwise successor among the joined nodes (bring-up progress
    /// metric; un-joined nodes are excluded from both sides).
    fn joined_ring_correctness(&self) -> f64 {
        let mut ids: Vec<(Uint160, &str)> = self
            .addrs
            .iter()
            .filter(|a| self.is_joined(a))
            .map(|a| (chord::node_id(a), a.as_str()))
            .collect();
        if ids.len() < 2 {
            return 1.0;
        }
        ids.sort();
        let correct = (0..ids.len())
            .filter(|&pos| {
                let a = ids[pos].1;
                let expect = ids[(pos + 1) % ids.len()].1;
                self.best_successor(a).as_deref() == Some(expect)
            })
            .count();
        correct as f64 / ids.len() as f64
    }

    /// Fresh join tuples for up to `limit` nodes that have not yet learned
    /// a successor, in address order.
    fn join_batch(&mut self, limit: usize) -> Vec<(String, Tuple)> {
        let mut out = Vec::new();
        for i in 0..self.addrs.len() {
            if out.len() >= limit {
                break;
            }
            if !self.is_joined(&self.addrs[i]) {
                let addr = self.addrs[i].clone();
                let event = self.fresh_event();
                let tuple = chord::join_tuple(&addr, event);
                out.push((addr, tuple));
            }
        }
        out
    }

    fn boot(&mut self, warmup_secs: u64) {
        let addrs = self.addrs.clone();
        for addr in &addrs {
            self.sim.start_node(addr);
            let event = self.fresh_event();
            self.sim.inject(addr, chord::join_tuple(addr, event));
            self.sim.run_for(SimTime::from_millis(500));
        }
        // Re-issue joins for stragglers (the `join` tuple only lives 10 s),
        // in one batch per round.
        for _ in 0..12 {
            self.sim.run_for(SimTime::from_secs(20));
            let rejoin: Vec<(String, Tuple)> = self.join_batch(usize::MAX);
            if rejoin.is_empty() {
                break;
            }
            self.sim.inject_many(rejoin);
        }
        self.brought_up_at = self.sim.now();
        self.sim.run_for(SimTime::from_secs(warmup_secs));
        self.clear_observations();
        self.sim.reset_stats();
    }

    fn fresh_event(&mut self) -> i64 {
        self.next_event += 1;
        self.next_event
    }

    /// The program variant every node of this cluster runs (also the cache
    /// key under which [`chord::shared_plan_for`] holds the shared plan).
    fn chord_opts(&self) -> chord::ChordOpts {
        chord::ChordOpts {
            jitter: true,
            join_seed: self.join_seed,
            fuse_strands: self.fuse_strands,
            materialize_views: self.materialize_views,
            delta_schedule: self.delta_schedule,
        }
    }

    /// All node addresses.
    pub fn addrs(&self) -> &[String] {
        &self.addrs
    }

    /// Addresses of nodes currently up.
    pub fn up_addrs(&self) -> Vec<String> {
        self.sim.up_addresses()
    }

    /// Number of nodes in the cluster.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// True if the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Advances virtual time.
    pub fn run_for(&mut self, secs: f64) {
        self.sim.run_for(SimTime::from_secs_f64(secs));
    }

    /// True if the node has learned a best successor.
    pub fn is_joined(&self, addr: &str) -> bool {
        self.sim
            .node(addr)
            .map(|h| {
                h.node()
                    .table("bestSucc")
                    .map(|t| !t.lock().is_empty())
                    .unwrap_or(false)
            })
            .unwrap_or(false)
    }

    /// The node's current best-successor address, if any.
    pub fn best_successor(&self, addr: &str) -> Option<String> {
        let host = self.sim.node(addr)?;
        let table = host.node().table("bestSucc")?;
        let guard = table.lock();
        // Borrowing scan: the singleton row is read in place, no snapshot.
        let out = guard
            .scan_iter()
            .next()
            .map(|t| t.field(2).to_display_string());
        out
    }

    /// Sorted display rows of one node's named table (empty when the node
    /// or table is absent). The scheduler-equivalence tests use this to
    /// compare the full final routing state — successor lists, fingers,
    /// predecessors — between delta-scheduled and poke-everything runs.
    pub fn table_rows(&self, addr: &str, table: &str) -> Vec<String> {
        let Some(host) = self.sim.node(addr) else {
            return Vec::new();
        };
        let Some(table) = host.node().table(table) else {
            return Vec::new();
        };
        let guard = table.lock();
        let mut rows: Vec<String> = guard.scan_iter().map(|t| t.to_string()).collect();
        rows.sort();
        rows
    }

    /// Fraction of up nodes whose best successor is the correct ring
    /// successor among up nodes (a ring-consistency health metric).
    pub fn ring_correctness(&self) -> f64 {
        ring_correctness_of(self.sim.up_addresses_iter(), |a| self.best_successor(a))
    }

    /// True when the best-successor pointers of the up nodes form one
    /// single cycle visiting every up node exactly once — the structural
    /// definition of a correct Chord ring, stricter than a high
    /// [`ChordCluster::ring_correctness`] fraction.
    pub fn is_single_cycle(&self) -> bool {
        let up: Vec<&str> = self.sim.up_addresses_iter().collect();
        let Some(&start) = up.first() else {
            return true;
        };
        let mut seen = std::collections::HashSet::with_capacity(up.len());
        let mut cursor = start.to_string();
        for _ in 0..up.len() {
            if !seen.insert(cursor.clone()) {
                return false; // revisited a node before closing the cycle
            }
            match self.best_successor(&cursor) {
                Some(next) => cursor = next,
                None => return false, // a node without a successor
            }
        }
        // After exactly `up` hops we must be back at the start having
        // visited every up node once.
        cursor == start && seen.len() == up.len()
    }

    /// Panics unless the successor pointers form a single cycle over the up
    /// nodes; bring-up tests use this as their ring-structure assertion.
    pub fn assert_single_cycle(&self) {
        assert!(
            self.is_single_cycle(),
            "successor pointers do not form a single {}-node cycle (ring_correctness = {:.3})",
            self.sim.up_count(),
            self.ring_correctness()
        );
    }

    /// Issues a lookup for `key` at `origin`.
    pub fn issue_lookup_from(&mut self, origin: &str, key: Uint160) -> LookupHandle {
        let event = self.fresh_event();
        self.inject_lookup(origin, key, event)
    }

    fn inject_lookup(&mut self, origin: &str, key: Uint160, event: i64) -> LookupHandle {
        let handle = LookupHandle {
            origin: origin.to_string(),
            key,
            event,
            issued_at: self.sim.now(),
        };
        self.sim
            .inject(origin, chord::lookup_tuple(origin, key, origin, event));
        handle
    }

    /// Issues a lookup for a uniformly random key from a random up node.
    pub fn issue_random_lookup(&mut self) -> LookupHandle {
        let idx = self.rng.gen_range(0..self.sim.up_count());
        let origin = self
            .sim
            .up_addresses_iter()
            .nth(idx)
            .expect("up_count bounds the index")
            .to_string();
        let key = Uint160::hash_of(&self.rng.gen::<[u8; 16]>());
        self.issue_lookup_from(&origin, key)
    }

    /// Looks for the completion of a previously issued lookup.
    pub fn outcome(&self, handle: &LookupHandle) -> Option<LookupOutcome> {
        let host = self.sim.node(&handle.origin)?;
        let results = host.node().collector("lookupResults")?;
        let results = results.lock();
        let (arrived_at, tuple) = results
            .iter()
            .find(|(_, t)| t.field(4) == &Value::Int(handle.event))?;
        let owner = tuple.field(3).to_display_string();
        let latency = arrived_at.saturating_sub(handle.issued_at).as_secs_f64();
        Some(LookupOutcome {
            owner,
            latency,
            hops: self.count_hops(handle.event),
        })
    }

    /// Counts how many overlay hops a lookup event traversed by counting the
    /// nodes that observed the `lookup` tuple (the origin's own injection is
    /// excluded).
    fn count_hops(&self, event: i64) -> usize {
        let mut seen = 0usize;
        for addr in &self.addrs {
            if let Some(host) = self.sim.node(addr) {
                if let Some(collector) = host.node().collector("lookup") {
                    seen += collector
                        .lock()
                        .iter()
                        .filter(|(_, t)| t.field(3) == &Value::Int(event))
                        .count();
                }
            }
        }
        seen.saturating_sub(1)
    }

    /// Clears all observation buffers (lookup and result taps) to bound
    /// memory during long experiments.
    pub fn clear_observations(&mut self) {
        for addr in &self.addrs {
            if let Some(host) = self.sim.node(addr) {
                for name in ["lookup", "lookupResults"] {
                    if let Some(c) = host.node().collector(name) {
                        c.lock().clear();
                    }
                }
            }
        }
    }

    /// Crashes a node (fail-stop).
    pub fn crash(&mut self, addr: &str) {
        self.sim.take_down(addr);
    }

    /// Replaces a crashed node with a fresh instance that rejoins through
    /// the landmark.
    pub fn rejoin(&mut self, addr: &str) {
        self.seed = self.seed.wrapping_add(0x9E37_79B9);
        let landmark = if addr == self.addrs[0] {
            None
        } else {
            Some(self.addrs[0].as_str())
        };
        let host = chord::build_node_for(addr, landmark, self.seed, self.chord_opts())
            .expect("chord node plans");
        self.sim.replace_node(addr, host);
        // A replacement node starts with a fresh engine: re-arm the cluster's
        // observability (and any active trace tag) so its counters and trace
        // ring keep participating in cluster-wide aggregation.
        if self.obs_enabled {
            let meta = chord::shared_plan_for(self.chord_opts()).obs_meta();
            let tag = self.trace_tag.clone();
            if let Some(host) = self.sim.node_mut(addr) {
                host.node_mut().enable_obs(meta);
                if let Some(tag) = tag {
                    host.node_mut()
                        .set_trace_tag(tag, p2_obs::DEFAULT_TRACE_CAP);
                }
            }
        }
        let event = self.fresh_event();
        self.sim.inject(addr, chord::join_tuple(addr, event));
    }

    /// Average bytes of soft state per up node (working-set style metric).
    pub fn mean_resident_bytes(&self) -> f64 {
        let mut count = 0usize;
        let mut total = 0usize;
        for id in self.sim.up_ids() {
            count += 1;
            total += self.sim.node_by_id(id).node().resident_table_bytes();
        }
        if count == 0 {
            return 0.0;
        }
        total as f64 / count as f64
    }

    /// Table-storage operation counters summed over all up nodes (indexed
    /// vs. full-scan lookups, expirations, evictions). Lets experiments
    /// verify that the hot probe paths stay on an index.
    pub fn storage_ops(&self) -> crate::metrics::StorageOps {
        let mut total = p2_table::TableStats::default();
        for id in self.sim.up_ids() {
            total += self.sim.node_by_id(id).node().catalog().stats_total();
        }
        total.into()
    }

    /// Simulator event-loop counters (events processed, wakeup share, live
    /// timer entries). Lets experiments verify the event core stays
    /// tombstone-free at scale.
    pub fn sim_ops(&self) -> crate::metrics::SimOps {
        crate::metrics::SimOps {
            events_processed: self.sim.events_processed(),
            wakeups_processed: self.sim.wakeups_processed(),
            packets_in_flight: self.sim.packets_in_flight(),
            scheduled_wakeups: self.sim.scheduled_wakeups(),
        }
    }

    /// Engine ingress counters summed over all up nodes (injected tuples,
    /// drops for names with no entry port), the dataflow-layer companion of
    /// [`ChordCluster::storage_ops`] and [`ChordCluster::sim_ops`].
    pub fn engine_stats(&self) -> crate::metrics::EngineOps {
        let mut total = crate::metrics::EngineOps::default();
        for id in self.sim.up_ids() {
            total.absorb(self.sim.node_by_id(id).node().stats());
        }
        total
    }

    /// Turns on the rule-level profiler on every node. Counters start at
    /// zero from this instant; calling this mid-run therefore profiles the
    /// steady state, not bring-up. Tracing stays off until
    /// [`ChordCluster::issue_traced_lookup`] arms a tag.
    pub fn enable_observability(&mut self) {
        let meta = chord::shared_plan_for(self.chord_opts()).obs_meta();
        let addrs = self.addrs.clone();
        for addr in &addrs {
            if let Some(host) = self.sim.node_mut(addr) {
                host.node_mut().enable_obs(meta.clone());
            }
        }
        self.obs_enabled = true;
    }

    /// True once [`ChordCluster::enable_observability`] has run.
    pub fn observability_enabled(&self) -> bool {
        self.obs_enabled
    }

    /// Issues a lookup whose event identifier is armed as the trace tag on
    /// every node: each node records the tagged tuple's arrival, the rule
    /// firings it feeds, and the sends it causes. Enables observability
    /// first if it is not already on. The previous trace (if any) is
    /// discarded.
    pub fn issue_traced_lookup(&mut self, origin: &str, key: Uint160) -> LookupHandle {
        if !self.obs_enabled {
            self.enable_observability();
        }
        let event = self.fresh_event();
        let tag = Value::Int(event);
        let addrs = self.addrs.clone();
        for addr in &addrs {
            if let Some(host) = self.sim.node_mut(addr) {
                host.node_mut()
                    .set_trace_tag(tag.clone(), p2_obs::DEFAULT_TRACE_CAP);
            }
        }
        self.trace_tag = Some(tag);
        self.inject_lookup(origin, key, event)
    }

    /// Drains every node's trace ring into one deterministically ordered
    /// event list (sorted by virtual time, then node address, then per-node
    /// sequence number — all worker-count independent).
    pub fn drain_trace(&mut self) -> Vec<p2_obs::TraceEvent> {
        let mut events = Vec::new();
        let addrs = self.addrs.clone();
        for addr in &addrs {
            if let Some(host) = self.sim.node_mut(addr) {
                events.extend(host.node_mut().drain_trace());
            }
        }
        p2_obs::sort_trace(&mut events);
        events
    }

    /// Drains the trace as one JSONL document (one compact JSON object per
    /// event, in the deterministic [`ChordCluster::drain_trace`] order).
    pub fn drain_trace_jsonl(&mut self) -> String {
        let events = self.drain_trace();
        p2_obs::trace_jsonl(&events)
    }

    /// Per-element profiler counters merged over all up nodes (element
    /// index = plan spec index, identical on every node).
    pub fn obs_counters(&self) -> Vec<p2_obs::ElemCounters> {
        let mut merged = Vec::new();
        for id in self.sim.up_ids() {
            if let Some(obs) = self.sim.node_by_id(id).node().obs() {
                p2_obs::merge_counters(&mut merged, obs.counters());
            }
        }
        merged
    }

    /// The cluster-wide rule-level profile: per-rule invocation and
    /// wasted-poke counters bucketed by the static `RuleClass` analysis.
    pub fn obs_report(&self) -> p2_obs::ProfileReport {
        let meta = chord::shared_plan_for(self.chord_opts()).obs_meta();
        p2_obs::build_report(&meta, &self.obs_counters())
    }
}

/// A cluster of hand-coded baseline Chord nodes on the same substrate.
pub struct BaselineCluster {
    /// The underlying simulator.
    pub sim: Simulator<BaselineChord>,
    addrs: Vec<String>,
    next_event: i64,
    rng: SmallRng,
}

impl BaselineCluster {
    /// Builds and boots an `n`-node baseline ring (same bring-up protocol as
    /// [`ChordCluster::build`]).
    pub fn build(n: usize, warmup_secs: u64, seed: u64) -> BaselineCluster {
        let mut sim = Simulator::new(NetworkConfig::emulab_default(seed));
        let addrs: Vec<String> = (0..n).map(node_addr).collect();
        for (i, addr) in addrs.iter().enumerate() {
            let landmark = if i == 0 {
                None
            } else {
                Some(addrs[0].as_str())
            };
            let node = BaselineChord::new(
                addr,
                landmark,
                seed.wrapping_add(1000 + i as u64),
                BaselineConfig::default(),
            );
            sim.add_node(addr.clone(), node);
        }
        let mut cluster = BaselineCluster {
            sim,
            addrs,
            next_event: 5_000_000,
            rng: SmallRng::seed_from_u64(seed ^ 0xBA5E),
        };
        for addr in cluster.addrs.clone() {
            cluster.sim.start_node(&addr);
            cluster.sim.run_for(SimTime::from_millis(500));
        }
        cluster.sim.run_for(SimTime::from_secs(warmup_secs));
        cluster.sim.reset_stats();
        cluster
    }

    /// All node addresses.
    pub fn addrs(&self) -> &[String] {
        &self.addrs
    }

    /// Advances virtual time.
    pub fn run_for(&mut self, secs: f64) {
        self.sim.run_for(SimTime::from_secs_f64(secs));
    }

    /// Fraction of nodes whose first successor is the correct ring
    /// successor.
    pub fn ring_correctness(&self) -> f64 {
        ring_correctness_of(self.sim.up_addresses_iter(), |a| {
            self.sim
                .node(a)
                .and_then(|n| n.successors().first().cloned())
        })
    }

    /// Issues a lookup for `key` from `origin`.
    pub fn issue_lookup_from(&mut self, origin: &str, key: Uint160) -> LookupHandle {
        self.next_event += 1;
        let event = self.next_event;
        let handle = LookupHandle {
            origin: origin.to_string(),
            key,
            event,
            issued_at: self.sim.now(),
        };
        let tuple: Tuple = TupleBuilder::new("lookup")
            .push(origin)
            .push(Value::Id(key))
            .push(origin)
            .push(event)
            .build();
        self.sim.inject(origin, tuple);
        handle
    }

    /// Issues a lookup for a uniformly random key from a random up node.
    pub fn issue_random_lookup(&mut self) -> LookupHandle {
        let idx = self.rng.gen_range(0..self.sim.up_count());
        let origin = self
            .sim
            .up_addresses_iter()
            .nth(idx)
            .expect("up_count bounds the index")
            .to_string();
        let key = Uint160::hash_of(&self.rng.gen::<[u8; 16]>());
        self.issue_lookup_from(&origin, key)
    }

    /// Looks for the completion of a previously issued lookup (hop counts
    /// are not tracked for the baseline).
    pub fn outcome(&self, handle: &LookupHandle) -> Option<LookupOutcome> {
        let node = self.sim.node(&handle.origin)?;
        let (arrived_at, tuple) = node
            .lookup_results()
            .iter()
            .find(|(_, t)| t.field(4) == &Value::Int(handle.event))?;
        Some(LookupOutcome {
            owner: tuple.field(3).to_display_string(),
            latency: arrived_at.saturating_sub(handle.issued_at).as_secs_f64(),
            hops: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2_cluster_forms_and_answers_lookups() {
        let mut cluster = ChordCluster::build(6, 90, 11);
        assert!(cluster.ring_correctness() > 0.99, "ring did not form");
        let key = Uint160::hash_of(b"some object");
        let origin = cluster.addrs()[2].clone();
        let handle = cluster.issue_lookup_from(&origin, key);
        cluster.run_for(8.0);
        let outcome = cluster.outcome(&handle).expect("lookup completes");
        assert_eq!(
            Some(outcome.owner.clone()),
            expected_owner(key, &cluster.up_addrs())
        );
        assert!(outcome.latency > 0.0 && outcome.latency < 8.0);
        assert!(cluster.mean_resident_bytes() > 0.0);
        cluster.clear_observations();
    }

    #[test]
    fn fast_bring_up_forms_a_ring() {
        // The batched start_all/inject_many path converges too, given the
        // longer stabilization window simultaneous joins need.
        let mut cluster = ChordCluster::build_fast(8, 300, 17);
        assert!(
            cluster.ring_correctness() > 0.99,
            "fast-boot ring did not form: {}",
            cluster.ring_correctness()
        );
        cluster.assert_single_cycle();
        let key = Uint160::hash_of(b"fast boot object");
        let origin = cluster.addrs()[3].clone();
        let handle = cluster.issue_lookup_from(&origin, key);
        cluster.run_for(8.0);
        let outcome = cluster.outcome(&handle).expect("lookup completes");
        assert_eq!(
            Some(outcome.owner),
            expected_owner(key, &cluster.up_addrs())
        );
        let ops = cluster.sim_ops();
        assert!(ops.events_processed > 0);
        assert!(ops.wakeups_processed > 0);
        assert!(
            ops.scheduled_wakeups <= cluster.len(),
            "timer index leaked entries: {ops:?}"
        );
        cluster.sim.check_consistency();
    }

    #[test]
    fn baseline_cluster_forms_and_answers_lookups() {
        let mut cluster = BaselineCluster::build(6, 150, 13);
        assert!(
            cluster.ring_correctness() > 0.99,
            "baseline ring did not form"
        );
        let mut handles = Vec::new();
        for _ in 0..5 {
            handles.push(cluster.issue_random_lookup());
            cluster.run_for(3.0);
        }
        cluster.run_for(5.0);
        let completed = handles
            .iter()
            .filter(|h| cluster.outcome(h).is_some())
            .count();
        assert!(
            completed >= 4,
            "only {completed}/5 baseline lookups completed"
        );
    }

    #[test]
    fn expected_owner_is_clockwise_successor() {
        let nodes: Vec<String> = (0..4).map(node_addr).collect();
        let mut ids: Vec<Uint160> = nodes.iter().map(|a| chord::node_id(a)).collect();
        ids.sort();
        // A key just below the second-lowest id belongs to that node.
        let key = ids[1].wrapping_sub(Uint160::ONE);
        let owner = expected_owner(key, &nodes).unwrap();
        assert_eq!(chord::node_id(&owner), ids[1]);
    }
}
