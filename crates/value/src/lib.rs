//! Concrete type system of the P2 declarative overlay engine.
//!
//! The original P2 system (SOSP 2005, "Implementing Declarative Overlays")
//! passes *reference-counted, immutable* tuples of dynamically typed values
//! between dataflow elements. This crate reproduces that concrete type
//! system:
//!
//! * [`Value`] — the dynamically typed scalar (null, boolean, signed
//!   integer, double, string/address, 160-bit identifier, timestamp),
//!   together with the conversion rules between types.
//! * [`Uint160`] — a 160-bit unsigned integer with wrapping (ring)
//!   arithmetic, used for Chord-style identifier spaces.
//! * [`Tuple`] — an immutable, cheaply clonable, named vector of values; the
//!   unit of data transfer between dataflow elements and the row type of
//!   soft-state tables.
//! * A wire-size model ([`Tuple::wire_size`]) used by the network simulator
//!   for bandwidth accounting.

pub mod error;
pub mod time;
pub mod tuple;
pub mod uint160;
pub mod value;
pub mod wire;

pub use error::ValueError;
pub use time::SimTime;
pub use tuple::{Tuple, TupleBuilder};
pub use uint160::Uint160;
pub use value::Value;
