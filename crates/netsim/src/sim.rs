//! The discrete-event simulator core.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use p2_value::{wire, SimTime, Tuple};

use crate::host::{Envelope, Host};
use crate::stats::NetStats;
use crate::topology::Topology;

/// Simulator-wide configuration.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// The physical layout and link parameters.
    pub topology: Topology,
    /// Independent per-packet loss probability (0.0 = lossless).
    pub loss_rate: f64,
    /// Seed for the simulator's own randomness (loss decisions).
    pub seed: u64,
}

impl NetworkConfig {
    /// The paper's Emulab-like configuration with no induced loss.
    pub fn emulab_default(seed: u64) -> NetworkConfig {
        NetworkConfig {
            topology: Topology::emulab_default(),
            loss_rate: 0.0,
            seed,
        }
    }
}

struct Slot<H> {
    host: H,
    domain: usize,
    up: bool,
    started: bool,
    link_busy_until: SimTime,
    scheduled_deadline: Option<SimTime>,
}

#[derive(Debug)]
enum EventKind {
    Delivery { dst: String, tuple: Tuple },
    Wakeup { addr: String },
}

#[derive(Debug)]
struct Event {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The discrete-event network simulator, hosting one [`Host`] per overlay
/// node.
pub struct Simulator<H: Host> {
    topology: Topology,
    loss_rate: f64,
    slots: HashMap<String, Slot<H>>,
    order: Vec<String>,
    events: BinaryHeap<Reverse<Event>>,
    seq: u64,
    now: SimTime,
    rng_state: u64,
    stats: NetStats,
}

impl<H: Host> Simulator<H> {
    /// Creates an empty simulator.
    pub fn new(config: NetworkConfig) -> Simulator<H> {
        Simulator {
            topology: config.topology,
            loss_rate: config.loss_rate,
            slots: HashMap::new(),
            order: Vec::new(),
            events: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            rng_state: if config.seed == 0 {
                0xDEAD_BEEF
            } else {
                config.seed
            },
            stats: NetStats::default(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Traffic counters.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Resets the traffic counters (used to exclude warm-up traffic from
    /// measurements).
    pub fn reset_stats(&mut self) {
        self.stats = NetStats::default();
    }

    /// Mutable access to the topology (placement of future nodes).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topology
    }

    /// The topology in use.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Addresses of all nodes ever added, in insertion order.
    pub fn addresses(&self) -> Vec<String> {
        self.order.clone()
    }

    /// Addresses of nodes currently up.
    pub fn up_addresses(&self) -> Vec<String> {
        self.order
            .iter()
            .filter(|a| self.slots.get(*a).map(|s| s.up).unwrap_or(false))
            .cloned()
            .collect()
    }

    /// Number of nodes currently up.
    pub fn up_count(&self) -> usize {
        self.slots.values().filter(|s| s.up).count()
    }

    /// Shared access to a node's host.
    pub fn node(&self, addr: &str) -> Option<&H> {
        self.slots.get(addr).map(|s| &s.host)
    }

    /// Mutable access to a node's host (state inspection in experiments).
    pub fn node_mut(&mut self, addr: &str) -> Option<&mut H> {
        self.slots.get_mut(addr).map(|s| &mut s.host)
    }

    /// True if the node exists and is up.
    pub fn is_up(&self, addr: &str) -> bool {
        self.slots.get(addr).map(|s| s.up).unwrap_or(false)
    }

    /// Adds a node (initially up but not started) and places it in the
    /// topology.
    pub fn add_node(&mut self, addr: impl Into<String>, host: H) {
        let addr = addr.into();
        let domain = self.topology.place(addr.clone());
        self.slots.insert(
            addr.clone(),
            Slot {
                host,
                domain,
                up: true,
                started: false,
                link_busy_until: SimTime::ZERO,
                scheduled_deadline: None,
            },
        );
        self.order.push(addr);
    }

    /// Boots a node at the current virtual time.
    pub fn start_node(&mut self, addr: &str) {
        let now = self.now;
        let Some(slot) = self.slots.get_mut(addr) else {
            return;
        };
        if !slot.up {
            return;
        }
        slot.started = true;
        let out = slot.host.start(now);
        self.dispatch(addr, out);
        self.schedule_wakeup(addr);
    }

    /// Delivers an application-level tuple to a node immediately (e.g. a
    /// lookup request or a join event injected by the workload generator).
    pub fn inject(&mut self, addr: &str, tuple: Tuple) {
        let now = self.now;
        let Some(slot) = self.slots.get_mut(addr) else {
            return;
        };
        if !slot.up {
            return;
        }
        let out = slot.host.deliver(tuple, now);
        self.dispatch(addr, out);
        self.schedule_wakeup(addr);
    }

    /// Marks a node as failed: its timers stop and packets addressed to it
    /// are dropped.
    pub fn take_down(&mut self, addr: &str) {
        if let Some(slot) = self.slots.get_mut(addr) {
            slot.up = false;
            slot.scheduled_deadline = None;
        }
    }

    /// Replaces a failed node with a fresh host (crash-rejoin churn) and
    /// boots it at the current time.
    pub fn replace_node(&mut self, addr: &str, host: H) {
        let domain = self
            .slots
            .get(addr)
            .map(|s| s.domain)
            .unwrap_or_else(|| self.topology.place(addr.to_string()));
        self.slots.insert(
            addr.to_string(),
            Slot {
                host,
                domain,
                up: true,
                started: false,
                link_busy_until: self.now,
                scheduled_deadline: None,
            },
        );
        if !self.order.iter().any(|a| a == addr) {
            self.order.push(addr.to_string());
        }
        self.start_node(addr);
    }

    /// Runs the simulation until virtual time `until`.
    pub fn run_until(&mut self, until: SimTime) {
        loop {
            let due = matches!(self.events.peek(), Some(Reverse(e)) if e.at <= until);
            if !due {
                break;
            }
            let Reverse(event) = self.events.pop().expect("peeked");
            if event.at > self.now {
                self.now = event.at;
            }
            match event.kind {
                EventKind::Delivery { dst, tuple } => {
                    let now = self.now;
                    let out = match self.slots.get_mut(&dst) {
                        Some(slot) if slot.up && slot.started => {
                            self.stats.record_delivery();
                            Some(slot.host.deliver(tuple, now))
                        }
                        _ => {
                            self.stats.record_drop();
                            None
                        }
                    };
                    if let Some(out) = out {
                        self.dispatch(&dst, out);
                        self.schedule_wakeup(&dst);
                    }
                }
                EventKind::Wakeup { addr } => {
                    let now = self.now;
                    let out = match self.slots.get_mut(&addr) {
                        Some(slot) if slot.up && slot.started => {
                            slot.scheduled_deadline = None;
                            Some(slot.host.advance_to(now))
                        }
                        _ => None,
                    };
                    if let Some(out) = out {
                        self.dispatch(&addr, out);
                        self.schedule_wakeup(&addr);
                    }
                }
            }
        }
        self.now = until;
    }

    /// Runs the simulation for an additional duration.
    pub fn run_for(&mut self, duration: SimTime) {
        self.run_until(self.now + duration);
    }

    fn next_rand(&mut self) -> f64 {
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Queues envelopes produced by `src` as network transmissions.
    fn dispatch(&mut self, src: &str, envelopes: Vec<Envelope>) {
        for env in envelopes {
            let payload = wire::encoded_size(&env.tuple) + wire::UDP_IP_HEADER;
            self.stats.record_send(src, env.tuple.name(), payload);

            if self.loss_rate > 0.0 && self.next_rand() < self.loss_rate {
                self.stats.record_drop();
                continue;
            }

            // Serialization on the sender's access link (the link is busy
            // until the previous packet has left).
            let tx_delay = self.topology.access_tx_delay(payload);
            let departure = {
                let slot = self.slots.get_mut(src).expect("sender exists");
                let start = slot.link_busy_until.max(self.now);
                let departure = start + tx_delay;
                slot.link_busy_until = departure;
                departure
            };
            let latency = self.topology.latency(src, &env.dst);
            let arrival = departure + latency;
            self.seq += 1;
            self.events.push(Reverse(Event {
                at: arrival,
                seq: self.seq,
                kind: EventKind::Delivery {
                    dst: env.dst,
                    tuple: env.tuple,
                },
            }));
        }
    }

    /// (Re)schedules a wakeup event for the node's next timer deadline.
    fn schedule_wakeup(&mut self, addr: &str) {
        let Some(slot) = self.slots.get_mut(addr) else {
            return;
        };
        if !slot.up || !slot.started {
            return;
        }
        let Some(deadline) = slot.host.next_deadline() else {
            return;
        };
        let needs_scheduling = match slot.scheduled_deadline {
            None => true,
            Some(existing) => deadline < existing,
        };
        if needs_scheduling {
            slot.scheduled_deadline = Some(deadline);
            self.seq += 1;
            self.events.push(Reverse(Event {
                at: deadline.max(self.now),
                seq: self.seq,
                kind: EventKind::Wakeup {
                    addr: addr.to_string(),
                },
            }));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_value::TupleBuilder;

    /// A toy host that answers every `ping` with a `pong` back to the sender
    /// and sends one `hello` to a configured peer every 5 seconds.
    struct Toy {
        addr: String,
        peer: Option<String>,
        next_hello: Option<SimTime>,
        pongs_received: usize,
        pings_received: usize,
    }

    impl Toy {
        fn new(addr: &str, peer: Option<&str>) -> Toy {
            Toy {
                addr: addr.to_string(),
                peer: peer.map(str::to_string),
                next_hello: None,
                pongs_received: 0,
                pings_received: 0,
            }
        }
    }

    impl Host for Toy {
        fn start(&mut self, now: SimTime) -> Vec<Envelope> {
            if self.peer.is_some() {
                self.next_hello = Some(now + SimTime::from_secs(5));
            }
            Vec::new()
        }

        fn deliver(&mut self, tuple: Tuple, _now: SimTime) -> Vec<Envelope> {
            match tuple.name() {
                "ping" => {
                    self.pings_received += 1;
                    let from = tuple.field(0).to_display_string();
                    vec![Envelope::new(
                        from,
                        TupleBuilder::new("pong").push(self.addr.as_str()).build(),
                    )]
                }
                "pong" => {
                    self.pongs_received += 1;
                    Vec::new()
                }
                _ => Vec::new(),
            }
        }

        fn advance_to(&mut self, now: SimTime) -> Vec<Envelope> {
            let mut out = Vec::new();
            if let Some(t) = self.next_hello {
                if t <= now {
                    if let Some(peer) = &self.peer {
                        out.push(Envelope::new(
                            peer.clone(),
                            TupleBuilder::new("ping").push(self.addr.as_str()).build(),
                        ));
                    }
                    self.next_hello = Some(t + SimTime::from_secs(5));
                }
            }
            out
        }

        fn next_deadline(&self) -> Option<SimTime> {
            self.next_hello
        }
    }

    fn two_node_sim(loss: f64) -> Simulator<Toy> {
        let mut config = NetworkConfig::emulab_default(7);
        config.loss_rate = loss;
        let mut sim = Simulator::new(config);
        sim.add_node("n0", Toy::new("n0", Some("n1")));
        sim.add_node("n1", Toy::new("n1", None));
        sim.start_node("n0");
        sim.start_node("n1");
        sim
    }

    #[test]
    fn periodic_ping_pong_over_the_network() {
        let mut sim = two_node_sim(0.0);
        sim.run_until(SimTime::from_secs(26));
        // Pings at t=5,10,15,20,25 -> 5 round trips.
        assert_eq!(sim.node("n1").unwrap().pings_received, 5);
        assert_eq!(sim.node("n0").unwrap().pongs_received, 5);
        assert_eq!(sim.stats().messages_sent, 10);
        assert_eq!(sim.stats().messages_delivered, 10);
        assert!(sim.stats().bytes_sent > 0);
        assert!(sim.stats().bytes_by_name.contains_key("ping"));
    }

    #[test]
    fn latency_delays_delivery() {
        let mut sim = two_node_sim(0.0);
        // n0 and n1 are in different domains (round-robin), so one-way
        // latency is ~104 ms; run until just before the first ping arrives.
        sim.run_until(SimTime::from_millis(5_100));
        assert_eq!(sim.node("n1").unwrap().pings_received, 0);
        sim.run_until(SimTime::from_millis(5_200));
        assert_eq!(sim.node("n1").unwrap().pings_received, 1);
    }

    #[test]
    fn loss_drops_packets() {
        let mut sim = two_node_sim(1.0);
        sim.run_until(SimTime::from_secs(30));
        assert_eq!(sim.node("n1").unwrap().pings_received, 0);
        assert!(sim.stats().messages_dropped > 0);
    }

    #[test]
    fn down_nodes_do_not_receive_or_tick() {
        let mut sim = two_node_sim(0.0);
        sim.run_until(SimTime::from_secs(7));
        sim.take_down("n1");
        sim.run_until(SimTime::from_secs(30));
        // Only the first ping (t=5) arrived before the failure.
        assert_eq!(sim.node("n1").unwrap().pings_received, 1);
        assert!(sim.stats().messages_dropped > 0);
        assert_eq!(sim.up_count(), 1);
        assert!(!sim.is_up("n1"));

        // Rejoin with a fresh host: traffic flows again.
        sim.replace_node("n1", Toy::new("n1", None));
        sim.run_until(SimTime::from_secs(60));
        assert!(sim.node("n1").unwrap().pings_received > 0);
        assert!(sim.is_up("n1"));
    }

    #[test]
    fn injection_reaches_the_target_node() {
        let mut sim = two_node_sim(0.0);
        sim.inject("n1", TupleBuilder::new("ping").push("n0").build());
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.node("n1").unwrap().pings_received, 1);
        assert_eq!(sim.node("n0").unwrap().pongs_received, 1);
    }

    #[test]
    fn determinism_for_a_fixed_seed() {
        let run = || {
            let mut sim = two_node_sim(0.3);
            sim.run_until(SimTime::from_secs(100));
            (
                sim.stats().messages_delivered,
                sim.stats().messages_dropped,
                sim.stats().bytes_sent,
            )
        };
        assert_eq!(run(), run());
    }
}
