//! Aggregation functions (`min<X>`, `max<X>`, `count<*>`, `sum<X>`, `avg<X>`).

use p2_value::{Value, ValueError};

/// An aggregation function usable in an OverLog rule head.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Minimum of the aggregated values.
    Min,
    /// Maximum of the aggregated values.
    Max,
    /// Number of contributing tuples (`count<*>`).
    Count,
    /// Sum of the aggregated values.
    Sum,
    /// Arithmetic mean of the aggregated values.
    Avg,
}

impl AggFunc {
    /// Resolves an OverLog aggregate keyword.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        match name {
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            "count" => Some(AggFunc::Count),
            "sum" => Some(AggFunc::Sum),
            "avg" => Some(AggFunc::Avg),
            _ => None,
        }
    }

    /// The OverLog keyword for this aggregate.
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
        }
    }

    /// Computes the aggregate over a set of contributing values.
    ///
    /// Returns `None` for an empty input on min/max/avg (no tuple groups are
    /// produced), `Some(0)` for count/sum, matching SQL-style semantics.
    pub fn apply(&self, values: &[Value]) -> Result<Option<Value>, ValueError> {
        let mut state = AggState::new(*self);
        for v in values {
            state.accumulate(v)?;
        }
        Ok(state.finish())
    }
}

/// Streaming accumulator behind [`AggFunc::apply`], the table's grouped
/// [`crate::table::Table::aggregate`], and the dataflow layer's
/// per-event aggregation probe: one source of truth for the aggregate
/// semantics (all-int sums collapse to `Int`, min/max keep the first
/// extremum, avg over nothing yields no value). Streaming callers fold
/// values in one pass instead of materializing a contribution vector.
#[derive(Debug)]
pub enum AggState {
    Count(i64),
    Sum { acc: f64, all_int: bool },
    Avg { acc: f64, n: usize },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggState {
    pub fn new(func: AggFunc) -> AggState {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum {
                acc: 0.0,
                all_int: true,
            },
            AggFunc::Avg => AggState::Avg { acc: 0.0, n: 0 },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
        }
    }

    /// Folds one contributing value into the accumulator.
    pub fn accumulate(&mut self, v: &Value) -> Result<(), ValueError> {
        match self {
            AggState::Count(n) => *n += 1,
            AggState::Sum { acc, all_int } => {
                if !matches!(v, Value::Int(_)) {
                    *all_int = false;
                }
                *acc += v.to_double()?;
            }
            AggState::Avg { acc, n } => {
                *acc += v.to_double()?;
                *n += 1;
            }
            AggState::Min(best) => {
                if best.as_ref().map(|b| v < b).unwrap_or(true) {
                    *best = Some(v.clone());
                }
            }
            AggState::Max(best) => {
                if best.as_ref().map(|b| v > b).unwrap_or(true) {
                    *best = Some(v.clone());
                }
            }
        }
        Ok(())
    }

    /// Produces the final aggregate, or `None` when min/max/avg saw no
    /// contributions.
    pub fn finish(self) -> Option<Value> {
        match self {
            AggState::Count(n) => Some(Value::Int(n)),
            AggState::Sum { acc, all_int } => Some(if all_int {
                Value::Int(acc as i64)
            } else {
                Value::Double(acc)
            }),
            AggState::Avg { acc, n } => {
                if n == 0 {
                    None
                } else {
                    Some(Value::Double(acc / n as f64))
                }
            }
            AggState::Min(best) => best,
            AggState::Max(best) => best,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_value::Uint160;

    #[test]
    fn from_name() {
        assert_eq!(AggFunc::from_name("min"), Some(AggFunc::Min));
        assert_eq!(AggFunc::from_name("count"), Some(AggFunc::Count));
        assert_eq!(AggFunc::from_name("median"), None);
        assert_eq!(AggFunc::Sum.name(), "sum");
    }

    #[test]
    fn count_and_sum_on_empty() {
        assert_eq!(AggFunc::Count.apply(&[]).unwrap(), Some(Value::Int(0)));
        assert_eq!(AggFunc::Sum.apply(&[]).unwrap(), Some(Value::Int(0)));
        assert_eq!(AggFunc::Min.apply(&[]).unwrap(), None);
        assert_eq!(AggFunc::Avg.apply(&[]).unwrap(), None);
    }

    #[test]
    fn min_max_over_ids() {
        let vals = vec![
            Value::Id(Uint160::from_u64(30)),
            Value::Id(Uint160::from_u64(5)),
            Value::Id(Uint160::from_u64(500)),
        ];
        assert_eq!(
            AggFunc::Min.apply(&vals).unwrap(),
            Some(Value::Id(Uint160::from_u64(5)))
        );
        assert_eq!(
            AggFunc::Max.apply(&vals).unwrap(),
            Some(Value::Id(Uint160::from_u64(500)))
        );
    }

    #[test]
    fn sum_and_avg() {
        let ints = vec![Value::Int(1), Value::Int(2), Value::Int(3)];
        assert_eq!(AggFunc::Sum.apply(&ints).unwrap(), Some(Value::Int(6)));
        assert_eq!(AggFunc::Avg.apply(&ints).unwrap(), Some(Value::Double(2.0)));
        let mixed = vec![Value::Int(1), Value::Double(0.5)];
        assert_eq!(
            AggFunc::Sum.apply(&mixed).unwrap(),
            Some(Value::Double(1.5))
        );
        assert!(AggFunc::Sum.apply(&[Value::str("x")]).is_err());
    }

    #[test]
    fn count_ignores_types() {
        let vals = vec![Value::str("a"), Value::Null, Value::Int(1)];
        assert_eq!(AggFunc::Count.apply(&vals).unwrap(), Some(Value::Int(3)));
    }
}
