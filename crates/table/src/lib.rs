//! Soft-state tables for the P2 dataflow engine.
//!
//! OverLog `materialize(name, lifetime, size, keys(...))` statements declare
//! tables; everything else is a transient stream. This crate implements the
//! table layer described in §3.2 of the paper:
//!
//! * tuples are retained for at most `lifetime` seconds (soft state) and the
//!   table holds at most `size` rows (FIFO eviction);
//! * every table has a primary key — inserting a tuple with an existing key
//!   replaces the old row (this is how `sequence`, `bestSucc`,
//!   `nextFingerFix` behave as updatable singletons);
//! * in-memory secondary indices provide fast equality lookups for the
//!   equijoin elements;
//! * filters written in PEL can be applied to table scans;
//! * incremental aggregates (min/max/count/sum) can be computed over a table
//!   with optional group-by, which backs the "aggregate elements that
//!   maintain an up-to-date aggregate on a table" of §3.4.

pub mod aggregate;
pub mod catalog;
pub mod spec;
pub mod table;

pub use aggregate::AggFunc;
pub use catalog::{Catalog, TableRef};
pub use spec::TableSpec;
pub use table::{InsertOutcome, Table};
