//! Epidemic gossip: inject one rumor at a single node and watch push-gossip
//! spread it to the whole population.
//!
//! Run with: `cargo run --release --example gossip_broadcast`

use p2_suite::prelude::*;

fn main() {
    let n = 20;
    let addrs: Vec<String> = (0..n).map(|i| format!("g{i}:7000")).collect();

    // Each node knows 3 pseudo-random peers (a sparse, connected digraph).
    let mut sim: Simulator<P2Host> = Simulator::new(NetworkConfig::emulab_default(3));
    for i in 0..n {
        let peers: Vec<String> = (1..=3).map(|k| addrs[(i + k * 7) % n].clone()).collect();
        let peer_refs: Vec<&str> = peers.iter().map(String::as_str).collect();
        let host =
            gossip::build_node(&addrs[i], &peer_refs, 100 + i as u64, true).expect("gossip plans");
        sim.add_node(addrs[i].clone(), host);
    }
    for a in &addrs {
        sim.start_node(a);
    }

    println!("injecting rumor 1 at {} ...", addrs[0]);
    sim.inject(
        &addrs[0],
        gossip::rumor_tuple(&addrs[0], 1, "the paper is reproducible"),
    );

    let infected = |sim: &Simulator<P2Host>| {
        addrs
            .iter()
            .filter(|a| {
                !sim.node(a)
                    .unwrap()
                    .node()
                    .table("rumor")
                    .unwrap()
                    .lock()
                    .is_empty()
            })
            .count()
    };

    for checkpoint in [2u64, 4, 8, 16, 32, 64] {
        sim.run_until(SimTime::from_secs(checkpoint));
        println!(
            "  t={checkpoint:>3}s  nodes holding the rumor: {}/{n}",
            infected(&sim)
        );
    }

    let stats = sim.stats();
    println!(
        "\ngossip traffic: {} messages, {} bytes total",
        stats.messages_sent, stats.bytes_sent
    );
    assert_eq!(infected(&sim), n, "the rumor should reach every node");
    println!("rumor reached every node.");
}
