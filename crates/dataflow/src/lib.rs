//! The P2 dataflow framework.
//!
//! P2 executes overlay specifications as graphs of small dataflow *elements*
//! in the style of the Click modular router: each element has input and
//! output ports, tuples flow along the edges, and a per-node engine drives
//! the graph to completion for every external event (timer firing or packet
//! arrival), mirroring the single-threaded, run-to-completion `libasync`
//! loop of the original system.
//!
//! The crate provides:
//!
//! * [`Element`] and [`ElementCtx`] — the element interface;
//! * [`Engine`] and [`Graph`] — per-node execution: an explicit work queue
//!   (push semantics), a timer wheel, network send collection, and runtime
//!   statistics;
//! * [`elements`] — the element library used by the OverLog planner:
//!   demultiplexers, queues, equijoins, anti-joins, selections, projections,
//!   per-event and materialized aggregates, table insert/delete bridges,
//!   periodic event sources, network output, and debugging taps.
//!
//! Deviation from the 2005 C++ implementation: the original uses push *and*
//! pull ports with continuation callbacks for flow control; here every edge
//! is push-driven from an explicit FIFO work queue and back-pressure is
//! exercised at the network boundary by the simulator (see DESIGN.md §5.1).

pub mod element;
pub mod elements;
pub mod engine;

pub use element::{Element, ElementCtx, Outgoing};
pub use engine::{Engine, EngineStats, Graph, Route};
