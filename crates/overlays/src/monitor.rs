//! Round-trip latency monitoring overlay (rules P0–P3 of §2.3).

use std::sync::OnceLock;

use p2_core::{NodeConfig, P2Node, PlanError};
use p2_overlog::{compile_checked, Program};
use p2_value::{Tuple, TupleBuilder};

use crate::host::P2Host;

/// The OverLog source text of the latency monitor.
pub const MONITOR_OLG: &str = include_str!("../programs/latency_monitor.olg");

/// Parses and validates the monitor program (cached after the first call).
pub fn program() -> &'static Program {
    static PROGRAM: OnceLock<Program> = OnceLock::new();
    PROGRAM.get_or_init(|| {
        compile_checked(MONITOR_OLG).expect("the shipped monitor program must parse and validate")
    })
}

/// Number of rules in the monitor specification.
pub fn rule_count() -> usize {
    program().rule_count()
}

/// Member facts declaring which peers a node measures.
pub fn member_facts(addr: &str, peers: &[&str]) -> Vec<Tuple> {
    peers
        .iter()
        .map(|p| TupleBuilder::new("member").push(addr).push(*p).build())
        .collect()
}

/// Builds a ready-to-run latency-monitor node wrapped for the simulator.
pub fn build_node(
    addr: &str,
    peers: &[&str],
    seed: u64,
    jitter: bool,
) -> Result<P2Host, PlanError> {
    let mut config = NodeConfig::new(addr, seed);
    if !jitter {
        config = config.without_jitter();
    }
    let node = P2Node::with_facts(program(), config, member_facts(addr, peers))?;
    Ok(P2Host::new(node))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_parses_and_plans() {
        assert_eq!(rule_count(), 4);
        let host = build_node("n1", &["n2"], 1, false).unwrap();
        assert_eq!(host.node().table("member").unwrap().lock().len(), 1);
        assert!(host.node().table("latency").unwrap().lock().is_empty());
    }
}
