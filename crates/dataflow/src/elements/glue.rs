//! General-purpose "glue" elements: demultiplexer, queue, and tap.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use p2_value::{SimTime, Tuple};

use crate::element::{Element, ElementCtx};

/// Routes tuples to an output port chosen by tuple name.
///
/// Tuple name `names[i]` goes to output port `i`; tuples whose name is not
/// listed go to the *default port* `names.len()`. This is the big
/// classifier at the entry of every planned dataflow (Figure 2's
/// "Demux (tuple name)"): Chord's planner generates dozens of arms, and
/// every delivered tuple passes through here, so the name→port mapping is a
/// prebuilt hash table rather than a linear scan.
pub struct Demux {
    ports: Arc<HashMap<Arc<str>, usize>>,
    default_port: usize,
}

impl Demux {
    /// Creates a demux for the given tuple names.
    pub fn new(names: Vec<String>) -> Demux {
        let (ports, default_port) = Demux::build_map(&names);
        Demux {
            ports,
            default_port,
        }
    }

    /// Builds the shareable name→port map for a list of tuple names. The
    /// shared-plan path builds this once per program and stamps out per-node
    /// demuxes via [`Demux::from_shared`].
    pub fn build_map(names: &[String]) -> (Arc<HashMap<Arc<str>, usize>>, usize) {
        let mut ports = HashMap::with_capacity(names.len());
        for (i, n) in names.iter().enumerate() {
            // First occurrence wins, matching the old linear scan.
            ports.entry(Arc::from(n.as_str())).or_insert(i);
        }
        (Arc::new(ports), names.len())
    }

    /// Creates a demux over a prebuilt shared name→port map (no per-node
    /// copy of the classifier table).
    pub fn from_shared(ports: Arc<HashMap<Arc<str>, usize>>, default_port: usize) -> Demux {
        Demux {
            ports,
            default_port,
        }
    }

    /// The port unmatched tuples are emitted on.
    pub fn default_port(&self) -> usize {
        self.default_port
    }

    /// The port a given tuple name is routed to, if it is known. O(1).
    pub fn port_for(&self, name: &str) -> Option<usize> {
        self.ports.get(name).copied()
    }
}

impl Element for Demux {
    fn class(&self) -> &'static str {
        "Demux"
    }

    fn push(&mut self, _port: usize, tuple: &Tuple, ctx: &mut ElementCtx<'_>) {
        let port = self
            .port_for(tuple.name())
            .unwrap_or_else(|| self.default_port());
        ctx.emit(port, tuple.clone());
    }
}

/// A pass-through queue.
///
/// In the original system queues decouple push and pull sections of the
/// graph and block when full. In this reproduction intra-node flow control
/// is not needed (the engine drains a FIFO work queue), so a queue's
/// *occupancy* is defined as the engine's pending-work backlog at the moment
/// a tuple reaches the queueing point, including that tuple
/// ([`ElementCtx::pending`] + 1). The optional capacity is a load-shedding
/// bound on that backlog: while the node is processing a cascade deeper than
/// `capacity`, tuples reaching the queue are dropped. (The seed incremented
/// and decremented a counter around a synchronous emit, so occupancy never
/// exceeded one and the capacity could never trigger.)
pub struct Queue {
    capacity: Option<usize>,
    /// Number of tuples dropped because the backlog exceeded capacity.
    pub dropped: u64,
    /// Highest occupancy observed.
    pub high_watermark: usize,
}

impl Queue {
    /// Creates a queue with an optional load-shedding capacity.
    pub fn new(capacity: Option<usize>) -> Queue {
        Queue {
            capacity,
            dropped: 0,
            high_watermark: 0,
        }
    }
}

impl Element for Queue {
    fn class(&self) -> &'static str {
        "Queue"
    }

    fn push(&mut self, _port: usize, tuple: &Tuple, ctx: &mut ElementCtx<'_>) {
        let occupancy = ctx.pending() + 1;
        self.high_watermark = self.high_watermark.max(occupancy);
        if let Some(cap) = self.capacity {
            if occupancy > cap {
                self.dropped += 1;
                return;
            }
        }
        ctx.emit(0, tuple.clone());
    }
}

/// Shared buffer filled by a [`Collector`] element.
pub type CollectorHandle = Arc<Mutex<Vec<(SimTime, Tuple)>>>;

/// A tap that records every tuple it sees (with its arrival time) into a
/// shared buffer and forwards it unchanged.
///
/// The experiment harness uses collectors to observe `lookupResults`
/// tuples; the paper's logging facility (§3.5) plays the same role.
pub struct Collector {
    buffer: CollectorHandle,
}

impl Collector {
    /// Creates a collector and returns it along with the shared buffer.
    pub fn new() -> (Collector, CollectorHandle) {
        let buffer: CollectorHandle = Arc::new(Mutex::new(Vec::new()));
        (
            Collector {
                buffer: buffer.clone(),
            },
            buffer,
        )
    }

    /// Creates a collector writing into an existing buffer.
    pub fn with_buffer(buffer: CollectorHandle) -> Collector {
        Collector { buffer }
    }
}

impl Element for Collector {
    fn class(&self) -> &'static str {
        "Collector"
    }

    fn push(&mut self, _port: usize, tuple: &Tuple, ctx: &mut ElementCtx<'_>) {
        self.buffer.lock().push((ctx.now(), tuple.clone()));
        ctx.emit(0, tuple.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, Graph, Route};
    use p2_value::TupleBuilder;

    #[test]
    fn demux_routes_by_name() {
        let mut g = Graph::new();
        let d = g.add(
            "demux",
            Box::new(Demux::new(vec!["lookup".into(), "succ".into()])),
        );
        let (c_lookup, lookup_buf) = Collector::new();
        let (c_succ, succ_buf) = Collector::new();
        let (c_other, other_buf) = Collector::new();
        let l = g.add("lookups", Box::new(c_lookup));
        let s = g.add("succs", Box::new(c_succ));
        let o = g.add("other", Box::new(c_other));
        g.connect(d, 0, l, 0);
        g.connect(d, 1, s, 0);
        g.connect(d, 2, o, 0);

        let mut engine = Engine::new(g, "n1", 1);
        engine.set_entry(Route {
            element: d,
            port: 0,
        });
        engine.start(SimTime::ZERO);
        for name in ["lookup", "succ", "succ", "ping"] {
            engine.deliver(TupleBuilder::new(name).push("n1").build(), SimTime::ZERO);
        }
        assert_eq!(lookup_buf.lock().len(), 1);
        assert_eq!(succ_buf.lock().len(), 2);
        assert_eq!(other_buf.lock().len(), 1);
    }

    #[test]
    fn demux_port_queries() {
        let d = Demux::new(vec!["a".into(), "b".into()]);
        assert_eq!(d.port_for("b"), Some(1));
        assert_eq!(d.port_for("zzz"), None);
        assert_eq!(d.default_port(), 2);
    }

    #[test]
    fn queue_forwards_and_counts() {
        let mut g = Graph::new();
        let q = g.add("queue", Box::new(Queue::new(None)));
        let (c, buf) = Collector::new();
        let c = g.add("tap", Box::new(c));
        g.connect(q, 0, c, 0);
        let mut engine = Engine::new(g, "n1", 1);
        engine.set_entry(Route {
            element: q,
            port: 0,
        });
        for i in 0..5i64 {
            engine.deliver(TupleBuilder::new("x").push(i).build(), SimTime::ZERO);
        }
        assert_eq!(buf.lock().len(), 5);
    }

    /// Emits a burst of `n` copies of every incoming tuple.
    struct Burst(usize);

    impl Element for Burst {
        fn class(&self) -> &'static str {
            "Burst"
        }
        fn push(&mut self, _port: usize, tuple: &Tuple, ctx: &mut ElementCtx<'_>) {
            for _ in 0..self.0 {
                ctx.emit(0, tuple.clone());
            }
        }
    }

    /// Pins the queue's occupancy/capacity semantics: occupancy is the
    /// engine backlog at the queueing point (pending work + the tuple in
    /// hand), and the capacity sheds tuples while that backlog exceeds it.
    #[test]
    fn queue_capacity_sheds_load_under_backlog() {
        let mut g = Graph::new();
        let b = g.add("burst", Box::new(Burst(5)));
        let q = g.add("queue", Box::new(Queue::new(Some(3))));
        let (c, buf) = Collector::new();
        let c = g.add("tap", Box::new(c));
        g.connect(b, 0, q, 0);
        g.connect(q, 0, c, 0);
        let mut engine = Engine::new(g, "n1", 1);
        engine.set_entry(Route {
            element: b,
            port: 0,
        });
        engine.deliver(TupleBuilder::new("x").push(1i64).build(), SimTime::ZERO);

        // The burst enqueues 5 tuples for the queue at once. The first two
        // see backlogs of 5 and 4 (> capacity 3) and are shed; the remaining
        // three pass (forwarding re-enqueues downstream work, but the
        // backlog never exceeds the capacity again).
        assert_eq!(buf.lock().len(), 3);

        // A calm, one-at-a-time trickle is never shed.
        let mut g = Graph::new();
        let q = g.add("queue", Box::new(Queue::new(Some(1))));
        let (c, buf) = Collector::new();
        let c = g.add("tap", Box::new(c));
        g.connect(q, 0, c, 0);
        let mut engine = Engine::new(g, "n1", 1);
        engine.set_entry(Route {
            element: q,
            port: 0,
        });
        for i in 0..4i64 {
            engine.deliver(TupleBuilder::new("x").push(i).build(), SimTime::ZERO);
        }
        assert_eq!(buf.lock().len(), 4);
    }

    #[test]
    fn collector_records_arrival_time() {
        let mut g = Graph::new();
        let (c, buf) = Collector::new();
        let c = g.add("tap", Box::new(c));
        let mut engine = Engine::new(g, "n1", 1);
        engine.set_entry(Route {
            element: c,
            port: 0,
        });
        engine.deliver(TupleBuilder::new("x").build(), SimTime::from_secs(9));
        let entries = buf.lock();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].0, SimTime::from_secs(9));
    }
}
