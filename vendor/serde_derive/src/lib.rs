//! Vendored stand-in for `serde_derive`.
//!
//! Generates `impl serde::Serialize` for plain structs with named fields —
//! the only shape the workspace derives on. Implemented directly on
//! `proc_macro` token streams (no `syn`/`quote`, which are unavailable
//! offline): the struct name and field names are extracted by a small
//! hand-rolled scan and the impl is emitted as source text.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match generate(input) {
        Ok(out) => out,
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn generate(input: TokenStream) -> Result<TokenStream, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();

    // Find `struct <Name>` then the `{ ... }` field group.
    let mut name = None;
    let mut body = None;
    let mut i = 0;
    while i < tokens.len() {
        if let TokenTree::Ident(id) = &tokens[i] {
            if id.to_string() == "struct" {
                if let Some(TokenTree::Ident(n)) = tokens.get(i + 1) {
                    name = Some(n.to_string());
                    for t in &tokens[i + 2..] {
                        match t {
                            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                                body = Some(g.stream());
                            }
                            // A `<` before the body means generics, which
                            // this stub does not support.
                            TokenTree::Punct(p) if p.as_char() == '<' && body.is_none() => {
                                return Err(
                                    "derive(Serialize) stub does not support generic structs"
                                        .into(),
                                );
                            }
                            _ => {}
                        }
                    }
                }
                break;
            }
        }
        i += 1;
    }
    let name = name.ok_or_else(|| "derive(Serialize) stub supports only structs".to_string())?;
    let body =
        body.ok_or_else(|| "derive(Serialize) stub supports only named-field structs".to_string())?;

    let fields = field_names(body);
    let mut entries = String::new();
    for f in &fields {
        entries.push_str(&format!(
            "({f:?}.to_string(), ::serde::Serialize::to_json(&self.{f})),"
        ));
    }
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_json(&self) -> ::serde::Json {{\n\
                 ::serde::Json::Object(vec![{entries}])\n\
             }}\n\
         }}"
    );
    out.parse()
        .map_err(|e| format!("derive(Serialize) stub generated invalid code: {e:?}"))
}

/// Extracts the field names from the token stream inside the struct braces:
/// for each comma-separated chunk, the last identifier before the `:`.
fn field_names(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut current: Option<String> = None;
    let mut seen_colon = false;
    // Angle-bracket depth: commas inside `Vec<(usize, f64)>`-style generic
    // arguments are part of the type, not field separators.
    let mut angle_depth = 0i32;
    for t in body {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if let Some(f) = current.take() {
                    fields.push(f);
                }
                seen_colon = false;
            }
            TokenTree::Punct(p) if p.as_char() == ':' => {
                seen_colon = true;
            }
            TokenTree::Ident(id) if !seen_colon => {
                let s = id.to_string();
                // Skip visibility and attribute-ish keywords; the field name
                // is the identifier immediately preceding the `:`.
                if s != "pub" {
                    current = Some(s);
                }
            }
            _ => {}
        }
    }
    if let Some(f) = current {
        fields.push(f);
    }
    fields
}
