//! Parallel sharded simulation: a deterministic multi-core executor.
//!
//! [`ParSimulator`] mirrors [`Simulator`](crate::Simulator)'s API but shards
//! nodes across a fixed pool of worker threads (`NodeId` modulo worker
//! count) and runs **conservative time-window synchronization**:
//!
//! 1. Every round, each shard publishes the timestamp of its earliest
//!    pending event; the global minimum `T0` and the lookahead window `W`
//!    (the minimum cross-node link latency from
//!    [`Topology::min_latency`](crate::Topology::min_latency)) define the
//!    round's *horizon* `T0 + W`.
//! 2. Each worker independently executes every delivery and wakeup of its
//!    own shard with `time < horizon`. This is sound because any packet a
//!    node emits at `t ≥ T0` arrives no earlier than `t + W ≥ horizon`:
//!    nothing a shard does inside the window can affect another shard
//!    *within* that window.
//! 3. Cross-shard packets produced during the window land in per-(source
//!    shard, destination shard) mailboxes and are merged into the
//!    destination shards' event queues at the round barrier.
//!
//! # Determinism contract
//!
//! A parallel run is bit-for-bit reproducible for a fixed seed **at every
//! worker count**, and reproduces the sequential simulator's [`NetStats`]
//! and events-processed counters on the workloads this repository pins
//! (the golden determinism suite in `crates/harness/tests`). Three
//! mechanisms make that hold:
//!
//! * **Sharding-invariant event ordering.** Every delivery carries the key
//!   `(arrival time, send time, sender id, sender emission index)` assigned
//!   *at send time* from per-sender state, never from arrival or mailbox
//!   order. Shard queues and the mailbox merge both order by this key, so
//!   the per-node delivery sequence is independent of how nodes are
//!   interleaved across workers. On a same-microsecond tie at one node the
//!   parallel engine is deterministic but *defined differently* from the
//!   sequential one: two packets order by `(send time, sender, emission)`
//!   and a packet always precedes a wakeup, whereas the sequential engine
//!   orders both kinds of tie by its global dispatch counter. The engines
//!   therefore agree whenever no two events for the same node collide on
//!   the same microsecond — which the golden suite and the CI gate verify
//!   for the pinned workloads (arrival times carry µs-grained serialization
//!   offsets, so collisions do not occur there).
//! * **Hash-split loss decisions.** Packet loss rolls
//!   [`loss_roll`]`(seed, sender, emission index)` — a pure function of
//!   per-sender state shared with the sequential simulator, not a draw from
//!   one global RNG stream that worker interleaving would scramble.
//! * **Merge-ordered accounting.** Worker-local [`NetStats`] and event
//!   counters are merged in shard order at the end of `run_until`; counter
//!   addition commutes, so totals equal the sequential run's.
//!
//! The lookahead must be positive: a topology whose minimum distinct-node
//! latency is zero cannot be windowed (a zero-latency packet could demand
//! same-instant cross-shard delivery), so construction asserts
//! `min_latency ≥ 1 µs`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::{Barrier, Mutex};

use p2_value::{wire, SimTime, Tuple};

use crate::host::{Envelope, Host};
use crate::id::{AddrInterner, NodeId};
use crate::sim::{loss_roll, normalize_seed, NetworkConfig, Simulator};
use crate::stats::NetStats;
use crate::timer::TimerIndex;
use crate::topology::Topology;

/// Sharding-invariant total order on packet deliveries.
///
/// `at` is the arrival time; `sent`, `src` and `emit` identify the emission
/// deterministically (the sender's virtual time, id, and per-sender
/// emission counter). Two distinct packets can never compare equal: `(src,
/// emit)` is unique per emission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct EventKey {
    at: SimTime,
    sent: SimTime,
    src: u32,
    emit: u64,
}

/// A packet bound for a node of a known shard.
#[derive(Debug)]
struct PEvent {
    key: EventKey,
    /// Index of the destination node within its shard's slot table.
    dst_local: u32,
    tuple: Tuple,
}

impl PartialEq for PEvent {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl Eq for PEvent {}

impl Ord for PEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl PartialOrd for PEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A packet to a destination address that was unknown when it was sent.
/// Like the sequential simulator's unresolved destinations it is
/// re-resolved later — the node may be added (and started) between runs
/// while the packet is in flight.
#[derive(Debug)]
struct LimboPacket {
    key: EventKey,
    dst: Arc<str>,
    tuple: Tuple,
}

struct PSlot<H> {
    host: H,
    /// Global id of this node (the slot's shard-local index is its position
    /// in the shard's slot table).
    id: NodeId,
    domain: usize,
    up: bool,
    started: bool,
    link_busy_until: SimTime,
    /// Per-sender emission counter; feeds both the delivery-order key and
    /// the loss hash, mirroring the sequential simulator's slot counter.
    sends: u64,
}

/// One worker's share of the simulation: its nodes, their pending
/// deliveries, and their timer index, all keyed by shard-local indices.
struct Shard<H> {
    slots: Vec<PSlot<H>>,
    heap: BinaryHeap<Reverse<PEvent>>,
    timers: TimerIndex,
    timer_seq: u64,
    stats: NetStats,
    deliveries_processed: u64,
    wakeups_processed: u64,
    /// Packets to unknown destinations emitted during the current run;
    /// collected into the simulator-level limbo at the end of `run_until`.
    limbo_out: Vec<LimboPacket>,
}

impl<H: Host> Shard<H> {
    fn new() -> Shard<H> {
        Shard {
            slots: Vec::new(),
            heap: BinaryHeap::new(),
            timers: TimerIndex::default(),
            timer_seq: 0,
            stats: NetStats::default(),
            deliveries_processed: 0,
            wakeups_processed: 0,
            limbo_out: Vec::new(),
        }
    }

    /// Microsecond timestamp of the earliest pending event (delivery or
    /// wakeup), or `u64::MAX` when idle.
    fn next_event_micros(&self) -> u64 {
        let delivery = self.heap.peek().map(|Reverse(e)| e.key.at.as_micros());
        let wakeup = self.timers.peek().map(|(at, _, _)| at.as_micros());
        delivery.unwrap_or(u64::MAX).min(wakeup.unwrap_or(u64::MAX))
    }

    /// (Re)schedules a node's wakeup to its next deadline, exactly like the
    /// sequential simulator (at most one live entry per node, deadline
    /// clamped to `now`).
    fn schedule_wakeup(&mut self, local: usize, now: SimTime) {
        let slot = &self.slots[local];
        if !slot.up || !slot.started {
            return;
        }
        let lid = NodeId::from_index(local);
        match slot.host.next_deadline() {
            None => self.timers.cancel(lid),
            Some(deadline) => {
                let at = deadline.max(now);
                if self.timers.deadline_of(lid) == Some(at) {
                    return;
                }
                self.timer_seq += 1;
                self.timers.set(lid, at, self.timer_seq);
            }
        }
    }

    /// Routes one emitted batch: in-shard packets go straight into the
    /// local heap, cross-shard packets into the staging buffer for the
    /// round's mailbox exchange, unknown destinations into the limbo list.
    fn dispatch(
        &mut self,
        local: usize,
        envelopes: Vec<Envelope>,
        now: SimTime,
        ctx: &ShardCtx<'_>,
        staging: &mut [Vec<PEvent>],
    ) {
        for env in envelopes {
            let routed = route_packet(
                env,
                now,
                &mut self.slots[local],
                &mut self.stats,
                ctx.topology,
                ctx.interner,
                ctx.locate,
                ctx.domains,
                ctx.loss_rate,
                ctx.seed,
            );
            match routed {
                None => {}
                Some(Routed::Event(shard, event)) => {
                    if shard as usize == ctx.me {
                        self.heap.push(Reverse(event));
                    } else {
                        staging[shard as usize].push(event);
                    }
                }
                Some(Routed::Limbo(packet)) => self.limbo_out.push(packet),
            }
        }
    }

    /// Executes every delivery and wakeup with `time < horizon`, in
    /// `(time, key)` order with deliveries before wakeups on a time tie.
    fn run_window(&mut self, horizon: SimTime, ctx: &ShardCtx<'_>, staging: &mut [Vec<PEvent>]) {
        loop {
            let next_delivery = self.heap.peek().map(|Reverse(e)| e.key.at);
            let next_wakeup = self.timers.peek().map(|(at, _, _)| at);
            let take_wakeup = match (next_delivery, next_wakeup) {
                (None, None) => break,
                (Some(_), None) => false,
                (None, Some(_)) => true,
                (Some(d), Some(w)) => w < d,
            };
            if take_wakeup {
                let (at, lid) = self
                    .timers
                    .peek()
                    .map(|(at, _, id)| (at, id))
                    .expect("peeked");
                if at >= horizon {
                    break;
                }
                self.timers.pop_first();
                self.wakeups_processed += 1;
                let local = lid.index();
                if self.slots[local].up && self.slots[local].started {
                    let out = self.slots[local].host.advance_to(at);
                    self.dispatch(local, out, at, ctx, staging);
                    self.schedule_wakeup(local, at);
                }
            } else {
                let at = next_delivery.expect("peeked");
                if at >= horizon {
                    break;
                }
                let Reverse(event) = self.heap.pop().expect("peeked");
                self.deliveries_processed += 1;
                let local = event.dst_local as usize;
                if self.slots[local].up && self.slots[local].started {
                    self.stats.record_delivery();
                    let out = self.slots[local].host.deliver(event.tuple, at);
                    self.dispatch(local, out, at, ctx, staging);
                    self.schedule_wakeup(local, at);
                } else {
                    self.stats.record_drop();
                }
            }
        }
    }
}

/// Read-only state a worker shares with every other worker.
#[derive(Clone, Copy)]
struct ShardCtx<'a> {
    me: usize,
    topology: &'a Topology,
    interner: &'a AddrInterner,
    /// `NodeId` → `(shard, shard-local index)`.
    locate: &'a [(u32, u32)],
    /// `NodeId` → topology domain (fixed at `add_node`).
    domains: &'a [usize],
    loss_rate: f64,
    seed: u64,
}

enum Routed {
    /// Deliver to `(shard, event)`.
    Event(u32, PEvent),
    /// Destination address unknown; park until it (maybe) appears.
    Limbo(LimboPacket),
}

/// The shared sender-side packet path: records the send, rolls loss,
/// serializes on the sender's access link, resolves the destination, and
/// stamps the sharding-invariant ordering key. Returns `None` for a lost
/// packet. Used identically by worker threads (via [`Shard::dispatch`]) and
/// the main thread (injections and node boots between runs).
///
/// LOCKSTEP CONTRACT: this is the parallel twin of the sequential
/// `Simulator::dispatch` (`sim.rs`). The two must make byte-identical
/// decisions — same accounting order, same loss roll, same serialization
/// and latency arithmetic, same unresolved-destination fallback — or
/// seq-vs-par equivalence breaks. Any edit here must be mirrored there;
/// the golden suite and the CI gate (`sim_bench --par`) enforce it.
#[allow(clippy::too_many_arguments)]
fn route_packet<H: Host>(
    env: Envelope,
    now: SimTime,
    slot: &mut PSlot<H>,
    stats: &mut NetStats,
    topology: &Topology,
    interner: &AddrInterner,
    locate: &[(u32, u32)],
    domains: &[usize],
    loss_rate: f64,
    seed: u64,
) -> Option<Routed> {
    let src = slot.id;
    let payload = wire::encoded_size(&env.tuple) + wire::UDP_IP_HEADER;
    stats.record_send(interner.addr(src), env.tuple.name(), payload);

    let emit = slot.sends;
    slot.sends += 1;
    if loss_rate > 0.0 && loss_roll(seed, src, emit) < loss_rate {
        stats.record_drop();
        return None;
    }

    let tx_delay = topology.access_tx_delay(payload);
    let start = slot.link_busy_until.max(now);
    let departure = start + tx_delay;
    slot.link_busy_until = departure;
    let src_domain = slot.domain;

    Some(match interner.get(env.dst.as_ref()) {
        Some(dst) => {
            let latency = if dst == src {
                SimTime::ZERO
            } else {
                topology.domain_latency(src_domain, domains[dst.index()])
            };
            let (shard, local) = locate[dst.index()];
            Routed::Event(
                shard,
                PEvent {
                    key: EventKey {
                        at: departure + latency,
                        sent: now,
                        src: src.index() as u32,
                        emit,
                    },
                    dst_local: local,
                    tuple: env.tuple,
                },
            )
        }
        None => {
            let dst_domain = topology.domain_of(env.dst.as_ref()).unwrap_or(0);
            let latency = topology.domain_latency(src_domain, dst_domain);
            Routed::Limbo(LimboPacket {
                key: EventKey {
                    at: departure + latency,
                    sent: now,
                    src: src.index() as u32,
                    emit,
                },
                dst: env.dst,
                tuple: env.tuple,
            })
        }
    })
}

/// The worker body: one conservative synchronization round per iteration
/// until the global event horizon passes `until`.
///
/// Host code can panic (a bug in an element, a debug assertion). A naked
/// panic would leave the other workers blocked forever on the un-poisonable
/// `std::sync::Barrier`, turning a test failure into a hang — so the window
/// execution is wrapped in `catch_unwind`, the panic raises the shared
/// `abort` flag, every worker leaves the barrier protocol at the same
/// round, and the original panic is re-raised so `thread::scope`
/// propagates it to the caller.
#[allow(clippy::too_many_arguments)]
fn worker_loop<H: Host>(
    shard: &mut Shard<H>,
    until: SimTime,
    window: SimTime,
    ctx: ShardCtx<'_>,
    next_times: &[AtomicU64],
    mailboxes: &[Vec<Mutex<Vec<PEvent>>>],
    barrier: &Barrier,
    abort: &AtomicBool,
) -> u64 {
    let shards = next_times.len();
    let mut staging: Vec<Vec<PEvent>> = (0..shards).map(|_| Vec::new()).collect();
    let mut rounds = 0u64;
    loop {
        // Phase 1: publish this shard's earliest pending event, then derive
        // the round's horizon from the global minimum. Every worker computes
        // the same `t0`, so they all break on the same round.
        next_times[ctx.me].store(shard.next_event_micros(), Ordering::SeqCst);
        barrier.wait();
        let t0 = next_times
            .iter()
            .map(|t| t.load(Ordering::SeqCst))
            .min()
            .unwrap_or(u64::MAX);
        if t0 > until.as_micros() {
            break;
        }
        rounds += 1;
        let horizon = SimTime::from_micros(
            t0.saturating_add(window.as_micros())
                .min(until.as_micros() + 1),
        );

        // Phase 2: run the window, then publish cross-shard packets. The
        // shard state is abandoned wholesale on a panic (the simulation is
        // dead either way), so AssertUnwindSafe is sound here.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            shard.run_window(horizon, &ctx, &mut staging);
        }));
        match &outcome {
            Ok(()) => {
                for (dst, buf) in staging.iter_mut().enumerate() {
                    if !buf.is_empty() {
                        mailboxes[ctx.me][dst]
                            .lock()
                            .expect("mailbox lock")
                            .append(buf);
                    }
                }
            }
            Err(_) => abort.store(true, Ordering::SeqCst),
        }
        barrier.wait();
        if abort.load(Ordering::SeqCst) {
            // Every worker observes the flag after the same barrier and
            // exits the protocol together; the panicking one re-raises.
            if let Err(panic) = outcome {
                std::panic::resume_unwind(panic);
            }
            break;
        }

        // Phase 3: absorb this shard's mailbox column. Push order does not
        // matter — the heap orders by the sharding-invariant key.
        for row in mailboxes {
            let incoming = std::mem::take(&mut *row[ctx.me].lock().expect("mailbox lock"));
            for event in incoming {
                shard.heap.push(Reverse(event));
            }
        }
        barrier.wait();
    }
    rounds
}

/// A deterministic, multi-core discrete-event simulator with the same
/// public surface as [`Simulator`]. See the module docs for the
/// synchronization protocol and determinism contract.
pub struct ParSimulator<H: Host> {
    topology: Topology,
    loss_rate: f64,
    seed: u64,
    interner: AddrInterner,
    shards: Vec<Shard<H>>,
    /// `NodeId` → `(shard, shard-local index)`.
    locate: Vec<(u32, u32)>,
    /// `NodeId` → topology domain.
    domains: Vec<usize>,
    limbo: Vec<LimboPacket>,
    now: SimTime,
    stats: NetStats,
    deliveries_processed: u64,
    wakeups_processed: u64,
    rounds: u64,
}

impl<H: Host> ParSimulator<H> {
    /// Creates an empty parallel simulator with `workers` shards (one
    /// worker thread per shard during [`ParSimulator::run_until`]).
    ///
    /// # Panics
    ///
    /// Panics if the topology's minimum distinct-node latency is below one
    /// microsecond — conservative windowing needs positive lookahead.
    pub fn new(config: NetworkConfig, workers: usize) -> ParSimulator<H> {
        let mut topology = config.topology;
        topology.rebuild_latency_matrix();
        assert!(
            topology.min_latency() >= SimTime::from_micros(1),
            "parallel simulation requires a positive minimum link latency \
             (topology lookahead is {:?})",
            topology.min_latency()
        );
        let workers = workers.max(1);
        ParSimulator {
            topology,
            loss_rate: config.loss_rate,
            seed: normalize_seed(config.seed),
            interner: AddrInterner::new(),
            shards: (0..workers).map(|_| Shard::new()).collect(),
            locate: Vec::new(),
            domains: Vec::new(),
            limbo: Vec::new(),
            now: SimTime::ZERO,
            stats: NetStats::default(),
            deliveries_processed: 0,
            wakeups_processed: 0,
            rounds: 0,
        }
    }

    /// Number of shards / worker threads.
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// Synchronization rounds executed so far (diagnostics: the per-round
    /// barrier cost amortizes over the events each round processes).
    pub fn sync_rounds(&self) -> u64 {
        self.rounds
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Traffic counters (merged across shards; exact between runs).
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Resets the traffic counters.
    pub fn reset_stats(&mut self) {
        self.stats = NetStats::default();
    }

    /// Total events processed since construction (deliveries, arrival-time
    /// drops, and wakeups), summed over shards.
    pub fn events_processed(&self) -> u64 {
        self.deliveries_processed + self.wakeups_processed
    }

    /// Wakeup events processed since construction.
    pub fn wakeups_processed(&self) -> u64 {
        self.wakeups_processed
    }

    /// Mutable access to the topology (placement of future nodes). The
    /// lookahead window is re-derived from the topology at the start of
    /// every run, so latency edits (followed by
    /// [`Topology::rebuild_latency_matrix`]) are honored.
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topology
    }

    /// The topology in use.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The interned id of a node address, if the node was ever added.
    pub fn node_id(&self, addr: &str) -> Option<NodeId> {
        self.interner.get(addr)
    }

    /// The address behind an interned id.
    pub fn addr_of(&self, id: NodeId) -> &str {
        self.interner.addr(id)
    }

    /// Addresses of all nodes ever added, in insertion order.
    pub fn addresses_iter(&self) -> impl Iterator<Item = &str> {
        self.interner.iter()
    }

    /// Addresses of all nodes ever added, in insertion order (cloning).
    pub fn addresses(&self) -> Vec<String> {
        self.addresses_iter().map(str::to_string).collect()
    }

    /// Addresses of nodes currently up, in insertion order.
    pub fn up_addresses_iter(&self) -> impl Iterator<Item = &str> {
        (0..self.locate.len())
            .map(NodeId::from_index)
            .filter(|id| self.slot(*id).up)
            .map(|id| self.interner.addr(id))
    }

    /// Addresses of nodes currently up (cloning).
    pub fn up_addresses(&self) -> Vec<String> {
        self.up_addresses_iter().map(str::to_string).collect()
    }

    /// Ids of nodes currently up, in insertion order.
    pub fn up_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.locate.len())
            .map(NodeId::from_index)
            .filter(|id| self.slot(*id).up)
    }

    /// Number of nodes currently up.
    pub fn up_count(&self) -> usize {
        self.up_ids().count()
    }

    /// Total number of nodes ever added.
    pub fn node_count(&self) -> usize {
        self.locate.len()
    }

    fn slot(&self, id: NodeId) -> &PSlot<H> {
        let (shard, local) = self.locate[id.index()];
        &self.shards[shard as usize].slots[local as usize]
    }

    fn slot_mut(&mut self, id: NodeId) -> &mut PSlot<H> {
        let (shard, local) = self.locate[id.index()];
        &mut self.shards[shard as usize].slots[local as usize]
    }

    /// Shared access to a node's host.
    pub fn node(&self, addr: &str) -> Option<&H> {
        self.node_id(addr).map(|id| &self.slot(id).host)
    }

    /// Mutable access to a node's host.
    pub fn node_mut(&mut self, addr: &str) -> Option<&mut H> {
        self.node_id(addr).map(|id| &mut self.slot_mut(id).host)
    }

    /// Shared access to a node's host by id.
    pub fn node_by_id(&self, id: NodeId) -> &H {
        &self.slot(id).host
    }

    /// True if the node exists and is up.
    pub fn is_up(&self, addr: &str) -> bool {
        self.node_id(addr)
            .map(|id| self.slot(id).up)
            .unwrap_or(false)
    }

    /// Adds a node (initially up but not started), sharding it by id.
    pub fn add_node(&mut self, addr: impl Into<String>, host: H) -> NodeId {
        let addr = addr.into();
        let domain = self.topology.place(addr.clone());
        let id = self.interner.intern(&addr);
        assert_eq!(
            id.index(),
            self.locate.len(),
            "address {addr:?} was already added; use replace_node"
        );
        let shard = id.index() % self.shards.len();
        let local = self.shards[shard].slots.len();
        self.locate.push((shard as u32, local as u32));
        self.domains.push(domain);
        self.shards[shard].slots.push(PSlot {
            host,
            id,
            domain,
            up: true,
            started: false,
            link_busy_until: SimTime::ZERO,
            sends: 0,
        });
        self.shards[shard].timers.grow(local + 1);
        id
    }

    /// Boots a node at the current virtual time.
    pub fn start_node(&mut self, addr: &str) {
        if let Some(id) = self.node_id(addr) {
            self.start_node_id(id);
        }
    }

    /// Boots a node by id at the current virtual time.
    pub fn start_node_id(&mut self, id: NodeId) {
        let now = self.now;
        let slot = self.slot_mut(id);
        if !slot.up {
            return;
        }
        slot.started = true;
        let out = slot.host.start(now);
        self.dispatch_main(id, out);
        self.schedule_wakeup_main(id);
    }

    /// Boots every node that is up and not yet started, in insertion order.
    pub fn start_all(&mut self) {
        for i in 0..self.locate.len() {
            let id = NodeId::from_index(i);
            let slot = self.slot(id);
            if slot.up && !slot.started {
                self.start_node_id(id);
            }
        }
    }

    /// Delivers an application-level tuple to a node immediately.
    pub fn inject(&mut self, addr: &str, tuple: Tuple) {
        if let Some(id) = self.node_id(addr) {
            self.inject_id(id, tuple);
        }
    }

    /// Delivers an application-level tuple to a node by id.
    pub fn inject_id(&mut self, id: NodeId, tuple: Tuple) {
        let now = self.now;
        let slot = self.slot_mut(id);
        if !slot.up {
            return;
        }
        let out = slot.host.deliver(tuple, now);
        self.dispatch_main(id, out);
        self.schedule_wakeup_main(id);
    }

    /// Injects a batch of tuples at the current virtual time, in order,
    /// batching consecutive same-node tuples through
    /// [`Host::deliver_many`] exactly like the sequential simulator.
    pub fn inject_many<S: AsRef<str>>(&mut self, batch: impl IntoIterator<Item = (S, Tuple)>) {
        let mut pending: Option<(NodeId, Vec<Tuple>)> = None;
        for (addr, tuple) in batch {
            let Some(id) = self.node_id(addr.as_ref()) else {
                continue;
            };
            match &mut pending {
                Some((pid, tuples)) if *pid == id => tuples.push(tuple),
                _ => {
                    if let Some((pid, tuples)) = pending.take() {
                        self.inject_batch_id(pid, tuples);
                    }
                    pending = Some((id, vec![tuple]));
                }
            }
        }
        if let Some((pid, tuples)) = pending.take() {
            self.inject_batch_id(pid, tuples);
        }
    }

    fn inject_batch_id(&mut self, id: NodeId, tuples: Vec<Tuple>) {
        let now = self.now;
        let slot = self.slot_mut(id);
        if !slot.up {
            return;
        }
        let out = match tuples.len() {
            1 => slot
                .host
                .deliver(tuples.into_iter().next().expect("len checked"), now),
            _ => slot.host.deliver_many(tuples, now),
        };
        self.dispatch_main(id, out);
        self.schedule_wakeup_main(id);
    }

    /// Marks a node as failed: its timers stop and packets addressed to it
    /// are dropped.
    pub fn take_down(&mut self, addr: &str) {
        if let Some(id) = self.node_id(addr) {
            let (shard, local) = self.locate[id.index()];
            let shard = &mut self.shards[shard as usize];
            shard.slots[local as usize].up = false;
            shard.timers.cancel(NodeId::from_index(local as usize));
        }
    }

    /// Replaces a failed node with a fresh host (crash-rejoin churn) and
    /// boots it. The address keeps its id, shard, and placement.
    pub fn replace_node(&mut self, addr: &str, host: H) {
        let id = match self.node_id(addr) {
            Some(id) => {
                let now = self.now;
                let (shard, local) = self.locate[id.index()];
                let shard = &mut self.shards[shard as usize];
                let slot = &mut shard.slots[local as usize];
                slot.host = host;
                slot.up = true;
                slot.started = false;
                slot.link_busy_until = now;
                shard.timers.cancel(NodeId::from_index(local as usize));
                id
            }
            None => self.add_node(addr.to_string(), host),
        };
        self.start_node_id(id);
    }

    /// Routes envelopes emitted on the main thread (injections, boots)
    /// using the same packet path as the workers.
    fn dispatch_main(&mut self, id: NodeId, envelopes: Vec<Envelope>) {
        let now = self.now;
        let (src_shard, src_local) = self.locate[id.index()];
        for env in envelopes {
            let routed = route_packet(
                env,
                now,
                &mut self.shards[src_shard as usize].slots[src_local as usize],
                &mut self.stats,
                &self.topology,
                &self.interner,
                &self.locate,
                &self.domains,
                self.loss_rate,
                self.seed,
            );
            match routed {
                None => {}
                Some(Routed::Event(shard, event)) => {
                    self.shards[shard as usize].heap.push(Reverse(event));
                }
                Some(Routed::Limbo(packet)) => self.limbo.push(packet),
            }
        }
    }

    fn schedule_wakeup_main(&mut self, id: NodeId) {
        let now = self.now;
        let (shard, local) = self.locate[id.index()];
        self.shards[shard as usize].schedule_wakeup(local as usize, now);
    }

    /// Re-resolves parked unknown-destination packets against the current
    /// interner: destinations that appeared since the last run get their
    /// packet queued on the owning shard; packets whose destination still
    /// does not exist and whose arrival falls inside this run are counted
    /// as arrival-time drops (exactly the accounting the sequential
    /// simulator performs when it pops them).
    fn settle_limbo(&mut self, until: SimTime) {
        if self.limbo.is_empty() {
            return;
        }
        let mut keep = Vec::new();
        for packet in std::mem::take(&mut self.limbo) {
            match self.interner.get(&packet.dst) {
                Some(id) => {
                    let (shard, local) = self.locate[id.index()];
                    self.shards[shard as usize].heap.push(Reverse(PEvent {
                        key: packet.key,
                        dst_local: local,
                        tuple: packet.tuple,
                    }));
                }
                None if packet.key.at <= until => {
                    self.deliveries_processed += 1;
                    self.stats.record_drop();
                }
                None => keep.push(packet),
            }
        }
        self.limbo = keep;
    }

    /// Runs the simulation until virtual time `until` on the worker pool.
    pub fn run_until(&mut self, until: SimTime) {
        self.settle_limbo(until);
        // Re-derived every run so topology edits are honored — and
        // re-asserted: silently clamping a sub-µs lookahead would let a
        // cross-shard packet arrive inside the window that produced it
        // (out-of-order delivery), quietly breaking the contract the
        // constructor enforces loudly.
        let window = self.topology.min_latency();
        assert!(
            window >= SimTime::from_micros(1),
            "parallel simulation requires a positive minimum link latency \
             (topology lookahead is {window:?} after edits)"
        );
        let shards = self.shards.len();
        let next_times: Vec<AtomicU64> = (0..shards).map(|_| AtomicU64::new(u64::MAX)).collect();
        let mailboxes: Vec<Vec<Mutex<Vec<PEvent>>>> = (0..shards)
            .map(|_| (0..shards).map(|_| Mutex::new(Vec::new())).collect())
            .collect();
        let barrier = Barrier::new(shards);
        let rounds = AtomicU64::new(0);
        let abort = AtomicBool::new(false);
        {
            let topology = &self.topology;
            let interner = &self.interner;
            let locate = &self.locate[..];
            let domains = &self.domains[..];
            let loss_rate = self.loss_rate;
            let seed = self.seed;
            let next_times = &next_times;
            let mailboxes = &mailboxes;
            let barrier = &barrier;
            let rounds = &rounds;
            let abort = &abort;
            std::thread::scope(|scope| {
                for (me, shard) in self.shards.iter_mut().enumerate() {
                    let ctx = ShardCtx {
                        me,
                        topology,
                        interner,
                        locate,
                        domains,
                        loss_rate,
                        seed,
                    };
                    scope.spawn(move || {
                        let ran = worker_loop(
                            shard, until, window, ctx, next_times, mailboxes, barrier, abort,
                        );
                        // Every worker runs the same number of rounds; one
                        // representative publishes the count.
                        if me == 0 {
                            rounds.store(ran, Ordering::Relaxed);
                        }
                    });
                }
            });
        }
        self.now = until;
        self.rounds += rounds.load(Ordering::Relaxed);
        // Merge worker-local accounting in shard order (deterministic) and
        // fold this run's unknown-destination packets into limbo, counting
        // the ones that were due within this run as drops.
        let mut limbo_new = Vec::new();
        for shard in &mut self.shards {
            let shard_stats = std::mem::take(&mut shard.stats);
            self.stats.merge(&shard_stats);
            self.deliveries_processed += std::mem::take(&mut shard.deliveries_processed);
            self.wakeups_processed += std::mem::take(&mut shard.wakeups_processed);
            limbo_new.append(&mut shard.limbo_out);
        }
        for packet in limbo_new {
            if packet.key.at <= until {
                self.deliveries_processed += 1;
                self.stats.record_drop();
            } else {
                self.limbo.push(packet);
            }
        }
    }

    /// Runs the simulation for an additional duration.
    pub fn run_for(&mut self, duration: SimTime) {
        self.run_until(self.now + duration);
    }

    /// Number of scheduled wakeup entries across shards (at most one per
    /// node).
    pub fn scheduled_wakeups(&self) -> usize {
        self.shards.iter().map(|s| s.timers.len()).sum()
    }

    /// Number of packets currently in flight (shard queues plus parked
    /// unknown-destination packets).
    pub fn packets_in_flight(&self) -> usize {
        self.shards.iter().map(|s| s.heap.len()).sum::<usize>() + self.limbo.len()
    }

    /// Verifies the sharded indices agree (interner ⇄ locate table ⇄ shard
    /// slots ⇄ per-shard timer indices); panics on the first inconsistency.
    pub fn check_consistency(&self) {
        assert_eq!(
            self.interner.len(),
            self.locate.len(),
            "interner and locate table disagree on node count"
        );
        assert_eq!(self.locate.len(), self.domains.len());
        let per_shard: usize = self.shards.iter().map(|s| s.slots.len()).sum();
        assert_eq!(
            per_shard,
            self.locate.len(),
            "shard slots do not partition the nodes"
        );
        for i in 0..self.locate.len() {
            let id = NodeId::from_index(i);
            assert_eq!(
                self.interner.get(self.interner.addr(id)),
                Some(id),
                "interner round-trip failed for {id}"
            );
            let (shard, local) = self.locate[i];
            assert_eq!(
                shard as usize,
                i % self.shards.len(),
                "node {id} is on the wrong shard"
            );
            let slot = &self.shards[shard as usize].slots[local as usize];
            assert_eq!(
                slot.id, id,
                "locate table points at the wrong slot for {id}"
            );
            assert_eq!(slot.domain, self.domains[i]);
        }
        for shard in &self.shards {
            shard.timers.check_consistency();
            assert!(
                shard.timers.len() <= shard.slots.len(),
                "more timer entries than nodes in a shard"
            );
            for local in 0..shard.slots.len() {
                if let Some(deadline) = shard.timers.deadline_of(NodeId::from_index(local)) {
                    let slot = &shard.slots[local];
                    assert!(
                        slot.up && slot.started,
                        "down or unstarted node {} has a timer entry at {deadline}",
                        slot.id
                    );
                }
            }
            for Reverse(event) in shard.heap.iter() {
                assert!(
                    (event.dst_local as usize) < shard.slots.len(),
                    "in-flight packet addressed to a dangling shard-local slot"
                );
            }
        }
    }
}

/// Either simulator behind one front-end, so harness code can switch
/// between the sequential and sharded engines with a runtime knob while
/// keeping direct method calls (`cluster.sim.stats()`, …).
pub enum AnySimulator<H: Host> {
    /// The sequential event loop ([`Simulator`]).
    Seq(Simulator<H>),
    /// The sharded multi-core executor ([`ParSimulator`]).
    Par(ParSimulator<H>),
}

macro_rules! delegate {
    ($self:ident, $method:ident $(, $arg:expr)*) => {
        match $self {
            AnySimulator::Seq(sim) => sim.$method($($arg),*),
            AnySimulator::Par(sim) => sim.$method($($arg),*),
        }
    };
}

impl<H: Host> AnySimulator<H> {
    /// Builds the sequential engine, or the sharded one when
    /// `par_threads` is `Some(n)`.
    pub fn build(config: NetworkConfig, par_threads: Option<usize>) -> AnySimulator<H> {
        match par_threads {
            None => AnySimulator::Seq(Simulator::new(config)),
            Some(n) => AnySimulator::Par(ParSimulator::new(config, n)),
        }
    }

    /// Worker threads in use (1 for the sequential engine).
    pub fn par_workers(&self) -> usize {
        match self {
            AnySimulator::Seq(_) => 1,
            AnySimulator::Par(sim) => sim.workers(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        delegate!(self, now)
    }

    /// Traffic counters.
    pub fn stats(&self) -> &NetStats {
        delegate!(self, stats)
    }

    /// Resets the traffic counters.
    pub fn reset_stats(&mut self) {
        delegate!(self, reset_stats)
    }

    /// Total events processed since construction.
    pub fn events_processed(&self) -> u64 {
        delegate!(self, events_processed)
    }

    /// Wakeup events processed since construction.
    pub fn wakeups_processed(&self) -> u64 {
        delegate!(self, wakeups_processed)
    }

    /// The topology in use.
    pub fn topology(&self) -> &Topology {
        delegate!(self, topology)
    }

    /// Mutable access to the topology.
    pub fn topology_mut(&mut self) -> &mut Topology {
        delegate!(self, topology_mut)
    }

    /// The interned id of a node address, if the node was ever added.
    pub fn node_id(&self, addr: &str) -> Option<NodeId> {
        delegate!(self, node_id, addr)
    }

    /// The address behind an interned id.
    pub fn addr_of(&self, id: NodeId) -> &str {
        delegate!(self, addr_of, id)
    }

    /// Addresses of all nodes ever added, in insertion order.
    pub fn addresses_iter(&self) -> Box<dyn Iterator<Item = &str> + '_> {
        match self {
            AnySimulator::Seq(sim) => Box::new(sim.addresses_iter()),
            AnySimulator::Par(sim) => Box::new(sim.addresses_iter()),
        }
    }

    /// Addresses of all nodes ever added, in insertion order (cloning).
    pub fn addresses(&self) -> Vec<String> {
        delegate!(self, addresses)
    }

    /// Addresses of nodes currently up, in insertion order.
    pub fn up_addresses_iter(&self) -> Box<dyn Iterator<Item = &str> + '_> {
        match self {
            AnySimulator::Seq(sim) => Box::new(sim.up_addresses_iter()),
            AnySimulator::Par(sim) => Box::new(sim.up_addresses_iter()),
        }
    }

    /// Addresses of nodes currently up (cloning).
    pub fn up_addresses(&self) -> Vec<String> {
        delegate!(self, up_addresses)
    }

    /// Ids of nodes currently up, in insertion order.
    pub fn up_ids(&self) -> Box<dyn Iterator<Item = NodeId> + '_> {
        match self {
            AnySimulator::Seq(sim) => Box::new(sim.up_ids()),
            AnySimulator::Par(sim) => Box::new(sim.up_ids()),
        }
    }

    /// Number of nodes currently up.
    pub fn up_count(&self) -> usize {
        delegate!(self, up_count)
    }

    /// Total number of nodes ever added.
    pub fn node_count(&self) -> usize {
        delegate!(self, node_count)
    }

    /// Shared access to a node's host.
    pub fn node(&self, addr: &str) -> Option<&H> {
        delegate!(self, node, addr)
    }

    /// Mutable access to a node's host.
    pub fn node_mut(&mut self, addr: &str) -> Option<&mut H> {
        delegate!(self, node_mut, addr)
    }

    /// Shared access to a node's host by id.
    pub fn node_by_id(&self, id: NodeId) -> &H {
        delegate!(self, node_by_id, id)
    }

    /// True if the node exists and is up.
    pub fn is_up(&self, addr: &str) -> bool {
        delegate!(self, is_up, addr)
    }

    /// Adds a node (initially up but not started).
    pub fn add_node(&mut self, addr: impl Into<String>, host: H) -> NodeId {
        delegate!(self, add_node, addr, host)
    }

    /// Boots a node at the current virtual time.
    pub fn start_node(&mut self, addr: &str) {
        delegate!(self, start_node, addr)
    }

    /// Boots a node by id at the current virtual time.
    pub fn start_node_id(&mut self, id: NodeId) {
        delegate!(self, start_node_id, id)
    }

    /// Boots every node that is up and not yet started, in insertion order.
    pub fn start_all(&mut self) {
        delegate!(self, start_all)
    }

    /// Delivers an application-level tuple to a node immediately.
    pub fn inject(&mut self, addr: &str, tuple: Tuple) {
        delegate!(self, inject, addr, tuple)
    }

    /// Delivers an application-level tuple to a node by id.
    pub fn inject_id(&mut self, id: NodeId, tuple: Tuple) {
        delegate!(self, inject_id, id, tuple)
    }

    /// Injects a batch of tuples at the current virtual time, in order.
    pub fn inject_many<S: AsRef<str>>(&mut self, batch: impl IntoIterator<Item = (S, Tuple)>) {
        delegate!(self, inject_many, batch)
    }

    /// Marks a node as failed.
    pub fn take_down(&mut self, addr: &str) {
        delegate!(self, take_down, addr)
    }

    /// Replaces a failed node with a fresh host and boots it.
    pub fn replace_node(&mut self, addr: &str, host: H) {
        delegate!(self, replace_node, addr, host)
    }

    /// Runs the simulation until virtual time `until`.
    pub fn run_until(&mut self, until: SimTime) {
        delegate!(self, run_until, until)
    }

    /// Runs the simulation for an additional duration.
    pub fn run_for(&mut self, duration: SimTime) {
        delegate!(self, run_for, duration)
    }

    /// Number of scheduled wakeup entries.
    pub fn scheduled_wakeups(&self) -> usize {
        delegate!(self, scheduled_wakeups)
    }

    /// Number of packets currently in flight.
    pub fn packets_in_flight(&self) -> usize {
        delegate!(self, packets_in_flight)
    }

    /// Verifies the engine's internal indices agree; panics on mismatch.
    pub fn check_consistency(&self) {
        delegate!(self, check_consistency)
    }
}

/// Compile-time audit for the sharding requirement: every host (and the
/// whole sharded simulator) must be `Send` so shards can move to worker
/// threads. `Host: Send` is a supertrait bound, so this holds for any `H`;
/// type-checking this definition keeps it from regressing silently.
#[allow(dead_code)]
fn _send_audit<H: Host>() {
    fn assert_send<T: Send>() {}
    assert_send::<ParSimulator<H>>();
    assert_send::<Simulator<H>>();
    assert_send::<AnySimulator<H>>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_value::TupleBuilder;

    /// The same toy host the sequential simulator's tests use: answers
    /// every `ping` with a `pong`, sends one `hello`-ping to a configured
    /// peer every 5 seconds.
    struct Toy {
        addr: String,
        peer: Option<String>,
        next_hello: Option<SimTime>,
        pongs_received: usize,
        pings_received: usize,
        spurious_wakeups: usize,
    }

    impl Toy {
        fn new(addr: &str, peer: Option<&str>) -> Toy {
            Toy {
                addr: addr.to_string(),
                peer: peer.map(str::to_string),
                next_hello: None,
                pongs_received: 0,
                pings_received: 0,
                spurious_wakeups: 0,
            }
        }
    }

    impl Host for Toy {
        fn start(&mut self, now: SimTime) -> Vec<Envelope> {
            if self.peer.is_some() {
                self.next_hello = Some(now + SimTime::from_secs(5));
            }
            Vec::new()
        }

        fn deliver(&mut self, tuple: Tuple, _now: SimTime) -> Vec<Envelope> {
            match tuple.name() {
                "ping" => {
                    self.pings_received += 1;
                    let from = tuple.field(0).to_display_string();
                    vec![Envelope::new(
                        from,
                        TupleBuilder::new("pong").push(self.addr.as_str()).build(),
                    )]
                }
                "pong" => {
                    self.pongs_received += 1;
                    Vec::new()
                }
                _ => Vec::new(),
            }
        }

        fn advance_to(&mut self, now: SimTime) -> Vec<Envelope> {
            let mut out = Vec::new();
            match self.next_hello {
                Some(t) if t <= now => {
                    if let Some(peer) = &self.peer {
                        out.push(Envelope::new(
                            peer.clone(),
                            TupleBuilder::new("ping").push(self.addr.as_str()).build(),
                        ));
                    }
                    self.next_hello = Some(t + SimTime::from_secs(5));
                }
                _ => self.spurious_wakeups += 1,
            }
            out
        }

        fn next_deadline(&self) -> Option<SimTime> {
            self.next_hello
        }
    }

    fn populate(n: usize, add: &mut dyn FnMut(String, Toy)) {
        for i in 0..n {
            let addr = format!("n{i}");
            let peer = format!("n{}", (i + 1) % n);
            add(addr.clone(), Toy::new(&addr, Some(&peer)));
        }
    }

    fn summarize_seq(sim: &Simulator<Toy>, n: usize) -> (u64, u64, u64, u64, u64, Vec<usize>) {
        let pings = (0..n)
            .map(|i| sim.node(&format!("n{i}")).unwrap().pings_received)
            .collect();
        let s = sim.stats();
        (
            s.messages_sent,
            s.messages_delivered,
            s.messages_dropped,
            s.bytes_sent,
            sim.events_processed(),
            pings,
        )
    }

    fn summarize_par(sim: &ParSimulator<Toy>, n: usize) -> (u64, u64, u64, u64, u64, Vec<usize>) {
        let pings = (0..n)
            .map(|i| sim.node(&format!("n{i}")).unwrap().pings_received)
            .collect();
        let s = sim.stats();
        (
            s.messages_sent,
            s.messages_delivered,
            s.messages_dropped,
            s.bytes_sent,
            sim.events_processed(),
            pings,
        )
    }

    fn config(loss: f64) -> NetworkConfig {
        let mut config = NetworkConfig::emulab_default(7);
        config.loss_rate = loss;
        config
    }

    #[test]
    fn parallel_matches_sequential_ring_with_and_without_loss() {
        for loss in [0.0, 0.3] {
            let n = 12;
            let mut seq: Simulator<Toy> = Simulator::new(config(loss));
            populate(n, &mut |a, h| {
                seq.add_node(a, h);
            });
            seq.start_all();
            seq.run_until(SimTime::from_secs(60));
            let golden = summarize_seq(&seq, n);

            for workers in [1, 2, 3, 5] {
                let mut par: ParSimulator<Toy> = ParSimulator::new(config(loss), workers);
                populate(n, &mut |a, h| {
                    par.add_node(a, h);
                });
                par.start_all();
                par.run_until(SimTime::from_secs(60));
                assert_eq!(
                    summarize_par(&par, n),
                    golden,
                    "{workers}-worker run diverged from sequential at loss {loss}"
                );
                assert!(par.sync_rounds() > 0);
                for i in 0..n {
                    assert_eq!(
                        par.node(&format!("n{i}")).unwrap().spurious_wakeups,
                        0,
                        "n{i} saw a spurious wakeup"
                    );
                }
                par.check_consistency();
            }
        }
    }

    enum Churn {
        Run(u64),
        Down(usize),
        Replace(usize),
    }

    const CHURN_SCRIPT: &[Churn] = &[
        Churn::Run(20),
        Churn::Down(3),
        Churn::Run(15),
        Churn::Replace(3),
        Churn::Down(0),
        Churn::Run(25),
        Churn::Replace(0),
        Churn::Run(40),
    ];

    #[test]
    fn churn_between_runs_matches_sequential() {
        let n = 8;
        let fresh = |i: usize| {
            let a = format!("n{i}");
            Toy::new(&a, Some(&format!("n{}", (i + 1) % n)))
        };

        let mut seq: Simulator<Toy> = Simulator::new(config(0.0));
        populate(n, &mut |a, h| {
            seq.add_node(a, h);
        });
        seq.start_all();
        for step in CHURN_SCRIPT {
            match step {
                Churn::Run(s) => seq.run_for(SimTime::from_secs(*s)),
                Churn::Down(i) => seq.take_down(&format!("n{i}")),
                Churn::Replace(i) => seq.replace_node(&format!("n{i}"), fresh(*i)),
            }
        }
        let golden = summarize_seq(&seq, n);

        for workers in [1, 3] {
            let mut par: ParSimulator<Toy> = ParSimulator::new(config(0.0), workers);
            populate(n, &mut |a, h| {
                par.add_node(a, h);
            });
            par.start_all();
            for step in CHURN_SCRIPT {
                match step {
                    Churn::Run(s) => par.run_for(SimTime::from_secs(*s)),
                    Churn::Down(i) => par.take_down(&format!("n{i}")),
                    Churn::Replace(i) => par.replace_node(&format!("n{i}"), fresh(*i)),
                }
            }
            assert_eq!(
                summarize_par(&par, n),
                golden,
                "churned {workers}-worker run diverged from sequential"
            );
            par.check_consistency();
        }
    }

    #[test]
    fn packet_to_a_node_added_mid_flight_is_delivered() {
        // Mirrors the sequential test: destinations unknown at dispatch are
        // parked in limbo and re-resolved between runs.
        let mut par: ParSimulator<Toy> = ParSimulator::new(config(0.0), 2);
        par.add_node("n0", Toy::new("n0", None));
        par.add_node("n1", Toy::new("n1", None));
        par.start_all();
        par.inject("n0", TupleBuilder::new("ping").push("n2").build());
        assert_eq!(par.packets_in_flight(), 1);
        par.run_for(SimTime::from_millis(2));
        par.add_node("n2", Toy::new("n2", None));
        par.start_node("n2");
        par.run_for(SimTime::from_secs(1));
        assert_eq!(par.node("n2").unwrap().pongs_received, 1);
        par.check_consistency();

        // A packet to an address that never materializes is dropped at
        // arrival time, with the drop and the processed event counted.
        let drops_before = par.stats().messages_dropped;
        let events_before = par.events_processed();
        par.inject("n0", TupleBuilder::new("ping").push("ghost").build());
        par.run_for(SimTime::from_secs(1));
        assert_eq!(par.stats().messages_dropped, drops_before + 1);
        assert_eq!(par.events_processed(), events_before + 1);
        assert_eq!(par.packets_in_flight(), 0);
    }

    /// A host that panics when its timer first fires.
    struct Exploder;

    impl Host for Exploder {
        fn start(&mut self, _now: SimTime) -> Vec<Envelope> {
            Vec::new()
        }
        fn deliver(&mut self, _tuple: Tuple, _now: SimTime) -> Vec<Envelope> {
            Vec::new()
        }
        fn advance_to(&mut self, _now: SimTime) -> Vec<Envelope> {
            panic!("host bug");
        }
        fn next_deadline(&self) -> Option<SimTime> {
            Some(SimTime::from_secs(1))
        }
    }

    // `thread::scope` re-panics with its own payload, so no `expected`
    // message: the property under test is that the panic PROPAGATES at all
    // instead of deadlocking the surviving workers on the barrier.
    #[test]
    #[should_panic]
    fn a_host_panic_propagates_instead_of_deadlocking_the_barrier() {
        let mut par: ParSimulator<Exploder> = ParSimulator::new(config(0.0), 3);
        // Several nodes across shards so the non-panicking workers are
        // really blocked in the barrier protocol when the panic hits.
        for i in 0..6 {
            par.add_node(format!("n{i}"), Exploder);
        }
        par.start_all();
        par.run_until(SimTime::from_secs(10));
    }

    #[test]
    fn any_simulator_switches_engines() {
        let mut seq: AnySimulator<Toy> = AnySimulator::build(config(0.0), None);
        let mut par: AnySimulator<Toy> = AnySimulator::build(config(0.0), Some(3));
        assert_eq!(seq.par_workers(), 1);
        assert_eq!(par.par_workers(), 3);
        for sim in [&mut seq, &mut par] {
            sim.add_node("n0", Toy::new("n0", Some("n1")));
            sim.add_node("n1", Toy::new("n1", None));
            sim.start_all();
            sim.run_until(SimTime::from_secs(26));
            sim.check_consistency();
        }
        assert_eq!(seq.stats().messages_sent, par.stats().messages_sent);
        assert_eq!(seq.events_processed(), par.events_processed());
        assert_eq!(seq.node("n1").unwrap().pings_received, 5);
        assert_eq!(par.node("n1").unwrap().pings_received, 5);
        assert_eq!(
            seq.up_addresses_iter().collect::<Vec<_>>(),
            par.up_addresses_iter().collect::<Vec<_>>()
        );
    }
}
