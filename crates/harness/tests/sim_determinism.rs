//! Golden determinism tests: the simulator must produce bit-identical
//! traffic statistics for a fixed seed, across runs and across refactors of
//! the event core (NodeId interner, timer index) *and* of the per-node
//! dataflow engine (compiled adjacency, scratch buffers, shared plans).
//!
//! Also property-tests that the engine's compiled adjacency table preserves
//! `Graph::connect` semantics for arbitrary edge sets.

use p2_dataflow::{Element, ElementCtx, Engine, Graph, Route};
use p2_harness::ChordCluster;
use p2_value::{Tuple, Uint160};
use proptest::prelude::*;
use std::collections::HashMap;

/// Runs the golden measurement window on an already-built cluster.
fn measure(mut cluster: ChordCluster) -> (u64, u64, u64, u64, u64) {
    cluster.sim.reset_stats();
    let events_before = cluster.sim.events_processed();
    cluster.run_for(60.0);
    let s = cluster.sim.stats();
    (
        s.messages_sent,
        s.messages_delivered,
        s.messages_dropped,
        s.bytes_sent,
        cluster.sim.events_processed() - events_before,
    )
}

fn ring_stats(n: usize, warmup: u64, seed: u64) -> (u64, u64, u64, u64, u64) {
    measure(ChordCluster::build(n, warmup, seed))
}

/// The historical golden run: delta-driven scheduling off, i.e. the
/// poke-everything engine every pin before PR 10 was captured on.
fn ring_stats_unscheduled(n: usize, warmup: u64, seed: u64) -> (u64, u64, u64, u64, u64) {
    measure(
        ChordCluster::builder(n, seed)
            .delta_schedule(false)
            .build(warmup),
    )
}

fn ring_stats_par(n: usize, warmup: u64, seed: u64, workers: usize) -> (u64, u64, u64, u64, u64) {
    measure(
        ChordCluster::builder(n, seed)
            .par_threads(workers)
            .build(warmup),
    )
}

/// The golden NetStats + event-count pin for `build(100, 120, 42)`.
///
/// Captured on the pre-refactor (PR 1) simulator and reproduced bit-for-bit
/// by every engine overhaul since (PR 2 NodeId/timer index, PR 3 compiled
/// adjacency, PR 6 strands, PR 7 views, PR 10 delta scheduling). The PR 10
/// re-baseline kept the numbers identical on purpose: the scheduler only
/// suppresses pokes whose invocations are provable no-ops, so the message
/// stream — and therefore this pin — must not move. Update only for a
/// deliberate semantic change, and update `docs/golden-pins.md` with it.
const GOLDEN_100: (u64, u64, u64, u64, u64) = (29_634, 29_638, 0, 2_787_660, 31_838);

/// The final ring state: every up node's best-successor pointer.
fn ring_pointers(cluster: &ChordCluster) -> Vec<(String, Option<String>)> {
    cluster
        .sim
        .up_addresses_iter()
        .map(|a| (a.to_string(), cluster.best_successor(a)))
        .collect()
}

#[test]
fn hundred_node_ring_matches_golden_stats() {
    let a = ring_stats(100, 120, 42);
    eprintln!("100-node ring stats: {a:?}");
    assert_eq!(
        a, GOLDEN_100,
        "fixed-seed run (delta scheduling on) diverged from the golden pin"
    );
    let b = ring_stats(100, 120, 42);
    assert_eq!(a, b, "same seed must give identical NetStats across runs");
}

/// The scheduler-off escape hatch reproduces the historical poke-everything
/// engine — and therefore the historical pin — exactly. This is the other
/// half of the PR 10 re-baseline: `delta_schedule(false)` is not "mostly
/// the same", it is the bit-for-bit old behaviour.
#[test]
fn unscheduled_ring_matches_golden_stats() {
    let a = ring_stats_unscheduled(100, 120, 42);
    eprintln!("100-node ring stats (scheduler off): {a:?}");
    assert_eq!(
        a, GOLDEN_100,
        "fixed-seed run with delta scheduling off diverged from the golden pin"
    );
}

/// The observability layer must be a pure observer: with the rule-level
/// profiler enabled on every node, the golden run's NetStats and event
/// count stay bit-identical, and the profiler must actually have recorded
/// the window's work.
#[test]
fn golden_pin_holds_with_observability_enabled() {
    let mut cluster = ChordCluster::build(100, 120, 42);
    cluster.enable_observability();
    cluster.sim.reset_stats();
    let events_before = cluster.sim.events_processed();
    cluster.run_for(60.0);
    let s = cluster.sim.stats();
    assert_eq!(
        (
            s.messages_sent,
            s.messages_delivered,
            s.messages_dropped,
            s.bytes_sent,
            cluster.sim.events_processed() - events_before,
        ),
        GOLDEN_100,
        "golden pin diverged with observability on"
    );
    let report = cluster.obs_report();
    assert!(report.total_pokes > 0, "profiler recorded no pokes");
    assert!(
        report.wasted_rate > 0.0 && report.wasted_rate < 1.0,
        "implausible wasted-poke rate {}",
        report.wasted_rate
    );
    // Delta-driven scheduling is on by default, so the profiler must be
    // seeing the suppressed-poke stream, and the wasted rate over this
    // still-converging staggered window must sit well under the 32.8%
    // poke-everything baseline (measured 13.6% here; the < 12% steady-state
    // gate lives in `sim_bench --obs`, whose window starts after bring-up).
    assert!(
        report.total_suppressed_pokes > 0,
        "delta scheduling suppressed no pokes over the golden window"
    );
    assert!(
        report.wasted_rate < 0.20,
        "wasted-poke rate {:.3} regressed toward the 32.8% unscheduled baseline",
        report.wasted_rate
    );
}

/// The parallel sharded simulator must reproduce the sequential golden run
/// bit-for-bit: same NetStats, same events-processed pin, at a worker count
/// that actually exercises cross-shard mailboxes and the conservative
/// window protocol.
#[test]
fn parallel_run_matches_the_sequential_golden_pin() {
    let p = ring_stats_par(100, 120, 42, 2);
    eprintln!("100-node ring stats (2 workers): {p:?}");
    assert_eq!(
        p, GOLDEN_100,
        "2-worker run diverged from the sequential golden pin"
    );
}

/// The delta scheduler's suppression decisions must be worker-invariant:
/// the `would_wake` guards read per-node strand state only, so sharding the
/// ring across 1/2/4 workers must leave the scheduler-on pin — and the
/// total number of suppressed pokes — bit-identical to the sequential run.
#[test]
fn scheduled_pin_is_worker_invariant() {
    let run = |workers: Option<usize>| {
        let builder = ChordCluster::builder(100, 42);
        let builder = match workers {
            None => builder,
            Some(w) => builder.par_threads(w),
        };
        let mut cluster = builder.build(120);
        cluster.sim.reset_stats();
        let events_before = cluster.sim.events_processed();
        cluster.run_for(60.0);
        let s = cluster.sim.stats();
        let engine = cluster.engine_stats();
        (
            (
                s.messages_sent,
                s.messages_delivered,
                s.messages_dropped,
                s.bytes_sent,
                cluster.sim.events_processed() - events_before,
            ),
            engine.suppressed_refresh_pokes + engine.suppressed_guard_pokes,
        )
    };
    let (pin, suppressed) = run(None);
    assert_eq!(pin, GOLDEN_100, "sequential scheduler-on pin diverged");
    assert!(
        suppressed > 0,
        "scheduler-on run suppressed no pokes over the golden window"
    );
    for workers in [1, 2, 4] {
        assert_eq!(
            run(Some(workers)),
            (pin, suppressed),
            "{workers}-worker scheduler-on run diverged from the sequential pin"
        );
    }
}

/// Parallel-vs-sequential equivalence on a small batched-bring-up ring:
/// every worker count yields the sequential run's NetStats, event counters,
/// and final successor pointers (the ring state itself, not just traffic
/// totals).
#[test]
fn worker_counts_agree_on_ring_state_and_stats() {
    let build = |workers: Option<usize>| {
        let builder = ChordCluster::builder(16, 23);
        let builder = match workers {
            None => builder,
            Some(w) => builder.par_threads(w),
        };
        let mut cluster = builder.build_fast(120);
        cluster.run_for(60.0);
        cluster.sim.check_consistency();
        let rounds = match &cluster.sim {
            p2_netsim::AnySimulator::Par(sim) => sim.sync_rounds(),
            p2_netsim::AnySimulator::Seq(_) => 0,
        };
        (
            (
                cluster.sim.stats().messages_sent,
                cluster.sim.stats().bytes_sent,
                cluster.sim.events_processed(),
                cluster.sim.wakeups_processed(),
                ring_pointers(&cluster),
            ),
            rounds,
        )
    };
    let (golden, _) = build(None);
    assert!(
        golden.4.iter().all(|(_, succ)| succ.is_some()),
        "sequential ring did not form"
    );
    let mut round_counts = Vec::new();
    for workers in [1, 3, 4] {
        let (got, rounds) = build(Some(workers));
        assert_eq!(
            got, golden,
            "{workers}-worker Chord run diverged from the sequential engine"
        );
        round_counts.push(rounds);
    }
    // The synchronization-round structure itself is sharding-invariant: a
    // divergence here is the earliest canary for event-timeline drift (it
    // is exactly how the HashSet-ordered secondary index bug was caught).
    assert!(
        round_counts.windows(2).all(|w| w[0] == w[1]),
        "sync round counts differ across worker counts: {round_counts:?}"
    );
}

/// The full per-node routing state of every up node: successor lists,
/// finger tables, predecessors and best-successor pointers, as sorted
/// display rows. Two runs with equal digests hold bit-identical ring state.
fn routing_state(cluster: &ChordCluster) -> Vec<(String, Vec<Vec<String>>)> {
    cluster
        .sim
        .up_addresses_iter()
        .map(|a| {
            let tables = ["succ", "pred", "bestSucc", "finger"]
                .iter()
                .map(|t| cluster.table_rows(a, t))
                .collect();
            (a.to_string(), tables)
        })
        .collect()
}

/// Deterministic lookup workload: the same keys from the same origins on
/// both clusters, compared by `(owner, hops)`.
fn lookup_outcomes(cluster: &mut ChordCluster, n_lookups: usize) -> Vec<Option<(String, usize)>> {
    let origins: Vec<String> = cluster.up_addrs();
    let handles: Vec<_> = (0..n_lookups)
        .map(|i| {
            let origin = origins[i % origins.len()].clone();
            let key = Uint160::hash_of(format!("sched-gate-key-{i}").as_bytes());
            cluster.issue_lookup_from(&origin, key)
        })
        .collect();
    cluster.run_for(30.0);
    handles
        .iter()
        .map(|h| cluster.outcome(h).map(|o| (o.owner, o.hops)))
        .collect()
}

/// The tentpole equivalence statement, checked on state rather than
/// traffic: a delta-scheduled ring and a poke-everything ring must agree on
/// the complete final routing state (succ/finger/pred/bestSucc rows of
/// every node), both must form a single cycle, and a deterministic lookup
/// workload must resolve to the same owners over the same hop counts.
#[test]
fn scheduler_on_and_off_agree_on_ring_state_and_lookups() {
    let build = |schedule: bool| {
        ChordCluster::builder(48, 7)
            .delta_schedule(schedule)
            .build_fast(180)
    };
    let mut on = build(true);
    let mut off = build(false);
    on.run_for(60.0);
    off.run_for(60.0);
    on.assert_single_cycle();
    off.assert_single_cycle();
    assert_eq!(
        routing_state(&on),
        routing_state(&off),
        "delta scheduling changed the final routing state"
    );
    let on_lookups = lookup_outcomes(&mut on, 24);
    let off_lookups = lookup_outcomes(&mut off, 24);
    assert!(
        on_lookups.iter().all(Option::is_some),
        "scheduled run dropped lookups: {on_lookups:?}"
    );
    assert_eq!(
        on_lookups, off_lookups,
        "delta scheduling changed lookup owners or hop counts"
    );
    // The comparison is only meaningful if the scheduler actually did
    // something on the `on` ring.
    let engine = on.engine_stats();
    assert!(
        engine.suppressed_refresh_pokes + engine.suppressed_guard_pokes > 0,
        "scheduler-on ring suppressed no pokes"
    );
}

// Property form of the scheduler equivalence gate: for arbitrary small
// rings and seeds, delta scheduling must not change the final
// best-successor cycle or the routing-table contents. Each case builds and
// runs two full clusters, so the case budget is deliberately small; the
// seeds still vary ring size, hash layout and event interleaving far beyond
// the pinned deterministic tests. (The vendored `proptest!` macro accepts
// no doc comments on the test fn, hence the plain comment.)
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn scheduler_equivalence_holds_for_arbitrary_seeds(
        n in 8usize..20,
        seed in 0u64..u64::MAX,
    ) {
        let build = |schedule: bool| {
            ChordCluster::builder(n, seed)
                .delta_schedule(schedule)
                .build_fast(120)
        };
        let mut on = build(true);
        let mut off = build(false);
        on.run_for(30.0);
        off.run_for(30.0);
        prop_assert_eq!(
            routing_state(&on),
            routing_state(&off),
            "delta scheduling changed the final routing state (n={}, seed={})",
            n,
            seed
        );
        prop_assert_eq!(on.is_single_cycle(), off.is_single_cycle());
    }
}

/// Join-time successor-list seeding (JS1) must still form a correct ring
/// with the batched bring-up, and must not regress bring-up time.
#[test]
fn join_seeded_bring_up_forms_a_ring() {
    let base = ChordCluster::builder(16, 31).build_fast(60);
    let seeded = ChordCluster::builder(16, 31).join_seed(true).build_fast(60);
    seeded.assert_single_cycle();
    assert!(
        seeded.bring_up_virtual_secs() <= base.bring_up_virtual_secs(),
        "JS1 seeding slowed bring-up: {} s vs {} s",
        seeded.bring_up_virtual_secs(),
        base.bring_up_virtual_secs()
    );
}

/// A no-op element for adjacency-compilation tests.
struct Sink;

impl Element for Sink {
    fn class(&self) -> &'static str {
        "Sink"
    }
    fn push(&mut self, _port: usize, _tuple: &Tuple, _ctx: &mut ElementCtx<'_>) {}
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn compiled_adjacency_preserves_connect_semantics(
        n_elements in 1usize..12,
        edges in proptest::collection::vec(
            (0usize..12, 0usize..4, 0usize..12, 0usize..4),
            0..40,
        ),
    ) {
        // For arbitrary edge sets, the engine's compiled adjacency must
        // return exactly the routes declared through `Graph::connect`, in
        // call order, and empty route lists everywhere else.
        let mut graph = Graph::new();
        for i in 0..n_elements {
            graph.add(format!("e{i}"), Box::new(Sink));
        }
        // Mirror of what `connect` is asked to record, in call order.
        let mut expected: HashMap<(usize, usize), Vec<Route>> = HashMap::new();
        let mut max_port = 0usize;
        for (from, out_port, to, in_port) in edges {
            let (from, to) = (from % n_elements, to % n_elements);
            graph.connect(from, out_port, to, in_port);
            expected.entry((from, out_port)).or_default().push(Route {
                element: to,
                port: in_port,
            });
            max_port = max_port.max(out_port);
        }
        let engine = Engine::new(graph, "n1", 1);
        for e in 0..n_elements {
            for p in 0..=max_port + 1 {
                let compiled = engine.routes_of(e, p);
                let declared = expected.get(&(e, p)).map(Vec::as_slice).unwrap_or(&[]);
                prop_assert_eq!(
                    compiled, declared,
                    "adjacency mismatch at element {} port {}", e, p
                );
            }
        }
        // Unknown elements and ports answer empty, not panic.
        prop_assert!(engine.routes_of(n_elements + 1, 0).is_empty());
    }
}
