//! Recursive-descent parser for OverLog.
//!
//! The original P2 uses a flex/bison front end; this hand-written parser
//! accepts the same language as used by the paper's appendices (the full
//! Chord and Narada specifications) and produces the [`crate::ast`] types.

use p2_pel::{BinOp, IntervalKind, UnOp};
use p2_table::AggFunc;
use p2_value::Value;

use crate::ast::{
    AggSpec, BodyTerm, Expr, Fact, Head, HeadArg, Lifetime, Materialize, Predicate, Program, Rule,
    SizeBound, Span,
};
use crate::error::ParseError;
use crate::lexer::{tokenize, Spanned, Token};

/// Parses an OverLog program from source text.
pub fn parse_program(source: &str) -> Result<Program, ParseError> {
    let tokens = tokenize(source)?;
    Parser::new(tokens).run()
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    anon_rule_counter: usize,
}

impl Parser {
    fn new(tokens: Vec<Spanned>) -> Parser {
        Parser {
            tokens,
            pos: 0,
            anon_rule_counter: 0,
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn peek_at(&self, offset: usize) -> Option<&Token> {
        self.tokens.get(self.pos + offset).map(|s| &s.token)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn here(&self) -> (usize, usize) {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|s| (s.line, s.column))
            .unwrap_or((0, 0))
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        let (line, column) = self.here();
        ParseError::new(line, column, message)
    }

    fn expect(&mut self, expected: &Token, what: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == expected => {
                self.bump();
                Ok(())
            }
            other => Err(self.error(format!("expected {what}, found {other:?}"))),
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.error(format!("expected {what}, found {other:?}"))),
        }
    }

    fn expect_variable(&mut self, what: &str) -> Result<String, ParseError> {
        match self.bump() {
            Some(Token::Variable(s)) => Ok(s),
            other => Err(self.error(format!("expected {what}, found {other:?}"))),
        }
    }

    fn run(mut self) -> Result<Program, ParseError> {
        let mut program = Program::default();
        while self.peek().is_some() {
            if self.peek() == Some(&Token::Ident("materialize".to_string())) {
                program.materializations.push(self.materialize()?);
            } else {
                self.clause(&mut program)?;
            }
        }
        Ok(program)
    }

    fn materialize(&mut self) -> Result<Materialize, ParseError> {
        let (line, column) = self.here();
        self.bump(); // `materialize`
        self.expect(&Token::LParen, "`(`")?;
        let name = self.expect_ident("table name")?;
        self.expect(&Token::Comma, "`,`")?;
        let lifetime = match self.bump() {
            Some(Token::Ident(s)) if s == "infinity" => Lifetime::Infinity,
            Some(Token::Int(i)) if i >= 0 => Lifetime::Secs(i as f64),
            Some(Token::Double(d)) if d >= 0.0 => Lifetime::Secs(d),
            other => return Err(self.error(format!("expected lifetime, found {other:?}"))),
        };
        self.expect(&Token::Comma, "`,`")?;
        let max_size = match self.bump() {
            Some(Token::Ident(s)) if s == "infinity" => SizeBound::Infinity,
            Some(Token::Int(i)) if i >= 0 => SizeBound::Rows(i as usize),
            other => return Err(self.error(format!("expected size bound, found {other:?}"))),
        };
        self.expect(&Token::Comma, "`,`")?;
        let keys_kw = self.expect_ident("`keys`")?;
        if keys_kw != "keys" {
            return Err(self.error(format!("expected `keys`, found `{keys_kw}`")));
        }
        self.expect(&Token::LParen, "`(`")?;
        let mut keys = Vec::new();
        loop {
            match self.bump() {
                Some(Token::Int(i)) if i >= 1 => keys.push(i as usize),
                other => return Err(self.error(format!("expected key position, found {other:?}"))),
            }
            match self.bump() {
                Some(Token::Comma) => continue,
                Some(Token::RParen) => break,
                other => return Err(self.error(format!("expected `,` or `)`, found {other:?}"))),
            }
        }
        self.expect(&Token::RParen, "`)`")?;
        self.expect(&Token::Dot, "`.`")?;
        Ok(Materialize {
            name,
            lifetime,
            max_size,
            keys,
            span: Span::new(line, column),
        })
    }

    /// Parses a rule or fact clause and appends it to the program.
    fn clause(&mut self, program: &mut Program) -> Result<(), ParseError> {
        let (line, column) = self.here();
        let span = Span::new(line, column);
        // Optional rule identifier. Head predicate names always start with a
        // lower-case letter, so an upper-case first token must be an id; a
        // lower-case first token is an id only when the *next* token is
        // another identifier (the head name or `delete`).
        let id = match (self.peek(), self.peek_at(1)) {
            (Some(Token::Variable(_)), _) => match self.bump() {
                Some(Token::Variable(s)) => Some(s),
                _ => unreachable!("peeked"),
            },
            (Some(Token::Ident(first)), Some(Token::Ident(_)))
                if first != "delete" && first != "materialize" =>
            {
                match self.bump() {
                    Some(Token::Ident(s)) => Some(s),
                    _ => unreachable!("peeked"),
                }
            }
            _ => None,
        };

        let delete = if self.peek() == Some(&Token::Ident("delete".to_string())) {
            self.bump();
            true
        } else {
            false
        };

        let head = self.head()?;

        match self.peek() {
            Some(Token::Dot) => {
                // A ground fact.
                self.bump();
                if delete {
                    return Err(self.error("a `delete` clause must have a body"));
                }
                let mut args = Vec::with_capacity(head.args.len());
                for a in head.args {
                    match a {
                        HeadArg::Expr(e) => args.push(e),
                        HeadArg::Agg(_) => {
                            return Err(self.error("facts may not contain aggregates"))
                        }
                    }
                }
                program.facts.push(Fact {
                    id,
                    name: head.name,
                    location: head.location,
                    args,
                    span,
                });
                Ok(())
            }
            Some(Token::Implies) => {
                self.bump();
                let mut body = Vec::new();
                loop {
                    body.push(self.body_term()?);
                    match self.bump() {
                        Some(Token::Comma) => continue,
                        Some(Token::Dot) => break,
                        other => {
                            return Err(self.error(format!("expected `,` or `.`, found {other:?}")))
                        }
                    }
                }
                let id = id.unwrap_or_else(|| {
                    self.anon_rule_counter += 1;
                    format!("rule{}", self.anon_rule_counter)
                });
                program.rules.push(Rule {
                    id,
                    delete,
                    head,
                    body,
                    span,
                });
                Ok(())
            }
            other => Err(self.error(format!("expected `.` or `:-`, found {other:?}"))),
        }
    }

    fn head(&mut self) -> Result<Head, ParseError> {
        let name = self.expect_ident("head predicate name")?;
        let location = self.optional_location()?;
        self.expect(&Token::LParen, "`(`")?;
        let mut args = Vec::new();
        if self.peek() != Some(&Token::RParen) {
            loop {
                args.push(self.head_arg()?);
                match self.bump() {
                    Some(Token::Comma) => continue,
                    Some(Token::RParen) => break,
                    other => {
                        return Err(self.error(format!("expected `,` or `)`, found {other:?}")))
                    }
                }
            }
        } else {
            self.bump();
        }
        Ok(Head {
            name,
            location,
            args,
        })
    }

    fn optional_location(&mut self) -> Result<Option<String>, ParseError> {
        if self.peek() == Some(&Token::At) {
            self.bump();
            // Location specifiers are usually variables; the illustrative
            // section-4 facts use lower-case placeholders (`@ni`), accept
            // both.
            match self.bump() {
                Some(Token::Variable(v)) | Some(Token::Ident(v)) => Ok(Some(v)),
                other => Err(self.error(format!("expected location variable, found {other:?}"))),
            }
        } else {
            Ok(None)
        }
    }

    fn head_arg(&mut self) -> Result<HeadArg, ParseError> {
        // Aggregate head arguments look like `min<D>` / `count<*>`.
        if let Some(Token::Ident(name)) = self.peek() {
            if let Some(func) = AggFunc::from_name(name) {
                if self.peek_at(1) == Some(&Token::Lt) {
                    self.bump(); // name
                    self.bump(); // `<`
                    let var = match self.bump() {
                        Some(Token::Star) => None,
                        Some(Token::Variable(v)) => Some(v),
                        other => {
                            return Err(self.error(format!(
                                "expected aggregate variable or `*`, found {other:?}"
                            )))
                        }
                    };
                    self.expect(&Token::Gt, "`>`")?;
                    return Ok(HeadArg::Agg(AggSpec { func, var }));
                }
            }
        }
        Ok(HeadArg::Expr(self.expr()?))
    }

    fn body_term(&mut self) -> Result<BodyTerm, ParseError> {
        match self.peek() {
            Some(Token::Ident(name)) if name == "not" => {
                self.bump();
                let mut pred = self.predicate()?;
                pred.negated = true;
                Ok(BodyTerm::Predicate(pred))
            }
            Some(Token::Ident(name))
                if !name.starts_with("f_")
                    && matches!(self.peek_at(1), Some(Token::LParen) | Some(Token::At)) =>
            {
                Ok(BodyTerm::Predicate(self.predicate()?))
            }
            Some(Token::Variable(_)) if self.peek_at(1) == Some(&Token::Assign) => {
                let var = self.expect_variable("assignment target")?;
                self.bump(); // `:=`
                let expr = self.expr()?;
                Ok(BodyTerm::Assign { var, expr })
            }
            _ => Ok(BodyTerm::Condition(self.expr()?)),
        }
    }

    fn predicate(&mut self) -> Result<Predicate, ParseError> {
        let name = self.expect_ident("predicate name")?;
        let location = self.optional_location()?;
        self.expect(&Token::LParen, "`(`")?;
        let mut args = Vec::new();
        if self.peek() == Some(&Token::RParen) {
            self.bump();
        } else {
            loop {
                args.push(self.expr()?);
                match self.bump() {
                    Some(Token::Comma) => continue,
                    Some(Token::RParen) => break,
                    other => {
                        return Err(self.error(format!("expected `,` or `)`, found {other:?}")))
                    }
                }
            }
        }
        Ok(Predicate {
            name,
            location,
            args,
            negated: false,
        })
    }

    // ----- expressions ------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.peek() == Some(&Token::OrOr) {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.peek() == Some(&Token::AndAnd) {
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Some(Token::EqEq) => Some(BinOp::Eq),
            Some(Token::Ne) => Some(BinOp::Ne),
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::Le) => Some(BinOp::Le),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::Ge) => Some(BinOp::Ge),
            Some(Token::Ident(kw)) if kw == "in" => {
                self.bump();
                return self.range_expr(lhs);
            }
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.add_expr()?;
            Ok(Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            })
        } else {
            Ok(lhs)
        }
    }

    fn range_expr(&mut self, value: Expr) -> Result<Expr, ParseError> {
        let open_closed = match self.bump() {
            Some(Token::LParen) => false,
            Some(Token::LBracket) => true,
            other => return Err(self.error(format!("expected `(` or `[`, found {other:?}"))),
        };
        let low = self.add_expr()?;
        self.expect(&Token::Comma, "`,`")?;
        let high = self.add_expr()?;
        let close_closed = match self.bump() {
            Some(Token::RParen) => false,
            Some(Token::RBracket) => true,
            other => return Err(self.error(format!("expected `)` or `]`, found {other:?}"))),
        };
        let kind = match (open_closed, close_closed) {
            (false, false) => IntervalKind::OpenOpen,
            (false, true) => IntervalKind::OpenClosed,
            (true, false) => IntervalKind::ClosedOpen,
            (true, true) => IntervalKind::ClosedClosed,
        };
        Ok(Expr::Range {
            kind,
            value: Box::new(value),
            low: Box::new(low),
            high: Box::new(high),
        })
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                Some(Token::Percent) => BinOp::Mod,
                Some(Token::Shl) => BinOp::Shl,
                Some(Token::Shr) => BinOp::Shr,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(Token::Minus) => {
                self.bump();
                Ok(Expr::Unary {
                    op: UnOp::Neg,
                    expr: Box::new(self.unary_expr()?),
                })
            }
            Some(Token::Bang) => {
                self.bump();
                Ok(Expr::Unary {
                    op: UnOp::Not,
                    expr: Box::new(self.unary_expr()?),
                })
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Some(Token::Int(i)) => Ok(Expr::Const(Value::Int(i))),
            Some(Token::Double(d)) => Ok(Expr::Const(Value::Double(d))),
            Some(Token::IdLit(v)) => Ok(Expr::Const(Value::Id(p2_value::Uint160::from_u64(v)))),
            Some(Token::Str(s)) => Ok(Expr::Const(Value::str(s))),
            Some(Token::Wildcard) => Ok(Expr::Wildcard),
            Some(Token::Variable(v)) => Ok(Expr::Var(v)),
            Some(Token::LParen) => {
                let inner = self.expr()?;
                self.expect(&Token::RParen, "`)`")?;
                Ok(inner)
            }
            Some(Token::Ident(name)) if name == "true" => Ok(Expr::Const(Value::Bool(true))),
            Some(Token::Ident(name)) if name == "false" => Ok(Expr::Const(Value::Bool(false))),
            Some(Token::Ident(name)) if name == "null" => Ok(Expr::Const(Value::Null)),
            Some(Token::Ident(name)) => {
                // Function call, possibly with a location annotation.
                let location = self.optional_location()?;
                self.expect(&Token::LParen, "`(` after function name")?;
                let mut args = Vec::new();
                if self.peek() == Some(&Token::RParen) {
                    self.bump();
                } else {
                    loop {
                        args.push(self.expr()?);
                        match self.bump() {
                            Some(Token::Comma) => continue,
                            Some(Token::RParen) => break,
                            other => {
                                return Err(
                                    self.error(format!("expected `,` or `)`, found {other:?}"))
                                )
                            }
                        }
                    }
                }
                Ok(Expr::Call {
                    name,
                    location,
                    args,
                })
            }
            other => Err(self.error(format!("unexpected token {other:?} in expression"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_materialize_with_multiple_keys() {
        let p = parse_program("materialize(env, infinity, infinity, keys(2,3)).").unwrap();
        assert_eq!(p.materializations.len(), 1);
        let m = &p.materializations[0];
        assert_eq!(m.name, "env");
        assert_eq!(m.lifetime, Lifetime::Infinity);
        assert_eq!(m.max_size, SizeBound::Infinity);
        assert_eq!(m.keys, vec![2, 3]);
    }

    #[test]
    fn parses_simple_rule() {
        let p = parse_program("R1 refreshEvent(X) :- periodic(X, E, 3).").unwrap();
        assert_eq!(p.rules.len(), 1);
        let r = &p.rules[0];
        assert_eq!(r.id, "R1");
        assert!(!r.delete);
        assert_eq!(r.head.name, "refreshEvent");
        assert_eq!(r.body.len(), 1);
        match &r.body[0] {
            BodyTerm::Predicate(pred) => {
                assert_eq!(pred.name, "periodic");
                assert_eq!(pred.args.len(), 3);
            }
            other => panic!("expected predicate, got {other:?}"),
        }
    }

    #[test]
    fn parses_rule_with_locations_assignment_and_condition() {
        let src = "L2 deadNeighbor@X(X, Y) :- neighborProbe@X(X), T := f_now(), \
                   neighbor@X(X, Y), member@X(X, Y, YS, YT, L), T - YT > 20.";
        let p = parse_program(src).unwrap();
        let r = &p.rules[0];
        assert_eq!(r.head.location.as_deref(), Some("X"));
        assert_eq!(r.positive_predicates().len(), 3);
        assert!(r
            .body
            .iter()
            .any(|t| matches!(t, BodyTerm::Assign { var, .. } if var == "T")));
        assert!(r.body.iter().any(|t| matches!(t, BodyTerm::Condition(_))));
    }

    #[test]
    fn parses_delete_rule() {
        let p = parse_program("L3 delete neighbor@X(X, Y) :- deadNeighbor@X(X, Y).").unwrap();
        assert!(p.rules[0].delete);
        assert_eq!(p.rules[0].head.name, "neighbor");
    }

    #[test]
    fn parses_aggregates_in_head() {
        let src = "L2 bestLookupDist@NI(NI,K,R,E,min<D>) :- node@NI(NI,N), \
                   lookup@NI(NI,K,R,E), finger@NI(NI,I,B,BI), D:=K - B - 1, B in (N,K).";
        let p = parse_program(src).unwrap();
        let r = &p.rules[0];
        assert!(r.has_aggregate());
        match &r.head.args[4] {
            HeadArg::Agg(a) => {
                assert_eq!(a.func, AggFunc::Min);
                assert_eq!(a.var.as_deref(), Some("D"));
            }
            other => panic!("expected aggregate, got {other:?}"),
        }
        // And count<*>:
        let p = parse_program("S1 succCount@NI(NI,count<*>) :- succ@NI(NI,S,SI).").unwrap();
        match &p.rules[0].head.args[1] {
            HeadArg::Agg(a) => {
                assert_eq!(a.func, AggFunc::Count);
                assert_eq!(a.var, None);
            }
            other => panic!("expected aggregate, got {other:?}"),
        }
    }

    #[test]
    fn parses_negation() {
        let src = "R4 member@Y(Y, A) :- refreshSeq@X(X, S), not member@Y(Y, A, _, _, _).";
        let p = parse_program(src).unwrap();
        let r = &p.rules[0];
        assert_eq!(r.negated_predicates().len(), 1);
        assert_eq!(r.negated_predicates()[0].name, "member");
    }

    #[test]
    fn parses_range_tests_and_shift() {
        let src = "F3 lookup@NI(NI,K,NI,E) :- fFixEvent@NI(NI,E,I), node@NI(NI,N), \
                   K := (1I << I) + N, K in (N, B], D in [A, B).";
        let p = parse_program(src).unwrap();
        let r = &p.rules[0];
        let ranges: Vec<&Expr> = r
            .body
            .iter()
            .filter_map(|t| match t {
                BodyTerm::Condition(e @ Expr::Range { .. }) => Some(e),
                _ => None,
            })
            .collect();
        assert_eq!(ranges.len(), 2);
        match ranges[0] {
            Expr::Range { kind, .. } => assert_eq!(*kind, IntervalKind::OpenClosed),
            _ => unreachable!(),
        }
        match ranges[1] {
            Expr::Range { kind, .. } => assert_eq!(*kind, IntervalKind::ClosedOpen),
            _ => unreachable!(),
        }
        // The shift assignment parsed into an Id-literal shift.
        assert!(r.body.iter().any(|t| matches!(
            t,
            BodyTerm::Assign { var, expr: Expr::Binary { op: BinOp::Add, .. } } if var == "K"
        )));
    }

    #[test]
    fn parses_facts() {
        let p = parse_program("F0 nextFingerFix@NI(NI, 0).\nSB0 pred@NI(NI,\"-\",\"-\").").unwrap();
        assert_eq!(p.facts.len(), 2);
        assert_eq!(p.facts[0].name, "nextFingerFix");
        assert_eq!(p.facts[0].id.as_deref(), Some("F0"));
        assert_eq!(p.facts[1].args[1], Expr::Const(Value::str("-")));
    }

    #[test]
    fn parses_disjunctive_condition() {
        let src =
            "F8 nextFingerFix@NI(NI,0) :- eagerFinger@NI(NI,I,B,BI), ((I == 159) || (BI == NI)).";
        let p = parse_program(src).unwrap();
        let conds: Vec<_> = p.rules[0]
            .body
            .iter()
            .filter(|t| matches!(t, BodyTerm::Condition(_)))
            .collect();
        assert_eq!(conds.len(), 1);
        match conds[0] {
            BodyTerm::Condition(Expr::Binary { op: BinOp::Or, .. }) => {}
            other => panic!("expected `||` condition, got {other:?}"),
        }
    }

    #[test]
    fn parses_rules_without_ids() {
        let p = parse_program("bestSucc@NI(NI,S,SI) :- succ@NI(NI,S,SI).").unwrap();
        assert_eq!(p.rules.len(), 1);
        assert!(p.rules[0].id.starts_with("rule"));
    }

    #[test]
    fn parse_errors_carry_position() {
        let err = parse_program("R1 foo(X) :- bar(X)").unwrap_err();
        assert!(err.to_string().contains("parse error"));
        assert!(parse_program("R1 foo(X) :- .").is_err());
        assert!(parse_program("materialize(t, -1, 10, keys(1)).").is_err());
        assert!(parse_program("R1 delete foo(X).").is_err());
        assert!(parse_program("R1 foo(count<X) :- bar(X).").is_err());
    }

    #[test]
    fn parses_function_with_location_annotation() {
        let src = "R6 member@Y(Y, X, S, T, true) :- refreshSeq@X(X, S), neighbor@X(X, Y), T := f_now@Y().";
        let p = parse_program(src).unwrap();
        let assign = p.rules[0]
            .body
            .iter()
            .find_map(|t| match t {
                BodyTerm::Assign { expr, .. } => Some(expr),
                _ => None,
            })
            .unwrap();
        match assign {
            Expr::Call { name, location, .. } => {
                assert_eq!(name, "f_now");
                assert_eq!(location.as_deref(), Some("Y"));
            }
            other => panic!("expected call, got {other:?}"),
        }
        // `true` / `false` in heads are boolean literals.
        let p = parse_program("R1 foo(true) :- bar(X).").unwrap();
        assert_eq!(
            p.rules[0].head.args[0],
            HeadArg::Expr(Expr::Const(Value::Bool(true)))
        );
    }
}
