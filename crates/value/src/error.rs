//! Error type for value conversions and arithmetic.

use std::fmt;

/// Error raised when a [`crate::Value`] cannot be converted to the requested
/// representation or when an operation is applied to incompatible operands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValueError {
    /// The value's type does not support the requested conversion.
    TypeMismatch {
        /// Operation or conversion that failed (for diagnostics).
        op: &'static str,
        /// Human-readable description of the value that was involved.
        got: String,
    },
    /// A tuple field index was out of range.
    FieldOutOfRange {
        /// Index that was requested.
        index: usize,
        /// Number of fields in the tuple.
        len: usize,
    },
    /// Division or modulo by zero.
    DivideByZero,
}

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueError::TypeMismatch { op, got } => {
                write!(f, "type mismatch in `{op}`: got {got}")
            }
            ValueError::FieldOutOfRange { index, len } => {
                write!(f, "tuple field {index} out of range (len {len})")
            }
            ValueError::DivideByZero => write!(f, "division by zero"),
        }
    }
}

impl std::error::Error for ValueError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = ValueError::TypeMismatch {
            op: "to_int",
            got: "\"abc\"".to_string(),
        };
        assert!(e.to_string().contains("to_int"));
        assert!(e.to_string().contains("abc"));

        let e = ValueError::FieldOutOfRange { index: 7, len: 3 };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('3'));

        assert_eq!(ValueError::DivideByZero.to_string(), "division by zero");
    }
}
