//! Simulator event-loop benchmark: measures what the PR-2 overhaul targets
//! (interned NodeIds, the tombstone-free timer index, matrix latency
//! lookup) and writes the results to `BENCH_sim.json` so the trajectory is
//! tracked like `BENCH_table.json`.
//!
//! Two sections:
//!
//! * `toy_event_loop` — rings of trivial periodic hosts (one ping per
//!   second per node, no dataflow machinery). This isolates the simulator's
//!   own per-event cost; with the interned core it should be roughly
//!   independent of node count and allocation-free on the delivery and
//!   wakeup paths.
//! * `chord_rings` — full declarative Chord rings brought up with the
//!   batched `start_all`/`inject_many` path, reporting bring-up wall time
//!   and steady-state event throughput.
//!
//! Usage: `cargo run --release --bin sim_bench [-- --smoke] [--sizes N,N,..]
//! [--out PATH]`

use std::time::Instant;

use p2_bench::to_json;
use p2_harness::ChordCluster;
use p2_netsim::{Envelope, Host, NetworkConfig, Simulator};
use p2_value::{SimTime, Tuple, TupleBuilder};
use serde::Serialize;

/// A minimal host: one ping to its ring neighbor every second, phase-spread
/// so events are not synchronized.
struct Toy {
    addr: String,
    peer: String,
    next: Option<SimTime>,
    received: u64,
}

impl Host for Toy {
    fn start(&mut self, now: SimTime) -> Vec<Envelope> {
        // Phase-spread the first tick by the node's hash.
        let phase = (self.addr.len() as u64 * 131 + self.addr.as_bytes()[1] as u64) % 997;
        self.next = Some(now + SimTime::from_millis(1000 + phase));
        Vec::new()
    }

    fn deliver(&mut self, _tuple: Tuple, _now: SimTime) -> Vec<Envelope> {
        self.received += 1;
        Vec::new()
    }

    fn advance_to(&mut self, now: SimTime) -> Vec<Envelope> {
        let mut out = Vec::new();
        if let Some(t) = self.next {
            if t <= now {
                out.push(Envelope::new(
                    self.peer.clone(),
                    TupleBuilder::new("ping").push(self.addr.as_str()).build(),
                ));
                self.next = Some(t + SimTime::from_secs(1));
            }
        }
        out
    }

    fn next_deadline(&self) -> Option<SimTime> {
        self.next
    }
}

#[derive(Debug, Clone, Serialize)]
struct ToyResult {
    nodes: usize,
    virtual_secs: u64,
    events: u64,
    wall_secs: f64,
    ns_per_event: f64,
    events_per_sec: f64,
}

#[derive(Debug, Clone, Serialize)]
struct ChordResult {
    nodes: usize,
    build_wall_secs: f64,
    ring_correctness: f64,
    virtual_secs: u64,
    events: u64,
    wall_secs: f64,
    events_per_sec: f64,
    messages_per_virtual_sec: f64,
}

#[derive(Debug, Clone, Serialize)]
struct BenchReport {
    bench: String,
    toy_event_loop: Vec<ToyResult>,
    chord_rings: Vec<ChordResult>,
}

fn bench_toy(nodes: usize, virtual_secs: u64) -> ToyResult {
    let mut sim: Simulator<Toy> = Simulator::new(NetworkConfig::emulab_default(17));
    for i in 0..nodes {
        let addr = format!("n{i}");
        let peer = format!("n{}", (i + 1) % nodes);
        sim.add_node(
            addr.clone(),
            Toy {
                addr,
                peer,
                next: None,
                received: 0,
            },
        );
    }
    sim.start_all();
    // Warm up one virtual second so every node's first tick has fired.
    sim.run_for(SimTime::from_secs(2));
    let before = sim.events_processed();
    let start = Instant::now();
    sim.run_for(SimTime::from_secs(virtual_secs));
    let wall = start.elapsed().as_secs_f64();
    let events = sim.events_processed() - before;
    ToyResult {
        nodes,
        virtual_secs,
        events,
        wall_secs: wall,
        ns_per_event: wall * 1e9 / events.max(1) as f64,
        events_per_sec: events as f64 / wall.max(1e-12),
    }
}

fn bench_chord(nodes: usize, warmup_secs: u64, virtual_secs: u64) -> ChordResult {
    let start = Instant::now();
    let mut cluster = ChordCluster::build_fast(nodes, warmup_secs, 42);
    let build_wall_secs = start.elapsed().as_secs_f64();
    let ring_correctness = cluster.ring_correctness();

    let before_events = cluster.sim.events_processed();
    cluster.sim.reset_stats();
    let start = Instant::now();
    cluster.run_for(virtual_secs as f64);
    let wall = start.elapsed().as_secs_f64();
    let events = cluster.sim.events_processed() - before_events;
    let sent = cluster.sim.stats().messages_sent;
    ChordResult {
        nodes,
        build_wall_secs,
        ring_correctness,
        virtual_secs,
        events,
        wall_secs: wall,
        events_per_sec: events as f64 / wall.max(1e-12),
        messages_per_virtual_sec: sent as f64 / virtual_secs.max(1) as f64,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };

    let out_path = value("--out").unwrap_or_else(|| "BENCH_sim.json".to_string());
    let smoke = flag("--smoke");
    let sizes: Vec<usize> = match value("--sizes") {
        Some(s) => s.split(',').filter_map(|x| x.trim().parse().ok()).collect(),
        None if smoke => vec![16],
        None => vec![100, 500, 2000],
    };
    // Simultaneous joins need more stabilization time than the paper's
    // staggered bring-up: ~300 virtual seconds forms a fully correct ring.
    let (warmup_secs, measure_secs) = if smoke { (60, 10) } else { (300, 30) };

    // Fail on an unwritable output path up front, not after minutes of
    // measurement.
    if let Err(e) = std::fs::write(&out_path, "{}") {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(2);
    }

    let mut toy_event_loop = Vec::new();
    for &n in &sizes {
        eprintln!("toy event loop: {n} nodes...");
        let r = bench_toy(n, if smoke { 30 } else { 120 });
        eprintln!(
            "  {} events in {:.3} s -> {:>9.1} ns/event ({:>12.0} events/s)",
            r.events, r.wall_secs, r.ns_per_event, r.events_per_sec
        );
        toy_event_loop.push(r);
    }

    let mut chord_rings = Vec::new();
    for &n in &sizes {
        eprintln!("chord ring: {n} nodes (batched bring-up, warmup {warmup_secs} s)...");
        let r = bench_chord(n, warmup_secs, measure_secs);
        eprintln!(
            "  bring-up {:.2} s wall, ring {:.2}, {} events in {:.3} s -> {:>12.0} events/s \
             ({:>8.0} msgs/virtual-s)",
            r.build_wall_secs,
            r.ring_correctness,
            r.events,
            r.wall_secs,
            r.events_per_sec,
            r.messages_per_virtual_sec
        );
        chord_rings.push(r);
    }

    let report = BenchReport {
        bench: "sim_event_loop".to_string(),
        toy_event_loop,
        chord_rings,
    };
    let json = to_json(&report);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(2);
    }
    println!("{json}");
    eprintln!("wrote {out_path}");
}
