//! PEL expression AST and its reference interpreter.
//!
//! The planner builds [`Expr`] trees when translating OverLog rule bodies
//! (assignments, selection predicates, aggregate arguments) and compiles
//! them into [`crate::Program`] byte-code. The AST can also be evaluated
//! directly; the byte-code VM must agree with this reference interpreter
//! (checked by property tests).

use p2_value::{Tuple, Uint160, Value, ValueError};

use crate::context::EvalContext;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition (`+`). Identifier operands use wrapping ring arithmetic.
    Add,
    /// Subtraction (`-`). Identifier operands use wrapping ring arithmetic.
    Sub,
    /// Multiplication (`*`).
    Mul,
    /// Division (`/`).
    Div,
    /// Modulo (`%`).
    Mod,
    /// Left shift (`<<`); used for Chord finger targets (`1 << I`).
    Shl,
    /// Right shift (`>>`).
    Shr,
    /// Equality (`==`).
    Eq,
    /// Inequality (`!=`).
    Ne,
    /// Less-than (`<`).
    Lt,
    /// Less-or-equal (`<=`).
    Le,
    /// Greater-than (`>`).
    Gt,
    /// Greater-or-equal (`>=`).
    Ge,
    /// Logical conjunction (`&&`).
    And,
    /// Logical disjunction (`||`).
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical negation.
    Not,
}

/// Built-in functions available to OverLog programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// `f_now()` — the node's current (virtual) wall-clock time.
    Now,
    /// `f_rand()` — uniform double in `[0, 1)`.
    Rand,
    /// `f_coinFlip(p)` — boolean, true with probability `p`.
    CoinFlip,
    /// `f_sha1(x)` — hash an arbitrary value into the 160-bit identifier
    /// space (stand-in for SHA-1; see `Uint160::hash_of`).
    Sha1,
    /// `f_localAddr()` — the node's own address.
    LocalAddr,
}

impl Builtin {
    /// Number of arguments the builtin expects.
    pub fn arity(&self) -> usize {
        match self {
            Builtin::Now | Builtin::Rand | Builtin::LocalAddr => 0,
            Builtin::CoinFlip | Builtin::Sha1 => 1,
        }
    }

    /// True if the builtin draws on the node's RNG (`f_rand`,
    /// `f_coinFlip`). Programs calling one are order-sensitive beyond
    /// their inputs; this is the single source of truth behind both
    /// [`crate::Program::uses_random`] and the whole-rule determinism
    /// classification in the OverLog analyzer.
    pub fn is_random(&self) -> bool {
        matches!(self, Builtin::Rand | Builtin::CoinFlip)
    }

    /// True if the builtin reads the node's clock (`f_now`). Programs
    /// calling one are not pure functions of their input tuple; see
    /// [`crate::Program::uses_time`].
    pub fn is_time(&self) -> bool {
        matches!(self, Builtin::Now)
    }

    /// Resolves an OverLog function name (`f_now`, `f_rand`, ...).
    pub fn from_name(name: &str) -> Option<Builtin> {
        match name {
            "f_now" => Some(Builtin::Now),
            "f_rand" => Some(Builtin::Rand),
            "f_coinFlip" | "f_coinflip" => Some(Builtin::CoinFlip),
            "f_sha1" | "f_hash" => Some(Builtin::Sha1),
            "f_localAddr" | "f_localaddr" => Some(Builtin::LocalAddr),
            _ => None,
        }
    }
}

/// Kind of ring-interval membership test (`K in (A,B]` and friends).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntervalKind {
    /// `(A, B)`
    OpenOpen,
    /// `(A, B]`
    OpenClosed,
    /// `[A, B)`
    ClosedOpen,
    /// `[A, B]`
    ClosedClosed,
}

/// A PEL expression over the fields of a single (joined) tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Const(Value),
    /// The `index`-th field of the input tuple.
    Field(usize),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Built-in function call.
    Call(Builtin, Vec<Expr>),
    /// Ring-interval membership test: `value in (low, high)` (kind decides
    /// which endpoints are included). Operands are converted to 160-bit
    /// identifiers and tested on the ring.
    Interval {
        /// Which endpoints are included.
        kind: IntervalKind,
        /// The tested value.
        value: Box<Expr>,
        /// Lower (counter-clockwise) endpoint.
        low: Box<Expr>,
        /// Upper (clockwise) endpoint.
        high: Box<Expr>,
    },
}

impl Expr {
    /// Convenience constructor: integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Const(Value::Int(v))
    }

    /// Convenience constructor: string literal.
    pub fn str(v: &str) -> Expr {
        Expr::Const(Value::str(v))
    }

    /// Convenience constructor: binary operation.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// Largest field index referenced by this expression, if any.
    pub fn max_field(&self) -> Option<usize> {
        match self {
            Expr::Const(_) => None,
            Expr::Field(i) => Some(*i),
            Expr::Unary(_, e) => e.max_field(),
            Expr::Binary(_, a, b) => a.max_field().into_iter().chain(b.max_field()).max(),
            Expr::Call(_, args) => args.iter().filter_map(Expr::max_field).max(),
            Expr::Interval {
                value, low, high, ..
            } => [value, low, high]
                .iter()
                .filter_map(|e| e.max_field())
                .max(),
        }
    }

    /// Directly evaluates the expression against a tuple (reference
    /// interpreter; the compiled VM must agree with this).
    pub fn eval(&self, tuple: &Tuple, ctx: &mut EvalContext) -> Result<Value, ValueError> {
        match self {
            Expr::Const(v) => Ok(v.clone()),
            Expr::Field(i) => tuple.get(*i).cloned(),
            Expr::Unary(op, e) => apply_unop(*op, e.eval(tuple, ctx)?),
            Expr::Binary(op, a, b) => {
                let lhs = a.eval(tuple, ctx)?;
                let rhs = b.eval(tuple, ctx)?;
                apply_binop(*op, &lhs, &rhs)
            }
            Expr::Call(builtin, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(a.eval(tuple, ctx)?);
                }
                apply_builtin(*builtin, &vals, ctx)
            }
            Expr::Interval {
                kind,
                value,
                low,
                high,
            } => {
                let v = value.eval(tuple, ctx)?;
                let lo = low.eval(tuple, ctx)?;
                let hi = high.eval(tuple, ctx)?;
                apply_interval(*kind, &v, &lo, &hi)
            }
        }
    }
}

/// Applies a unary operator.
pub fn apply_unop(op: UnOp, v: Value) -> Result<Value, ValueError> {
    match op {
        UnOp::Not => Ok(Value::Bool(!v.truthy())),
        UnOp::Neg => match v {
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Double(d) => Ok(Value::Double(-d)),
            other => Err(ValueError::TypeMismatch {
                op: "neg",
                got: format!("{other}"),
            }),
        },
    }
}

/// Applies a binary operator with P2's coercion rules.
///
/// * If either operand is a 160-bit identifier, `+`, `-`, `<<`, `>>` operate
///   on the ring (wrapping modulo 2^160).
/// * Otherwise, if either operand is a double or a timestamp, arithmetic is
///   performed on doubles (timestamps convert to seconds, which is what the
///   OverLog programs expect from `f_now() - T > 20`).
/// * Otherwise integer arithmetic (wrapping) is used.
/// * Comparisons use [`Value::compare`]; logical operators use truthiness.
pub fn apply_binop(op: BinOp, lhs: &Value, rhs: &Value) -> Result<Value, ValueError> {
    use BinOp::*;
    match op {
        Eq => return Ok(Value::Bool(lhs == rhs)),
        Ne => return Ok(Value::Bool(lhs != rhs)),
        Lt => return Ok(Value::Bool(lhs < rhs)),
        Le => return Ok(Value::Bool(lhs <= rhs)),
        Gt => return Ok(Value::Bool(lhs > rhs)),
        Ge => return Ok(Value::Bool(lhs >= rhs)),
        And => return Ok(Value::Bool(lhs.truthy() && rhs.truthy())),
        Or => return Ok(Value::Bool(lhs.truthy() || rhs.truthy())),
        _ => {}
    }

    let id_mode = matches!(lhs, Value::Id(_)) || matches!(rhs, Value::Id(_));
    if id_mode {
        let a = lhs.to_id()?;
        let b = rhs.to_id()?;
        let out = match op {
            Add => a.wrapping_add(b),
            Sub => a.wrapping_sub(b),
            Shl => a.shl(rhs.to_u32()?),
            Shr => a.shr(rhs.to_u32()?),
            Mul | Div | Mod => {
                return Err(ValueError::TypeMismatch {
                    op: "id arithmetic",
                    got: format!("{lhs} {op:?} {rhs}"),
                })
            }
            _ => unreachable!("comparisons handled above"),
        };
        return Ok(Value::Id(out));
    }

    let float_mode = matches!(lhs, Value::Double(_) | Value::Time(_))
        || matches!(rhs, Value::Double(_) | Value::Time(_));
    if float_mode && !matches!(op, Shl | Shr) {
        let a = lhs.to_double()?;
        let b = rhs.to_double()?;
        let out = match op {
            Add => a + b,
            Sub => a - b,
            Mul => a * b,
            Div => {
                if b == 0.0 {
                    return Err(ValueError::DivideByZero);
                }
                a / b
            }
            Mod => {
                if b == 0.0 {
                    return Err(ValueError::DivideByZero);
                }
                a % b
            }
            _ => unreachable!(),
        };
        return Ok(Value::Double(out));
    }

    // String concatenation with `+`.
    if op == Add {
        if let (Value::Str(a), Value::Str(b)) = (lhs, rhs) {
            return Ok(Value::str(format!("{a}{b}")));
        }
    }

    let a = lhs.to_int()?;
    let b = rhs.to_int()?;
    let out = match op {
        Add => a.wrapping_add(b),
        Sub => a.wrapping_sub(b),
        Mul => a.wrapping_mul(b),
        Div => {
            if b == 0 {
                return Err(ValueError::DivideByZero);
            }
            a.wrapping_div(b)
        }
        Mod => {
            if b == 0 {
                return Err(ValueError::DivideByZero);
            }
            a.wrapping_rem(b)
        }
        Shl => a.wrapping_shl(rhs.to_u32()? % 64),
        Shr => a.wrapping_shr(rhs.to_u32()? % 64),
        _ => unreachable!(),
    };
    Ok(Value::Int(out))
}

/// Applies a built-in function.
pub fn apply_builtin(
    builtin: Builtin,
    args: &[Value],
    ctx: &mut EvalContext,
) -> Result<Value, ValueError> {
    if args.len() != builtin.arity() {
        return Err(ValueError::TypeMismatch {
            op: "builtin arity",
            got: format!("{builtin:?} called with {} args", args.len()),
        });
    }
    Ok(match builtin {
        Builtin::Now => Value::Time(ctx.now()),
        Builtin::Rand => Value::Double(ctx.next_f64()),
        Builtin::LocalAddr => ctx.local_addr(),
        Builtin::CoinFlip => Value::Bool(ctx.coin_flip(args[0].to_double()?)),
        Builtin::Sha1 => {
            let bytes = args[0].to_display_string();
            Value::Id(Uint160::hash_of(bytes.as_bytes()))
        }
    })
}

/// Applies a ring-interval membership test.
pub fn apply_interval(
    kind: IntervalKind,
    value: &Value,
    low: &Value,
    high: &Value,
) -> Result<Value, ValueError> {
    let k = value.to_id()?;
    let a = low.to_id()?;
    let b = high.to_id()?;
    let result = match kind {
        IntervalKind::OpenOpen => k.in_oo(a, b),
        IntervalKind::OpenClosed => k.in_oc(a, b),
        IntervalKind::ClosedOpen => k.in_co(a, b),
        IntervalKind::ClosedClosed => k.in_cc(a, b),
    };
    Ok(Value::Bool(result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_value::{SimTime, TupleBuilder};

    fn ctx() -> EvalContext {
        let mut c = EvalContext::new("n1", 12345);
        c.set_now(SimTime::from_secs(100));
        c
    }

    fn t() -> Tuple {
        TupleBuilder::new("test")
            .push(10i64)
            .push(4i64)
            .push("n2")
            .push(Value::Id(Uint160::from_u64(1000)))
            .push(Value::Time(SimTime::from_secs(80)))
            .build()
    }

    #[test]
    fn field_and_const() {
        let mut c = ctx();
        assert_eq!(Expr::Field(0).eval(&t(), &mut c).unwrap(), Value::Int(10));
        assert_eq!(Expr::int(7).eval(&t(), &mut c).unwrap(), Value::Int(7));
        assert!(Expr::Field(99).eval(&t(), &mut c).is_err());
    }

    #[test]
    fn integer_arithmetic() {
        let mut c = ctx();
        let e = Expr::bin(BinOp::Add, Expr::Field(0), Expr::Field(1));
        assert_eq!(e.eval(&t(), &mut c).unwrap(), Value::Int(14));
        let e = Expr::bin(BinOp::Mul, Expr::int(6), Expr::int(7));
        assert_eq!(e.eval(&t(), &mut c).unwrap(), Value::Int(42));
        let e = Expr::bin(BinOp::Div, Expr::int(7), Expr::int(0));
        assert_eq!(e.eval(&t(), &mut c), Err(ValueError::DivideByZero));
        let e = Expr::bin(BinOp::Mod, Expr::int(7), Expr::int(3));
        assert_eq!(e.eval(&t(), &mut c).unwrap(), Value::Int(1));
        let e = Expr::bin(BinOp::Shl, Expr::int(1), Expr::int(4));
        assert_eq!(e.eval(&t(), &mut c).unwrap(), Value::Int(16));
    }

    #[test]
    fn double_and_time_arithmetic() {
        let mut c = ctx();
        // f_now() - T where T is a timestamp field: seconds as double.
        let e = Expr::bin(BinOp::Sub, Expr::Call(Builtin::Now, vec![]), Expr::Field(4));
        assert_eq!(e.eval(&t(), &mut c).unwrap(), Value::Double(20.0));
        // And the idiomatic liveness check `f_now() - T > 20`.
        let check = Expr::bin(BinOp::Gt, e, Expr::int(20));
        assert_eq!(check.eval(&t(), &mut c).unwrap(), Value::Bool(false));

        let e = Expr::bin(BinOp::Div, Expr::Const(Value::Double(1.0)), Expr::int(4));
        assert_eq!(e.eval(&t(), &mut c).unwrap(), Value::Double(0.25));
    }

    #[test]
    fn id_ring_arithmetic() {
        let mut c = ctx();
        // K := (1 << 159) + N  wraps around the ring.
        let e = Expr::bin(
            BinOp::Add,
            Expr::bin(
                BinOp::Shl,
                Expr::Const(Value::Id(Uint160::ONE)),
                Expr::int(159),
            ),
            Expr::Field(3),
        );
        let expect = Uint160::pow2(159).wrapping_add(Uint160::from_u64(1000));
        assert_eq!(e.eval(&t(), &mut c).unwrap(), Value::Id(expect));

        // D := K - B - 1 with wrap-around.
        let e = Expr::bin(
            BinOp::Sub,
            Expr::bin(
                BinOp::Sub,
                Expr::Const(Value::Id(Uint160::from_u64(5))),
                Expr::Field(3),
            ),
            Expr::int(1),
        );
        let expect = Uint160::from_u64(5)
            .wrapping_sub(Uint160::from_u64(1000))
            .wrapping_sub(Uint160::ONE);
        assert_eq!(e.eval(&t(), &mut c).unwrap(), Value::Id(expect));

        // Multiplying identifiers is not defined.
        let e = Expr::bin(BinOp::Mul, Expr::Field(3), Expr::int(2));
        assert!(e.eval(&t(), &mut c).is_err());
    }

    #[test]
    fn comparisons_and_logic() {
        let mut c = ctx();
        let e = Expr::bin(BinOp::Ne, Expr::Field(2), Expr::str("-"));
        assert_eq!(e.eval(&t(), &mut c).unwrap(), Value::Bool(true));
        let e = Expr::bin(
            BinOp::Or,
            Expr::bin(BinOp::Eq, Expr::Field(0), Expr::int(10)),
            Expr::bin(BinOp::Eq, Expr::Field(1), Expr::int(5)),
        );
        assert_eq!(e.eval(&t(), &mut c).unwrap(), Value::Bool(true));
        let e = Expr::Unary(
            UnOp::Not,
            Box::new(Expr::bin(BinOp::Lt, Expr::Field(0), Expr::Field(1))),
        );
        assert_eq!(e.eval(&t(), &mut c).unwrap(), Value::Bool(true));
    }

    #[test]
    fn string_concat() {
        let v = apply_binop(BinOp::Add, &Value::str("n"), &Value::str("1")).unwrap();
        assert_eq!(v, Value::str("n1"));
    }

    #[test]
    fn builtins() {
        let mut c = ctx();
        assert_eq!(
            Expr::Call(Builtin::Now, vec![]).eval(&t(), &mut c).unwrap(),
            Value::Time(SimTime::from_secs(100))
        );
        assert_eq!(
            Expr::Call(Builtin::LocalAddr, vec![])
                .eval(&t(), &mut c)
                .unwrap(),
            Value::str("n1")
        );
        let r = Expr::Call(Builtin::Rand, vec![])
            .eval(&t(), &mut c)
            .unwrap();
        let r = r.to_double().unwrap();
        assert!((0.0..1.0).contains(&r));
        let h = Expr::Call(Builtin::Sha1, vec![Expr::Field(2)])
            .eval(&t(), &mut c)
            .unwrap();
        assert_eq!(h, Value::Id(Uint160::hash_of(b"n2")));
        // Wrong arity is an error.
        assert!(Expr::Call(Builtin::Now, vec![Expr::int(1)])
            .eval(&t(), &mut c)
            .is_err());
    }

    #[test]
    fn interval_tests() {
        let mut c = ctx();
        let make = |kind| Expr::Interval {
            kind,
            value: Box::new(Expr::int(15)),
            low: Box::new(Expr::int(10)),
            high: Box::new(Expr::int(20)),
        };
        for kind in [
            IntervalKind::OpenOpen,
            IntervalKind::OpenClosed,
            IntervalKind::ClosedOpen,
            IntervalKind::ClosedClosed,
        ] {
            assert_eq!(make(kind).eval(&t(), &mut c).unwrap(), Value::Bool(true));
        }
        let edge = Expr::Interval {
            kind: IntervalKind::OpenClosed,
            value: Box::new(Expr::int(10)),
            low: Box::new(Expr::int(10)),
            high: Box::new(Expr::int(20)),
        };
        assert_eq!(edge.eval(&t(), &mut c).unwrap(), Value::Bool(false));
    }

    #[test]
    fn max_field() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::Field(2),
            Expr::Call(Builtin::Sha1, vec![Expr::Field(7)]),
        );
        assert_eq!(e.max_field(), Some(7));
        assert_eq!(Expr::int(3).max_field(), None);
    }
}
