//! Pretty-printer: renders an AST back to OverLog source.
//!
//! Used for debugging, for the `compactness` experiment (rule counting on
//! canonical output), and for parser round-trip tests: parsing the printed
//! form must reproduce the same AST.

use std::fmt::Write as _;

use p2_pel::{BinOp, IntervalKind, UnOp};
use p2_value::Value;

use crate::ast::{
    BodyTerm, Expr, Fact, Head, HeadArg, Lifetime, Materialize, Predicate, Program, Rule, SizeBound,
};

/// Renders a whole program as OverLog source text.
pub fn program_to_string(program: &Program) -> String {
    let mut out = String::new();
    for m in &program.materializations {
        let _ = writeln!(out, "{}", materialize_to_string(m));
    }
    for f in &program.facts {
        let _ = writeln!(out, "{}", fact_to_string(f));
    }
    for r in &program.rules {
        let _ = writeln!(out, "{}", rule_to_string(r));
    }
    out
}

/// Renders a `materialize` statement.
pub fn materialize_to_string(m: &Materialize) -> String {
    let lifetime = match m.lifetime {
        Lifetime::Infinity => "infinity".to_string(),
        Lifetime::Secs(s) => format_number(s),
    };
    let size = match m.max_size {
        SizeBound::Infinity => "infinity".to_string(),
        SizeBound::Rows(n) => n.to_string(),
    };
    let keys = m
        .keys
        .iter()
        .map(|k| k.to_string())
        .collect::<Vec<_>>()
        .join(",");
    format!("materialize({}, {lifetime}, {size}, keys({keys})).", m.name)
}

/// Renders a fact.
pub fn fact_to_string(f: &Fact) -> String {
    let id = f.id.as_deref().map(|i| format!("{i} ")).unwrap_or_default();
    let loc = f
        .location
        .as_deref()
        .map(|l| format!("@{l}"))
        .unwrap_or_default();
    let args = f
        .args
        .iter()
        .map(expr_to_string)
        .collect::<Vec<_>>()
        .join(", ");
    format!("{id}{}{loc}({args}).", f.name)
}

/// Renders a rule.
pub fn rule_to_string(r: &Rule) -> String {
    let delete = if r.delete { "delete " } else { "" };
    let body = r
        .body
        .iter()
        .map(body_term_to_string)
        .collect::<Vec<_>>()
        .join(", ");
    format!("{} {delete}{} :- {body}.", r.id, head_to_string(&r.head))
}

fn head_to_string(h: &Head) -> String {
    let loc = h
        .location
        .as_deref()
        .map(|l| format!("@{l}"))
        .unwrap_or_default();
    let args = h
        .args
        .iter()
        .map(|a| match a {
            HeadArg::Expr(e) => expr_to_string(e),
            HeadArg::Agg(agg) => {
                format!("{}<{}>", agg.func.name(), agg.var.as_deref().unwrap_or("*"))
            }
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!("{}{loc}({args})", h.name)
}

fn predicate_to_string(p: &Predicate) -> String {
    let not = if p.negated { "not " } else { "" };
    let loc = p
        .location
        .as_deref()
        .map(|l| format!("@{l}"))
        .unwrap_or_default();
    let args = p
        .args
        .iter()
        .map(expr_to_string)
        .collect::<Vec<_>>()
        .join(", ");
    format!("{not}{}{loc}({args})", p.name)
}

fn body_term_to_string(t: &BodyTerm) -> String {
    match t {
        BodyTerm::Predicate(p) => predicate_to_string(p),
        BodyTerm::Assign { var, expr } => format!("{var} := {}", expr_to_string(expr)),
        BodyTerm::Condition(e) => expr_to_string(e),
    }
}

/// Renders an expression (fully parenthesized to keep round-tripping simple).
pub fn expr_to_string(e: &Expr) -> String {
    match e {
        Expr::Var(v) => v.clone(),
        Expr::Wildcard => "_".to_string(),
        Expr::Const(v) => const_to_string(v),
        Expr::Call {
            name,
            location,
            args,
        } => {
            let loc = location
                .as_deref()
                .map(|l| format!("@{l}"))
                .unwrap_or_default();
            let args = args
                .iter()
                .map(expr_to_string)
                .collect::<Vec<_>>()
                .join(", ");
            format!("{name}{loc}({args})")
        }
        Expr::Unary { op, expr } => {
            let sym = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
            };
            format!("{sym}({})", expr_to_string(expr))
        }
        Expr::Binary { op, lhs, rhs } => format!(
            "({} {} {})",
            expr_to_string(lhs),
            binop_symbol(*op),
            expr_to_string(rhs)
        ),
        Expr::Range {
            kind,
            value,
            low,
            high,
        } => {
            let (open, close) = match kind {
                IntervalKind::OpenOpen => ("(", ")"),
                IntervalKind::OpenClosed => ("(", "]"),
                IntervalKind::ClosedOpen => ("[", ")"),
                IntervalKind::ClosedClosed => ("[", "]"),
            };
            format!(
                "{} in {open}{}, {}{close}",
                expr_to_string(value),
                expr_to_string(low),
                expr_to_string(high)
            )
        }
    }
}

fn const_to_string(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("\"{s}\""),
        Value::Bool(b) => b.to_string(),
        Value::Null => "null".to_string(),
        Value::Int(i) => i.to_string(),
        Value::Double(d) => format_number(*d),
        Value::Id(id) => format!("{}I", id.low_u64()),
        Value::Time(t) => format_number(t.as_secs_f64()),
    }
}

fn format_number(d: f64) -> String {
    if d.fract() == 0.0 {
        format!("{}", d as i64)
    } else {
        format!("{d}")
    }
}

fn binop_symbol(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Mod => "%",
        BinOp::Shl => "<<",
        BinOp::Shr => ">>",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    const SAMPLE: &str = r#"
        materialize(succ, 10, 100, keys(2)).
        materialize(node, infinity, 1, keys(1)).
        F0 nextFingerFix@NI(NI, 0).
        L1 lookupResults@R(R,K,S,SI,E) :- node@NI(NI,N), lookup@NI(NI,K,R,E),
           bestSucc@NI(NI,S,SI), K in (N,S].
        L2 bestLookupDist@NI(NI,K,R,E,min<D>) :- node@NI(NI,N), lookup@NI(NI,K,R,E),
           finger@NI(NI,I,B,BI), D := K - B - 1, B in (N,K).
        L3 delete fFix@NI(NI,E,I1) :- eagerFinger@NI(NI,I,B,BI), fFix@NI(NI,E,I1),
           I > 0, I1 == I - 1.
        S1 succCount@NI(NI,count<*>) :- succ@NI(NI,S,SI).
        F3 lookup@NI(NI,K,NI,E) :- fFixEvent@NI(NI,E,I), node@NI(NI,N), K := (1I << I) + N.
    "#;

    #[test]
    fn round_trip_reproduces_ast() {
        let original = parse_program(SAMPLE).unwrap();
        let printed = program_to_string(&original);
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("pretty output failed to reparse: {e}\n{printed}"));
        assert_eq!(original, reparsed, "printed form:\n{printed}");
    }

    #[test]
    fn materialize_formats() {
        let p = parse_program("materialize(member, 120, infinity, keys(2)).").unwrap();
        assert_eq!(
            materialize_to_string(&p.materializations[0]),
            "materialize(member, 120, infinity, keys(2))."
        );
    }

    #[test]
    fn rule_format_is_readable() {
        let p = parse_program("N1 bestSucc@NI(NI,S,SI) :- succ@NI(NI,S,SI).").unwrap();
        assert_eq!(
            rule_to_string(&p.rules[0]),
            "N1 bestSucc@NI(NI, S, SI) :- succ@NI(NI, S, SI)."
        );
    }
}
