//! Property test pinning the delta-fed `AggProbe` to the
//! recompute-per-event scan path it replaces: two identical rigs — one
//! probe built with `AggProbe::new` (counted full scan per event), one
//! with `AggProbe::new_incremental` (per-group contribution state fed by
//! the table's delta stream) — receive the same arbitrary interleaving of
//! inserts, deletes, expirations, evictions, and probe events, and must
//! produce bit-identical emission streams for every aggregate function.

use p2_dataflow::elements::{AggProbe, Collector, CollectorHandle, Delete, Demux, Insert};
use p2_dataflow::{Engine, Graph, Route};
use p2_pel::{BinOp, Expr, Program};
use p2_table::{AggFunc, Table, TableRef, TableSpec};
use p2_value::{SimTime, Tuple, TupleBuilder, Value};
use proptest::prelude::*;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Action {
    /// Insert `row(b, v)` (same `b` replaces; over-capacity evicts).
    Insert { b: i64, v: i64, at_secs: u64 },
    /// Delete the row keyed `b`.
    Delete { b: i64 },
    /// Expire soft state (observable only through the delta stream).
    Expire { at_secs: u64 },
    /// Deliver the probe event `ev(k)`: aggregate over matching rows.
    Probe { k: i64, at_secs: u64 },
}

fn arb_action() -> impl Strategy<Value = Action> {
    // The vendored proptest has no weighted arms; duplication stands in
    // for weights (inserts and probes dominate).
    let insert = || {
        (0i64..10, -20i64..20, 0u64..150).prop_map(|(b, v, at_secs)| Action::Insert {
            b,
            v,
            at_secs,
        })
    };
    let probe = || (0i64..10, 0u64..150).prop_map(|(k, at_secs)| Action::Probe { k, at_secs });
    prop_oneof![
        insert(),
        insert(),
        insert(),
        probe(),
        probe(),
        probe(),
        (0i64..10).prop_map(|b| Action::Delete { b }),
        (0u64..200).prop_map(|at_secs| Action::Expire { at_secs }),
    ]
}

fn arb_func() -> impl Strategy<Value = AggFunc> {
    prop_oneof![
        Just(AggFunc::Count),
        Just(AggFunc::Sum),
        Just(AggFunc::Avg),
        Just(AggFunc::Min),
        Just(AggFunc::Max),
    ]
}

/// One probe rig: demuxed insert/delete bridges into the table plus the
/// probe on the event stream. The joined tuple is `ev(K) ++ row(B, V)`,
/// so field 0 is the event key, fields 1-2 the row.
struct Rig {
    engine: Engine,
    table: TableRef,
    buf: CollectorHandle,
}

impl Rig {
    fn new(func: AggFunc, max_size: usize, incremental: bool) -> Rig {
        let spec = TableSpec::new("row", vec![0])
            .with_lifetime_secs(40)
            .with_max_size(max_size);
        let table: TableRef = Arc::new(parking_lot::Mutex::new(Table::new(spec)));
        // Filter: B > K (event-dependent, so contributions are cached per
        // event class). Aggregate expression: V - K.
        let filter = Program::compile(&Expr::bin(BinOp::Gt, Expr::Field(1), Expr::Field(0)));
        let agg_expr = Program::compile(&Expr::bin(BinOp::Sub, Expr::Field(2), Expr::Field(0)));
        let probe = if incremental {
            AggProbe::new_incremental(table.clone(), 2, func, Some(filter), agg_expr, "out")
        } else {
            AggProbe::new(table.clone(), 2, func, Some(filter), agg_expr, "out")
        };
        assert_eq!(probe.is_incremental(), incremental);

        let mut g = Graph::new();
        let demux = g.add(
            "demux",
            Box::new(Demux::new(vec!["row".into(), "zap".into(), "ev".into()])),
        );
        let ins = g.add("insert", Box::new(Insert::new(table.clone())));
        let del = g.add("delete", Box::new(Delete::new(table.clone())));
        let probe_id = g.add("probe", Box::new(probe));
        let (c, buf) = Collector::new();
        let tap = g.add("tap", Box::new(c));
        g.connect(demux, 0, ins, 0);
        g.connect(demux, 1, del, 0);
        g.connect(demux, 2, probe_id, 0);
        g.connect(probe_id, 0, tap, 0);
        let mut engine = Engine::new(g, "n1", 1);
        engine.set_entry(Route {
            element: demux,
            port: 0,
        });
        engine.start(SimTime::ZERO);
        Rig { engine, table, buf }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn incremental_agg_probe_matches_scan_probe(
        func in arb_func(),
        actions in proptest::collection::vec(arb_action(), 1..80),
        max_size in 2usize..8,
    ) {
        let mut scan = Rig::new(func, max_size, false);
        let mut inc = Rig::new(func, max_size, true);
        let mut now = SimTime::ZERO;
        for action in actions {
            match action {
                Action::Insert { b, v, at_secs } => {
                    now = now.max(SimTime::from_secs(at_secs));
                    for rig in [&mut scan, &mut inc] {
                        let t = TupleBuilder::new("row").push(b).push(v).build();
                        rig.engine.deliver(t, now);
                    }
                }
                Action::Delete { b } => {
                    for rig in [&mut scan, &mut inc] {
                        let pattern =
                            Tuple::new("zap", vec![Value::Int(b), Value::Null]);
                        rig.engine.deliver(pattern, now);
                    }
                }
                Action::Expire { at_secs } => {
                    now = now.max(SimTime::from_secs(at_secs));
                    scan.table.lock().expire(now);
                    inc.table.lock().expire(now);
                }
                Action::Probe { k, at_secs } => {
                    now = now.max(SimTime::from_secs(at_secs));
                    for rig in [&mut scan, &mut inc] {
                        let ev = TupleBuilder::new("ev").push(k).build();
                        rig.engine.deliver(ev, now);
                    }
                }
            }
            scan.table.lock().check_consistency().unwrap();
            inc.table.lock().check_consistency().unwrap();
            let a = scan.buf.lock();
            let b = inc.buf.lock();
            prop_assert_eq!(&*a, &*b, "probe divergence for {:?} at {:?}", func, now);
        }
    }
}
