//! Declarative P2 Chord vs the hand-coded baseline on identical topology and
//! workload (experiment E9; the paper's §5.2 comparison against MIT Chord).
//!
//! Defaults to a small network; pass `--paper` for a 100-node comparison.

use p2_bench::{paper_scale, to_json};
use p2_harness::experiments::baseline_compare;

fn main() {
    let (n, lookups, warmup) = if paper_scale() {
        (100, 200, 900)
    } else {
        (24, 40, 300)
    };
    eprintln!("comparing P2 Chord vs hand-coded Chord on {n} nodes (use --paper for full scale)");
    let r = baseline_compare(n, lookups, warmup, 7);

    println!("=== Declarative (P2) vs hand-coded Chord, N={} ===", r.n);
    println!(
        "{:<34} {:>14} {:>14}",
        "metric", "P2 (OverLog)", "hand-coded"
    );
    println!(
        "{:<34} {:>14.3} {:>14.3}",
        "ring correctness", r.p2_ring_correctness, r.baseline_ring_correctness
    );
    println!(
        "{:<34} {:>14.3} {:>14.3}",
        "median lookup latency (s)", r.p2_median_latency, r.baseline_median_latency
    );
    println!(
        "{:<34} {:>14.1} {:>14.1}",
        "maintenance bandwidth (B/s/node)", r.p2_maintenance_bw, r.baseline_maintenance_bw
    );
    println!(
        "{:<34} {:>14.3} {:>14.3}",
        "lookup completion rate", r.p2_completion, r.baseline_completion
    );
    if std::env::args().any(|a| a == "--json") {
        println!("{}", to_json(&r));
    }
}
