//! Marshaling of tuples into a byte-level wire format.
//!
//! The original P2 serializes tuples with an XDR-like encoding before
//! handing them to its UDP transport elements. This module provides an
//! equivalent tagged binary codec. The network simulator uses
//! [`encoded_size`] for bandwidth accounting and the integration tests use
//! [`marshal`]/[`unmarshal`] to check that the encoding round-trips, so the
//! byte counts charged to the simulated links correspond to a real, decodable
//! representation rather than a guess.

use crate::error::ValueError;
use crate::time::SimTime;
use crate::tuple::Tuple;
use crate::uint160::Uint160;
use crate::value::Value;

/// Fixed per-tuple header: 2-byte field count + 2-byte name length.
const TUPLE_HEADER: usize = 4;

/// Simulated UDP/IP header overhead charged per packet by the simulator.
pub const UDP_IP_HEADER: usize = 28;

mod tag {
    pub const NULL: u8 = 0;
    pub const BOOL: u8 = 1;
    pub const INT: u8 = 2;
    pub const DOUBLE: u8 = 3;
    pub const STR: u8 = 4;
    pub const ID: u8 = 5;
    pub const TIME: u8 = 6;
}

/// Returns the number of bytes [`marshal`] would produce for this tuple.
pub fn encoded_size(tuple: &Tuple) -> usize {
    TUPLE_HEADER + tuple.name().len() + tuple.values().iter().map(Value::wire_size).sum::<usize>()
}

/// Encodes a tuple into bytes.
pub fn marshal(tuple: &Tuple) -> Vec<u8> {
    let mut out = Vec::with_capacity(encoded_size(tuple));
    out.extend_from_slice(&(tuple.arity() as u16).to_be_bytes());
    out.extend_from_slice(&(tuple.name().len() as u16).to_be_bytes());
    out.extend_from_slice(tuple.name().as_bytes());
    for v in tuple.values() {
        marshal_value(v, &mut out);
    }
    out
}

fn marshal_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(tag::NULL),
        Value::Bool(b) => {
            out.push(tag::BOOL);
            out.push(*b as u8);
        }
        Value::Int(i) => {
            out.push(tag::INT);
            out.extend_from_slice(&i.to_be_bytes());
        }
        Value::Double(d) => {
            out.push(tag::DOUBLE);
            out.extend_from_slice(&d.to_bits().to_be_bytes());
        }
        Value::Str(s) => {
            out.push(tag::STR);
            out.extend_from_slice(&(s.len() as u32).to_be_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Id(id) => {
            out.push(tag::ID);
            let limbs = id.limbs();
            out.extend_from_slice(&(limbs[2] as u32).to_be_bytes());
            out.extend_from_slice(&limbs[1].to_be_bytes());
            out.extend_from_slice(&limbs[0].to_be_bytes());
        }
        Value::Time(t) => {
            out.push(tag::TIME);
            out.extend_from_slice(&t.as_micros().to_be_bytes());
        }
    }
}

/// Decodes a tuple previously produced by [`marshal`].
pub fn unmarshal(bytes: &[u8]) -> Result<Tuple, ValueError> {
    let mut cursor = Cursor { bytes, pos: 0 };
    let arity = cursor.read_u16()? as usize;
    let name_len = cursor.read_u16()? as usize;
    let name_bytes = cursor.read_slice(name_len)?;
    let name = std::str::from_utf8(name_bytes).map_err(|_| ValueError::TypeMismatch {
        op: "unmarshal",
        got: "invalid utf-8 tuple name".to_string(),
    })?;
    let name = name.to_string();
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        values.push(unmarshal_value(&mut cursor)?);
    }
    Ok(Tuple::new(name, values))
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn read_slice(&mut self, n: usize) -> Result<&'a [u8], ValueError> {
        if self.pos + n > self.bytes.len() {
            return Err(ValueError::TypeMismatch {
                op: "unmarshal",
                got: "truncated packet".to_string(),
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn read_u8(&mut self) -> Result<u8, ValueError> {
        Ok(self.read_slice(1)?[0])
    }

    fn read_u16(&mut self) -> Result<u16, ValueError> {
        let s = self.read_slice(2)?;
        Ok(u16::from_be_bytes([s[0], s[1]]))
    }

    fn read_u32(&mut self) -> Result<u32, ValueError> {
        let s = self.read_slice(4)?;
        Ok(u32::from_be_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn read_u64(&mut self) -> Result<u64, ValueError> {
        let s = self.read_slice(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_be_bytes(b))
    }
}

fn unmarshal_value(cursor: &mut Cursor<'_>) -> Result<Value, ValueError> {
    let t = cursor.read_u8()?;
    Ok(match t {
        tag::NULL => Value::Null,
        tag::BOOL => Value::Bool(cursor.read_u8()? != 0),
        tag::INT => Value::Int(cursor.read_u64()? as i64),
        tag::DOUBLE => Value::Double(f64::from_bits(cursor.read_u64()?)),
        tag::STR => {
            let len = cursor.read_u32()? as usize;
            let bytes = cursor.read_slice(len)?;
            let s = std::str::from_utf8(bytes).map_err(|_| ValueError::TypeMismatch {
                op: "unmarshal",
                got: "invalid utf-8 string".to_string(),
            })?;
            Value::str(s)
        }
        tag::ID => {
            let high = cursor.read_u32()? as u64;
            let mid = cursor.read_u64()?;
            let low = cursor.read_u64()?;
            Value::Id(Uint160::from_limbs([low, mid, high]))
        }
        tag::TIME => Value::Time(SimTime::from_micros(cursor.read_u64()?)),
        other => {
            return Err(ValueError::TypeMismatch {
                op: "unmarshal",
                got: format!("unknown value tag {other}"),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::TupleBuilder;

    fn sample() -> Tuple {
        TupleBuilder::new("lookup")
            .push("n1:1000")
            .push(Value::Id(Uint160::hash_of(b"key")))
            .push("n2:1000")
            .push(12345i64)
            .push(Value::Time(SimTime::from_millis(1500)))
            .push(Value::Double(0.25))
            .push(Value::Bool(true))
            .push(Value::Null)
            .build()
    }

    #[test]
    fn round_trip() {
        let t = sample();
        let bytes = marshal(&t);
        let back = unmarshal(&bytes).unwrap();
        assert_eq!(back.name(), t.name());
        assert_eq!(back.values(), t.values());
    }

    #[test]
    fn encoded_size_matches_actual_encoding() {
        let t = sample();
        assert_eq!(encoded_size(&t), marshal(&t).len());
        let empty = Tuple::new("ping", vec![]);
        assert_eq!(encoded_size(&empty), marshal(&empty).len());
    }

    #[test]
    fn truncated_packets_are_rejected() {
        let bytes = marshal(&sample());
        for cut in [0, 1, 3, bytes.len() / 2, bytes.len() - 1] {
            assert!(unmarshal(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        // Header for a 1-field tuple named "x" followed by a bogus tag.
        let bytes = [0, 1, 0, 1, b'x', 99];
        assert!(unmarshal(&bytes).is_err());
    }
}
