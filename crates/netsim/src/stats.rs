//! Traffic accounting for the bandwidth experiments.

use std::collections::HashMap;

/// Cumulative traffic counters kept by the simulator.
///
/// The paper's "maintenance bandwidth" figures count all traffic *not*
/// associated with lookups and responses; keeping per-tuple-name byte counts
/// lets the harness classify traffic exactly that way.
#[derive(Debug, Clone, Default)]
pub struct NetStats {
    /// Total messages handed to the network.
    pub messages_sent: u64,
    /// Messages actually delivered to an up node.
    pub messages_delivered: u64,
    /// Messages dropped (loss, destination down or unknown).
    pub messages_dropped: u64,
    /// Total bytes sent (payload + UDP/IP header).
    pub bytes_sent: u64,
    /// Bytes sent per tuple name.
    pub bytes_by_name: HashMap<String, u64>,
    /// Bytes sent per source node.
    pub bytes_by_source: HashMap<String, u64>,
}

/// Bumps `map[key]` by `bytes`, allocating the key string only the first
/// time a name/source is seen — the per-packet steady state is a plain
/// hash probe.
fn bump(map: &mut HashMap<String, u64>, key: &str, bytes: u64) {
    if let Some(v) = map.get_mut(key) {
        *v += bytes;
    } else {
        map.insert(key.to_string(), bytes);
    }
}

impl NetStats {
    /// Records a transmission attempt of `bytes` bytes for tuple `name` from
    /// `src`.
    pub fn record_send(&mut self, src: &str, name: &str, bytes: usize) {
        self.messages_sent += 1;
        self.bytes_sent += bytes as u64;
        bump(&mut self.bytes_by_name, name, bytes as u64);
        bump(&mut self.bytes_by_source, src, bytes as u64);
    }

    /// Records a successful delivery.
    pub fn record_delivery(&mut self) {
        self.messages_delivered += 1;
    }

    /// Records a drop.
    pub fn record_drop(&mut self) {
        self.messages_dropped += 1;
    }

    /// Adds every counter of `other` into `self`.
    ///
    /// Counter addition commutes, so merging per-shard statistics in any
    /// order yields the same totals the sequential simulator would have
    /// recorded; the parallel simulator merges in shard order anyway.
    pub fn merge(&mut self, other: &NetStats) {
        self.messages_sent += other.messages_sent;
        self.messages_delivered += other.messages_delivered;
        self.messages_dropped += other.messages_dropped;
        self.bytes_sent += other.bytes_sent;
        for (name, bytes) in &other.bytes_by_name {
            bump(&mut self.bytes_by_name, name, *bytes);
        }
        for (src, bytes) in &other.bytes_by_source {
            bump(&mut self.bytes_by_source, src, *bytes);
        }
    }

    /// Total bytes across tuple names for which `classify` returns true.
    pub fn bytes_where(&self, classify: impl Fn(&str) -> bool) -> u64 {
        self.bytes_by_name
            .iter()
            .filter(|(name, _)| classify(name))
            .map(|(_, b)| *b)
            .sum()
    }

    /// Bytes belonging to lookup traffic (lookups and their responses).
    pub fn lookup_bytes(&self) -> u64 {
        self.bytes_where(|n| n == "lookup" || n == "lookupResults")
    }

    /// Bytes belonging to overlay maintenance (everything that is not lookup
    /// traffic), matching the paper's definition.
    pub fn maintenance_bytes(&self) -> u64 {
        self.bytes_sent - self.lookup_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_splits_lookup_and_maintenance() {
        let mut s = NetStats::default();
        s.record_send("n1", "lookup", 100);
        s.record_send("n2", "lookupResults", 50);
        s.record_send("n1", "succ", 200);
        s.record_send("n3", "pingReq", 25);
        assert_eq!(s.bytes_sent, 375);
        assert_eq!(s.lookup_bytes(), 150);
        assert_eq!(s.maintenance_bytes(), 225);
        assert_eq!(s.bytes_by_source["n1"], 300);
        assert_eq!(s.messages_sent, 4);
    }

    #[test]
    fn repeated_sends_accumulate_under_one_key() {
        let mut s = NetStats::default();
        for _ in 0..3 {
            s.record_send("n1", "succ", 10);
        }
        assert_eq!(s.bytes_by_name.len(), 1);
        assert_eq!(s.bytes_by_name["succ"], 30);
    }

    #[test]
    fn drops_and_deliveries_are_counted() {
        let mut s = NetStats::default();
        s.record_send("n1", "x", 10);
        s.record_delivery();
        s.record_drop();
        assert_eq!(s.messages_delivered, 1);
        assert_eq!(s.messages_dropped, 1);
    }
}
