//! Deterministic discrete-event network simulator.
//!
//! The paper evaluates P2 on the Emulab testbed: 100 stub nodes spread over
//! 10 domains, one router per domain, 2 ms intra-domain and 100 ms
//! inter-domain latency, 10 Mbps access links and 100 Mbps core links. This
//! crate reproduces that substrate in simulation so that hundreds of P2
//! nodes (or hand-coded baseline nodes) can run in-process with a virtual
//! clock:
//!
//! * [`Topology`] models the transit-stub layout and computes end-to-end
//!   latencies;
//! * [`Simulator`] hosts [`Host`] implementations (one per overlay node),
//!   delivers tuples with serialization + propagation delay, drives each
//!   host's timers, applies optional packet loss, and records per-tuple-name
//!   byte counters for the bandwidth experiments;
//! * churn is supported by marking nodes down (in-flight packets to them are
//!   dropped, their timers stop) and replacing them with fresh hosts.
//!
//! The simulator is fully deterministic for a given seed.
//!
//! Internally the event loop runs on interned [`NodeId`]s (dense `u32`
//! indices into the slot table) rather than string addresses, packet
//! latencies come from a precomputed domain×domain matrix, and node wakeups
//! live in a tombstone-free timer index separate from the delivery heap.
//! String addresses appear only at the public API boundary.
//!
//! # Parallel sharded simulation
//!
//! [`ParSimulator`] runs the same simulation on a fixed pool of worker
//! threads by sharding nodes on `NodeId` and synchronizing with
//! **conservative time windows**:
//!
//! * **Lookahead / horizon protocol.** The lookahead `W` is the topology's
//!   minimum distinct-node link latency ([`Topology::min_latency`]); no
//!   packet between distinct nodes can arrive sooner than `W` after it was
//!   sent. Each round, the shards agree on the global earliest pending
//!   event time `T0` and then independently execute all of their own
//!   deliveries and wakeups in `[T0, T0 + W)`. Packets that cross shards
//!   are staged in per-(source, destination) mailboxes and merged into the
//!   destination shard's queue at the round barrier — by construction they
//!   arrive at or after the horizon, so no shard ever receives an event in
//!   its past.
//! * **Determinism contract.** Deliveries are ordered everywhere by a
//!   sharding-invariant key assigned at *send* time — `(arrival time, send
//!   time, sender, per-sender emission index)` — never by arrival or
//!   mailbox order, and packet loss is decided by hashing `(seed, sender,
//!   emission index)` rather than by consuming a global RNG stream. A
//!   parallel run is therefore bit-for-bit reproducible at every worker
//!   count, and reproduces the sequential [`Simulator`]'s `NetStats` and
//!   events-processed counters on the pinned golden workloads (see the
//!   determinism suites under `crates/netsim/tests` and
//!   `crates/harness/tests`).
//!
//! [`AnySimulator`] wraps both engines behind one front-end so harnesses
//! can switch with a runtime knob.

pub mod host;
pub mod id;
pub mod parsim;
pub mod sim;
pub mod stats;
mod timer;
pub mod topology;

pub use host::{Envelope, Host};
pub use id::{AddrInterner, NodeId};
pub use parsim::{AnySimulator, ParSimulator};
pub use sim::{NetworkConfig, Simulator};
pub use stats::NetStats;
pub use topology::Topology;
