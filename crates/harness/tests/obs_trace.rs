//! Observability determinism gates: the rule-level profiler and the
//! provenance trace must be pure observers. The JSONL trace and the merged
//! profiler counters of a tagged lookup are bit-identical between the
//! sequential simulator and the sharded one at every worker count, and the
//! profile's wasted-poke audit must agree with the static analyzer's
//! refresh-transparency classification.

use p2_harness::ChordCluster;
use p2_obs::{ElemCounters, TraceKind};
use p2_value::Uint160;

/// Builds a 16-node ring, profiles a settle window, then traces one tagged
/// lookup; returns everything the observability layer produced.
fn traced_run(workers: Option<usize>) -> (String, Vec<ElemCounters>, Option<String>) {
    let builder = ChordCluster::builder(16, 23);
    let builder = match workers {
        None => builder,
        Some(w) => builder.par_threads(w),
    };
    let mut cluster = builder.build_fast(120);
    cluster.enable_observability();
    cluster.run_for(30.0);
    let key = Uint160::hash_of(b"traced determinism object");
    let origin = cluster.addrs()[5].clone();
    let handle = cluster.issue_traced_lookup(&origin, key);
    cluster.run_for(10.0);
    let owner = cluster.outcome(&handle).map(|o| o.owner);
    (cluster.drain_trace_jsonl(), cluster.obs_counters(), owner)
}

#[test]
fn trace_and_profile_are_identical_across_worker_counts() {
    let (jsonl, counters, owner) = traced_run(None);
    assert!(owner.is_some(), "sequential traced lookup did not complete");
    assert!(!jsonl.is_empty(), "tagged lookup left no trace");
    assert!(
        jsonl.lines().any(|l| l.contains("lookupResults")),
        "trace never derived the lookup result"
    );
    assert!(
        counters.iter().any(|c| c.invocations > 0),
        "profiler recorded no work"
    );
    for w in [1, 2, 4] {
        let (j, c, o) = traced_run(Some(w));
        assert_eq!(o, owner, "{w}-worker lookup owner diverged");
        assert_eq!(j, jsonl, "{w}-worker JSONL trace diverged");
        assert_eq!(c, counters, "{w}-worker profiler counters diverged");
    }
}

#[test]
fn wasted_poke_audit_matches_rule_classification() {
    let mut cluster = ChordCluster::builder(16, 23).build_fast(120);
    cluster.enable_observability();
    cluster.run_for(60.0);
    let report = cluster.obs_report();
    assert!(report.total_pokes > 0, "no pokes profiled");
    assert!(
        report.total_wasted_pokes > 0,
        "steady-state maintenance should contain refresh no-ops"
    );
    // The PR-8 classification predicted that refresh-transparent rules
    // (the SU0/SU1-style soft-state refresh paths) account for the bulk of
    // the no-op pokes; the measured audit must agree.
    assert!(
        report.refresh_transparent.wasted_pokes >= report.other_rules.wasted_pokes,
        "refresh-transparent rules no longer dominate wasted pokes: {} vs {}",
        report.refresh_transparent.wasted_pokes,
        report.other_rules.wasted_pokes
    );
    // Every rule the analyzer classified appears in the profile.
    assert!(
        report.rules.iter().filter(|r| r.class.is_some()).count() > 30,
        "rule attribution lost most rules"
    );
}

#[test]
fn observability_is_off_by_default_and_trace_is_scoped_to_the_tag() {
    let mut cluster = ChordCluster::builder(8, 7).build_fast(120);
    // Off by default: no counters exist, draining yields nothing.
    assert!(cluster.obs_counters().is_empty());
    assert!(cluster.drain_trace().is_empty());

    cluster.enable_observability();
    let key = Uint160::hash_of(b"scoped trace");
    let origin = cluster.addrs()[3].clone();
    let handle = cluster.issue_traced_lookup(&origin, key);
    cluster.run_for(10.0);
    let events = cluster.drain_trace();
    assert!(!events.is_empty());
    // Every traced tuple carries the tag (the lookup's event id).
    let tag = format!("{}", handle.event);
    for e in &events {
        assert!(
            e.tuple.contains(&tag),
            "untagged tuple in trace: {}",
            e.tuple
        );
    }
    // The cascade re-enters remote nodes: arrivals recorded on more than
    // one node, and the sends pair up with them.
    let recv_nodes: std::collections::BTreeSet<_> = events
        .iter()
        .filter(|e| e.kind == TraceKind::Recv)
        .map(|e| e.node.clone())
        .collect();
    assert!(recv_nodes.len() > 1, "trace never left the origin");
    assert!(events.iter().any(|e| e.kind == TraceKind::Send));
    // Draining consumed the rings.
    assert!(cluster.drain_trace().is_empty());
}
