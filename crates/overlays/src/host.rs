//! Adapter exposing a P2 node to the network simulator.

use p2_core::{Outgoing, P2Node};
use p2_netsim::{Envelope, Host};
use p2_value::{SimTime, Tuple};

/// A [`P2Node`] wrapped as a simulator [`Host`].
///
/// The wrapper is a straight delegation: outgoing dataflow tuples become
/// simulator envelopes and vice versa.
pub struct P2Host {
    node: P2Node,
}

impl P2Host {
    /// Wraps a planned node.
    pub fn new(node: P2Node) -> P2Host {
        P2Host { node }
    }

    /// Access to the underlying node (tables, collectors, statistics).
    pub fn node(&self) -> &P2Node {
        &self.node
    }

    /// Mutable access to the underlying node.
    pub fn node_mut(&mut self) -> &mut P2Node {
        &mut self.node
    }
}

fn convert(out: Vec<Outgoing>) -> Vec<Envelope> {
    out.into_iter()
        .map(|o| Envelope::new(o.dst, o.tuple))
        .collect()
}

// Compile-time audit: `Host: Send` already forces this, but assert it
// directly so a non-`Send` addition to the node stack (an `Rc`, a raw
// pointer, a thread-local handle) is reported here, at the simulator
// boundary it would break, rather than via a distant trait-bound error.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<P2Host>();
};

impl Host for P2Host {
    fn start(&mut self, now: SimTime) -> Vec<Envelope> {
        convert(self.node.start(now))
    }

    fn deliver(&mut self, tuple: Tuple, now: SimTime) -> Vec<Envelope> {
        convert(self.node.deliver(tuple, now))
    }

    fn deliver_many(&mut self, tuples: Vec<Tuple>, now: SimTime) -> Vec<Envelope> {
        // One soft-state sweep and one engine drain for the whole batch.
        convert(self.node.deliver_many(tuples, now))
    }

    fn advance_to(&mut self, now: SimTime) -> Vec<Envelope> {
        convert(self.node.advance_to(now))
    }

    fn next_deadline(&self) -> Option<SimTime> {
        self.node.next_deadline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_core::NodeConfig;
    use p2_overlog::compile_checked;
    use p2_value::TupleBuilder;

    #[test]
    fn adapter_delegates_to_the_node() {
        let src = r#"
            P1 pong@X(X, Y) :- ping@Y(Y, X).
        "#;
        let program = compile_checked(src).unwrap();
        let node = P2Node::new(&program, NodeConfig::new("n1", 1).without_jitter()).unwrap();
        let mut host = P2Host::new(node);
        host.start(SimTime::ZERO);
        let out = host.deliver(
            TupleBuilder::new("ping").push("n1").push("n2").build(),
            SimTime::from_secs(1),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(&*out[0].dst, "n2");
        assert_eq!(out[0].tuple.name(), "pong");
        assert!(host.node().next_deadline().is_none());
        assert_eq!(host.node_mut().addr(), "n1");
    }
}
