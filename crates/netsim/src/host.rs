//! The interface a simulated overlay node presents to the simulator.

use std::sync::Arc;

use p2_value::{SimTime, Tuple};

/// A tuple addressed to another node.
///
/// Like the dataflow engine's `Outgoing`, the destination is an `Arc<str>`:
/// the address usually originates in a tuple field whose string is already
/// reference-counted, so crossing the node/simulator boundary shares it
/// instead of reallocating per packet.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Destination node address.
    pub dst: Arc<str>,
    /// Payload tuple.
    pub tuple: Tuple,
}

impl Envelope {
    /// Creates an envelope.
    pub fn new(dst: impl Into<Arc<str>>, tuple: Tuple) -> Envelope {
        Envelope {
            dst: dst.into(),
            tuple,
        }
    }
}

/// A node hosted by the simulator.
///
/// Both the declarative P2 nodes and the hand-coded baseline implement this
/// trait; the simulator drives them identically, which keeps the comparison
/// experiments fair.
pub trait Host: Send {
    /// Boots the node at virtual time `now`.
    fn start(&mut self, now: SimTime) -> Vec<Envelope>;

    /// Delivers a tuple addressed to this node.
    fn deliver(&mut self, tuple: Tuple, now: SimTime) -> Vec<Envelope>;

    /// Delivers a batch of tuples that all arrive at this node at the same
    /// virtual instant. The default forwards one at a time; hosts with a
    /// cheaper batched path (the P2 engine's `deliver_many`) override it so
    /// the glue amortizes per-tuple dispatch.
    fn deliver_many(&mut self, tuples: Vec<Tuple>, now: SimTime) -> Vec<Envelope> {
        let mut out = Vec::new();
        for t in tuples {
            out.extend(self.deliver(t, now));
        }
        out
    }

    /// Advances the node's clock, firing any timers due at or before `now`.
    fn advance_to(&mut self, now: SimTime) -> Vec<Envelope>;

    /// The earliest future time at which the node has work to do, if any.
    fn next_deadline(&self) -> Option<SimTime>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_value::TupleBuilder;

    #[test]
    fn envelope_construction() {
        let e = Envelope::new("n2", TupleBuilder::new("ping").push("n1").build());
        assert_eq!(&*e.dst, "n2");
        assert_eq!(e.tuple.name(), "ping");
    }
}
