//! Shared helpers for the figure-reproduction binaries.
//!
//! Each binary regenerates one figure of the paper's evaluation (§5); the
//! heavy lifting lives in `p2-harness::experiments`, this crate only parses
//! arguments and formats tables. Micro-benchmarks (element handoff cost, PEL
//! evaluation, table operations, planner throughput — experiment E8) live in
//! `benches/` and run under Criterion.

/// Returns true when `--paper` was passed (full paper-scale parameters;
/// the default is a scaled-down run that finishes in minutes).
pub fn paper_scale() -> bool {
    std::env::args().any(|a| a == "--paper")
}

/// Prints a labelled CDF as a compact table of quantiles.
pub fn print_cdf_summary(label: &str, points: &[(f64, f64)]) {
    if points.is_empty() {
        println!("  {label}: (no samples)");
        return;
    }
    let at = |q: f64| {
        let idx = ((points.len() - 1) as f64 * q).round() as usize;
        points[idx].0
    };
    println!(
        "  {label}: p10={:.3} p50={:.3} p90={:.3} p99={:.3} max={:.3} (n={})",
        at(0.10),
        at(0.50),
        at(0.90),
        at(0.99),
        points.last().unwrap().0,
        points.len()
    );
}

/// Serializes any experiment result to pretty JSON for downstream plotting.
pub fn to_json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).unwrap_or_else(|e| format!("{{\"error\": \"{e}\"}}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_serialization_works() {
        #[derive(serde::Serialize)]
        struct S {
            x: u32,
        }
        assert!(to_json(&S { x: 3 }).contains("\"x\": 3"));
    }

    #[test]
    fn cdf_summary_handles_empty_input() {
        print_cdf_summary("empty", &[]);
        print_cdf_summary("one", &[(1.0, 1.0)]);
    }
}
