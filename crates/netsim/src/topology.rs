//! Transit-stub topology and latency model.

use std::collections::HashMap;

use p2_value::SimTime;

/// The simulated network layout.
///
/// Mirrors the Emulab configuration of the paper's evaluation: a set of
/// domains, each with one router; stub nodes attach to their domain router.
/// Latency between two nodes is the sum of their access hops plus, for
/// different domains, the inter-domain hop.
///
/// Pairwise domain latencies are precomputed into a `domains × domains`
/// matrix at construction so the simulator's per-packet lookup is a single
/// array load ([`Topology::domain_latency`]). The latency fields are public
/// for inspection; code that mutates them after construction must call
/// [`Topology::rebuild_latency_matrix`].
#[derive(Debug, Clone)]
pub struct Topology {
    /// Number of domains (routers).
    pub domains: usize,
    /// One-way latency from a stub node to its domain router.
    pub intra_domain_latency: SimTime,
    /// One-way latency between two domain routers.
    pub inter_domain_latency: SimTime,
    /// Access link capacity (bits per second) of a stub node.
    pub access_bandwidth_bps: f64,
    /// Core link capacity (bits per second) between routers.
    pub core_bandwidth_bps: f64,
    /// Row-major `domains × domains` matrix of one-way latencies between
    /// nodes placed in each pair of domains.
    latency_matrix: Vec<SimTime>,
    assignments: HashMap<String, usize>,
    next: usize,
}

impl Topology {
    /// The topology used in the paper's evaluation: 10 domain routers,
    /// 2 ms intra-domain latency, 100 ms inter-domain latency, 10 Mbps stub
    /// links and 100 Mbps core links.
    pub fn emulab_default() -> Topology {
        Topology::new(
            10,
            SimTime::from_millis(2),
            SimTime::from_millis(100),
            10e6,
            100e6,
        )
    }

    /// Creates a topology with explicit parameters.
    pub fn new(
        domains: usize,
        intra_domain_latency: SimTime,
        inter_domain_latency: SimTime,
        access_bandwidth_bps: f64,
        core_bandwidth_bps: f64,
    ) -> Topology {
        let mut t = Topology {
            domains: domains.max(1),
            intra_domain_latency,
            inter_domain_latency,
            access_bandwidth_bps,
            core_bandwidth_bps,
            latency_matrix: Vec::new(),
            assignments: HashMap::new(),
            next: 0,
        };
        t.rebuild_latency_matrix();
        t
    }

    /// Recomputes the domain×domain latency matrix from the latency fields.
    pub fn rebuild_latency_matrix(&mut self) {
        let d = self.domains;
        let same = self.intra_domain_latency + self.intra_domain_latency;
        let cross =
            self.intra_domain_latency + self.inter_domain_latency + self.intra_domain_latency;
        self.latency_matrix = (0..d * d)
            .map(|i| if i / d == i % d { same } else { cross })
            .collect();
    }

    /// Assigns a node to a domain (round-robin if not explicitly placed).
    pub fn place(&mut self, addr: impl Into<String>) -> usize {
        let addr = addr.into();
        if let Some(d) = self.assignments.get(&addr) {
            return *d;
        }
        let domain = self.next % self.domains;
        self.next += 1;
        self.assignments.insert(addr, domain);
        domain
    }

    /// Explicitly places a node in a domain.
    pub fn place_in(&mut self, addr: impl Into<String>, domain: usize) {
        self.assignments.insert(addr.into(), domain % self.domains);
    }

    /// The domain a node was placed in, if any.
    pub fn domain_of(&self, addr: &str) -> Option<usize> {
        self.assignments.get(addr).copied()
    }

    /// One-way propagation latency between two *distinct* placed nodes, by
    /// their domains. A single array load — this is the simulator's
    /// per-packet path.
    #[inline]
    pub fn domain_latency(&self, da: usize, db: usize) -> SimTime {
        self.latency_matrix[da * self.domains + db]
    }

    /// One-way propagation latency between two placed nodes.
    ///
    /// Unplaced nodes are treated as being in domain 0. Boundary/diagnostic
    /// API: the simulator resolves domains once per node and calls
    /// [`Topology::domain_latency`] directly.
    pub fn latency(&self, a: &str, b: &str) -> SimTime {
        if a == b {
            return SimTime::ZERO;
        }
        let da = self.domain_of(a).unwrap_or(0);
        let db = self.domain_of(b).unwrap_or(0);
        self.domain_latency(da, db)
    }

    /// The smallest one-way latency between two *distinct* nodes anywhere in
    /// the topology (the minimum over the whole domain×domain matrix).
    ///
    /// This is the conservative lookahead bound used by the parallel
    /// simulator: a packet sent at time `t` between distinct nodes can never
    /// arrive before `t + min_latency()`, so shards may process a window of
    /// that width independently before exchanging cross-shard traffic.
    pub fn min_latency(&self) -> SimTime {
        self.latency_matrix
            .iter()
            .copied()
            .min()
            .unwrap_or(SimTime::ZERO)
    }

    /// Transmission (serialization) delay of a packet of `bytes` bytes on a
    /// stub node's access link.
    pub fn access_tx_delay(&self, bytes: usize) -> SimTime {
        let seconds = (bytes as f64 * 8.0) / self.access_bandwidth_bps;
        SimTime::from_secs_f64(seconds)
    }

    /// Number of placed nodes.
    pub fn placed(&self) -> usize {
        self.assignments.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emulab_defaults_match_paper() {
        let t = Topology::emulab_default();
        assert_eq!(t.domains, 10);
        assert_eq!(t.intra_domain_latency, SimTime::from_millis(2));
        assert_eq!(t.inter_domain_latency, SimTime::from_millis(100));
        assert_eq!(t.access_bandwidth_bps, 10e6);
        assert_eq!(t.core_bandwidth_bps, 100e6);
    }

    #[test]
    fn round_robin_placement_spreads_nodes() {
        let mut t = Topology::emulab_default();
        for i in 0..100 {
            t.place(format!("n{i}"));
        }
        assert_eq!(t.placed(), 100);
        // 100 nodes over 10 domains -> 10 per domain.
        let mut counts = [0usize; 10];
        for i in 0..100 {
            counts[t.domain_of(&format!("n{i}")).unwrap()] += 1;
        }
        assert!(counts.iter().all(|c| *c == 10));
        // Placement is stable.
        assert_eq!(t.place("n0"), t.domain_of("n0").unwrap());
    }

    #[test]
    fn latency_model() {
        let mut t = Topology::emulab_default();
        t.place_in("a", 0);
        t.place_in("b", 0);
        t.place_in("c", 5);
        assert_eq!(t.latency("a", "a"), SimTime::ZERO);
        assert_eq!(t.latency("a", "b"), SimTime::from_millis(4));
        assert_eq!(t.latency("a", "c"), SimTime::from_millis(104));
        assert_eq!(t.latency("a", "c"), t.latency("c", "a"));
    }

    #[test]
    fn domain_latency_matrix_matches_the_model() {
        let t = Topology::emulab_default();
        for da in 0..t.domains {
            for db in 0..t.domains {
                let expect = if da == db {
                    SimTime::from_millis(4)
                } else {
                    SimTime::from_millis(104)
                };
                assert_eq!(t.domain_latency(da, db), expect);
            }
        }
    }

    #[test]
    fn rebuild_tracks_field_edits() {
        let mut t = Topology::emulab_default();
        t.inter_domain_latency = SimTime::from_millis(50);
        t.rebuild_latency_matrix();
        assert_eq!(t.domain_latency(0, 1), SimTime::from_millis(54));
        assert_eq!(t.domain_latency(0, 0), SimTime::from_millis(4));
    }

    #[test]
    fn tx_delay_scales_with_size() {
        let t = Topology::emulab_default();
        // 1250 bytes at 10 Mbps = 1 ms.
        assert_eq!(t.access_tx_delay(1250), SimTime::from_millis(1));
        assert!(t.access_tx_delay(2500) > t.access_tx_delay(1250));
    }
}
