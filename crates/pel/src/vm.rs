//! The PEL byte-code compiler and stack virtual machine.

use std::sync::Arc;

use p2_value::{Tuple, Value, ValueError};

use crate::context::EvalContext;
use crate::expr::{self, Expr};
use crate::ops::Op;

/// A compiled PEL program.
///
/// Dataflow elements (selections, projections, aggregations) are
/// parameterized by one or more compiled programs; each program evaluates a
/// single expression over an input tuple and yields one value.
///
/// The byte-code is held behind an [`Arc`], so cloning a program — as the
/// shared-plan instantiation path does once per node — shares the compiled
/// ops instead of duplicating them.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    ops: Arc<[Op]>,
    /// Upper bound on the evaluation stack depth, computed at compile time so
    /// the VM can pre-allocate.
    max_stack: usize,
}

impl Program {
    /// Compiles an expression AST into byte-code.
    pub fn compile(expr: &Expr) -> Program {
        let mut ops = Vec::new();
        emit(expr, &mut ops);
        let max_stack = stack_bound(&ops);
        Program {
            ops: ops.into(),
            max_stack,
        }
    }

    /// The compiled operations (for inspection and benchmarks).
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Evaluates the program against a tuple, yielding a single value.
    pub fn eval(&self, tuple: &Tuple, ctx: &mut EvalContext) -> Result<Value, ValueError> {
        self.eval_fields(tuple.values(), ctx)
    }

    /// Evaluates the program against the *virtual concatenation*
    /// `left ++ right`, without materializing a joined tuple: `Field(i)`
    /// resolves into `left` for `i < left.arity()` and into `right` beyond.
    /// Aggregation probes use this to scan a table against an event tuple
    /// allocation-free.
    pub fn eval_joined(
        &self,
        left: &Tuple,
        right: &Tuple,
        ctx: &mut EvalContext,
    ) -> Result<Value, ValueError> {
        let split = left.arity();
        self.eval_with(ctx, |i| {
            if i < split {
                left.get(i)
            } else {
                right.get(i - split)
            }
        })
    }

    /// Like [`Program::eval_joined`], interpreting the result as a boolean.
    pub fn eval_bool_joined(
        &self,
        left: &Tuple,
        right: &Tuple,
        ctx: &mut EvalContext,
    ) -> Result<bool, ValueError> {
        Ok(self.eval_joined(left, right, ctx)?.truthy())
    }

    /// Evaluates the program against the *virtual concatenation* of several
    /// field segments: `Field(i)` resolves into the first segment while
    /// `i` is in range, then falls through to the next. The fused
    /// rule-strand element uses this to run a whole
    /// `trigger ++ joined-row ++ assigned-values` chain without
    /// materializing any intermediate tuple.
    pub fn eval_concat(
        &self,
        parts: &[&[Value]],
        ctx: &mut EvalContext,
    ) -> Result<Value, ValueError> {
        self.eval_with(ctx, |i| {
            concat_get(parts, i).ok_or_else(|| ValueError::FieldOutOfRange {
                index: i,
                len: parts.iter().map(|p| p.len()).sum(),
            })
        })
    }

    /// Like [`Program::eval_concat`], interpreting the result as a boolean.
    pub fn eval_bool_concat(
        &self,
        parts: &[&[Value]],
        ctx: &mut EvalContext,
    ) -> Result<bool, ValueError> {
        Ok(self.eval_concat(parts, ctx)?.truthy())
    }

    /// True if evaluating this program draws on the node's RNG (`f_rand`,
    /// `f_coinFlip`). Such programs are order-sensitive beyond their
    /// inputs: the planner must not re-schedule them (e.g. into a fused
    /// strand) relative to other RNG users, or same-seed runs diverge.
    pub fn uses_random(&self) -> bool {
        self.ops
            .iter()
            .any(|op| matches!(op, Op::Call(b) if b.is_random()))
    }

    /// True if evaluating this program reads the clock (`f_now`). Such
    /// programs are not pure functions of their input tuple, so incremental
    /// consumers (delta-fed probes, materialized views) must not cache their
    /// results across events.
    pub fn uses_time(&self) -> bool {
        self.ops
            .iter()
            .any(|op| matches!(op, Op::Call(b) if b.is_time()))
    }

    /// Evaluates the program over an explicit field slice.
    pub fn eval_fields(
        &self,
        fields: &[Value],
        ctx: &mut EvalContext,
    ) -> Result<Value, ValueError> {
        self.eval_with(ctx, |i| {
            fields.get(i).ok_or(ValueError::FieldOutOfRange {
                index: i,
                len: fields.len(),
            })
        })
    }

    /// Core VM loop over a field resolver. The evaluation stack is borrowed
    /// from the context and reused across calls, so steady-state evaluation
    /// does not allocate.
    fn eval_with<'t>(
        &self,
        ctx: &mut EvalContext,
        load: impl Fn(usize) -> Result<&'t Value, ValueError>,
    ) -> Result<Value, ValueError> {
        // Take the scratch stack out of the context so builtins (which
        // borrow ctx) cannot observe it; put it back on every path.
        let mut stack = ctx.take_scratch_stack();
        stack.clear();
        stack.reserve(self.max_stack);
        let result = self.run(&mut stack, ctx, load);
        ctx.put_scratch_stack(stack);
        result
    }

    fn run<'t>(
        &self,
        stack: &mut Vec<Value>,
        ctx: &mut EvalContext,
        load: impl Fn(usize) -> Result<&'t Value, ValueError>,
    ) -> Result<Value, ValueError> {
        for op in self.ops.iter() {
            match op {
                Op::Push(v) => stack.push(v.clone()),
                Op::Load(i) => stack.push(load(*i)?.clone()),
                Op::Unary(u) => {
                    let v = pop(stack)?;
                    stack.push(expr::apply_unop(*u, v)?);
                }
                Op::Binary(b) => {
                    let rhs = pop(stack)?;
                    let lhs = pop(stack)?;
                    stack.push(expr::apply_binop(*b, &lhs, &rhs)?);
                }
                Op::Call(builtin) => {
                    let arity = builtin.arity();
                    if stack.len() < arity {
                        return Err(stack_underflow());
                    }
                    let at = stack.len() - arity;
                    let v = expr::apply_builtin(*builtin, &stack[at..], ctx)?;
                    stack.truncate(at);
                    stack.push(v);
                }
                Op::Interval(kind) => {
                    let high = pop(stack)?;
                    let low = pop(stack)?;
                    let value = pop(stack)?;
                    stack.push(expr::apply_interval(*kind, &value, &low, &high)?);
                }
            }
        }
        pop(stack)
    }

    /// Evaluates the program and interprets the result as a boolean
    /// (selection filters).
    pub fn eval_bool(&self, tuple: &Tuple, ctx: &mut EvalContext) -> Result<bool, ValueError> {
        Ok(self.eval(tuple, ctx)?.truthy())
    }
}

/// Resolves field `i` of the virtual concatenation of `parts` (`None` when
/// out of range). The single source of truth for segmented field
/// resolution: [`Program::eval_concat`] and the fused rule strand's probe
/// machinery both use it, so probe-key lookup and PEL evaluation can never
/// disagree about what a field index means.
pub fn concat_get<'a>(parts: &[&'a [Value]], i: usize) -> Option<&'a Value> {
    let mut rest = i;
    for part in parts {
        match part.get(rest) {
            Some(v) => return Some(v),
            // `get` returned None, so `rest >= part.len()`.
            None => rest -= part.len(),
        }
    }
    None
}

fn pop(stack: &mut Vec<Value>) -> Result<Value, ValueError> {
    stack.pop().ok_or_else(stack_underflow)
}

fn stack_underflow() -> ValueError {
    ValueError::TypeMismatch {
        op: "pel vm",
        got: "stack underflow".to_string(),
    }
}

/// Emits post-order byte-code for an expression.
fn emit(expr: &Expr, out: &mut Vec<Op>) {
    match expr {
        Expr::Const(v) => out.push(Op::Push(v.clone())),
        Expr::Field(i) => out.push(Op::Load(*i)),
        Expr::Unary(op, e) => {
            emit(e, out);
            out.push(Op::Unary(*op));
        }
        Expr::Binary(op, a, b) => {
            emit(a, out);
            emit(b, out);
            out.push(Op::Binary(*op));
        }
        Expr::Call(builtin, args) => {
            for a in args {
                emit(a, out);
            }
            out.push(Op::Call(*builtin));
        }
        Expr::Interval {
            kind,
            value,
            low,
            high,
        } => {
            emit(value, out);
            emit(low, out);
            emit(high, out);
            out.push(Op::Interval(*kind));
        }
    }
}

/// Computes an upper bound on the stack depth of a program.
fn stack_bound(ops: &[Op]) -> usize {
    let mut depth: isize = 0;
    let mut max: isize = 0;
    for op in ops {
        let delta: isize = match op {
            Op::Push(_) | Op::Load(_) => 1,
            Op::Unary(_) => 0,
            Op::Binary(_) => -1,
            Op::Call(b) => 1 - b.arity() as isize,
            Op::Interval(_) => -2,
        };
        depth += delta;
        max = max.max(depth);
    }
    max.max(1) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, Builtin, IntervalKind};
    use p2_value::{SimTime, TupleBuilder, Uint160};

    fn ctx() -> EvalContext {
        let mut c = EvalContext::new("n1", 7);
        c.set_now(SimTime::from_secs(50));
        c
    }

    fn tup() -> Tuple {
        TupleBuilder::new("t")
            .push(3i64)
            .push(4i64)
            .push(Value::Id(Uint160::from_u64(77)))
            .build()
    }

    #[test]
    fn compile_produces_postfix() {
        let e = Expr::bin(BinOp::Add, Expr::Field(0), Expr::int(2));
        let p = Program::compile(&e);
        assert_eq!(
            p.ops(),
            &[Op::Load(0), Op::Push(Value::Int(2)), Op::Binary(BinOp::Add)]
        );
    }

    #[test]
    fn vm_matches_reference_interpreter() {
        let exprs = vec![
            Expr::bin(
                BinOp::Add,
                Expr::bin(BinOp::Mul, Expr::Field(0), Expr::Field(1)),
                Expr::int(100),
            ),
            Expr::bin(
                BinOp::Gt,
                Expr::bin(BinOp::Sub, Expr::Call(Builtin::Now, vec![]), Expr::int(10)),
                Expr::int(20),
            ),
            Expr::Interval {
                kind: IntervalKind::OpenClosed,
                value: Box::new(Expr::Field(2)),
                low: Box::new(Expr::int(10)),
                high: Box::new(Expr::int(100)),
            },
            Expr::Call(Builtin::Sha1, vec![Expr::Field(0)]),
            Expr::Unary(crate::expr::UnOp::Not, Box::new(Expr::Field(0))),
        ];
        for e in exprs {
            let direct = e.eval(&tup(), &mut ctx());
            let via_vm = Program::compile(&e).eval(&tup(), &mut ctx());
            assert_eq!(direct, via_vm, "mismatch for {e:?}");
        }
    }

    #[test]
    fn eval_bool() {
        let p = Program::compile(&Expr::bin(BinOp::Lt, Expr::Field(0), Expr::Field(1)));
        assert!(p.eval_bool(&tup(), &mut ctx()).unwrap());
        let p = Program::compile(&Expr::bin(BinOp::Gt, Expr::Field(0), Expr::Field(1)));
        assert!(!p.eval_bool(&tup(), &mut ctx()).unwrap());
    }

    #[test]
    fn stack_bound_is_respected() {
        // Deeply right-nested additions: a + (b + (c + ...))
        let mut e = Expr::int(1);
        for i in 0..50 {
            e = Expr::bin(BinOp::Add, Expr::int(i), e);
        }
        let p = Program::compile(&e);
        assert!(p.max_stack >= 2);
        assert_eq!(p.eval(&tup(), &mut ctx()).unwrap(), Value::Int(1226));
    }

    #[test]
    fn field_out_of_range_propagates() {
        let p = Program::compile(&Expr::Field(9));
        assert!(p.eval(&tup(), &mut ctx()).is_err());
    }

    #[test]
    fn eval_concat_matches_materialized_concatenation() {
        let a = [Value::Int(3), Value::Int(4)];
        let b: [Value; 0] = [];
        let c = [Value::Int(10), Value::str("x")];
        let flat: Vec<Value> = a.iter().chain(b.iter()).chain(c.iter()).cloned().collect();
        for i in 0..=flat.len() {
            let p = Program::compile(&Expr::Field(i));
            let via_parts = p.eval_concat(&[&a, &b, &c], &mut ctx());
            let via_flat = p.eval_fields(&flat, &mut ctx());
            assert_eq!(via_parts, via_flat, "field {i}");
        }
        // Booleans and empty-part-first layouts work too.
        let p = Program::compile(&Expr::bin(BinOp::Lt, Expr::Field(0), Expr::Field(2)));
        assert!(p.eval_bool_concat(&[&b, &a, &c], &mut ctx()).unwrap());
    }

    #[test]
    fn uses_random_detects_rng_builtins() {
        assert!(Program::compile(&Expr::Call(Builtin::Rand, vec![])).uses_random());
        assert!(Program::compile(&Expr::Call(Builtin::CoinFlip, vec![Expr::int(1)])).uses_random());
        assert!(!Program::compile(&Expr::Call(Builtin::Now, vec![])).uses_random());
        assert!(!Program::compile(&Expr::Field(0)).uses_random());
    }

    #[test]
    fn uses_time_detects_the_clock_builtin() {
        assert!(Program::compile(&Expr::Call(Builtin::Now, vec![])).uses_time());
        assert!(!Program::compile(&Expr::Call(Builtin::Rand, vec![])).uses_time());
        assert!(!Program::compile(&Expr::Field(0)).uses_time());
    }
}
