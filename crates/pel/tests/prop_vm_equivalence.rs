//! Property tests: the PEL byte-code VM agrees with the reference AST
//! interpreter on randomly generated expressions, and ring-interval tests
//! agree with direct `Uint160` interval arithmetic.

use p2_pel::{BinOp, EvalContext, Expr, IntervalKind, Program, UnOp};
use p2_value::{SimTime, Tuple, TupleBuilder, Uint160, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        (-1.0e9..1.0e9f64).prop_map(Value::Double),
        any::<bool>().prop_map(Value::Bool),
        "[a-z]{0,8}".prop_map(Value::str),
        any::<u64>().prop_map(|v| Value::Id(Uint160::from_u64(v))),
        (0u64..1_000_000_000).prop_map(|us| Value::Time(SimTime::from_micros(us))),
        Just(Value::Null),
    ]
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Mod),
        Just(BinOp::Shl),
        Just(BinOp::Shr),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
        Just(BinOp::And),
        Just(BinOp::Or),
    ]
}

fn arb_interval_kind() -> impl Strategy<Value = IntervalKind> {
    prop_oneof![
        Just(IntervalKind::OpenOpen),
        Just(IntervalKind::OpenClosed),
        Just(IntervalKind::ClosedOpen),
        Just(IntervalKind::ClosedClosed),
    ]
}

/// Expressions that avoid the stateful builtins (f_rand / f_coinFlip) so that
/// evaluating twice gives the same answer.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        arb_value().prop_map(Expr::Const),
        (0usize..4).prop_map(Expr::Field),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (arb_binop(), inner.clone(), inner.clone()).prop_map(|(op, a, b)| Expr::bin(op, a, b)),
            (inner.clone()).prop_map(|e| Expr::Unary(UnOp::Not, Box::new(e))),
            (inner.clone()).prop_map(|e| Expr::Unary(UnOp::Neg, Box::new(e))),
            (arb_interval_kind(), inner.clone(), inner.clone(), inner).prop_map(
                |(kind, v, lo, hi)| Expr::Interval {
                    kind,
                    value: Box::new(v),
                    low: Box::new(lo),
                    high: Box::new(hi),
                }
            ),
        ]
    })
}

fn arb_tuple() -> impl Strategy<Value = Tuple> {
    proptest::collection::vec(arb_value(), 4).prop_map(|vs| Tuple::new("prop", vs))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn vm_agrees_with_ast_interpreter(expr in arb_expr(), tuple in arb_tuple()) {
        let mut ctx_a = EvalContext::new("n1", 9);
        ctx_a.set_now(SimTime::from_secs(123));
        let mut ctx_b = ctx_a.clone();
        let direct = expr.eval(&tuple, &mut ctx_a);
        let compiled = Program::compile(&expr).eval(&tuple, &mut ctx_b);
        prop_assert_eq!(direct, compiled);
    }

    #[test]
    fn interval_expr_agrees_with_uint160(
        kind in arb_interval_kind(),
        k in any::<u64>(),
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let expr = Expr::Interval {
            kind,
            value: Box::new(Expr::Const(Value::Id(Uint160::from_u64(k)))),
            low: Box::new(Expr::Const(Value::Id(Uint160::from_u64(a)))),
            high: Box::new(Expr::Const(Value::Id(Uint160::from_u64(b)))),
        };
        let tuple = TupleBuilder::new("x").build();
        let mut ctx = EvalContext::new("n1", 1);
        let got = Program::compile(&expr).eval(&tuple, &mut ctx).unwrap();
        let (k, a, b) = (Uint160::from_u64(k), Uint160::from_u64(a), Uint160::from_u64(b));
        let expect = match kind {
            IntervalKind::OpenOpen => k.in_oo(a, b),
            IntervalKind::OpenClosed => k.in_oc(a, b),
            IntervalKind::ClosedOpen => k.in_co(a, b),
            IntervalKind::ClosedClosed => k.in_cc(a, b),
        };
        prop_assert_eq!(got, Value::Bool(expect));
    }

    #[test]
    fn uint160_add_sub_roundtrip(a in any::<[u64; 3]>(), b in any::<[u64; 3]>()) {
        let a = Uint160::from_limbs(a);
        let b = Uint160::from_limbs(b);
        prop_assert_eq!(a.wrapping_add(b).wrapping_sub(b), a);
        prop_assert_eq!(a.wrapping_sub(b).wrapping_add(b), a);
        // Commutativity.
        prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
    }

    #[test]
    fn uint160_interval_partition(k in any::<u64>(), a in any::<u64>(), b in any::<u64>()) {
        // For a != b, every point on the ring is in exactly one of (a,b] and (b,a].
        let (k, a, b) = (Uint160::hash_of(&k.to_be_bytes()),
                         Uint160::hash_of(&a.to_be_bytes()),
                         Uint160::hash_of(&b.to_be_bytes()));
        prop_assume!(a != b);
        prop_assert_eq!(k.in_oc(a, b), !k.in_oc(b, a));
    }

    #[test]
    fn marshal_roundtrip(values in proptest::collection::vec(arb_value(), 0..8), name in "[a-zA-Z][a-zA-Z0-9]{0,12}") {
        let t = Tuple::new(&name, values);
        let bytes = p2_value::wire::marshal(&t);
        prop_assert_eq!(bytes.len(), p2_value::wire::encoded_size(&t));
        let back = p2_value::wire::unmarshal(&bytes).unwrap();
        prop_assert_eq!(back.name(), t.name());
        prop_assert_eq!(back.values(), t.values());
    }
}
