//! Tuple provenance tracing demo: replays one tagged Chord lookup and
//! prints its hop-by-hop rule-level derivation tree.
//!
//! Builds a small declarative ring, arms the lookup's event identifier as
//! the cluster-wide trace tag, and lets the engine record the derivation
//! cascade — the tagged tuple's arrival at each node, the rule firings it
//! feeds, and the network sends it causes — into per-node ring buffers. The
//! drained trace is deterministic (sorted by virtual time, node, per-node
//! sequence) and identical across the sequential and sharded simulators.
//!
//! Usage: `cargo run --release --bin sim_trace [-- --nodes N] [--seed S]
//! [--jsonl]`
//!
//! `--jsonl` prints the raw one-object-per-line trace instead of the tree.

use p2_harness::ChordCluster;
use p2_obs::{TraceEvent, TraceKind};
use p2_value::Uint160;

fn print_tree(events: &[TraceEvent]) {
    let mut hop = 0usize;
    for e in events {
        let secs = e.at as f64 / 1e6;
        match e.kind {
            TraceKind::Recv => {
                hop += 1;
                println!("hop {hop}: {} @ {secs:.3}s  recv {}", e.node, e.tuple);
            }
            TraceKind::Fire => {
                let rule = e.rule.as_deref().unwrap_or("-");
                println!(
                    "    [{rule}] {}  ({} emitted{})",
                    e.elem,
                    e.emitted,
                    if e.out.is_empty() { "" } else { ":" }
                );
                for t in &e.out {
                    println!("        -> {t}");
                }
            }
            TraceKind::Send => {
                let dst = e.dst.as_deref().unwrap_or("?");
                println!("    send -> {dst}  {}", e.tuple);
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let nodes: usize = value("--nodes").and_then(|s| s.parse().ok()).unwrap_or(16);
    let seed: u64 = value("--seed").and_then(|s| s.parse().ok()).unwrap_or(42);
    let jsonl = args.iter().any(|a| a == "--jsonl");

    eprintln!("building {nodes}-node ring (seed {seed})...");
    let mut cluster = ChordCluster::builder(nodes, seed).build_fast(300);
    eprintln!(
        "ring correctness {:.2}; issuing traced lookup...",
        cluster.ring_correctness()
    );

    let key = Uint160::hash_of(b"traced object");
    let origin = cluster.addrs()[nodes / 2].clone();
    let handle = cluster.issue_traced_lookup(&origin, key);
    cluster.run_for(10.0);

    let outcome = cluster.outcome(&handle);
    let events = cluster.drain_trace();
    if events.is_empty() {
        eprintln!("error: the traced lookup left no trace events");
        std::process::exit(1);
    }

    if jsonl {
        print!("{}", p2_obs::trace_jsonl(&events));
    } else {
        println!(
            "derivation of lookup event {} (key {} from {origin}):",
            handle.event, handle.key
        );
        print_tree(&events);
    }

    match outcome {
        Some(o) => {
            let recvs = events.iter().filter(|e| e.kind == TraceKind::Recv).count();
            eprintln!(
                "lookup completed: owner {} after {} hops ({} trace events, \
                 {} tagged arrivals, latency {:.3}s)",
                o.owner,
                o.hops,
                events.len(),
                recvs,
                o.latency
            );
        }
        None => {
            eprintln!("error: the traced lookup did not complete within 10 s");
            std::process::exit(1);
        }
    }
}
