//! The element interface.

use std::sync::Arc;

use p2_pel::EvalContext;
use p2_table::DeltaKind;
use p2_value::{SimTime, Tuple};

/// A tuple leaving the node for another node's address.
///
/// The destination is an `Arc<str>` rather than an owned `String`: on the
/// hot send path the address is usually already interned in a tuple field
/// (`Value::Str` holds an `Arc<str>`), so handing a tuple to the network is
/// a reference-count bump, not a heap allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Outgoing {
    /// Destination node address (resolved by the network substrate).
    pub dst: Arc<str>,
    /// The tuple to deliver.
    pub tuple: Tuple,
}

/// Execution context handed to an element while it processes a tuple,
/// a timer or the start-up hook.
///
/// Elements communicate exclusively through this context: they emit tuples on
/// their output ports, hand tuples destined for other nodes to the network,
/// and schedule timers. The engine routes emissions to downstream input
/// ports after the element returns (run-to-completion per element).
pub struct ElementCtx<'a> {
    now: SimTime,
    pending: usize,
    eval: &'a mut EvalContext,
    emissions: &'a mut Vec<(usize, Tuple, DeltaKind)>,
    outgoing: &'a mut Vec<Outgoing>,
    timers: &'a mut Vec<(u64, SimTime)>,
    state_changed: bool,
}

impl<'a> ElementCtx<'a> {
    pub(crate) fn new(
        now: SimTime,
        pending: usize,
        eval: &'a mut EvalContext,
        emissions: &'a mut Vec<(usize, Tuple, DeltaKind)>,
        outgoing: &'a mut Vec<Outgoing>,
        timers: &'a mut Vec<(u64, SimTime)>,
    ) -> ElementCtx<'a> {
        ElementCtx {
            now,
            pending,
            eval,
            emissions,
            outgoing,
            timers,
            state_changed: false,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of tuples queued in the engine's work queue behind the one
    /// being processed (the node's pending backlog). Queueing elements use
    /// this as their occupancy signal.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// The node-local PEL evaluation context (clock, RNG, local address).
    pub fn eval(&mut self) -> &mut EvalContext {
        self.eval
    }

    /// The local node's address.
    pub fn local_addr(&self) -> &str {
        self.eval.local_addr_str()
    }

    /// Emits a tuple on the given output port as a genuine assertion
    /// ([`DeltaKind::Assert`]) — the right default for derived tuples.
    pub fn emit(&mut self, port: usize, tuple: Tuple) {
        self.emissions.push((port, tuple, DeltaKind::Assert));
    }

    /// Emits a tuple on the given output port with an explicit
    /// [`DeltaKind`]. Table-maintaining elements use this to tag keyed
    /// soft-state refreshes ([`DeltaKind::Refresh`]) and retractions
    /// ([`DeltaKind::Retract`]); the engine's scheduler suppresses
    /// refresh-kind pokes into strands the planner proved
    /// refresh-transparent.
    pub fn emit_kind(&mut self, port: usize, tuple: Tuple, kind: DeltaKind) {
        self.emissions.push((port, tuple, kind));
    }

    /// Hands a tuple to the network for delivery to `dst`.
    pub fn send(&mut self, dst: impl Into<Arc<str>>, tuple: Tuple) {
        self.outgoing.push(Outgoing {
            dst: dst.into(),
            tuple,
        });
    }

    /// Schedules a timer callback for this element after `delay`; the
    /// element's [`Element::on_timer`] will be invoked with `token`.
    pub fn schedule(&mut self, token: u64, delay: SimTime) {
        self.timers.push((token, self.now + delay));
    }

    /// Marks this invocation as having mutated durable state (a table row,
    /// a materialized-view count, an aggregate cache). The profiler uses
    /// this to separate real work from soft-state refresh no-ops; an
    /// invocation with no emission, no send and no state change is a
    /// wasted poke. Cheap enough to call unconditionally.
    #[inline]
    pub fn note_state_change(&mut self) {
        self.state_changed = true;
    }

    /// Whether [`note_state_change`](Self::note_state_change) was called
    /// during this invocation.
    pub(crate) fn state_changed(&self) -> bool {
        self.state_changed
    }
}

/// A node in the dataflow graph.
///
/// Elements are single-threaded and processed to completion: `push` is called
/// with one tuple at a time and must not block. All effects go through the
/// [`ElementCtx`].
pub trait Element: Send {
    /// Short class name used in graph dumps and statistics
    /// (e.g. `"Join"`, `"Insert"`).
    fn class(&self) -> &'static str;

    /// Handles a tuple arriving on input `port`.
    fn push(&mut self, port: usize, tuple: &Tuple, ctx: &mut ElementCtx<'_>);

    /// Dynamic scheduling guard, consulted by the engine (only when
    /// delta-driven scheduling is on) immediately before invoking
    /// [`Element::push`]. Returning `false` promises the invocation would
    /// be a provable no-op — zero emissions, zero sends, zero state change
    /// — so the engine may skip it entirely. The default conservatively
    /// wakes; elements override this only where the no-op proof is exact
    /// (e.g. a fused strand whose pre-filter rejects the tuple, or an
    /// aggregate sync with no pending deltas). Implementations must not
    /// mutate element state and must not advance any RNG stream (guards
    /// may never evaluate `f_rand`-bearing programs).
    fn would_wake(&self, _port: usize, _tuple: &Tuple, _eval: &mut EvalContext) -> bool {
        true
    }

    /// Handles a timer previously scheduled with [`ElementCtx::schedule`].
    fn on_timer(&mut self, _token: u64, _ctx: &mut ElementCtx<'_>) {}

    /// Called once when the engine starts, before any tuple is processed.
    /// Elements use this to emit initial facts or schedule their first timer.
    fn on_start(&mut self, _ctx: &mut ElementCtx<'_>) {}

    /// Downcast hook for diagnostics and equivalence gates. Elements with
    /// externally inspectable state override this to return `Some(self)`;
    /// the default keeps internals private.
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_value::TupleBuilder;

    struct Echo;

    impl Element for Echo {
        fn class(&self) -> &'static str {
            "Echo"
        }

        fn push(&mut self, port: usize, tuple: &Tuple, ctx: &mut ElementCtx<'_>) {
            ctx.emit(port, tuple.clone());
            ctx.send("n2", tuple.clone());
            ctx.schedule(7, SimTime::from_secs(1));
        }
    }

    #[test]
    fn context_collects_effects() {
        let mut eval = EvalContext::new("n1", 1);
        let mut emissions = Vec::new();
        let mut outgoing = Vec::new();
        let mut timers = Vec::new();
        let mut ctx = ElementCtx::new(
            SimTime::from_secs(5),
            3,
            &mut eval,
            &mut emissions,
            &mut outgoing,
            &mut timers,
        );
        assert_eq!(ctx.local_addr(), "n1");
        assert_eq!(ctx.now(), SimTime::from_secs(5));
        assert_eq!(ctx.pending(), 3);

        let t = TupleBuilder::new("ping").push("n1").build();
        Echo.push(3, &t, &mut ctx);

        assert_eq!(
            emissions,
            vec![(
                3,
                TupleBuilder::new("ping").push("n1").build(),
                DeltaKind::Assert
            )]
        );
        assert_eq!(outgoing.len(), 1);
        assert_eq!(&*outgoing[0].dst, "n2");
        assert_eq!(timers, vec![(7, SimTime::from_secs(6))]);
    }
}
