//! The public node API: a running P2 instance for one overlay participant.

use std::collections::HashMap;

use p2_dataflow::elements::CollectorHandle;
use p2_dataflow::{EngineStats, Outgoing};
use p2_overlog::Program;
use p2_table::{Catalog, TableRef};
use p2_value::{SimTime, Tuple};

use crate::error::PlanError;
use crate::planner::{PlanConfig, Planned, PlannedProgram};

/// Configuration for instantiating a [`P2Node`].
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// The node's network address (also the value bound to fact location
    /// variables such as `NI`).
    pub addr: String,
    /// Seed for the node's deterministic RNG (event identifiers, `f_rand`,
    /// periodic phase jitter).
    pub seed: u64,
    /// Tuple names to observe; matching tuples arriving at this node are
    /// recorded and retrievable via [`P2Node::collector`].
    pub watches: Vec<String>,
    /// Whether periodic timers start at a random phase (recommended for
    /// multi-node simulations).
    pub jitter_periodics: bool,
    /// Whether eligible rule chains are compiled into fused strand
    /// elements (on by default; disable to debug against the generic
    /// element graph).
    pub fuse_strands: bool,
    /// Whether pure-join table rules become incrementally maintained view
    /// elements and eligible aggregation probes run delta-fed (on by
    /// default; disable to force the recompute-everything lowering).
    pub materialize_views: bool,
    /// Whether delta-driven rule scheduling suppresses provably no-op
    /// pokes (on by default; disable to restore the poke-everything
    /// behaviour).
    pub delta_schedule: bool,
}

impl NodeConfig {
    /// Creates a configuration with the given address and seed.
    pub fn new(addr: impl Into<String>, seed: u64) -> NodeConfig {
        NodeConfig {
            addr: addr.into(),
            seed,
            watches: Vec::new(),
            jitter_periodics: true,
            fuse_strands: true,
            materialize_views: true,
            delta_schedule: true,
        }
    }

    /// Adds a watched tuple name.
    pub fn watch(mut self, name: impl Into<String>) -> NodeConfig {
        self.watches.push(name.into());
        self
    }

    /// Disables periodic phase jitter (deterministic timer schedule).
    pub fn without_jitter(mut self) -> NodeConfig {
        self.jitter_periodics = false;
        self
    }

    /// Disables rule-strand fusion (every rule uses the generic element
    /// chain).
    pub fn without_fusion(mut self) -> NodeConfig {
        self.fuse_strands = false;
        self
    }

    /// Disables materialized views and delta-fed aggregation probes.
    pub fn without_views(mut self) -> NodeConfig {
        self.materialize_views = false;
        self
    }

    /// Disables delta-driven rule scheduling.
    pub fn without_scheduling(mut self) -> NodeConfig {
        self.delta_schedule = false;
        self
    }
}

/// A running P2 node: an OverLog program compiled to a dataflow graph, plus
/// its soft-state tables, driven by virtual time.
///
/// The node is driven externally (by the network simulator, the experiment
/// harness, or a test): [`P2Node::start`] boots it, [`P2Node::deliver`] hands
/// it a tuple addressed to it, and [`P2Node::advance_to`] moves its clock
/// forward, firing timers. Each call returns the tuples the node wants sent
/// to other nodes.
pub struct P2Node {
    addr: String,
    engine: p2_dataflow::Engine,
    catalog: Catalog,
    collectors: HashMap<String, CollectorHandle>,
    pending_stream_facts: Vec<Tuple>,
    started: bool,
}

impl P2Node {
    /// Compiles `program` for a node with the given configuration.
    ///
    /// Facts declared in the program are installed with the location
    /// variable bound to the node's address.
    pub fn new(program: &Program, config: NodeConfig) -> Result<P2Node, PlanError> {
        P2Node::with_facts(program, config, Vec::new())
    }

    /// Like [`P2Node::new`], additionally installing host-provided base
    /// facts (e.g. `landmark(addr, landmark_addr)` and `node(addr, id)`
    /// tuples that differ per node).
    ///
    /// This compiles a fresh plan per call; multi-node hosts should compile
    /// one [`PlannedProgram`] and use [`P2Node::from_plan`] instead.
    pub fn with_facts(
        program: &Program,
        config: NodeConfig,
        extra_facts: Vec<Tuple>,
    ) -> Result<P2Node, PlanError> {
        let plan_config = PlanConfig {
            watches: config.watches.clone(),
            jitter_periodics: config.jitter_periodics,
            fuse_strands: config.fuse_strands,
            materialize_views: config.materialize_views,
            delta_schedule: config.delta_schedule,
        };
        let shared = PlannedProgram::compile(program, &plan_config)?;
        Ok(P2Node::from_plan(
            &shared,
            &config.addr,
            config.seed,
            extra_facts,
        ))
    }

    /// Instantiates a node from a shared, pre-compiled plan: the cheap
    /// per-node path (no rule analysis or PEL compilation). The plan's
    /// program facts are installed with the location variable bound to
    /// `addr`, followed by the host-provided `extra_facts`.
    pub fn from_plan(
        plan: &PlannedProgram,
        addr: &str,
        seed: u64,
        extra_facts: Vec<Tuple>,
    ) -> P2Node {
        let Planned {
            engine,
            catalog,
            collectors,
        } = plan.instantiate(addr, seed);

        let mut node = P2Node {
            addr: addr.to_string(),
            engine,
            catalog,
            collectors,
            pending_stream_facts: Vec::new(),
            started: false,
        };
        for tuple in plan.facts_for(addr) {
            node.install_fact(tuple);
        }
        for tuple in extra_facts {
            node.install_fact(tuple);
        }
        node
    }

    fn install_fact(&mut self, tuple: Tuple) {
        match self.catalog.get(tuple.name()) {
            Some(table) => {
                // Base facts are installed directly; they are present before
                // the first rule fires, like P2's bootstrap state.
                let _ = table.lock().insert(tuple, SimTime::ZERO);
            }
            None => self.pending_stream_facts.push(tuple),
        }
    }

    /// The node's address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Boots the node at virtual time `now`: periodic sources arm their
    /// timers, materialized aggregates emit their initial values, and any
    /// stream facts are injected.
    pub fn start(&mut self, now: SimTime) -> Vec<Outgoing> {
        self.started = true;
        let mut out = self.engine.start(now);
        for fact in std::mem::take(&mut self.pending_stream_facts) {
            out.extend(self.engine.deliver(fact, now));
        }
        out
    }

    /// True once [`P2Node::start`] has been called.
    pub fn is_started(&self) -> bool {
        self.started
    }

    /// Delivers a tuple addressed to this node (a network arrival or a local
    /// application event such as a `lookup` request), running the dataflow to
    /// completion.
    pub fn deliver(&mut self, tuple: Tuple, now: SimTime) -> Vec<Outgoing> {
        self.catalog.expire_all(now);
        self.engine.deliver(tuple, now)
    }

    /// Delivers a batch of tuples arriving at the same virtual instant,
    /// expiring soft state once and draining the dataflow once for the
    /// whole batch.
    pub fn deliver_many(
        &mut self,
        tuples: impl IntoIterator<Item = Tuple>,
        now: SimTime,
    ) -> Vec<Outgoing> {
        self.catalog.expire_all(now);
        self.engine.deliver_many(tuples, now)
    }

    /// Advances the node's clock to `now`, firing due timers and sweeping
    /// expired soft state.
    pub fn advance_to(&mut self, now: SimTime) -> Vec<Outgoing> {
        self.catalog.expire_all(now);
        self.engine.advance_to(now)
    }

    /// The earliest time at which this node has a timer to fire.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.engine.next_deadline()
    }

    /// A handle to one of the node's materialized tables.
    pub fn table(&self, name: &str) -> Option<TableRef> {
        self.catalog.get(name)
    }

    /// The node's table catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The observation buffer for a watched tuple name.
    pub fn collector(&self, name: &str) -> Option<CollectorHandle> {
        self.collectors.get(name).cloned()
    }

    /// Engine activity counters.
    pub fn stats(&self) -> EngineStats {
        self.engine.stats()
    }

    /// Enables the rule-level profiler using the plan's element metadata
    /// (see [`PlannedProgram::obs_meta`]). Idempotent in effect but resets
    /// counters when called again.
    pub fn enable_obs(&mut self, meta: std::sync::Arc<p2_obs::ObsMeta>) {
        self.engine.enable_obs(meta);
    }

    /// The node's observability state, when enabled.
    pub fn obs(&self) -> Option<&p2_obs::NodeObs> {
        self.engine.obs()
    }

    /// Starts provenance tracing for tuples carrying `tag` in any field.
    /// Requires [`P2Node::enable_obs`] first; returns whether tracing is on.
    pub fn set_trace_tag(&mut self, tag: p2_value::Value, ring_cap: usize) -> bool {
        self.engine.set_trace_tag(tag, ring_cap)
    }

    /// Removes and returns buffered provenance trace events.
    pub fn drain_trace(&mut self) -> Vec<p2_obs::TraceEvent> {
        self.engine.drain_trace()
    }

    /// Approximate bytes of soft state currently held by the node.
    pub fn resident_table_bytes(&self) -> usize {
        self.catalog.resident_bytes()
    }

    /// Human-readable dump of the planned dataflow graph.
    pub fn graph_description(&self) -> String {
        self.engine.describe()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_overlog::compile_checked;
    use p2_value::{TupleBuilder, Value};

    /// A two-rule ping/pong program: delivering `pingEvent(X, Y, E)` at X
    /// sends `ping(Y, X, E)` to Y; Y answers with `pong(X, Y, E)`.
    const PING_PONG: &str = r#"
        materialize(node, infinity, 1, keys(1)).
        P1 ping@Y(Y, X, E) :- pingEvent@X(X, Y, E).
        P2 pong@X(X, Y, E) :- ping@Y(Y, X, E).
    "#;

    fn node(addr: &str) -> P2Node {
        let program = compile_checked(PING_PONG).unwrap();
        P2Node::new(
            &program,
            NodeConfig::new(addr, 1).watch("pong").without_jitter(),
        )
        .unwrap()
    }

    #[test]
    fn ping_pong_between_two_nodes() {
        let mut a = node("n1");
        let mut b = node("n2");
        a.start(SimTime::ZERO);
        b.start(SimTime::ZERO);

        let event = TupleBuilder::new("pingEvent")
            .push("n1")
            .push("n2")
            .push(42i64)
            .build();
        let out = a.deliver(event, SimTime::from_secs(1));
        assert_eq!(out.len(), 1);
        assert_eq!(&*out[0].dst, "n2");
        assert_eq!(out[0].tuple.name(), "ping");

        let out = b.deliver(out[0].tuple.clone(), SimTime::from_secs(1));
        assert_eq!(out.len(), 1);
        assert_eq!(&*out[0].dst, "n1");
        assert_eq!(out[0].tuple.name(), "pong");

        let out = a.deliver(out[0].tuple.clone(), SimTime::from_secs(1));
        assert!(out.is_empty());
        let observed = a.collector("pong").unwrap();
        assert_eq!(observed.lock().len(), 1);
        assert_eq!(observed.lock()[0].1.field(1), &Value::str("n2"));
    }

    #[test]
    fn facts_are_installed_into_tables() {
        let src = r#"
            materialize(landmark, infinity, 1, keys(1)).
            F0 landmark@NI(NI, "n0").
            J1 joinReq@LI(LI, NI) :- joinEvent@NI(NI), landmark@NI(NI, LI), LI != NI.
        "#;
        let program = compile_checked(src).unwrap();
        let mut n = P2Node::new(&program, NodeConfig::new("n5", 3).without_jitter()).unwrap();
        assert_eq!(n.table("landmark").unwrap().lock().len(), 1);
        n.start(SimTime::ZERO);
        let out = n.deliver(
            TupleBuilder::new("joinEvent").push("n5").build(),
            SimTime::from_secs(1),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(&*out[0].dst, "n0");
        assert_eq!(out[0].tuple.name(), "joinReq");
    }

    #[test]
    fn extra_facts_and_local_wraparound() {
        // A rule whose head is local: derived tuples are stored in the local
        // table via the wrap-around path, not sent anywhere.
        let src = r#"
            materialize(member, 120, infinity, keys(2)).
            materialize(neighbor, 120, infinity, keys(2)).
            N1 member@X(X, Y, 0, 0, true) :- probe@X(X), neighbor@X(X, Y).
        "#;
        let program = compile_checked(src).unwrap();
        let neighbor_fact = TupleBuilder::new("neighbor").push("n1").push("n2").build();
        let mut n = P2Node::with_facts(
            &program,
            NodeConfig::new("n1", 1).without_jitter(),
            vec![neighbor_fact],
        )
        .unwrap();
        n.start(SimTime::ZERO);
        let out = n.deliver(
            TupleBuilder::new("probe").push("n1").build(),
            SimTime::from_secs(1),
        );
        assert!(out.is_empty());
        let member = n.table("member").unwrap();
        assert_eq!(member.lock().len(), 1);
        let row = member.lock().scan()[0].clone();
        assert_eq!(row.field(1), &Value::str("n2"));
        assert_eq!(row.field(4), &Value::Bool(true));
    }

    #[test]
    fn soft_state_expires_as_time_advances() {
        let src = r#"
            materialize(member, 5, infinity, keys(2)).
            M1 member@X(X, Y, T) :- memberAdd@X(X, Y), T := f_now().
        "#;
        let program = compile_checked(src).unwrap();
        let mut n = P2Node::new(&program, NodeConfig::new("n1", 1).without_jitter()).unwrap();
        n.start(SimTime::ZERO);
        n.deliver(
            TupleBuilder::new("memberAdd").push("n1").push("n2").build(),
            SimTime::from_secs(1),
        );
        assert_eq!(n.table("member").unwrap().lock().len(), 1);
        n.advance_to(SimTime::from_secs(3));
        assert_eq!(n.table("member").unwrap().lock().len(), 1);
        n.advance_to(SimTime::from_secs(10));
        assert_eq!(n.table("member").unwrap().lock().len(), 0);
    }

    #[test]
    fn periodic_rules_fire_and_count_events() {
        let src = r#"
            materialize(counter, infinity, infinity, keys(2)).
            T1 tick@X(X, E) :- periodic@X(X, E, 2).
            T2 counter@X(X, E) :- tick@X(X, E).
        "#;
        let program = compile_checked(src).unwrap();
        let mut n = P2Node::new(&program, NodeConfig::new("n1", 1).without_jitter()).unwrap();
        n.start(SimTime::ZERO);
        n.advance_to(SimTime::from_secs(9));
        // Ticks at t=2,4,6,8 -> 4 counter rows (each with a unique event id).
        assert_eq!(n.table("counter").unwrap().lock().len(), 4);
        assert!(n.stats().timers_fired >= 4);
    }

    #[test]
    fn graph_description_names_rules() {
        let program = compile_checked(PING_PONG).unwrap();
        let n = P2Node::new(&program, NodeConfig::new("n1", 1)).unwrap();
        let desc = n.graph_description();
        assert!(desc.contains("P1:head"));
        assert!(desc.contains("insert:node"));
        assert!(n.resident_table_bytes() == 0);
    }
}
