//! Evaluation environment for PEL programs.

use p2_value::{SimTime, Value};

/// Per-node environment available to PEL built-in functions.
///
/// The context carries the node's virtual wall-clock (`f_now`), a
/// deterministic pseudo-random generator (`f_rand`, `f_coinFlip`) and the
/// node's own network address. Determinism matters: the whole simulation is
/// reproducible from a seed, which the experiment harness relies on.
#[derive(Debug, Clone)]
pub struct EvalContext {
    now: SimTime,
    rng_state: u64,
    local_addr: String,
    /// Reusable VM evaluation stack: borrowed by `Program::eval` for the
    /// duration of one evaluation and returned, so steady-state PEL
    /// evaluation performs no allocation.
    scratch_stack: Vec<Value>,
}

impl EvalContext {
    /// Creates a context for a node with the given address and RNG seed.
    pub fn new(local_addr: impl Into<String>, seed: u64) -> EvalContext {
        EvalContext {
            now: SimTime::ZERO,
            // Avoid the all-zero state that xorshift cannot leave.
            rng_state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
            local_addr: local_addr.into(),
            scratch_stack: Vec::new(),
        }
    }

    /// Takes the reusable evaluation stack out of the context (the VM holds
    /// it while builtins may re-borrow the context).
    pub fn take_scratch_stack(&mut self) -> Vec<Value> {
        std::mem::take(&mut self.scratch_stack)
    }

    /// Returns the evaluation stack for reuse by the next evaluation.
    pub fn put_scratch_stack(&mut self, stack: Vec<Value>) {
        self.scratch_stack = stack;
    }

    /// Current virtual time, as returned by `f_now()`.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the virtual clock (monotonic; earlier times are ignored).
    pub fn set_now(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }

    /// The local node's address, as a value.
    pub fn local_addr(&self) -> Value {
        Value::str(&self.local_addr)
    }

    /// The local node's address, as a string slice.
    pub fn local_addr_str(&self) -> &str {
        &self.local_addr
    }

    /// Draws the next pseudo-random 64-bit number (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Draws a uniform double in `[0, 1)`, as returned by `f_rand()`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Flips a biased coin: true with probability `p` (`f_coinFlip(p)`).
    pub fn coin_flip(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let mut ctx = EvalContext::new("n1", 7);
        ctx.set_now(SimTime::from_secs(10));
        ctx.set_now(SimTime::from_secs(5));
        assert_eq!(ctx.now(), SimTime::from_secs(10));
    }

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = EvalContext::new("n1", 42);
        let mut b = EvalContext::new("n2", 42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);

        let mut c = EvalContext::new("n1", 43);
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_ne!(xs, zs);
    }

    #[test]
    fn rand_in_unit_interval() {
        let mut ctx = EvalContext::new("n1", 1);
        for _ in 0..1000 {
            let r = ctx.next_f64();
            assert!((0.0..1.0).contains(&r));
        }
    }

    #[test]
    fn coin_flip_respects_extremes() {
        let mut ctx = EvalContext::new("n1", 1);
        assert!(!(0..100).any(|_| ctx.coin_flip(0.0)));
        assert!((0..100).all(|_| ctx.coin_flip(1.0)));
    }

    #[test]
    fn coin_flip_is_roughly_fair() {
        let mut ctx = EvalContext::new("n1", 99);
        let heads = (0..10_000).filter(|_| ctx.coin_flip(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn local_addr() {
        let ctx = EvalContext::new("node-7:1234", 1);
        assert_eq!(ctx.local_addr(), Value::str("node-7:1234"));
        assert_eq!(ctx.local_addr_str(), "node-7:1234");
    }
}
