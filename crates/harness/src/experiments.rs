//! The experiments of the paper's evaluation section (§5), one function per
//! figure. See DESIGN.md's experiment index (E1–E9) for the mapping.

use serde::Serialize;

use p2_value::Uint160;

use crate::churn::ChurnSchedule;
use crate::cluster::{expected_owner, BaselineCluster, ChordCluster, LookupHandle};
use crate::metrics::{Cdf, Histogram};

/// Parameters for the static-network experiments (Figure 3).
#[derive(Debug, Clone, Serialize)]
pub struct StaticParams {
    /// Network sizes to evaluate (the paper uses 100, 300, 500).
    pub sizes: Vec<usize>,
    /// Number of lookups per size.
    pub lookups: usize,
    /// Warm-up time after all nodes joined, in virtual seconds (lets finger
    /// tables converge).
    pub warmup_secs: u64,
    /// Idle window over which maintenance bandwidth is measured.
    pub idle_measure_secs: u64,
    /// Simulation seed.
    pub seed: u64,
}

impl StaticParams {
    /// A scaled-down configuration that finishes quickly (used by tests and
    /// the default `cargo bench` run).
    pub fn quick() -> StaticParams {
        StaticParams {
            sizes: vec![20, 40],
            lookups: 30,
            warmup_secs: 240,
            idle_measure_secs: 120,
            seed: 42,
        }
    }

    /// The paper-scale configuration (100/300/500 nodes).
    pub fn paper() -> StaticParams {
        StaticParams {
            sizes: vec![100, 300, 500],
            lookups: 300,
            warmup_secs: 900,
            idle_measure_secs: 300,
            seed: 42,
        }
    }
}

/// Results for one network size of the static experiments (Figure 3 rows).
#[derive(Debug, Clone, Serialize)]
pub struct StaticChordResult {
    /// Network size.
    pub n: usize,
    /// Fraction of nodes whose best successor is ring-correct after warm-up.
    pub ring_correctness: f64,
    /// Mean lookup hop count (expected ≈ log2(N)/2).
    pub mean_hops: f64,
    /// Hop-count distribution: `(hops, relative frequency)` (Figure 3(i)).
    pub hop_frequencies: Vec<(usize, f64)>,
    /// Per-node maintenance bandwidth while idle, in bytes/s (Figure 3(ii)).
    pub maintenance_bw_per_node: f64,
    /// Lookup latency CDF points `(seconds, cumulative fraction)`
    /// (Figure 3(iii)).
    pub latency_cdf: Vec<(f64, f64)>,
    /// Median lookup latency in seconds.
    pub median_latency: f64,
    /// Fraction of lookups completing within 6 seconds (the paper reports
    /// 96% for the 500-node network).
    pub within_6s: f64,
    /// Fraction of issued lookups that completed at all.
    pub completion_rate: f64,
    /// Fraction of completed lookups that reported the correct owner.
    pub correctness: f64,
    /// Mean resident soft-state bytes per node.
    pub mean_resident_bytes: f64,
}

/// Runs the static-network experiments (E1–E3: Figure 3 (i)–(iii)).
pub fn static_chord(params: &StaticParams) -> Vec<StaticChordResult> {
    params
        .sizes
        .iter()
        .map(|&n| static_chord_single(n, params))
        .collect()
}

fn static_chord_single(n: usize, params: &StaticParams) -> StaticChordResult {
    let mut cluster = ChordCluster::build(n, params.warmup_secs, params.seed);
    let ring_correctness = cluster.ring_correctness();

    // --- Maintenance bandwidth over an idle window (no lookups).
    cluster.sim.reset_stats();
    cluster.run_for(params.idle_measure_secs as f64);
    let maintenance_bw_per_node =
        cluster.sim.stats().maintenance_bytes() as f64 / params.idle_measure_secs as f64 / n as f64;
    cluster.clear_observations();

    // --- Uniform lookup workload.
    let mut handles: Vec<LookupHandle> = Vec::with_capacity(params.lookups);
    for _ in 0..params.lookups {
        handles.push(cluster.issue_random_lookup());
        cluster.run_for(1.0);
    }
    cluster.run_for(15.0);

    let mut hops = Histogram::new();
    let mut latency = Cdf::new();
    let mut completed = 0usize;
    let mut correct = 0usize;
    let up = cluster.up_addrs();
    for handle in &handles {
        if let Some(outcome) = cluster.outcome(handle) {
            completed += 1;
            hops.add(outcome.hops);
            latency.add(outcome.latency);
            if Some(outcome.owner.clone()) == expected_owner(handle.key, &up) {
                correct += 1;
            }
        }
    }

    StaticChordResult {
        n,
        ring_correctness,
        mean_hops: hops.mean(),
        hop_frequencies: hops.frequencies(),
        maintenance_bw_per_node,
        latency_cdf: latency.points(),
        median_latency: latency.quantile(0.5),
        within_6s: latency.fraction_at_or_below(6.0),
        completion_rate: completed as f64 / handles.len().max(1) as f64,
        correctness: if completed == 0 {
            0.0
        } else {
            correct as f64 / completed as f64
        },
        mean_resident_bytes: cluster.mean_resident_bytes(),
    }
}

/// Parameters for the churn experiments (Figure 4).
#[derive(Debug, Clone, Serialize)]
pub struct ChurnParams {
    /// Network size (the paper uses 400).
    pub n: usize,
    /// Mean session times to evaluate, in minutes (the paper uses 8–128).
    pub session_minutes: Vec<f64>,
    /// Warm-up before churn starts, in virtual seconds.
    pub warmup_secs: u64,
    /// Duration of the churn phase, in virtual seconds (the paper churns for
    /// 20 minutes).
    pub churn_secs: u64,
    /// Interval between consistency probes, in seconds.
    pub probe_interval_secs: u64,
    /// Number of nodes that look up the same key in each consistency probe.
    pub probes_per_round: usize,
    /// Simulation seed.
    pub seed: u64,
}

impl ChurnParams {
    /// A scaled-down configuration that finishes quickly.
    pub fn quick() -> ChurnParams {
        ChurnParams {
            n: 24,
            session_minutes: vec![8.0, 64.0],
            warmup_secs: 300,
            churn_secs: 300,
            probe_interval_secs: 30,
            probes_per_round: 5,
            seed: 99,
        }
    }

    /// The paper-scale configuration (400 nodes, 20-minute churn, session
    /// times 8–128 minutes).
    pub fn paper() -> ChurnParams {
        ChurnParams {
            n: 400,
            session_minutes: vec![8.0, 16.0, 32.0, 64.0, 128.0],
            warmup_secs: 1200,
            churn_secs: 1200,
            probe_interval_secs: 20,
            probes_per_round: 10,
            seed: 99,
        }
    }
}

/// Results for one churn rate (Figure 4 series).
#[derive(Debug, Clone, Serialize)]
pub struct ChurnResult {
    /// Mean session time in minutes.
    pub session_minutes: f64,
    /// Per-node maintenance bandwidth during churn, bytes/s (Figure 4(i)).
    pub maintenance_bw_per_node: f64,
    /// Consistency CDF points `(consistent fraction, cumulative fraction of
    /// probes)` (Figure 4(ii)).
    pub consistency_cdf: Vec<(f64, f64)>,
    /// Mean consistent fraction across probes.
    pub mean_consistency: f64,
    /// Fraction of probes that were at least 99% consistent.
    pub fully_consistent_fraction: f64,
    /// Lookup latency CDF under churn `(seconds, cumulative fraction)`
    /// (Figure 4(iii)).
    pub latency_cdf: Vec<(f64, f64)>,
    /// Median lookup latency under churn, seconds.
    pub median_latency: f64,
    /// Fraction of issued probe lookups that completed.
    pub completion_rate: f64,
}

/// Runs the churn experiments (E4–E6: Figure 4 (i)–(iii)).
pub fn churn_chord(params: &ChurnParams) -> Vec<ChurnResult> {
    params
        .session_minutes
        .iter()
        .map(|&m| churn_chord_single(m, params))
        .collect()
}

fn churn_chord_single(session_minutes: f64, params: &ChurnParams) -> ChurnResult {
    let mut cluster = ChordCluster::build(params.n, params.warmup_secs, params.seed);
    let start = cluster.now().as_secs_f64();
    let end = start + params.churn_secs as f64;
    let mut schedule = ChurnSchedule::new(
        params.n,
        session_minutes * 60.0,
        start,
        params.seed ^ 0xC0FFEE,
    );
    cluster.sim.reset_stats();
    cluster.clear_observations();

    let mut consistency = Cdf::new();
    let mut latency = Cdf::new();
    let mut issued = 0usize;
    let mut completed = 0usize;

    let mut next_probe = start + params.probe_interval_secs as f64;
    let mut outstanding: Vec<(Uint160, Vec<LookupHandle>)> = Vec::new();
    let mut rng_key = params.seed;

    while cluster.now().as_secs_f64() < end {
        let now = cluster.now().as_secs_f64();
        let next_churn = schedule.next_event_at().unwrap_or(end).min(end);
        let next_event = next_churn.min(next_probe).min(end);
        if next_event > now {
            cluster.run_for(next_event - now);
        }

        if schedule
            .next_event_at()
            .map(|t| t <= cluster.now().as_secs_f64() + 1e-9)
            == Some(true)
        {
            if let Some((_, idx)) = schedule.pop() {
                let addr = cluster.addrs()[idx].clone();
                cluster.crash(&addr);
                cluster.rejoin(&addr);
            }
        }

        if cluster.now().as_secs_f64() + 1e-9 >= next_probe {
            // Harvest the previous round of probes before issuing new ones.
            harvest_probes(
                &cluster,
                &mut outstanding,
                &mut consistency,
                &mut latency,
                &mut completed,
            );
            cluster.clear_observations();
            rng_key = rng_key.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = Uint160::hash_of(&rng_key.to_be_bytes());
            // Pick the probe origins without cloning the whole address list
            // (only the handful of chosen origins are materialized).
            let up_len = cluster.sim.up_count();
            let origins: Vec<String> = (0..params.probes_per_round.min(up_len))
                .map(|i| {
                    cluster
                        .sim
                        .up_addresses_iter()
                        .nth((rng_key as usize + i * 7919) % up_len)
                        .expect("index is reduced modulo up_len")
                        .to_string()
                })
                .collect();
            let mut handles = Vec::new();
            for origin in &origins {
                handles.push(cluster.issue_lookup_from(origin, key));
                issued += 1;
            }
            outstanding.push((key, handles));
            next_probe += params.probe_interval_secs as f64;
        }
    }
    cluster.run_for(15.0);
    harvest_probes(
        &cluster,
        &mut outstanding,
        &mut consistency,
        &mut latency,
        &mut completed,
    );

    let maintenance_bw_per_node =
        cluster.sim.stats().maintenance_bytes() as f64 / params.churn_secs as f64 / params.n as f64;

    ChurnResult {
        session_minutes,
        maintenance_bw_per_node,
        consistency_cdf: consistency.points(),
        mean_consistency: consistency.mean(),
        fully_consistent_fraction: 1.0 - consistency.fraction_at_or_below(0.989),
        latency_cdf: latency.points(),
        median_latency: latency.quantile(0.5),
        completion_rate: if issued == 0 {
            0.0
        } else {
            completed as f64 / issued as f64
        },
    }
}

/// Scores outstanding consistency probes: each probe round looked up the
/// same key from several nodes; the round's consistent fraction is the share
/// of issued probes that returned the majority answer (the Bamboo
/// methodology used by the paper).
fn harvest_probes(
    cluster: &ChordCluster,
    outstanding: &mut Vec<(Uint160, Vec<LookupHandle>)>,
    consistency: &mut Cdf,
    latency: &mut Cdf,
    completed: &mut usize,
) {
    for (_key, handles) in outstanding.drain(..) {
        let mut answers: Vec<String> = Vec::new();
        for h in &handles {
            if let Some(outcome) = cluster.outcome(h) {
                *completed += 1;
                latency.add(outcome.latency);
                answers.push(outcome.owner);
            }
        }
        if handles.is_empty() {
            continue;
        }
        let majority = answers
            .iter()
            .map(|a| (a, answers.iter().filter(|b| *b == a).count()))
            .max_by_key(|(_, c)| *c)
            .map(|(a, c)| (a.clone(), c));
        let consistent = match majority {
            Some((_, count)) => count as f64 / handles.len() as f64,
            None => 0.0,
        };
        consistency.add(consistent);
    }
}

/// The specification-compactness comparison (E7, §1/§2.3/§4 claims).
#[derive(Debug, Clone, Serialize)]
pub struct CompactnessReport {
    /// Rules in our executable Chord specification.
    pub chord_rules: usize,
    /// Base-fact clauses in our Chord specification.
    pub chord_facts: usize,
    /// Rules in our Narada mesh specification.
    pub narada_rules: usize,
    /// Rules in the latency-monitor overlay (§2.3's P0–P3).
    pub monitor_rules: usize,
    /// Rules in the gossip overlay.
    pub gossip_rules: usize,
    /// Lines of Rust in the hand-coded baseline Chord (comparison point).
    pub baseline_chord_loc: usize,
    /// The paper's quoted figure for Chord ("47 rules").
    pub paper_chord_rules: usize,
    /// The paper's quoted figure for the Narada mesh ("16 rules").
    pub paper_narada_rules: usize,
    /// The paper's quoted figure for MACEDON's Chord ("more than 320
    /// statements").
    pub macedon_chord_statements: usize,
}

/// Computes the compactness report from the shipped artifacts.
pub fn compactness() -> CompactnessReport {
    let baseline_src = include_str!("../../baseline/src/chord.rs");
    let baseline_chord_loc = baseline_src
        .lines()
        .filter(|l| {
            let t = l.trim();
            !t.is_empty() && !t.starts_with("//") && !t.starts_with("///") && !t.starts_with("//!")
        })
        .count();
    CompactnessReport {
        chord_rules: p2_overlays::chord::rule_count(),
        chord_facts: p2_overlays::chord::fact_count(),
        narada_rules: p2_overlays::narada::rule_count(),
        monitor_rules: p2_overlays::monitor::rule_count(),
        gossip_rules: p2_overlays::gossip::rule_count(),
        baseline_chord_loc,
        paper_chord_rules: 47,
        paper_narada_rules: 16,
        macedon_chord_statements: 320,
    }
}

/// Results of the declarative-vs-hand-coded comparison (E9).
#[derive(Debug, Clone, Serialize)]
pub struct BaselineCompareResult {
    /// Network size used.
    pub n: usize,
    /// Ring correctness of the declarative implementation after warm-up.
    pub p2_ring_correctness: f64,
    /// Ring correctness of the hand-coded baseline after warm-up.
    pub baseline_ring_correctness: f64,
    /// Median lookup latency (s) of the declarative implementation.
    pub p2_median_latency: f64,
    /// Median lookup latency (s) of the baseline.
    pub baseline_median_latency: f64,
    /// Per-node maintenance bandwidth (bytes/s) of the declarative
    /// implementation.
    pub p2_maintenance_bw: f64,
    /// Per-node maintenance bandwidth (bytes/s) of the baseline.
    pub baseline_maintenance_bw: f64,
    /// Lookup completion rate of the declarative implementation.
    pub p2_completion: f64,
    /// Lookup completion rate of the baseline.
    pub baseline_completion: f64,
}

/// Runs the baseline comparison on identical topology and workload (E9).
pub fn baseline_compare(
    n: usize,
    lookups: usize,
    warmup_secs: u64,
    seed: u64,
) -> BaselineCompareResult {
    // Declarative side.
    let mut p2 = ChordCluster::build(n, warmup_secs, seed);
    let p2_ring = p2.ring_correctness();
    p2.sim.reset_stats();
    p2.run_for(120.0);
    let p2_bw = p2.sim.stats().maintenance_bytes() as f64 / 120.0 / n as f64;
    let mut p2_latency = Cdf::new();
    let mut p2_completed = 0usize;
    let mut handles = Vec::new();
    for _ in 0..lookups {
        handles.push(p2.issue_random_lookup());
        p2.run_for(1.0);
    }
    p2.run_for(15.0);
    for h in &handles {
        if let Some(o) = p2.outcome(h) {
            p2_completed += 1;
            p2_latency.add(o.latency);
        }
    }

    // Hand-coded side.
    let mut base = BaselineCluster::build(n, warmup_secs, seed);
    let base_ring = base.ring_correctness();
    base.sim.reset_stats();
    base.run_for(120.0);
    let base_bw = base.sim.stats().maintenance_bytes() as f64 / 120.0 / n as f64;
    let mut base_latency = Cdf::new();
    let mut base_completed = 0usize;
    let mut handles = Vec::new();
    for _ in 0..lookups {
        handles.push(base.issue_random_lookup());
        base.run_for(1.0);
    }
    base.run_for(15.0);
    for h in &handles {
        if let Some(o) = base.outcome(h) {
            base_completed += 1;
            base_latency.add(o.latency);
        }
    }

    BaselineCompareResult {
        n,
        p2_ring_correctness: p2_ring,
        baseline_ring_correctness: base_ring,
        p2_median_latency: p2_latency.quantile(0.5),
        baseline_median_latency: base_latency.quantile(0.5),
        p2_maintenance_bw: p2_bw,
        baseline_maintenance_bw: base_bw,
        p2_completion: p2_completed as f64 / lookups.max(1) as f64,
        baseline_completion: base_completed as f64 / lookups.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compactness_report_matches_shipped_programs() {
        let report = compactness();
        assert_eq!(report.chord_rules + report.chord_facts, 47);
        assert_eq!(report.narada_rules, 16);
        assert!(report.baseline_chord_loc > 300);
        assert_eq!(report.paper_chord_rules, 47);
        // The headline claim: the declarative spec is more than an order of
        // magnitude smaller than the hand-coded implementation.
        assert!(report.baseline_chord_loc > 5 * report.chord_rules);
    }

    #[test]
    fn quick_static_experiment_produces_sane_numbers() {
        let mut params = StaticParams::quick();
        params.sizes = vec![12];
        params.lookups = 15;
        params.warmup_secs = 180;
        let results = static_chord(&params);
        assert_eq!(results.len(), 1);
        let r = &results[0];
        assert!(
            r.ring_correctness > 0.9,
            "ring correctness {}",
            r.ring_correctness
        );
        assert!(r.completion_rate > 0.8, "completion {}", r.completion_rate);
        assert!(r.correctness > 0.8, "correctness {}", r.correctness);
        assert!(
            r.mean_hops > 0.0 && r.mean_hops < 6.0,
            "hops {}",
            r.mean_hops
        );
        assert!(r.maintenance_bw_per_node > 0.0);
        assert!(r.median_latency > 0.0 && r.median_latency < 6.0);
        assert!(r.mean_resident_bytes > 0.0);
    }
}
