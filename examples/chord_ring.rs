//! Build a Chord ring from the paper's 47-rule OverLog specification, let it
//! stabilize on the simulated Emulab-style topology, and route lookups.
//!
//! Run with: `cargo run --release --example chord_ring`

use p2_harness::cluster::expected_owner;
use p2_suite::prelude::*;

fn main() {
    let n = 16;
    println!(
        "bringing up a {n}-node declarative Chord ring (this simulates a few virtual minutes)..."
    );
    let mut cluster = ChordCluster::build(n, 180, 7);
    println!(
        "ring formed; {:.0}% of nodes have the correct ring successor",
        cluster.ring_correctness() * 100.0
    );

    println!("\nring order (node id -> address -> best successor):");
    let mut by_id: Vec<(Uint160, String)> = cluster
        .addrs()
        .iter()
        .map(|a| (chord::node_id(a), a.clone()))
        .collect();
    by_id.sort();
    for (id, addr) in &by_id {
        let hex = id.to_hex();
        println!(
            "  {:>12}...  {:<14} -> {}",
            &hex[..12.min(hex.len())],
            addr,
            cluster.best_successor(addr).unwrap_or_else(|| "?".into())
        );
    }

    println!("\nissuing 10 lookups from random nodes:");
    let mut correct = 0;
    for i in 0..10 {
        let key = Uint160::hash_of(format!("object-{i}").as_bytes());
        let origin = cluster.addrs()[i % n].clone();
        let handle = cluster.issue_lookup_from(&origin, key);
        cluster.run_for(6.0);
        match cluster.outcome(&handle) {
            Some(outcome) => {
                let expect = expected_owner(key, &cluster.up_addrs()).unwrap();
                let ok = outcome.owner == expect;
                correct += ok as usize;
                println!(
                    "  object-{i}: owner={} hops={} latency={:.2}s {}",
                    outcome.owner,
                    outcome.hops,
                    outcome.latency,
                    if ok { "(correct)" } else { "(WRONG)" }
                );
            }
            None => println!("  object-{i}: no answer within 6s"),
        }
    }
    println!("\n{correct}/10 lookups returned the correct owner");
    println!(
        "maintenance traffic so far: {:.1} bytes/s per node",
        cluster.sim.stats().maintenance_bytes() as f64 / cluster.now().as_secs_f64() / n as f64
    );
}
