//! Simulator event-loop benchmark: measures what the PR-2 overhaul targets
//! (interned NodeIds, the tombstone-free timer index, matrix latency
//! lookup) and writes the results to `BENCH_sim.json` so the trajectory is
//! tracked like `BENCH_table.json`.
//!
//! Two sections:
//!
//! * `toy_event_loop` — rings of trivial periodic hosts (one ping per
//!   second per node, no dataflow machinery). This isolates the simulator's
//!   own per-event cost; with the interned core it should be roughly
//!   independent of node count and allocation-free on the delivery and
//!   wakeup paths.
//! * `chord_rings` — full declarative Chord rings brought up with the
//!   batched `start_all`/`inject_many` path, reporting bring-up wall time
//!   and steady-state event throughput.
//! * `join_seed_bring_up` — virtual bring-up time of the batched path with
//!   and without the JS1 join-time successor-seeding rule (ROADMAP
//!   bottleneck 2: seeding collapses idle stabilization waits).
//! * `strand_gate` — the rule-strand equivalence gate: the same ring
//!   planned with fused strands (the default) and with the generic element
//!   chains must produce identical NetStats and event counts, and the
//!   binary **exits non-zero on divergence** (CI runs this in smoke mode,
//!   like the `--par` golden gate).
//! * `view_gate` — the incrementalization equivalence gate: the same ring
//!   planned with materialized views and delta-fed aggregate probes (the
//!   default) and with the rescanning translation must produce identical
//!   NetStats and event counts, and the binary **exits non-zero on
//!   divergence**. `--view-gate` runs only this gate (the CI smoke step).
//! * `sched_gate` — the delta-scheduling equivalence gate: the same ring
//!   with the delta-driven scheduler on (the default) and off must produce
//!   identical NetStats and event counts, identical final routing state
//!   (succ/pred/bestSucc/finger rows of every node, agreeing on
//!   single-cycle structure), and identical outcomes for a deterministic
//!   lookup workload — and the scheduled run must actually have suppressed
//!   pokes. The binary **exits non-zero on divergence**. `--sched-gate`
//!   runs only this gate (the CI smoke step).
//!
//! The `chord_rings` section reports an interleaved in-process A/B of the
//! incremental plan against the generic element chains, the rescanning
//! (views-off) plan, and the poke-everything (scheduler-off) plan, plus
//! per-event full-scan rates for each.
//!
//! With `--par` the binary instead benchmarks the **parallel sharded
//! simulator**: steady-state Chord-ring throughput at 1/2/4/8 workers per
//! ring size, written to `BENCH_parsim.json`, plus a golden gate that runs
//! the same small ring on the sequential and the 2-worker engine and
//! **exits non-zero if their NetStats or event counts diverge** (CI runs
//! this in smoke mode).
//!
//! With `--obs` the binary runs the **rule-level profiler** instead: each
//! ring size is profiled over a steady-state window and the merged per-rule
//! invocation/wasted-poke report is written to `BENCH_obs.json`, together
//! with an off/on golden gate on the 100-node pinned ring — enabling
//! observability must leave the NetStats and event-count pins bit-identical
//! or the binary **exits non-zero**. The report tree is schema-checked
//! in-process before it is written.
//!
//! Usage: `cargo run --release --bin sim_bench [-- --smoke] [--par] [--obs]
//! [--view-gate] [--sched-gate] [--sizes N,N,..] [--workers N,N,..]
//! [--out PATH]`

use std::time::Instant;

use p2_bench::to_json;
use p2_harness::metrics::{EngineOps, SimOps, StorageOps};
use p2_harness::ChordCluster;
use p2_netsim::{Envelope, Host, NetworkConfig, Simulator};
use p2_value::{SimTime, Tuple, TupleBuilder, Uint160};
use serde::{Json, Serialize};

/// A minimal host: one ping to its ring neighbor every second, phase-spread
/// so events are not synchronized.
struct Toy {
    addr: String,
    peer: String,
    next: Option<SimTime>,
    received: u64,
}

impl Host for Toy {
    fn start(&mut self, now: SimTime) -> Vec<Envelope> {
        // Phase-spread the first tick by the node's hash.
        let phase = (self.addr.len() as u64 * 131 + self.addr.as_bytes()[1] as u64) % 997;
        self.next = Some(now + SimTime::from_millis(1000 + phase));
        Vec::new()
    }

    fn deliver(&mut self, _tuple: Tuple, _now: SimTime) -> Vec<Envelope> {
        self.received += 1;
        Vec::new()
    }

    fn advance_to(&mut self, now: SimTime) -> Vec<Envelope> {
        let mut out = Vec::new();
        if let Some(t) = self.next {
            if t <= now {
                out.push(Envelope::new(
                    self.peer.clone(),
                    TupleBuilder::new("ping").push(self.addr.as_str()).build(),
                ));
                self.next = Some(t + SimTime::from_secs(1));
            }
        }
        out
    }

    fn next_deadline(&self) -> Option<SimTime> {
        self.next
    }
}

#[derive(Debug, Clone, Serialize)]
struct ToyResult {
    nodes: usize,
    virtual_secs: u64,
    events: u64,
    wall_secs: f64,
    ns_per_event: f64,
    events_per_sec: f64,
}

#[derive(Debug, Clone, Serialize)]
struct ChordResult {
    nodes: usize,
    build_wall_secs: f64,
    ring_correctness: f64,
    virtual_secs: u64,
    events: u64,
    wall_secs: f64,
    events_per_sec: f64,
    messages_per_virtual_sec: f64,
    /// Throughput of the same ring planned with the generic element
    /// chains, measured in interleaved windows within the same process so
    /// machine noise hits both variants equally.
    generic_events_per_sec: f64,
    /// `events_per_sec / generic_events_per_sec`: the isolated win of
    /// strand fusion (plus the identical event streams make the windows
    /// directly comparable).
    fused_speedup: f64,
    /// Throughput of the same ring with view materialization and delta-fed
    /// aggregate probes disabled (the rescanning translation), interleaved
    /// in the same windows.
    views_off_events_per_sec: f64,
    /// `events_per_sec / views_off_events_per_sec`: the isolated win of
    /// incrementalization.
    views_speedup: f64,
    /// Throughput of the same ring with delta-driven scheduling disabled
    /// (the poke-everything engine), interleaved in the same windows.
    sched_off_events_per_sec: f64,
    /// `events_per_sec / sched_off_events_per_sec`: the isolated win of
    /// suppressing refresh no-op pokes.
    sched_speedup: f64,
    /// Pokes the scheduler suppressed in the incremental ring's measurement
    /// windows (static refresh masks + dynamic `would_wake` guards).
    suppressed_pokes: u64,
    /// Full table scans per processed event in the measurement windows,
    /// incremental plan (the ISSUE-7 success metric: ~0).
    full_scans_per_event: f64,
    /// Full table scans per processed event, rescanning plan.
    views_off_full_scans_per_event: f64,
    /// End-of-run table-storage counters of the incremental ring.
    storage_ops: StorageOps,
    /// End-of-run simulator event-loop counters of the incremental ring.
    sim_ops: SimOps,
    /// End-of-run engine ingress counters of the incremental ring.
    engine_ops: EngineOps,
}

#[derive(Debug, Clone, Serialize)]
struct JoinSeedResult {
    nodes: usize,
    /// Virtual seconds to a settled ring, base program.
    base_bring_up_virtual_secs: f64,
    /// Virtual seconds to a settled ring with JS1 seeding.
    seeded_bring_up_virtual_secs: f64,
    /// Positive = seeding converged faster.
    delta_virtual_secs: f64,
    base_ring_correctness: f64,
    seeded_ring_correctness: f64,
}

#[derive(Debug, Clone, Serialize)]
struct StrandGate {
    nodes: usize,
    fused_strand_count: usize,
    fused: GoldenPin,
    generic: GoldenPin,
    matches: bool,
}

#[derive(Debug, Clone, Serialize)]
struct ViewGate {
    nodes: usize,
    /// Rules lowered to materialized views in the shipped plan.
    mat_view_count: usize,
    views_on: GoldenPin,
    views_off: GoldenPin,
    /// Full table scans over the gate window, incremental plan.
    views_on_full_scans: u64,
    /// Full table scans over the gate window, rescanning plan.
    views_off_full_scans: u64,
    matches: bool,
}

#[derive(Debug, Clone, Serialize)]
struct SchedGate {
    nodes: usize,
    /// Strand entries statically masked in the shipped plan (0 for Chord:
    /// the planner's transitive TTL-neutrality fixpoint proves every
    /// refresh cascade load-bearing, so all suppression is guard-driven).
    refresh_mask_count: usize,
    scheduled: GoldenPin,
    unscheduled: GoldenPin,
    /// Pokes suppressed in the scheduled run's gate window — the gate is
    /// vacuous unless this is non-zero.
    suppressed_pokes: u64,
    /// Final succ/pred/bestSucc/finger rows of every node identical.
    state_matches: bool,
    /// The two rings agree on whether the successor pointers form a single
    /// cycle (the smoke ring's short staggered bring-up may legitimately
    /// not have converged yet — what is gated is that scheduling does not
    /// change the outcome; the harness equivalence test asserts the
    /// absolute cycle on a fully converged ring).
    single_cycle_agrees: bool,
    /// Deterministic lookup workload resolved to the same owners over the
    /// same hop counts.
    lookups_match: bool,
    matches: bool,
}

#[derive(Debug, Clone, Serialize)]
struct BenchReport {
    bench: String,
    toy_event_loop: Vec<ToyResult>,
    chord_rings: Vec<ChordResult>,
    join_seed_bring_up: Vec<JoinSeedResult>,
    strand_gate: StrandGate,
    view_gate: ViewGate,
    sched_gate: SchedGate,
}

#[derive(Debug, Clone, Serialize)]
struct ParResult {
    nodes: usize,
    workers: usize,
    build_wall_secs: f64,
    ring_correctness: f64,
    virtual_secs: u64,
    events: u64,
    wall_secs: f64,
    events_per_sec: f64,
    /// Throughput relative to the 1-worker run of the same ring size.
    speedup_vs_1_worker: f64,
    sync_rounds: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
struct GoldenPin {
    messages_sent: u64,
    messages_delivered: u64,
    messages_dropped: u64,
    bytes_sent: u64,
    events_processed: u64,
}

#[derive(Debug, Clone, Serialize)]
struct GoldenGate {
    nodes: usize,
    workers: usize,
    sequential: GoldenPin,
    parallel: GoldenPin,
    matches: bool,
}

#[derive(Debug, Clone, Serialize)]
struct ParReport {
    bench: String,
    machine_cores: usize,
    scaling: Vec<Vec<ParResult>>,
    golden_gate: GoldenGate,
}

fn bench_toy(nodes: usize, virtual_secs: u64) -> ToyResult {
    let mut sim: Simulator<Toy> = Simulator::new(NetworkConfig::emulab_default(17));
    for i in 0..nodes {
        let addr = format!("n{i}");
        let peer = format!("n{}", (i + 1) % nodes);
        sim.add_node(
            addr.clone(),
            Toy {
                addr,
                peer,
                next: None,
                received: 0,
            },
        );
    }
    sim.start_all();
    // Warm up one virtual second so every node's first tick has fired.
    sim.run_for(SimTime::from_secs(2));
    let before = sim.events_processed();
    let start = Instant::now();
    sim.run_for(SimTime::from_secs(virtual_secs));
    let wall = start.elapsed().as_secs_f64();
    let events = sim.events_processed() - before;
    ToyResult {
        nodes,
        virtual_secs,
        events,
        wall_secs: wall,
        ns_per_event: wall * 1e9 / events.max(1) as f64,
        events_per_sec: events as f64 / wall.max(1e-12),
    }
}

fn bench_chord(nodes: usize, warmup_secs: u64, virtual_secs: u64) -> ChordResult {
    let start = Instant::now();
    let mut cluster = ChordCluster::builder(nodes, 42).build_fast(warmup_secs);
    let build_wall_secs = start.elapsed().as_secs_f64();
    let ring_correctness = cluster.ring_correctness();
    let mut generic = ChordCluster::builder(nodes, 42)
        .fuse_strands(false)
        .build_fast(warmup_secs);
    let mut rescan = ChordCluster::builder(nodes, 42)
        .materialize_views(false)
        .build_fast(warmup_secs);
    let mut unsched = ChordCluster::builder(nodes, 42)
        .delta_schedule(false)
        .build_fast(warmup_secs);

    // Interleaved measurement windows: all four rings simulate the same
    // deterministic event stream, so alternating short windows makes the
    // comparison robust against machine-load drift within one run (single
    // absolute numbers on a shared box are not). The within-window run
    // order alternates each window (even count) because position in the
    // window is itself worth several percent on a busy single-core box —
    // measured by swapping the order of two identical-workload rings. The
    // outer slots alternate main/rescan, the inner slots generic/unsched.
    let windows = 4u64;
    let slice = (virtual_secs / windows).max(1);
    cluster.sim.reset_stats();
    let before_events = cluster.sim.events_processed();
    let generic_before = generic.sim.events_processed();
    let rescan_before = rescan.sim.events_processed();
    let unsched_before = unsched.sim.events_processed();
    let scans_before = cluster.storage_ops().full_scans;
    let rescan_scans_before = rescan.storage_ops().full_scans;
    let suppressed_before = {
        let e = cluster.engine_stats();
        e.suppressed_refresh_pokes + e.suppressed_guard_pokes
    };
    let (mut wall, mut generic_wall, mut rescan_wall, mut unsched_wall) =
        (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for w in 0..windows {
        let mut run_main = |wall: &mut f64| {
            let t = Instant::now();
            cluster.run_for(slice as f64);
            *wall += t.elapsed().as_secs_f64();
        };
        let mut run_rescan = |wall: &mut f64| {
            let t = Instant::now();
            rescan.run_for(slice as f64);
            *wall += t.elapsed().as_secs_f64();
        };
        let mut run_generic = |wall: &mut f64| {
            let t = Instant::now();
            generic.run_for(slice as f64);
            *wall += t.elapsed().as_secs_f64();
        };
        let mut run_unsched = |wall: &mut f64| {
            let t = Instant::now();
            unsched.run_for(slice as f64);
            *wall += t.elapsed().as_secs_f64();
        };
        if w % 2 == 0 {
            run_main(&mut wall);
            run_generic(&mut generic_wall);
            run_unsched(&mut unsched_wall);
            run_rescan(&mut rescan_wall);
        } else {
            run_rescan(&mut rescan_wall);
            run_unsched(&mut unsched_wall);
            run_generic(&mut generic_wall);
            run_main(&mut wall);
        }
    }
    let events = cluster.sim.events_processed() - before_events;
    let generic_events = generic.sim.events_processed() - generic_before;
    let rescan_events = rescan.sim.events_processed() - rescan_before;
    let unsched_events = unsched.sim.events_processed() - unsched_before;
    assert_eq!(
        events, generic_events,
        "fused and generic rings must process identical event streams"
    );
    assert_eq!(
        events, rescan_events,
        "incremental and rescanning rings must process identical event streams"
    );
    assert_eq!(
        events, unsched_events,
        "scheduled and poke-everything rings must process identical event streams"
    );
    let full_scans = cluster.storage_ops().full_scans - scans_before;
    let rescan_full_scans = rescan.storage_ops().full_scans - rescan_scans_before;
    let sent = cluster.sim.stats().messages_sent;
    let events_per_sec = events as f64 / wall.max(1e-12);
    let generic_events_per_sec = generic_events as f64 / generic_wall.max(1e-12);
    let views_off_events_per_sec = rescan_events as f64 / rescan_wall.max(1e-12);
    let sched_off_events_per_sec = unsched_events as f64 / unsched_wall.max(1e-12);
    let suppressed_pokes = {
        let e = cluster.engine_stats();
        e.suppressed_refresh_pokes + e.suppressed_guard_pokes - suppressed_before
    };
    ChordResult {
        nodes,
        build_wall_secs,
        ring_correctness,
        virtual_secs: slice * windows,
        events,
        wall_secs: wall,
        events_per_sec,
        messages_per_virtual_sec: sent as f64 / (slice * windows).max(1) as f64,
        generic_events_per_sec,
        fused_speedup: events_per_sec / generic_events_per_sec.max(1e-12),
        views_off_events_per_sec,
        views_speedup: events_per_sec / views_off_events_per_sec.max(1e-12),
        sched_off_events_per_sec,
        sched_speedup: events_per_sec / sched_off_events_per_sec.max(1e-12),
        suppressed_pokes,
        full_scans_per_event: full_scans as f64 / events.max(1) as f64,
        views_off_full_scans_per_event: rescan_full_scans as f64 / events.max(1) as f64,
        storage_ops: cluster.storage_ops(),
        sim_ops: cluster.sim_ops(),
        engine_ops: cluster.engine_stats(),
    }
}

/// Measures batched bring-up with and without JS1 join-time seeding.
fn bench_join_seed(nodes: usize, warmup_secs: u64) -> JoinSeedResult {
    let base = ChordCluster::builder(nodes, 42).build_fast(warmup_secs);
    let seeded = ChordCluster::builder(nodes, 42)
        .join_seed(true)
        .build_fast(warmup_secs);
    JoinSeedResult {
        nodes,
        base_bring_up_virtual_secs: base.bring_up_virtual_secs(),
        seeded_bring_up_virtual_secs: seeded.bring_up_virtual_secs(),
        delta_virtual_secs: base.bring_up_virtual_secs() - seeded.bring_up_virtual_secs(),
        base_ring_correctness: base.ring_correctness(),
        seeded_ring_correctness: seeded.ring_correctness(),
    }
}

/// Runs the strand-equivalence gate: the same staggered-bring-up ring
/// planned with fused strands and with the generic element chains must
/// produce identical NetStats and event counts. The fused plan's padded
/// strands are designed to preserve the engine's breadth-first emission
/// schedule exactly; this gate is the end-to-end proof.
fn strand_gate(nodes: usize, warmup_secs: u64) -> StrandGate {
    let run = |fuse: bool| {
        let mut cluster = ChordCluster::builder(nodes, 42)
            .fuse_strands(fuse)
            .build(warmup_secs);
        cluster.sim.reset_stats();
        let before = cluster.sim.events_processed();
        cluster.run_for(60.0);
        let s = cluster.sim.stats();
        GoldenPin {
            messages_sent: s.messages_sent,
            messages_delivered: s.messages_delivered,
            messages_dropped: s.messages_dropped,
            bytes_sent: s.bytes_sent,
            events_processed: cluster.sim.events_processed() - before,
        }
    };
    let fused = run(true);
    let generic = run(false);
    StrandGate {
        nodes,
        fused_strand_count: p2_overlays::chord::shared_plan(true).fused_strand_count(),
        fused,
        generic,
        matches: fused == generic,
    }
}

/// Runs the incrementalization equivalence gate: the same staggered
/// bring-up ring planned with materialized views and delta-fed aggregate
/// probes, and with the rescanning translation, must produce identical
/// NetStats and event counts. Views keep emission poke-driven through the
/// shared strand executor precisely so this holds bit-for-bit; the gate is
/// the end-to-end proof, and the full-scan counters show the work saved.
fn view_gate(nodes: usize, warmup_secs: u64) -> ViewGate {
    let run = |views: bool| {
        let mut cluster = ChordCluster::builder(nodes, 42)
            .materialize_views(views)
            .build(warmup_secs);
        cluster.sim.reset_stats();
        let before = cluster.sim.events_processed();
        let scans_before = cluster.storage_ops().full_scans;
        cluster.run_for(60.0);
        let s = cluster.sim.stats();
        let pin = GoldenPin {
            messages_sent: s.messages_sent,
            messages_delivered: s.messages_delivered,
            messages_dropped: s.messages_dropped,
            bytes_sent: s.bytes_sent,
            events_processed: cluster.sim.events_processed() - before,
        };
        (pin, cluster.storage_ops().full_scans - scans_before)
    };
    let (views_on, views_on_full_scans) = run(true);
    let (views_off, views_off_full_scans) = run(false);
    ViewGate {
        nodes,
        mat_view_count: p2_overlays::chord::shared_plan(true).mat_view_count(),
        views_on,
        views_off,
        views_on_full_scans,
        views_off_full_scans,
        matches: views_on == views_off,
    }
}

/// The full per-node routing state of every up node (succ, pred, bestSucc
/// and finger rows, sorted), for the scheduler-equivalence comparison.
fn routing_state(cluster: &ChordCluster) -> Vec<(String, Vec<Vec<String>>)> {
    cluster
        .sim
        .up_addresses_iter()
        .map(|a| {
            let tables = ["succ", "pred", "bestSucc", "finger"]
                .iter()
                .map(|t| cluster.table_rows(a, t))
                .collect();
            (a.to_string(), tables)
        })
        .collect()
}

/// Issues the same deterministic lookup workload on a cluster and returns
/// each lookup's `(owner, hops)` outcome.
fn lookup_outcomes(cluster: &mut ChordCluster, n_lookups: usize) -> Vec<Option<(String, usize)>> {
    let origins = cluster.up_addrs();
    let handles: Vec<_> = (0..n_lookups)
        .map(|i| {
            let origin = origins[i % origins.len()].clone();
            let key = Uint160::hash_of(format!("sched-gate-key-{i}").as_bytes());
            cluster.issue_lookup_from(&origin, key)
        })
        .collect();
    cluster.run_for(30.0);
    handles
        .iter()
        .map(|h| cluster.outcome(h).map(|o| (o.owner, o.hops)))
        .collect()
}

/// Runs the delta-scheduling equivalence gate: the same staggered
/// bring-up ring with the scheduler on (the default) and off must produce
/// identical NetStats and event counts over the gate window, hold
/// bit-identical final routing state on a single successor cycle, and
/// resolve a deterministic lookup workload identically. Suppression only
/// ever skips invocations proved to be no-ops, so any observable
/// divergence is a scheduler soundness bug; the gate also checks the
/// scheduled run suppressed a non-zero number of pokes, so it cannot pass
/// vacuously.
fn sched_gate(nodes: usize, warmup_secs: u64) -> SchedGate {
    let build = |schedule: bool| {
        ChordCluster::builder(nodes, 42)
            .delta_schedule(schedule)
            .build(warmup_secs)
    };
    let mut on = build(true);
    let mut off = build(false);
    let (scheduled, _) = pinned_window(&mut on);
    let (unscheduled, _) = pinned_window(&mut off);
    let state_matches = routing_state(&on) == routing_state(&off);
    let single_cycle_agrees = on.is_single_cycle() == off.is_single_cycle();
    let on_lookups = lookup_outcomes(&mut on, 16);
    let off_lookups = lookup_outcomes(&mut off, 16);
    let lookups_match = on_lookups == off_lookups && on_lookups.iter().all(Option::is_some);
    let e = on.engine_stats();
    let suppressed_pokes = e.suppressed_refresh_pokes + e.suppressed_guard_pokes;
    SchedGate {
        nodes,
        refresh_mask_count: p2_overlays::chord::shared_plan(true).refresh_mask_count(),
        scheduled,
        unscheduled,
        suppressed_pokes,
        state_matches,
        single_cycle_agrees,
        lookups_match,
        matches: scheduled == unscheduled
            && state_matches
            && single_cycle_agrees
            && lookups_match
            && suppressed_pokes > 0,
    }
}

/// Steady-state Chord-ring throughput on the sharded simulator.
fn bench_par(nodes: usize, workers: usize, warmup_secs: u64, virtual_secs: u64) -> ParResult {
    let start = Instant::now();
    let mut cluster = ChordCluster::builder(nodes, 42)
        .par_threads(workers)
        .build_fast(warmup_secs);
    let build_wall_secs = start.elapsed().as_secs_f64();
    let ring_correctness = cluster.ring_correctness();
    let before_events = cluster.sim.events_processed();
    let rounds_before = match &cluster.sim {
        p2_netsim::AnySimulator::Par(sim) => sim.sync_rounds(),
        p2_netsim::AnySimulator::Seq(_) => 0,
    };
    let start = Instant::now();
    cluster.run_for(virtual_secs as f64);
    let wall = start.elapsed().as_secs_f64();
    let events = cluster.sim.events_processed() - before_events;
    let sync_rounds = match &cluster.sim {
        p2_netsim::AnySimulator::Par(sim) => sim.sync_rounds() - rounds_before,
        p2_netsim::AnySimulator::Seq(_) => 0,
    };
    ParResult {
        nodes,
        workers,
        build_wall_secs,
        ring_correctness,
        virtual_secs,
        events,
        wall_secs: wall,
        events_per_sec: events as f64 / wall.max(1e-12),
        speedup_vs_1_worker: 0.0, // filled in by the caller
        sync_rounds,
    }
}

/// Runs the golden equivalence gate: the same staggered-bring-up ring on
/// the sequential and the parallel engine must produce identical NetStats
/// and event counts.
fn golden_gate(nodes: usize, workers: usize, warmup_secs: u64) -> GoldenGate {
    let run = |par: Option<usize>| {
        let builder = ChordCluster::builder(nodes, 42);
        let builder = match par {
            None => builder,
            Some(w) => builder.par_threads(w),
        };
        let mut cluster = builder.build(warmup_secs);
        cluster.sim.reset_stats();
        let before = cluster.sim.events_processed();
        cluster.run_for(60.0);
        let s = cluster.sim.stats();
        GoldenPin {
            messages_sent: s.messages_sent,
            messages_delivered: s.messages_delivered,
            messages_dropped: s.messages_dropped,
            bytes_sent: s.bytes_sent,
            events_processed: cluster.sim.events_processed() - before,
        }
    };
    let sequential = run(None);
    let parallel = run(Some(workers));
    GoldenGate {
        nodes,
        workers,
        sequential,
        parallel,
        matches: sequential == parallel,
    }
}

/// Rule-level profile of one ring size (the `--obs` mode payload).
#[derive(Debug, Clone, Serialize)]
struct ObsSizeResult {
    nodes: usize,
    /// Virtual seconds profiled (steady state, after bring-up and warm-up).
    virtual_secs: u64,
    /// Cluster-wide engine ingress counters over the profiled window.
    engine_ops: EngineOps,
    /// The merged rule-level profile (per-rule wasted-poke rates, class
    /// buckets, per-table refresh rates).
    profile: p2_obs::ProfileReport,
}

/// The observability golden gate: the same staggered ring run with the
/// profiler off and on must produce identical NetStats and event counts
/// (observability taps must never change behaviour).
#[derive(Debug, Clone, Serialize)]
struct ObsGolden {
    nodes: usize,
    obs_off: GoldenPin,
    obs_on: GoldenPin,
    matches: bool,
    obs_off_wall_secs: f64,
    obs_on_wall_secs: f64,
    /// `obs_on` events/s relative to `obs_off` (1.0 = no overhead; wall
    /// clock, so noisy — informational, not gated).
    throughput_ratio: f64,
}

#[derive(Debug, Clone, Serialize)]
struct ObsReport {
    bench: String,
    profiles: Vec<ObsSizeResult>,
    golden: ObsGolden,
}

/// Runs the measurement window with wall timing and returns the golden pin.
fn pinned_window(cluster: &mut ChordCluster) -> (GoldenPin, f64) {
    cluster.sim.reset_stats();
    let before = cluster.sim.events_processed();
    let t = Instant::now();
    cluster.run_for(60.0);
    let wall = t.elapsed().as_secs_f64();
    let s = cluster.sim.stats();
    let pin = GoldenPin {
        messages_sent: s.messages_sent,
        messages_delivered: s.messages_delivered,
        messages_dropped: s.messages_dropped,
        bytes_sent: s.bytes_sent,
        events_processed: cluster.sim.events_processed() - before,
    };
    (pin, wall)
}

/// Profiles one ring size: steady-state window with the rule-level profiler
/// on, reported as a merged cluster-wide profile.
fn bench_obs(nodes: usize, warmup_secs: u64, virtual_secs: u64) -> ObsSizeResult {
    let mut cluster = ChordCluster::builder(nodes, 42).build_fast(warmup_secs);
    // Enabling after bring-up zeroes the counters at the steady state, so
    // the profile reflects maintenance traffic, not joins.
    cluster.enable_observability();
    let engine_before = cluster.engine_stats();
    cluster.run_for(virtual_secs as f64);
    let mut engine_ops = cluster.engine_stats();
    engine_ops.handoffs -= engine_before.handoffs;
    engine_ops.injected -= engine_before.injected;
    engine_ops.dropped_no_entry -= engine_before.dropped_no_entry;
    engine_ops.timers_fired -= engine_before.timers_fired;
    engine_ops.sent -= engine_before.sent;
    ObsSizeResult {
        nodes,
        virtual_secs,
        engine_ops,
        profile: cluster.obs_report(),
    }
}

/// Ceiling on the 100-node steady-state wasted-poke ratio with delta
/// scheduling on. The poke-everything engine measured 32.8% (PR 9); the
/// scheduler's `would_wake` guards bring it to 10.1%, and the `--obs` gate
/// pins the claim so a scheduler regression fails CI instead of silently
/// re-inflating the waste.
const WASTED_RATE_CEILING: f64 = 0.12;

/// The `--obs` mode: per-size rule-level profiles plus the off/on golden
/// gate. Exits non-zero if observability perturbs the golden run, if the
/// long-standing 100-node golden pin no longer holds, or if the 100-node
/// steady-state wasted-poke ratio exceeds [`WASTED_RATE_CEILING`] (the
/// 100-node profile is added when absent from `--sizes` so the ratio gate
/// always runs).
fn run_obs_mode(out_path: &str, smoke: bool, sizes: &[usize]) -> i32 {
    let (warmup_secs, measure_secs) = if smoke { (60, 30) } else { (300, 60) };

    let mut sizes = sizes.to_vec();
    if !sizes.contains(&100) {
        eprintln!("obs: adding the 100-node profile (wasted-poke ratio gate)");
        sizes.push(100);
    }
    let mut profiles = Vec::new();
    for &n in &sizes {
        eprintln!("obs profile: {n} nodes ({measure_secs} virtual s steady state)...");
        let r = bench_obs(n, warmup_secs, measure_secs);
        let p = &r.profile;
        eprintln!(
            "  {} rules, {} pokes, {} wasted ({:.1}%), {} suppressed; \
             refresh-transparent rules: {} pokes, {:.1}% wasted, {} suppressed; \
             other rules: {} pokes, {:.1}% wasted, {} suppressed",
            p.rules.len(),
            p.total_pokes,
            p.total_wasted_pokes,
            100.0 * p.wasted_rate,
            p.total_suppressed_pokes,
            p.refresh_transparent.pokes,
            100.0 * p.refresh_transparent.wasted_rate,
            p.refresh_transparent.suppressed_pokes,
            p.other_rules.pokes,
            100.0 * p.other_rules.wasted_rate,
            p.other_rules.suppressed_pokes
        );
        profiles.push(r);
    }

    // The scheduler-regression gate: the 100-node steady-state profile
    // (delta scheduling on — the default build) must keep the wasted-poke
    // ratio under the pinned ceiling, and the scheduler must actually be
    // suppressing pokes (a silently disabled scheduler would otherwise
    // pass whenever waste stayed moderate).
    let ratio_gate_ok = profiles.iter().filter(|r| r.nodes == 100).all(|r| {
        let p = &r.profile;
        eprintln!(
            "  100-node ratio gate: wasted {:.1}% (ceiling {:.0}%), {} suppressed",
            100.0 * p.wasted_rate,
            100.0 * WASTED_RATE_CEILING,
            p.total_suppressed_pokes
        );
        p.wasted_rate < WASTED_RATE_CEILING && p.total_suppressed_pokes > 0
    });

    // Golden gate: always the 100-node staggered ring whose NetStats and
    // event count are pinned by the determinism tests, so CI asserts the
    // pins hold with observability both off and on.
    let gate_nodes = 100;
    eprintln!("obs golden gate: {gate_nodes}-node ring, profiler off vs on...");
    let mut off_ring = ChordCluster::build(gate_nodes, 120, 42);
    let (obs_off, obs_off_wall_secs) = pinned_window(&mut off_ring);
    let mut on_ring = ChordCluster::build(gate_nodes, 120, 42);
    on_ring.enable_observability();
    let (obs_on, obs_on_wall_secs) = pinned_window(&mut on_ring);
    let golden = ObsGolden {
        nodes: gate_nodes,
        obs_off,
        obs_on,
        matches: obs_off == obs_on,
        obs_off_wall_secs,
        obs_on_wall_secs,
        throughput_ratio: (obs_on.events_processed as f64 / obs_on_wall_secs.max(1e-12))
            / (obs_off.events_processed as f64 / obs_off_wall_secs.max(1e-12)).max(1e-12),
    };
    eprintln!(
        "  off {:?} vs on {:?} -> {} (on/off throughput {:.3})",
        golden.obs_off,
        golden.obs_on,
        if golden.matches { "MATCH" } else { "DIVERGED" },
        golden.throughput_ratio
    );

    let pin_holds = golden.obs_off
        == GoldenPin {
            messages_sent: 29_634,
            messages_delivered: 29_638,
            messages_dropped: 0,
            bytes_sent: 2_787_660,
            events_processed: 31_838,
        };

    let report = ObsReport {
        bench: "obs_profile".to_string(),
        profiles,
        golden,
    };
    // The vendored serde has no JSON parser, so the schema check inspects
    // the serialization tree in-process before it is rendered to disk.
    let tree = report.to_json();
    if let Err(e) = validate_obs_schema(&tree) {
        eprintln!("error: BENCH_obs.json schema check failed: {e}");
        return 1;
    }
    eprintln!("BENCH_obs.json schema OK");
    let json = to_json(&tree);
    if let Err(e) = std::fs::write(out_path, &json) {
        eprintln!("error: cannot write {out_path}: {e}");
        return 2;
    }
    println!("{json}");
    eprintln!("wrote {out_path}");
    if !report.golden.matches {
        eprintln!("error: enabling observability perturbed the golden run");
        return 1;
    }
    if !pin_holds {
        eprintln!("error: 100-node golden pin no longer holds (obs off)");
        return 1;
    }
    if !ratio_gate_ok {
        eprintln!(
            "error: 100-node steady-state wasted-poke ratio exceeded {:.0}% \
             or the scheduler suppressed nothing",
            100.0 * WASTED_RATE_CEILING
        );
        return 1;
    }
    0
}

/// Structural schema check for the `--obs` report tree.
fn validate_obs_schema(tree: &Json) -> Result<(), String> {
    let obj = as_object(tree, "report")?;
    field(obj, "bench").and_then(|v| match v {
        Json::Str(_) => Ok(()),
        _ => Err("report.bench must be a string".to_string()),
    })?;
    let profiles = match field(obj, "profiles")? {
        Json::Array(items) => items,
        _ => return Err("report.profiles must be an array".to_string()),
    };
    for (i, p) in profiles.iter().enumerate() {
        let p = as_object(p, &format!("profiles[{i}]"))?;
        for key in ["nodes", "virtual_secs"] {
            expect_uint(p, key)?;
        }
        let profile = as_object(field(p, "profile")?, &format!("profiles[{i}].profile"))?;
        for key in [
            "total_pokes",
            "total_wasted_pokes",
            "total_suppressed_pokes",
        ] {
            expect_uint(profile, key)?;
        }
        expect_number(profile, "wasted_rate")?;
        let rules = match field(profile, "rules")? {
            Json::Array(items) => items,
            _ => return Err("profile.rules must be an array".to_string()),
        };
        for r in rules {
            let r = as_object(r, "rule profile")?;
            match field(r, "rule")? {
                Json::Str(_) => {}
                _ => return Err("rule profile .rule must be a string".to_string()),
            }
            expect_uint(r, "pokes")?;
            expect_uint(r, "wasted_pokes")?;
            expect_uint(r, "suppressed_pokes")?;
            expect_number(r, "wasted_rate")?;
        }
        for bucket in ["refresh_transparent", "other_rules"] {
            let b = as_object(field(profile, bucket)?, bucket)?;
            expect_uint(b, "rules")?;
            expect_uint(b, "pokes")?;
            expect_uint(b, "wasted_pokes")?;
            expect_uint(b, "suppressed_pokes")?;
            expect_number(b, "wasted_rate")?;
        }
    }
    let golden = as_object(field(obj, "golden")?, "golden")?;
    for pin in ["obs_off", "obs_on"] {
        let p = as_object(field(golden, pin)?, pin)?;
        for key in [
            "messages_sent",
            "messages_delivered",
            "messages_dropped",
            "bytes_sent",
            "events_processed",
        ] {
            expect_uint(p, key)?;
        }
    }
    match field(golden, "matches")? {
        Json::Bool(_) => Ok(()),
        _ => Err("golden.matches must be a bool".to_string()),
    }
}

fn as_object<'a>(v: &'a Json, what: &str) -> Result<&'a [(String, Json)], String> {
    match v {
        Json::Object(fields) => Ok(fields),
        _ => Err(format!("{what} must be an object")),
    }
}

fn field<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing key {key:?}"))
}

fn expect_uint(obj: &[(String, Json)], key: &str) -> Result<(), String> {
    match field(obj, key)? {
        Json::UInt(_) | Json::Int(_) => Ok(()),
        _ => Err(format!("key {key:?} must be an integer")),
    }
}

fn expect_number(obj: &[(String, Json)], key: &str) -> Result<(), String> {
    match field(obj, key)? {
        Json::UInt(_) | Json::Int(_) | Json::Float(_) => Ok(()),
        _ => Err(format!("key {key:?} must be a number")),
    }
}

fn run_par_mode(out_path: &str, smoke: bool, sizes: &[usize], workers: &[usize]) -> i32 {
    let (warmup_secs, measure_secs) = if smoke { (60, 10) } else { (300, 30) };
    let machine_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut scaling = Vec::new();
    for &n in sizes {
        let mut row: Vec<ParResult> = Vec::new();
        for &w in workers {
            eprintln!("parsim chord ring: {n} nodes, {w} workers...");
            let mut r = bench_par(n, w, warmup_secs, measure_secs);
            let base = row
                .iter()
                .find(|r| r.workers == 1)
                .map(|r| r.events_per_sec);
            r.speedup_vs_1_worker = match base {
                Some(b) if b > 0.0 => r.events_per_sec / b,
                _ => 1.0,
            };
            eprintln!(
                "  ring {:.2}, {} events in {:.3} s -> {:>10.0} events/s \
                 (speedup {:.2}x, {} sync rounds)",
                r.ring_correctness,
                r.events,
                r.wall_secs,
                r.events_per_sec,
                r.speedup_vs_1_worker,
                r.sync_rounds
            );
            row.push(r);
        }
        scaling.push(row);
    }

    let gate_nodes = if smoke { 16 } else { 64 };
    eprintln!("golden gate: {gate_nodes}-node ring, sequential vs 2 workers...");
    let gate = golden_gate(gate_nodes, 2, if smoke { 60 } else { 120 });
    eprintln!(
        "  sequential {:?} vs parallel {:?} -> {}",
        gate.sequential,
        gate.parallel,
        if gate.matches { "MATCH" } else { "DIVERGED" }
    );

    let matches = gate.matches;
    let report = ParReport {
        bench: "parsim_scaling".to_string(),
        machine_cores,
        scaling,
        golden_gate: gate,
    };
    let json = to_json(&report);
    if let Err(e) = std::fs::write(out_path, &json) {
        eprintln!("error: cannot write {out_path}: {e}");
        return 2;
    }
    println!("{json}");
    eprintln!("wrote {out_path}");
    if !matches {
        eprintln!("error: parallel golden run diverged from the sequential pin");
        return 1;
    }
    0
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };

    let smoke = flag("--smoke");
    let par = flag("--par");
    let obs = flag("--obs");
    let view_gate_only = flag("--view-gate");
    let sched_gate_only = flag("--sched-gate");
    let out_path = value("--out").unwrap_or_else(|| {
        if par {
            "BENCH_parsim.json".to_string()
        } else if obs {
            "BENCH_obs.json".to_string()
        } else {
            "BENCH_sim.json".to_string()
        }
    });
    let sizes: Vec<usize> = match value("--sizes") {
        Some(s) => s.split(',').filter_map(|x| x.trim().parse().ok()).collect(),
        None if smoke => vec![16],
        None if par => vec![500, 2000],
        None => vec![100, 500, 2000],
    };
    // Simultaneous joins need more stabilization time than the paper's
    // staggered bring-up: ~300 virtual seconds forms a fully correct ring.
    let (warmup_secs, measure_secs) = if smoke { (60, 10) } else { (300, 30) };

    // Gate-only mode (the CI smoke step): run the incrementalization
    // equivalence gate and exit, writing no report.
    if view_gate_only {
        let gate_nodes = if smoke { 16 } else { 64 };
        eprintln!("view gate: {gate_nodes}-node ring, incremental vs rescanning plans...");
        let gate = view_gate(gate_nodes, if smoke { 60 } else { 120 });
        eprintln!(
            "  {} materialized views; on {:?} ({} full scans) vs off {:?} ({} full scans) -> {}",
            gate.mat_view_count,
            gate.views_on,
            gate.views_on_full_scans,
            gate.views_off,
            gate.views_off_full_scans,
            if gate.matches { "MATCH" } else { "DIVERGED" }
        );
        if !gate.matches {
            eprintln!("error: view-materialized run diverged from the rescanning run");
            std::process::exit(1);
        }
        std::process::exit(0);
    }

    // Gate-only mode (the CI smoke step): run the delta-scheduling
    // equivalence gate and exit, writing no report.
    if sched_gate_only {
        let gate_nodes = if smoke { 16 } else { 64 };
        eprintln!("sched gate: {gate_nodes}-node ring, delta scheduler on vs off...");
        let gate = sched_gate(gate_nodes, if smoke { 60 } else { 120 });
        eprintln!(
            "  {} static masks, {} suppressed pokes; on {:?} vs off {:?}; \
             state {}, cycle {}, lookups {} -> {}",
            gate.refresh_mask_count,
            gate.suppressed_pokes,
            gate.scheduled,
            gate.unscheduled,
            gate.state_matches,
            gate.single_cycle_agrees,
            gate.lookups_match,
            if gate.matches { "MATCH" } else { "DIVERGED" }
        );
        if !gate.matches {
            eprintln!("error: delta-scheduled run diverged from the poke-everything run");
            std::process::exit(1);
        }
        std::process::exit(0);
    }

    // Fail on an unwritable output path up front, not after minutes of
    // measurement.
    if let Err(e) = std::fs::write(&out_path, "{}") {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(2);
    }

    if par {
        let workers: Vec<usize> = match value("--workers") {
            Some(s) => s.split(',').filter_map(|x| x.trim().parse().ok()).collect(),
            None if smoke => vec![1, 2],
            None => vec![1, 2, 4, 8],
        };
        std::process::exit(run_par_mode(&out_path, smoke, &sizes, &workers));
    }

    if obs {
        std::process::exit(run_obs_mode(&out_path, smoke, &sizes));
    }

    let mut toy_event_loop = Vec::new();
    for &n in &sizes {
        eprintln!("toy event loop: {n} nodes...");
        let r = bench_toy(n, if smoke { 30 } else { 120 });
        eprintln!(
            "  {} events in {:.3} s -> {:>9.1} ns/event ({:>12.0} events/s)",
            r.events, r.wall_secs, r.ns_per_event, r.events_per_sec
        );
        toy_event_loop.push(r);
    }

    let mut chord_rings = Vec::new();
    for &n in &sizes {
        eprintln!("chord ring: {n} nodes (batched bring-up, warmup {warmup_secs} s)...");
        let r = bench_chord(n, warmup_secs, measure_secs);
        eprintln!(
            "  bring-up {:.2} s wall, ring {:.2}, {} events in {:.3} s -> {:>12.0} events/s \
             ({:>8.0} msgs/virtual-s; generic plan {:>12.0} events/s, fused {:.2}x; \
             rescanning plan {:>12.0} events/s, views {:.2}x; \
             poke-everything plan {:>12.0} events/s, sched {:.2}x, {} suppressed; \
             full scans/event {:.4} vs {:.4})",
            r.build_wall_secs,
            r.ring_correctness,
            r.events,
            r.wall_secs,
            r.events_per_sec,
            r.messages_per_virtual_sec,
            r.generic_events_per_sec,
            r.fused_speedup,
            r.views_off_events_per_sec,
            r.views_speedup,
            r.sched_off_events_per_sec,
            r.sched_speedup,
            r.suppressed_pokes,
            r.full_scans_per_event,
            r.views_off_full_scans_per_event
        );
        chord_rings.push(r);
    }

    // Join-time successor seeding: bring-up delta at moderate sizes (the
    // seeded and base rings are each built once; 2000-node doubles would
    // dominate the whole benchmark run).
    let mut join_seed_bring_up = Vec::new();
    let seed_sizes: Vec<usize> = {
        let mut s: Vec<usize> = sizes.iter().copied().filter(|&n| n <= 500).collect();
        if s.is_empty() {
            s.push(100);
        }
        s
    };
    for &n in &seed_sizes {
        eprintln!("join-seed bring-up: {n} nodes (base vs JS1)...");
        let r = bench_join_seed(n, warmup_secs);
        eprintln!(
            "  base {:.0} virtual s -> seeded {:.0} virtual s (delta {:+.0} s, rings {:.2}/{:.2})",
            r.base_bring_up_virtual_secs,
            r.seeded_bring_up_virtual_secs,
            r.delta_virtual_secs,
            r.base_ring_correctness,
            r.seeded_ring_correctness
        );
        join_seed_bring_up.push(r);
    }

    let gate_nodes = if smoke { 16 } else { 64 };
    eprintln!("strand gate: {gate_nodes}-node ring, fused vs generic plans...");
    let gate = strand_gate(gate_nodes, if smoke { 60 } else { 120 });
    eprintln!(
        "  {} fused strands; fused {:?} vs generic {:?} -> {}",
        gate.fused_strand_count,
        gate.fused,
        gate.generic,
        if gate.matches { "MATCH" } else { "DIVERGED" }
    );
    let strands_match = gate.matches;

    eprintln!("view gate: {gate_nodes}-node ring, incremental vs rescanning plans...");
    let vgate = view_gate(gate_nodes, if smoke { 60 } else { 120 });
    eprintln!(
        "  {} materialized views; on {:?} ({} full scans) vs off {:?} ({} full scans) -> {}",
        vgate.mat_view_count,
        vgate.views_on,
        vgate.views_on_full_scans,
        vgate.views_off,
        vgate.views_off_full_scans,
        if vgate.matches { "MATCH" } else { "DIVERGED" }
    );
    let views_match = vgate.matches;

    eprintln!("sched gate: {gate_nodes}-node ring, delta scheduler on vs off...");
    let sgate = sched_gate(gate_nodes, if smoke { 60 } else { 120 });
    eprintln!(
        "  {} static masks, {} suppressed pokes; on {:?} vs off {:?}; \
         state {}, cycle {}, lookups {} -> {}",
        sgate.refresh_mask_count,
        sgate.suppressed_pokes,
        sgate.scheduled,
        sgate.unscheduled,
        sgate.state_matches,
        sgate.single_cycle_agrees,
        sgate.lookups_match,
        if sgate.matches { "MATCH" } else { "DIVERGED" }
    );
    let sched_matches = sgate.matches;

    let report = BenchReport {
        bench: "sim_event_loop".to_string(),
        toy_event_loop,
        chord_rings,
        join_seed_bring_up,
        strand_gate: gate,
        view_gate: vgate,
        sched_gate: sgate,
    };
    let json = to_json(&report);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(2);
    }
    println!("{json}");
    eprintln!("wrote {out_path}");
    if !strands_match {
        eprintln!("error: strand-compiled run diverged from the generic-plan run");
        std::process::exit(1);
    }
    if !views_match {
        eprintln!("error: view-materialized run diverged from the rescanning run");
        std::process::exit(1);
    }
    if !sched_matches {
        eprintln!("error: delta-scheduled run diverged from the poke-everything run");
        std::process::exit(1);
    }
}
