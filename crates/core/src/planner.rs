//! The OverLog planner: compiles a validated program into a *shared*,
//! node-independent plan, then stamps out per-node dataflow engines from it.
//!
//! The translation follows §3.5 of the paper. Every rule becomes one or more
//! *strands*; a strand is a chain of elements
//!
//! ```text
//! trigger ─ Select ─ Join* ─ AntiJoin* ─ Project(assign)* ─ Select(cond)
//!         ─ [AggProbe] ─ Project(head) ─ NetOut ─┐
//!                                                └── local wrap → Demux
//! ```
//!
//! where the trigger is a `periodic` timer element, the arrival of a stream
//! tuple (via the node's main demultiplexer) or the insertion delta of a
//! materialized table. Rules whose body consists solely of a table and whose
//! head aggregates over it become materialized [`TableAgg`] watchers instead.
//!
//! # Incremental lowering
//!
//! With [`PlanConfig::materialize_views`] (the default), two further shapes
//! leave the rescanning translation:
//!
//! * A non-delete rule whose every body predicate is a stored table, with
//!   pure programs and no probe or anti-join of a trigger table, lowers to
//!   **one [`MatView`] element** instead of per-trigger strands: port `k`
//!   carries the insert pokes of trigger table `k` (emission stays
//!   poke-driven and bit-identical to the strands it replaces, including on
//!   soft-state refreshes), while the view maintains provenance counts of
//!   the derivable head rows from the tables' delta streams and emits exact
//!   retractions on the port past the triggers (left unwired in the shipped
//!   plan).
//! * An in-strand [`AggProbe`] whose filter and aggregate programs are pure
//!   becomes **delta-fed**: per-event-class contribution state maintained
//!   from the table's delta stream replaces the counted full scan per
//!   event, with a scan-identical rebuild fallback on delta-log overflow.
//!
//! Both consume pooled per-table [`DeltaSubscription`]s created in
//! [`PlannedProgram::instantiate`]. [`PlanConfig::without_views`] is the
//! escape hatch back to the rescanning translation; the `view_gate` in
//! `sim_bench` pins both translations to identical event streams.
//!
//! # Delta-driven scheduling
//!
//! With [`PlanConfig::delta_schedule`] (the default), the planner also
//! compiles a per-element **refresh suppression mask** consumed by the
//! engine's router. The table layer tags each Insert-element poke with a
//! [`p2_table::DeltaKind`]: `Assert` for genuinely new or replaced rows,
//! `Refresh` for keyed soft-state re-inserts that left the table's rows
//! unchanged (`InsertOutcome::Refreshed`, which logs *no* delta). The mask
//! marks the entry element of every table-delta-triggered strand whose rule
//! the whole-program analyzer classified `refresh_transparent` and whose
//! head is *transitively* TTL-neutral — the skipped re-derivation cascade
//! provably sustains no soft state anywhere downstream; see
//! [`Builder::refresh_neutral_preds`] for the fixpoint and
//! [`Builder::mask_refresh_entry`] for the soundness argument and the
//! deliberate exclusion of delta-fed consumers. Engines drop
//! `Refresh` pokes into masked elements at routing time, and additionally
//! consult `Element::would_wake` before invoking any element, letting
//! strands, table aggregates, and views veto pokes that provably produce no
//! emission, send, or state change. [`PlanConfig::without_scheduling`]
//! restores the poke-everything behaviour bit-for-bit (the historical
//! golden pins run with it); the `sched_gate` in `sim_bench` pins both
//! modes to identical final ring state.
//!
//! # Shared plans
//!
//! Planning is split in two:
//!
//! * [`PlannedProgram::compile`] runs the whole §3.5 translation **once per
//!   program**: rule analysis, variable layout, PEL compilation, element
//!   naming and edge wiring. The result is immutable and node-independent —
//!   element *specs* instead of element instances, table specs instead of
//!   tables, and a prebuilt shared demux classifier map.
//! * [`PlannedProgram::instantiate`] stamps out one node's engine from the
//!   shared plan: fresh tables, fresh (stateful) elements parameterized by
//!   the shared compiled artifacts (PEL byte-code is `Arc`-shared, the demux
//!   map is one allocation program-wide), and the precompiled edge list.
//!
//! A thousand-node simulation therefore pays the expensive translation once
//! instead of a thousand times, and the per-node resident footprint shrinks
//! to the genuinely per-node state (tables, element scratch, engine queue).
//! [`plan`] remains as the one-shot convenience wrapper (compile +
//! instantiate) for single-node uses.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

use p2_dataflow::elements::{
    AggProbe, AntiJoin, Collector, CollectorHandle, Delete, Demux, FusedStrand, Insert, Join,
    MatView, NetOut, Pad, Periodic, Project, Select, StrandOp, TableAgg, ViewInput,
};
use p2_dataflow::{Element, Engine, Graph, Route};
use p2_obs::{ElemKind, ElemMeta, ObsMeta, RuleClassBits};
use p2_overlog::{
    analyze, AggSpec, BodyTerm, Expr as OExpr, HeadArg, Predicate, Program, Rule, RuleClass,
    SizeBound,
};
use p2_pel::{BinOp, Expr as PExpr, Program as PelProgram};
use p2_table::{AggFunc, Catalog, DeltaSubscription, TableSpec};
use p2_value::Value;

use crate::binding::Layout;
use crate::error::PlanError;

/// Options controlling how a program is planned for one node.
#[derive(Debug, Clone)]
pub struct PlanOptions {
    /// The node's network address.
    pub local_addr: String,
    /// Seed for the node's deterministic RNG.
    pub seed: u64,
    /// Tuple names to attach observation taps to (results are available via
    /// [`Planned::collectors`]).
    pub watches: Vec<String>,
    /// Whether `periodic` sources start at a random phase within their
    /// period (recommended for simulations; disable for deterministic unit
    /// tests).
    pub jitter_periodics: bool,
    /// Whether eligible rule chains are compiled into fused strand
    /// elements (see [`PlanConfig::fuse_strands`]).
    pub fuse_strands: bool,
    /// Whether pure-join table rules are lowered to incrementally
    /// maintained view elements and aggregation probes run delta-fed
    /// (see [`PlanConfig::materialize_views`]).
    pub materialize_views: bool,
    /// Whether delta-driven rule scheduling is enabled: refresh-kind
    /// pokes are suppressed into refresh-transparent rule strands and
    /// elements may veto provably no-op invocations
    /// (see [`PlanConfig::delta_schedule`]).
    pub delta_schedule: bool,
}

impl PlanOptions {
    /// Creates options for a node with the given address and seed.
    pub fn new(local_addr: impl Into<String>, seed: u64) -> PlanOptions {
        PlanOptions {
            local_addr: local_addr.into(),
            seed,
            watches: Vec::new(),
            jitter_periodics: true,
            fuse_strands: true,
            materialize_views: true,
            delta_schedule: true,
        }
    }

    /// Adds a watched tuple name.
    pub fn watch(mut self, name: impl Into<String>) -> PlanOptions {
        self.watches.push(name.into());
        self
    }

    /// Disables periodic phase jitter.
    pub fn without_jitter(mut self) -> PlanOptions {
        self.jitter_periodics = false;
        self
    }

    /// Disables rule-strand fusion (every rule uses the generic element
    /// chain).
    pub fn without_fusion(mut self) -> PlanOptions {
        self.fuse_strands = false;
        self
    }

    /// Disables materialized views and delta-fed aggregation probes
    /// (everything recomputes by scanning, the pre-incremental behaviour).
    pub fn without_views(mut self) -> PlanOptions {
        self.materialize_views = false;
        self
    }

    /// Disables delta-driven rule scheduling (every delta pokes every
    /// downstream strand, the pre-scheduling behaviour).
    pub fn without_scheduling(mut self) -> PlanOptions {
        self.delta_schedule = false;
        self
    }
}

/// Node-independent planning configuration: everything [`PlanOptions`]
/// carries except the per-node address and seed.
#[derive(Debug, Clone)]
pub struct PlanConfig {
    /// Tuple names to attach observation taps to.
    pub watches: Vec<String>,
    /// Whether `periodic` sources start at a random phase.
    pub jitter_periodics: bool,
    /// Whether eligible rule chains (at most one table join, no
    /// aggregation probe, no RNG builtins) are fused into a single
    /// [`FusedStrand`] element followed by schedule-preserving pads,
    /// instead of the generic element chain. On by default; the generic
    /// graph remains the fallback for every other shape, and
    /// [`PlanConfig::without_fusion`] forces it everywhere (used by the
    /// strand-equivalence gates).
    pub fuse_strands: bool,
    /// Whether the plan is lowered incrementally: pure-join table rules
    /// become [`MatView`] elements maintained from their trigger tables'
    /// delta streams, and eligible aggregation probes run delta-fed
    /// ([`AggProbe::with_subscription`]) instead of rescanning per event.
    /// On by default; [`PlanConfig::without_views`] restores the
    /// recompute-everything lowering (used by the view-equivalence gate
    /// and as the escape hatch if a maintenance bug surfaces).
    pub materialize_views: bool,
    /// Whether delta-driven rule scheduling is enabled. When on, the
    /// planner compiles a per-element *refresh suppression mask*: the
    /// entry element of every table-delta-triggered strand whose rule is
    /// `refresh_transparent` (per the whole-program analyzer) and whose
    /// head is transitively TTL-neutral (the skipped re-derivation
    /// cascade sustains no soft state) is marked, and engines drop
    /// [`p2_table::DeltaKind::Refresh`] pokes into marked elements at
    /// routing time. Engines additionally ask elements
    /// (`Element::would_wake`) to veto pokes that provably produce no
    /// emission, send, or state change. On by default;
    /// [`PlanConfig::without_scheduling`] restores the poke-everything
    /// behaviour bit-for-bit (used by the scheduling-equivalence gate and
    /// the historical golden pins).
    pub delta_schedule: bool,
}

impl Default for PlanConfig {
    fn default() -> PlanConfig {
        PlanConfig {
            watches: Vec::new(),
            jitter_periodics: false,
            fuse_strands: true,
            materialize_views: true,
            delta_schedule: true,
        }
    }
}

impl PlanConfig {
    /// Creates a config with jitter, strand fusion, view materialization,
    /// and delta scheduling enabled, no watches.
    pub fn new() -> PlanConfig {
        PlanConfig {
            watches: Vec::new(),
            jitter_periodics: true,
            fuse_strands: true,
            materialize_views: true,
            delta_schedule: true,
        }
    }

    /// Adds a watched tuple name.
    pub fn watch(mut self, name: impl Into<String>) -> PlanConfig {
        self.watches.push(name.into());
        self
    }

    /// Disables periodic phase jitter.
    pub fn without_jitter(mut self) -> PlanConfig {
        self.jitter_periodics = false;
        self
    }

    /// Disables rule-strand fusion.
    pub fn without_fusion(mut self) -> PlanConfig {
        self.fuse_strands = false;
        self
    }

    /// Disables materialized views and delta-fed aggregation probes.
    pub fn without_views(mut self) -> PlanConfig {
        self.materialize_views = false;
        self
    }

    /// Disables delta-driven rule scheduling.
    pub fn without_scheduling(mut self) -> PlanConfig {
        self.delta_schedule = false;
        self
    }
}

/// The result of planning: a ready-to-run engine plus handles to its state.
pub struct Planned {
    /// The node's dataflow engine.
    pub engine: Engine,
    /// The node's materialized tables.
    pub catalog: Catalog,
    /// Observation buffers for each watched tuple name.
    pub collectors: HashMap<String, CollectorHandle>,
}

/// Plans a validated OverLog program into a per-node dataflow engine
/// (compile + instantiate in one step; multi-node callers should compile a
/// [`PlannedProgram`] once and instantiate it per node).
pub fn plan(program: &Program, opts: &PlanOptions) -> Result<Planned, PlanError> {
    let config = PlanConfig {
        watches: opts.watches.clone(),
        jitter_periodics: opts.jitter_periodics,
        fuse_strands: opts.fuse_strands,
        materialize_views: opts.materialize_views,
        delta_schedule: opts.delta_schedule,
    };
    let planned = PlannedProgram::compile(program, &config)?;
    Ok(planned.instantiate(opts.local_addr.clone(), opts.seed))
}

/// A node-independent element description; instantiation turns it into a
/// stateful element bound to the node's tables.
enum ElementSpec {
    /// The node's main demultiplexer, over the program-wide shared map.
    Demux,
    /// Insert bridge into table `table` (index into the plan's table list).
    Insert { table: usize },
    /// Delete bridge into table `table`.
    Delete { table: usize },
    /// Stream × table equijoin.
    Join {
        table: usize,
        key: Vec<(usize, usize)>,
        out_name: Arc<str>,
    },
    /// Stream × table anti-join.
    AntiJoin {
        table: usize,
        key: Vec<(usize, usize)>,
    },
    /// PEL selection.
    Select { filter: PelProgram },
    /// PEL projection.
    Project {
        out_name: Arc<str>,
        fields: Vec<PelProgram>,
    },
    /// Per-event aggregation probe over a table. `incremental` probes are
    /// fed from a pooled delta subscription and keep per-group aggregate
    /// state alive across events instead of rescanning; it is set only
    /// when the plan materializes views and the programs are pure
    /// (`AggProbe::can_increment`).
    AggProbe {
        table: usize,
        table_arity: usize,
        func: AggFunc,
        filter: Option<PelProgram>,
        agg_expr: PelProgram,
        out_name: Arc<str>,
        incremental: bool,
    },
    /// Materialized aggregate watcher over a table.
    TableAgg {
        table: usize,
        func: AggFunc,
        agg_col: Option<usize>,
        group_cols: Vec<usize>,
        out_name: Arc<str>,
    },
    /// A whole fused rule strand: trigger filters, join probes, anti-joins,
    /// assignments, conditions, and the head projection in one element (see
    /// `p2_dataflow::elements::FusedStrand`).
    Strand {
        pre_filters: Vec<PelProgram>,
        ops: Vec<StrandOpSpec>,
        head_fields: Vec<PelProgram>,
        out_name: Arc<str>,
    },
    /// Schedule-preserving forwarder keeping a fused strand's (or view's)
    /// outputs at the BFS level of the generic chain it replaced.
    Pad,
    /// A materialized join view: one input per trigger table of a
    /// pure-join rule, poked on port `k` by inserts into `inputs[k]`'s
    /// table, maintained incrementally from every input's delta stream
    /// (see `p2_dataflow::elements::MatView`). The retraction port
    /// (`inputs.len()`) is deliberately left unwired.
    MatView {
        inputs: Vec<ViewInputSpec>,
        out_name: Arc<str>,
    },
    /// `periodic` timer source.
    Periodic {
        period: f64,
        count: Option<u64>,
        period_value: Value,
        extra_args: Vec<Value>,
    },
    /// Network egress reading the destination from `dest_field`.
    NetOut { dest_field: usize },
    /// Observation tap for a watched tuple name.
    Collector { watch: String },
}

impl ElementSpec {
    /// The element-kind mirror the profiler reports under.
    fn obs_kind(&self) -> ElemKind {
        match self {
            ElementSpec::Demux => ElemKind::Demux,
            ElementSpec::Insert { .. } => ElemKind::Insert,
            ElementSpec::Delete { .. } => ElemKind::Delete,
            ElementSpec::Join { .. } => ElemKind::Join,
            ElementSpec::AntiJoin { .. } => ElemKind::AntiJoin,
            ElementSpec::Select { .. } => ElemKind::Select,
            ElementSpec::Project { .. } => ElemKind::Project,
            ElementSpec::AggProbe { .. } => ElemKind::AggProbe,
            ElementSpec::TableAgg { .. } => ElemKind::TableAgg,
            ElementSpec::Strand { .. } => ElemKind::Strand,
            ElementSpec::Pad => ElemKind::Pad,
            ElementSpec::MatView { .. } => ElemKind::MatView,
            ElementSpec::Periodic { .. } => ElemKind::Periodic,
            ElementSpec::NetOut { .. } => ElemKind::NetOut,
            ElementSpec::Collector { .. } => ElemKind::Collector,
        }
    }
}

/// Mirrors the analyzer's [`RuleClass`] into the runtime-facing
/// [`RuleClassBits`] (the obs crate must not depend on the frontend).
fn class_bits(c: RuleClass) -> RuleClassBits {
    RuleClassBits {
        deterministic: c.deterministic,
        pure: c.pure,
        monotone: c.monotone,
        refresh_transparent: c.refresh_transparent,
    }
}

/// One trigger input of a planned materialized view: the strand that
/// derives head rows from that trigger's bindings, in spec form.
struct ViewInputSpec {
    table: usize,
    pre_filters: Vec<PelProgram>,
    ops: Vec<StrandOpSpec>,
    head_fields: Vec<PelProgram>,
}

/// One operation of a planned fused strand, in chain order.
enum StrandOpSpec {
    Filter(PelProgram),
    Probe {
        table: usize,
        key: Vec<(usize, usize)>,
    },
    AntiJoin {
        table: usize,
        key: Vec<(usize, usize)>,
    },
    Assign(PelProgram),
}

/// One field of a program fact, resolved at compile time.
enum FactField {
    /// A constant value.
    Const(Value),
    /// The fact's location variable: bound to the node's address at
    /// instantiation.
    LocalAddr,
}

/// A program fact with its location variable resolved.
struct FactTemplate {
    name: String,
    fields: Vec<FactField>,
}

/// A table declaration plus the secondary indices the plan's probes need.
struct TablePlan {
    spec: TableSpec,
    extra_indexes: Vec<Vec<usize>>,
}

/// An immutable, node-independent compilation of an OverLog program: the
/// element graph as *specs*, the edge list, table declarations, and the
/// program facts. Build once with [`PlannedProgram::compile`], then stamp
/// out per-node engines with [`PlannedProgram::instantiate`].
pub struct PlannedProgram {
    specs: Vec<ElementSpec>,
    names: Vec<Arc<str>>,
    edges: Vec<(usize, usize, Route)>,
    entry: Route,
    demux_map: Arc<HashMap<Arc<str>, usize>>,
    demux_default: usize,
    tables: Vec<TablePlan>,
    facts: Vec<FactTemplate>,
    jitter_periodics: bool,
    fused_strands: usize,
    mat_views: usize,
    /// Whether instantiated engines run with delta-driven scheduling on.
    delta_schedule: bool,
    /// Per-element refresh suppression mask, parallel to `specs`:
    /// `refresh_masks[i]` means element `i` is the entry of a
    /// table-delta-triggered strand whose rule is refresh-transparent
    /// with a TTL-neutral head, so `DeltaKind::Refresh` pokes into it
    /// may be dropped at routing time. Compiled unconditionally (it is
    /// one cheap `Vec<bool>`), consumed only when `delta_schedule` is on.
    refresh_masks: Vec<bool>,
    /// Per-element observability metadata (rule id, kind, rule class),
    /// parallel to `specs`. Built unconditionally at compile time — it is
    /// one small shared allocation — and consumed only by engines that
    /// enable observability, so plan identity and instantiation behaviour
    /// are unaffected.
    obs: Arc<ObsMeta>,
}

// Compile-time audit: the shared plan is handed out as `&'static` from
// per-process caches and read concurrently by every worker thread of the
// parallel simulator while nodes are stamped out, so it must stay
// `Send + Sync`; instantiated nodes must stay `Send` so they can live on
// (and move between) worker shards.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_send_sync::<PlannedProgram>();
    assert_send::<crate::P2Node>();
};

impl PlannedProgram {
    /// Runs the full §3.5 translation once, producing a shareable plan.
    pub fn compile(program: &Program, config: &PlanConfig) -> Result<PlannedProgram, PlanError> {
        Builder::new(program, config)?.build()
    }

    /// Number of elements in the planned graph.
    pub fn element_count(&self) -> usize {
        self.specs.len()
    }

    /// Number of edges in the planned graph.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of rule strands compiled into fused single-call elements
    /// (zero when fusion is disabled or no rule shape qualified).
    pub fn fused_strand_count(&self) -> usize {
        self.fused_strands
    }

    /// Number of rules lowered to incrementally maintained view elements
    /// (zero when view materialization is disabled or no rule qualified).
    pub fn mat_view_count(&self) -> usize {
        self.mat_views
    }

    /// Whether engines instantiated from this plan run with delta-driven
    /// scheduling enabled.
    pub fn delta_scheduled(&self) -> bool {
        self.delta_schedule
    }

    /// Number of strand entry elements carrying a refresh suppression
    /// mask (zero only if no table-delta-triggered rule qualified).
    pub fn refresh_mask_count(&self) -> usize {
        self.refresh_masks.iter().filter(|&&m| m).count()
    }

    /// Per-element observability metadata: entry `i` describes element `i`
    /// of every engine instantiated from this plan. Hand it to
    /// `Engine::enable_obs` to turn on the rule-level profiler.
    pub fn obs_meta(&self) -> Arc<ObsMeta> {
        self.obs.clone()
    }

    /// The resolved program facts, as tuples for a node at `addr`.
    pub fn facts_for(&self, addr: &str) -> Vec<p2_value::Tuple> {
        self.facts
            .iter()
            .map(|f| {
                let values = f
                    .fields
                    .iter()
                    .map(|field| match field {
                        FactField::Const(v) => v.clone(),
                        FactField::LocalAddr => Value::str(addr),
                    })
                    .collect();
                p2_value::Tuple::new(&f.name, values)
            })
            .collect()
    }

    /// Whether the plan declares `name` as a materialized table.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.iter().any(|t| t.spec.name == name)
    }

    /// Stamps out one node's engine, catalog, and collectors from the shared
    /// plan. Cheap relative to [`PlannedProgram::compile`]: no rule
    /// analysis, no PEL compilation, no string formatting — just element
    /// construction over `Arc`-shared artifacts.
    pub fn instantiate(&self, local_addr: impl Into<String>, seed: u64) -> Planned {
        let mut catalog = Catalog::new();
        let mut refs = Vec::with_capacity(self.tables.len());
        for tp in &self.tables {
            let table = catalog.declare(tp.spec.clone());
            for idx in &tp.extra_indexes {
                table.lock().add_index(idx.clone());
            }
            refs.push(table);
        }

        // Delta-subscription pooling: count the subscriptions every
        // delta-fed consumer (TableAgg, incremental AggProbe, MatView
        // input) needs per table, then create them table-by-table under a
        // single lock each instead of re-locking per element.
        let mut sub_counts = vec![0usize; self.tables.len()];
        for spec in &self.specs {
            match spec {
                ElementSpec::TableAgg { table, .. } => sub_counts[*table] += 1,
                ElementSpec::AggProbe {
                    table,
                    incremental: true,
                    ..
                } => sub_counts[*table] += 1,
                ElementSpec::MatView { inputs, .. } => {
                    for input in inputs {
                        sub_counts[input.table] += 1;
                    }
                }
                _ => {}
            }
        }
        let mut sub_pools: Vec<std::collections::VecDeque<DeltaSubscription>> = sub_counts
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                if n == 0 {
                    return std::collections::VecDeque::new();
                }
                let mut guard = refs[i].lock();
                (0..n).map(|_| guard.subscribe_deltas()).collect()
            })
            .collect();
        let mut take_sub = |table: usize| {
            sub_pools[table]
                .pop_front()
                .expect("pool sized by the counting pass above")
        };

        let lower_op = |op: &StrandOpSpec| match op {
            StrandOpSpec::Filter(p) => StrandOp::Filter(p.clone()),
            StrandOpSpec::Probe { table, key } => {
                FusedStrand::probe_op(refs[*table].clone(), key.clone())
            }
            StrandOpSpec::AntiJoin { table, key } => {
                FusedStrand::anti_op(refs[*table].clone(), key.clone())
            }
            StrandOpSpec::Assign(p) => StrandOp::Assign(p.clone()),
        };

        let mut collectors = HashMap::new();
        let mut graph = Graph::new();
        for (spec, name) in self.specs.iter().zip(&self.names) {
            let element: Box<dyn Element> = match spec {
                ElementSpec::Demux => Box::new(Demux::from_shared(
                    self.demux_map.clone(),
                    self.demux_default,
                )),
                ElementSpec::Insert { table } => Box::new(Insert::new(refs[*table].clone())),
                ElementSpec::Delete { table } => Box::new(Delete::new(refs[*table].clone())),
                ElementSpec::Join {
                    table,
                    key,
                    out_name,
                } => Box::new(Join::new(
                    refs[*table].clone(),
                    key.clone(),
                    out_name.to_string(),
                )),
                ElementSpec::AntiJoin { table, key } => {
                    Box::new(AntiJoin::new(refs[*table].clone(), key.clone()))
                }
                ElementSpec::Select { filter } => Box::new(Select::new(filter.clone())),
                ElementSpec::Project { out_name, fields } => {
                    Box::new(Project::new(out_name.to_string(), fields.clone()))
                }
                ElementSpec::AggProbe {
                    table,
                    table_arity,
                    func,
                    filter,
                    agg_expr,
                    out_name,
                    incremental,
                } => {
                    if *incremental {
                        Box::new(AggProbe::with_subscription(
                            refs[*table].clone(),
                            *table_arity,
                            *func,
                            filter.clone(),
                            agg_expr.clone(),
                            out_name.to_string(),
                            take_sub(*table),
                        ))
                    } else {
                        Box::new(AggProbe::new(
                            refs[*table].clone(),
                            *table_arity,
                            *func,
                            filter.clone(),
                            agg_expr.clone(),
                            out_name.to_string(),
                        ))
                    }
                }
                ElementSpec::TableAgg {
                    table,
                    func,
                    agg_col,
                    group_cols,
                    out_name,
                } => Box::new(TableAgg::with_subscription(
                    refs[*table].clone(),
                    *func,
                    *agg_col,
                    group_cols.clone(),
                    out_name.to_string(),
                    take_sub(*table),
                )),
                ElementSpec::Strand {
                    pre_filters,
                    ops,
                    head_fields,
                    out_name,
                } => Box::new(FusedStrand::new(
                    pre_filters.clone(),
                    ops.iter().map(lower_op).collect(),
                    head_fields.clone(),
                    out_name.to_string(),
                )),
                ElementSpec::Pad => Box::new(Pad),
                ElementSpec::MatView { inputs, out_name } => Box::new(MatView::new(
                    inputs
                        .iter()
                        .map(|input| ViewInput {
                            table: refs[input.table].clone(),
                            sub: take_sub(input.table),
                            pre_filters: input.pre_filters.clone(),
                            ops: input.ops.iter().map(lower_op).collect(),
                            head_fields: input.head_fields.clone(),
                        })
                        .collect(),
                    out_name.to_string(),
                )),
                ElementSpec::Periodic {
                    period,
                    count,
                    period_value,
                    extra_args,
                } => {
                    let mut periodic = Periodic::new("periodic", *period, *count)
                        .with_period_value(period_value.clone())
                        .with_extra_args(extra_args.clone());
                    if !self.jitter_periodics {
                        periodic = periodic.without_phase_jitter();
                    }
                    Box::new(periodic)
                }
                ElementSpec::NetOut { dest_field } => Box::new(NetOut::new(*dest_field)),
                ElementSpec::Collector { watch } => {
                    let (collector, handle) = Collector::new();
                    collectors.insert(watch.clone(), handle);
                    Box::new(collector)
                }
            };
            graph.add(name.clone(), element);
        }
        for &(from, out_port, route) in &self.edges {
            graph.connect(from, out_port, route.element, route.port);
        }

        let mut engine = Engine::new(graph, local_addr, seed);
        engine.set_entry(self.entry);
        if self.delta_schedule {
            engine.set_refresh_masks(self.refresh_masks.clone());
            engine.set_scheduling(true);
        }
        Planned {
            engine,
            catalog,
            collectors,
        }
    }
}

enum TriggerSource<'a> {
    /// Arrival of a stream tuple through the main demultiplexer.
    Stream(&'a str),
    /// Insert delta of a materialized table.
    TableDelta(&'a str),
    /// A `periodic` timer, described by the predicate occurrence.
    Periodic(&'a Predicate),
}

struct AggPlan<'a> {
    spec: &'a AggSpec,
    /// The table predicate whose rows are aggregated over, when the rule has
    /// a stream/periodic trigger.
    table: Option<&'a Predicate>,
}

/// One analysed step of a rule strand, before lowering. The stage list is
/// the single source of truth for both translations: the generic element
/// chain (one element per stage) and the fused strand (one element total,
/// padded back to the same chain length so the engine's breadth-first
/// emission schedule — and with it the simulator's golden event stream —
/// is preserved bit-for-bit).
enum Stage {
    /// PEL selection (trigger checks, join checks, or rule conditions).
    Select { label: String, filter: PelProgram },
    /// Stream × table equijoin.
    Join {
        label: String,
        table: usize,
        key: Vec<(usize, usize)>,
        out_name: Arc<str>,
    },
    /// Stream × table anti-join.
    AntiJoin {
        label: String,
        table: usize,
        key: Vec<(usize, usize)>,
    },
    /// Assignment appending one computed field (the generic lowering is a
    /// whole-tuple projection of `prior_len` copies plus the expression).
    Assign {
        label: String,
        out_name: Arc<str>,
        expr: PelProgram,
        prior_len: usize,
    },
    /// Head projection (always the last stage).
    Head {
        label: String,
        out_name: Arc<str>,
        fields: Vec<PelProgram>,
    },
    /// A stage with no fused form (currently only `AggProbe`); its
    /// presence forces the generic lowering.
    Other { label: String, spec: ElementSpec },
}

struct Builder<'a> {
    program: &'a Program,
    config: &'a PlanConfig,
    specs: Vec<ElementSpec>,
    names: Vec<Arc<str>>,
    edges: Vec<(usize, usize, Route)>,
    tables: Vec<TablePlan>,
    table_index: HashMap<String, usize>,
    demux_id: usize,
    demux_names: Vec<String>,
    insert_ids: HashMap<String, usize>,
    /// TableAgg elements per table name, wired to that table's deltas at the
    /// end of planning.
    table_aggs: HashMap<String, Vec<usize>>,
    /// Delete elements per table name (their output also pokes TableAggs).
    delete_ids: HashMap<String, Vec<usize>>,
    /// Number of rule strands compiled into fused elements.
    fused_strands: usize,
    /// Number of rules lowered to materialized view elements.
    mat_views: usize,
    /// Per-rule delta-safety classification from the whole-program
    /// analyzer, parallel to `program.rules`. Fusion, view, and
    /// incremental-aggregate eligibility read from here instead of
    /// re-deriving purity from compiled PEL stages.
    rule_classes: Vec<RuleClass>,
    /// Classification of the rule currently being planned (set by
    /// [`Builder::build`] before each `plan_rule` call).
    current_class: RuleClass,
    /// Id of the rule currently being planned, `None` outside `plan_rule`;
    /// `add` stamps it onto every element so the profiler can attribute
    /// element counters to rules without parsing element names.
    current_rule: Option<Arc<str>>,
    /// Per-element `(rule id, class)` attribution, parallel to `specs`.
    elem_rules: Vec<Option<(Arc<str>, RuleClass)>>,
    /// Element ids eligible for refresh suppression: strand entries
    /// recorded at the `TriggerSource::TableDelta` wiring site (see
    /// [`Builder::mask_refresh_entry`]).
    refresh_entries: Vec<usize>,
    /// Predicates whose refresh-derivation cone provably sustains no soft
    /// state: the greatest fixpoint of [`Builder::refresh_neutral_preds`].
    /// A rule's suppressed re-derivation may starve everything downstream
    /// of its head, so head membership here is the mask precondition.
    refresh_neutral: HashSet<String>,
}

impl<'a> Builder<'a> {
    fn new(program: &'a Program, config: &'a PlanConfig) -> Result<Builder<'a>, PlanError> {
        if program.rules.is_empty() && program.facts.is_empty() {
            return Err(PlanError::program("program has no rules or facts"));
        }

        let mut tables = Vec::new();
        let mut table_index = HashMap::new();
        for m in &program.materializations {
            table_index.insert(m.name.clone(), tables.len());
            tables.push(TablePlan {
                spec: m.to_spec(),
                extra_indexes: Vec::new(),
            });
        }

        // Collect every tuple name the demultiplexer must know about.
        let mut names: BTreeSet<String> = BTreeSet::new();
        for m in &program.materializations {
            names.insert(m.name.clone());
        }
        for f in &program.facts {
            names.insert(f.name.clone());
        }
        for r in &program.rules {
            names.insert(r.head.name.clone());
            for p in r.positive_predicates() {
                if p.name != "periodic" {
                    names.insert(p.name.clone());
                }
            }
        }
        for w in &config.watches {
            names.insert(w.clone());
        }
        let demux_names: Vec<String> = names.into_iter().collect();

        // Whole-program analysis: total (never fails), so planning proceeds
        // even for programs the analyzer has complaints about — the planner
        // only consumes the per-rule classification.
        let rule_classes = analyze::analyze(program).rule_classes;
        let refresh_neutral = Self::refresh_neutral_preds(program, &rule_classes, &demux_names);

        let mut builder = Builder {
            program,
            config,
            specs: Vec::new(),
            names: Vec::new(),
            edges: Vec::new(),
            tables,
            table_index,
            demux_id: 0,
            demux_names,
            insert_ids: HashMap::new(),
            table_aggs: HashMap::new(),
            delete_ids: HashMap::new(),
            fused_strands: 0,
            mat_views: 0,
            rule_classes,
            current_class: RuleClass {
                deterministic: false,
                pure: false,
                monotone: false,
                refresh_transparent: false,
            },
            current_rule: None,
            elem_rules: Vec::new(),
            refresh_entries: Vec::new(),
            refresh_neutral,
        };
        builder.demux_id = builder.add("demux", ElementSpec::Demux);

        // One Insert bridge per materialized table, fed from the demux.
        for m in &program.materializations {
            let table = builder.table_index[&m.name];
            let id = builder.add(format!("insert:{}", m.name), ElementSpec::Insert { table });
            builder.insert_ids.insert(m.name.clone(), id);
            let port = builder.demux_port(&m.name).expect("declared above");
            builder.connect(builder.demux_id, port, id, 0);
        }
        Ok(builder)
    }

    fn add(&mut self, name: impl Into<Arc<str>>, spec: ElementSpec) -> usize {
        self.specs.push(spec);
        self.names.push(name.into());
        self.elem_rules
            .push(self.current_rule.clone().map(|r| (r, self.current_class)));
        self.specs.len() - 1
    }

    fn connect(&mut self, from: usize, out_port: usize, to: usize, in_port: usize) {
        self.edges.push((
            from,
            out_port,
            Route {
                element: to,
                port: in_port,
            },
        ));
    }

    fn demux_port(&self, name: &str) -> Option<usize> {
        self.demux_names.iter().position(|n| n == name)
    }

    fn table_id(&self, rule: &Rule, name: &str) -> Result<usize, PlanError> {
        self.table_index.get(name).copied().ok_or_else(|| {
            PlanError::in_rule(&rule.id, format!("`{name}` is not a materialized table"))
        })
    }

    /// Records the secondary index an equijoin/anti-join probe needs.
    ///
    /// Probes over exactly the table's primary-key columns are served by the
    /// storage engine's primary index, so no redundant secondary index is
    /// materialized for them.
    fn declare_probe_index(&mut self, table: usize, join_keys: &[(usize, usize)]) {
        if join_keys.is_empty() {
            return;
        }
        let mut cols: Vec<usize> = join_keys.iter().map(|(_, c)| *c).collect();
        cols.sort_unstable();
        cols.dedup();
        let plan = &mut self.tables[table];
        let mut pk = plan.spec.primary_key.clone();
        pk.sort_unstable();
        pk.dedup();
        if !pk.is_empty() && pk == cols {
            return;
        }
        if !plan.extra_indexes.contains(&cols) {
            plan.extra_indexes.push(cols);
        }
    }

    fn build(mut self) -> Result<PlannedProgram, PlanError> {
        let rules: Vec<&Rule> = self.program.rules.iter().collect();
        for (i, rule) in rules.into_iter().enumerate() {
            self.current_class = self.rule_classes[i];
            self.current_rule = Some(Arc::from(rule.id.as_str()));
            self.plan_rule(rule)?;
        }
        self.current_rule = None;

        // Watchpoints.
        for w in &self.config.watches.clone() {
            let id = self.add(
                format!("watch:{w}"),
                ElementSpec::Collector { watch: w.clone() },
            );
            if let Some(port) = self.demux_port(w) {
                self.connect(self.demux_id, port, id, 0);
            }
        }

        // Wire materialized aggregates to their table's insert and delete
        // deltas.
        let table_aggs = std::mem::take(&mut self.table_aggs);
        for (table, aggs) in table_aggs {
            for agg in aggs {
                if let Some(insert) = self.insert_ids.get(&table).copied() {
                    self.connect(insert, 0, agg, 0);
                }
                if let Some(deletes) = self.delete_ids.get(&table).cloned() {
                    for d in deletes {
                        self.connect(d, 0, agg, 0);
                    }
                }
            }
        }

        // Resolve facts: every argument must be a constant or the fact's
        // location variable (bound to the node address at instantiation).
        let mut facts = Vec::with_capacity(self.program.facts.len());
        for fact in &self.program.facts {
            let mut fields = Vec::with_capacity(fact.args.len());
            for arg in &fact.args {
                match arg {
                    OExpr::Const(v) => fields.push(FactField::Const(v.clone())),
                    OExpr::Var(v) if Some(v) == fact.location.as_ref() => {
                        fields.push(FactField::LocalAddr)
                    }
                    other => {
                        return Err(PlanError::program(format!(
                            "fact `{}` argument {other:?} is not a constant",
                            fact.name
                        )))
                    }
                }
            }
            facts.push(FactTemplate {
                name: fact.name.clone(),
                fields,
            });
        }

        let (demux_map, demux_default) = Demux::build_map(&self.demux_names);
        let entry = Route {
            element: self.demux_id,
            port: 0,
        };
        let obs = Arc::new(ObsMeta {
            elems: self
                .specs
                .iter()
                .zip(&self.names)
                .zip(&self.elem_rules)
                .map(|((spec, name), attribution)| ElemMeta {
                    name: name.clone(),
                    rule: attribution.as_ref().map(|(r, _)| r.clone()),
                    kind: spec.obs_kind(),
                    class: attribution.as_ref().map(|(_, c)| class_bits(*c)),
                })
                .collect(),
        });
        let mut refresh_masks = vec![false; self.specs.len()];
        for id in &self.refresh_entries {
            refresh_masks[*id] = true;
        }
        Ok(PlannedProgram {
            specs: self.specs,
            names: self.names,
            edges: self.edges,
            entry,
            demux_map,
            demux_default,
            tables: self.tables,
            facts,
            jitter_periodics: self.config.jitter_periodics,
            fused_strands: self.fused_strands,
            mat_views: self.mat_views,
            delta_schedule: self.config.delta_schedule,
            refresh_masks,
            obs,
        })
    }

    fn plan_rule(&mut self, rule: &Rule) -> Result<(), PlanError> {
        let positives = rule.positive_predicates();
        let periodics: Vec<&Predicate> = positives
            .iter()
            .copied()
            .filter(|p| p.name == "periodic")
            .collect();
        let streams: Vec<&Predicate> = positives
            .iter()
            .copied()
            .filter(|p| p.name != "periodic" && !self.program.is_materialized(&p.name))
            .collect();
        let tables: Vec<&Predicate> = positives
            .iter()
            .copied()
            .filter(|p| p.name != "periodic" && self.program.is_materialized(&p.name))
            .collect();

        if periodics.len() > 1 {
            return Err(PlanError::in_rule(
                &rule.id,
                "at most one `periodic` term per rule",
            ));
        }
        if !periodics.is_empty() && !streams.is_empty() {
            return Err(PlanError::in_rule(
                &rule.id,
                "a rule may not join a `periodic` stream with another stream",
            ));
        }
        if streams.len() > 1 {
            return Err(PlanError::in_rule(
                &rule.id,
                "stream-stream joins are not supported (the 2005 planner only joins a stream \
                 with materialized tables); materialize one of the streams instead",
            ));
        }

        if let Some(periodic) = periodics.first() {
            self.build_strand(rule, periodic, TriggerSource::Periodic(periodic), &tables)
        } else if let Some(stream) = streams.first() {
            self.build_strand(rule, stream, TriggerSource::Stream(&stream.name), &tables)
        } else if rule.has_aggregate() {
            // Aggregate over a materialized table, maintained incrementally.
            if tables.len() != 1 {
                return Err(PlanError::in_rule(
                    &rule.id,
                    "materialized aggregates must range over exactly one table",
                ));
            }
            self.build_table_agg_strand(rule, tables[0])
        } else {
            if tables.is_empty() {
                return Err(PlanError::in_rule(&rule.id, "rule body has no predicates"));
            }
            // Try the view lowering first: analyse every trigger's strand;
            // if each one qualifies, the whole rule becomes a single
            // incrementally maintained MatView element.
            if self.config.materialize_views && !rule.delete && self.current_class.pure {
                let mut trigger_ids = Vec::with_capacity(tables.len());
                for t in &tables {
                    trigger_ids.push(self.table_id(rule, &t.name)?);
                }
                let mut analysed = Vec::with_capacity(tables.len());
                let mut viewable = true;
                for (i, trigger) in tables.iter().enumerate() {
                    let others: Vec<&Predicate> = tables
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| *j != i)
                        .map(|(_, p)| *p)
                        .collect();
                    let stages = self.analyze_strand(
                        rule,
                        trigger,
                        &TriggerSource::TableDelta(&trigger.name),
                        &others,
                    )?;
                    if !Self::stages_viewable(&stages, &trigger_ids) {
                        viewable = false;
                        break;
                    }
                    analysed.push(stages);
                }
                if viewable {
                    return self.lower_view(rule, &tables, analysed);
                }
            }
            // Delta-triggered fallback: updates to any of the body tables
            // re-evaluate the rule against the others.
            for (i, trigger) in tables.iter().enumerate() {
                let others: Vec<&Predicate> = tables
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, p)| *p)
                    .collect();
                self.build_strand(
                    rule,
                    trigger,
                    TriggerSource::TableDelta(&trigger.name),
                    &others,
                )?;
            }
            Ok(())
        }
    }

    /// Whether a stage list has a fused form: a bounded number of join
    /// probes over pairwise-distinct tables, no fuse-less stages
    /// (aggregation probes), and no anti-join over a probed table (which
    /// would dead-lock on that table's guard). RNG-drawing rules are
    /// rejected *before* this check by their [`RuleClass`]: fusion changes
    /// the cross-strand evaluation order, which a nondeterministic rule
    /// would observe — same-seed runs would diverge.
    fn stages_fusable(stages: &[Stage]) -> bool {
        if stages.len() < 2 {
            // A bare head projection gains nothing from fusion.
            return false;
        }
        let mut probed: Vec<usize> = Vec::new();
        for stage in stages {
            match stage {
                Stage::Join { table, .. } => {
                    if probed.contains(table) {
                        return false; // self-join: probing under its own guard
                    }
                    probed.push(*table);
                }
                Stage::Other { .. } => return false,
                _ => {}
            }
        }
        if probed.len() > p2_dataflow::elements::MAX_STRAND_PROBES {
            return false;
        }
        for stage in stages {
            if let Stage::AntiJoin { table, .. } = stage {
                if probed.contains(table) {
                    return false;
                }
            }
        }
        true
    }

    /// Whether one trigger's analysed strand can become an input of an
    /// incrementally maintained view. The checks extend
    /// [`Builder::stages_fusable`]'s — the view reuses the fused strand
    /// executor for both live emission and delta-time derivation — with
    /// the maintenance-specific one: no probe or anti-join may touch a
    /// *trigger* table of the rule (replaying a delta would observe the
    /// post-mutation state of the very table being replayed). Purity
    /// (no RNG, no clock reads — derivations are re-evaluated at delta
    /// time, not event time) is enforced before this check through the
    /// rule's [`RuleClass`]. Unlike fusion, a single-stage strand (bare
    /// head projection) qualifies: the view's value there is the
    /// retractable row set, not call-count savings.
    fn stages_viewable(stages: &[Stage], trigger_tables: &[usize]) -> bool {
        let mut probed: Vec<usize> = Vec::new();
        for stage in stages {
            match stage {
                Stage::Join { table, .. } => {
                    if probed.contains(table) || trigger_tables.contains(table) {
                        return false;
                    }
                    probed.push(*table);
                }
                Stage::AntiJoin { table, .. } if trigger_tables.contains(table) => {
                    return false;
                }
                Stage::Other { .. } => return false,
                _ => {}
            }
        }
        if probed.len() > p2_dataflow::elements::MAX_STRAND_PROBES {
            return false;
        }
        for stage in stages {
            if let Stage::AntiJoin { table, .. } = stage {
                if probed.contains(table) {
                    return false;
                }
            }
        }
        true
    }

    /// Lowers a pure-join table rule (every trigger analysed and checked
    /// by [`Builder::stages_viewable`]) to one [`ElementSpec::MatView`]
    /// plus per-trigger pad chains and head routing. Port `k` of the view
    /// is poked by inserts into trigger `k`'s table and emits that
    /// trigger's live derivations at the BFS level of the generic chain
    /// it replaces; the retraction port stays unwired.
    fn lower_view(
        &mut self,
        rule: &Rule,
        triggers: &[&Predicate],
        per_trigger: Vec<Vec<Stage>>,
    ) -> Result<(), PlanError> {
        let mut inputs = Vec::with_capacity(per_trigger.len());
        let mut pad_counts = Vec::with_capacity(per_trigger.len());
        let mut shared_out = None;
        for (trigger, stages) in triggers.iter().zip(per_trigger) {
            let table = self.table_id(rule, &trigger.name)?;
            pad_counts.push(stages.len() - 1);
            let mut pre_filters = Vec::new();
            let mut ops: Vec<StrandOpSpec> = Vec::new();
            let mut head = None;
            for stage in stages {
                match stage {
                    Stage::Select { filter, .. } => {
                        if ops.is_empty() {
                            pre_filters.push(filter);
                        } else {
                            ops.push(StrandOpSpec::Filter(filter));
                        }
                    }
                    Stage::Join { table, key, .. } => ops.push(StrandOpSpec::Probe { table, key }),
                    Stage::AntiJoin { table, key, .. } => {
                        ops.push(StrandOpSpec::AntiJoin { table, key })
                    }
                    Stage::Assign { expr, .. } => ops.push(StrandOpSpec::Assign(expr)),
                    Stage::Head {
                        out_name, fields, ..
                    } => head = Some((out_name, fields)),
                    Stage::Other { .. } => unreachable!("stages_viewable rejects Other"),
                }
            }
            let (out_name, head_fields) = head.expect("every strand ends in its head projection");
            shared_out = Some(out_name);
            inputs.push(ViewInputSpec {
                table,
                pre_filters,
                ops,
                head_fields,
            });
        }
        let out_name = shared_out.expect("rules have at least one trigger");
        let view = self.add(
            format!("{}:view", rule.id),
            ElementSpec::MatView { inputs, out_name },
        );
        self.mat_views += 1;

        for (k, (trigger, pad_count)) in triggers.iter().zip(pad_counts).enumerate() {
            let mut chain = vec![view];
            for i in 0..pad_count {
                chain.push(self.add(format!("{}:vpad{k}.{i}", rule.id), ElementSpec::Pad));
            }
            // The first hop leaves the view on this trigger's out port;
            // pads chain on port 0 like every other element.
            for (j, pair) in chain.windows(2).enumerate() {
                let out_port = if j == 0 { k } else { 0 };
                self.connect(pair[0], out_port, pair[1], 0);
            }
            let last = *chain.last().expect("chain starts with the view");
            let last_port = if chain.len() == 1 { k } else { 0 };
            match &rule.head.location {
                None => self.connect(last, last_port, self.demux_id, 0),
                Some(loc) => {
                    let dest_field = Self::head_dest_field(rule, loc)?;
                    let id = self.add(
                        format!("{}:netout{k}", rule.id),
                        ElementSpec::NetOut { dest_field },
                    );
                    self.connect(last, last_port, id, 0);
                    // Local tuples wrap around into the demultiplexer.
                    self.connect(id, 0, self.demux_id, 0);
                }
            }
            let insert = *self.insert_ids.get(&trigger.name).ok_or_else(|| {
                PlanError::in_rule(
                    &rule.id,
                    format!("no insert element for table `{}`", trigger.name),
                )
            })?;
            self.connect(insert, 0, view, k);
        }
        Ok(())
    }

    /// Lowers a stage list to graph elements, returning the chain in
    /// execution order. Generic lowering emits one element per stage; the
    /// fused lowering emits a single [`FusedStrand`] followed by
    /// `stages.len() - 1` pads, so head tuples surface at exactly the BFS
    /// level the generic chain would have emitted them at.
    fn lower_stages(&mut self, rule: &Rule, stages: Vec<Stage>) -> Vec<usize> {
        if self.config.fuse_strands
            && self.current_class.deterministic
            && Self::stages_fusable(&stages)
        {
            return self.lower_fused(rule, stages);
        }
        stages
            .into_iter()
            .map(|stage| match stage {
                Stage::Select { label, filter } => self.add(label, ElementSpec::Select { filter }),
                Stage::Join {
                    label,
                    table,
                    key,
                    out_name,
                } => self.add(
                    label,
                    ElementSpec::Join {
                        table,
                        key,
                        out_name,
                    },
                ),
                Stage::AntiJoin { label, table, key } => {
                    self.add(label, ElementSpec::AntiJoin { table, key })
                }
                Stage::Assign {
                    label,
                    out_name,
                    expr,
                    prior_len,
                } => {
                    let mut fields: Vec<PelProgram> = (0..prior_len)
                        .map(|i| PelProgram::compile(&PExpr::Field(i)))
                        .collect();
                    fields.push(expr);
                    self.add(label, ElementSpec::Project { out_name, fields })
                }
                Stage::Head {
                    label,
                    out_name,
                    fields,
                } => self.add(label, ElementSpec::Project { out_name, fields }),
                Stage::Other { label, spec } => self.add(label, spec),
            })
            .collect()
    }

    /// The fused lowering (callers checked [`Builder::stages_fusable`]).
    fn lower_fused(&mut self, rule: &Rule, stages: Vec<Stage>) -> Vec<usize> {
        let pad_count = stages.len() - 1;
        let mut pre_filters = Vec::new();
        let mut ops: Vec<StrandOpSpec> = Vec::new();
        let mut head = None;
        for stage in stages {
            match stage {
                Stage::Select { filter, .. } => {
                    if ops.is_empty() {
                        // Leading selections run on the bare trigger tuple,
                        // exactly like the generic trigger-select.
                        pre_filters.push(filter);
                    } else {
                        ops.push(StrandOpSpec::Filter(filter));
                    }
                }
                Stage::Join { table, key, .. } => ops.push(StrandOpSpec::Probe { table, key }),
                Stage::AntiJoin { table, key, .. } => {
                    ops.push(StrandOpSpec::AntiJoin { table, key })
                }
                Stage::Assign { expr, .. } => ops.push(StrandOpSpec::Assign(expr)),
                Stage::Head {
                    out_name, fields, ..
                } => head = Some((out_name, fields)),
                Stage::Other { .. } => unreachable!("stages_fusable rejects Other"),
            }
        }
        let (out_name, head_fields) = head.expect("every strand ends in its head projection");
        let strand = self.add(
            format!("{}:strand", rule.id),
            ElementSpec::Strand {
                pre_filters,
                ops,
                head_fields,
                out_name,
            },
        );
        self.fused_strands += 1;
        let mut chain = vec![strand];
        for i in 0..pad_count {
            chain.push(self.add(format!("{}:pad{i}", rule.id), ElementSpec::Pad));
        }
        chain
    }

    /// Builds one strand: trigger → joins → filters → (aggregate) →
    /// projection → routing.
    ///
    /// The rule body is first analysed into a [`Stage`] list, then lowered
    /// either to the generic element chain or — for the dominant
    /// single-join / select-project shapes — to one [`FusedStrand`]
    /// element followed by schedule-preserving pads
    /// ([`Builder::lower_stages`]).
    fn build_strand(
        &mut self,
        rule: &Rule,
        trigger: &Predicate,
        source: TriggerSource<'_>,
        other_tables: &[&Predicate],
    ) -> Result<(), PlanError> {
        let stages = self.analyze_strand(rule, trigger, &source, other_tables)?;

        // --- Lower the stage list to elements (generic chain or fused
        // strand + pads), then attach the routing.
        let mut chain = self.lower_stages(rule, stages);
        self.route_head(rule, &mut chain)?;

        // --- Wire the chain and its trigger source.
        for pair in chain.windows(2) {
            self.connect(pair[0], 0, pair[1], 0);
        }
        let entry = Route {
            element: chain[0],
            port: 0,
        };
        match source {
            TriggerSource::Stream(name) => {
                let port = self.demux_port(name).ok_or_else(|| {
                    PlanError::in_rule(&rule.id, format!("no demux port for stream `{name}`"))
                })?;
                self.connect(self.demux_id, port, entry.element, entry.port);
            }
            TriggerSource::TableDelta(name) => {
                let insert = *self.insert_ids.get(name).ok_or_else(|| {
                    PlanError::in_rule(&rule.id, format!("no insert element for table `{name}`"))
                })?;
                self.connect(insert, 0, entry.element, entry.port);
                self.mask_refresh_entry(rule, entry.element);
            }
            TriggerSource::Periodic(pred) => {
                let periodic = self.make_periodic(rule, pred)?;
                let id = self.add(format!("{}:periodic", rule.id), periodic);
                self.connect(id, 0, entry.element, entry.port);
            }
        }
        Ok(())
    }

    /// The greatest set of predicates whose refresh-derivation cone
    /// provably sustains no soft state.
    ///
    /// Suppressing a refresh poke into a rule skips the rule's duplicate
    /// re-derivation — and with it the *entire cascade* downstream of its
    /// head: TTL extensions of derived soft state, and further events
    /// those extensions would have triggered. A head predicate is
    /// therefore "TTL-neutral" only transitively. The fixpoint starts
    /// optimistic (every stream and infinite-lifetime table is neutral;
    /// finite-lifetime tables never are — their rows need the re-derived
    /// refresh) and removes any predicate that *triggers* a rule which is
    /// either not `refresh_transparent` (the duplicate event could
    /// produce different output) or whose own head is not neutral (the
    /// starvation propagates). Only trigger positions count: a join probe
    /// reads the table's stored rows, which the suppressed poke leaves
    /// untouched — the trigger table's TTL was already extended by the
    /// insert that produced the poke. Delete-rule heads are exempt
    /// (re-deleting already-deleted rows is idempotent).
    fn refresh_neutral_preds(
        program: &Program,
        rule_classes: &[RuleClass],
        all_names: &[String],
    ) -> HashSet<String> {
        let mut neutral: HashSet<String> = all_names.iter().cloned().collect();
        for m in &program.materializations {
            if m.to_spec().lifetime.is_some() {
                neutral.remove(&m.name);
            }
        }
        let mut changed = true;
        while changed {
            changed = false;
            for (rule, class) in program.rules.iter().zip(rule_classes) {
                let head_ok = rule.delete || neutral.contains(&rule.head.name);
                if class.refresh_transparent && head_ok {
                    continue;
                }
                // This rule must keep seeing refresh-derived events:
                // whatever triggers it cannot be suppressed upstream.
                let positives = rule.positive_predicates();
                let stream_or_periodic = positives
                    .iter()
                    .any(|p| p.name == "periodic" || !program.is_materialized(&p.name));
                for p in positives {
                    if p.name == "periodic" {
                        continue;
                    }
                    // Streams always trigger; table deltas trigger only
                    // the all-table rules (stream rules merely probe).
                    let triggers = !program.is_materialized(&p.name) || !stream_or_periodic;
                    if triggers && neutral.remove(&p.name) {
                        changed = true;
                    }
                }
            }
        }
        neutral
    }

    /// Marks a table-delta-triggered strand entry for refresh
    /// suppression, when sound.
    ///
    /// A `DeltaKind::Refresh` poke (keyed soft-state re-insert that left
    /// the table's rows unchanged) may be dropped before it enters this
    /// strand iff skipping the rule's re-run is a whole-system no-op:
    ///
    /// 1. the rule is `refresh_transparent` per the whole-program
    ///    analyzer — its output on the refreshed tuple is identical to
    ///    what it already produced, so the skipped derivations are pure
    ///    duplicates;
    /// 2. the head is transitively TTL-neutral
    ///    ([`Builder::refresh_neutral_preds`]) or the rule is a delete —
    ///    the skipped duplicates sustain no soft state anywhere
    ///    downstream;
    /// 3. the entry element is a plain strand-chain element. Delta-fed
    ///    consumers (TableAgg, MatView, incremental AggProbe) must see
    ///    every poke — a suppressed poke could strand a pending expiry
    ///    delta in their subscription queue — so they are never masked
    ///    statically; their `would_wake` guards are the sole authority.
    ///
    /// Notably, for the shipped Chord program this masks *nothing*: the
    /// fixpoint proves every refresh cascade load-bearing (`succ`
    /// refreshes keep `bestSucc`→`finger[0]` alive, `pred`/`succ` feed
    /// the soft-state `pingNode`, …), which is exactly why the dynamic
    /// `would_wake` guards carry the scheduling win there. Programs with
    /// infinite-lifetime derived state do get masked entries (see the
    /// planner tests).
    fn mask_refresh_entry(&mut self, rule: &Rule, entry: usize) {
        if !self.current_class.refresh_transparent {
            return;
        }
        if !(rule.delete || self.refresh_neutral.contains(&rule.head.name)) {
            return;
        }
        if matches!(
            self.specs[entry],
            ElementSpec::TableAgg { .. }
                | ElementSpec::MatView { .. }
                | ElementSpec::AggProbe { .. }
        ) {
            return;
        }
        self.refresh_entries.push(entry);
    }

    /// Analyses one strand of `rule` into its [`Stage`] list (trigger
    /// checks, joins, anti-joins, assignments, conditions, aggregation,
    /// head projection) without lowering anything to elements. Shared by
    /// [`Builder::build_strand`] and the view lowering, which analyses
    /// every trigger's strand before deciding how to lower the rule.
    fn analyze_strand(
        &mut self,
        rule: &Rule,
        trigger: &Predicate,
        source: &TriggerSource<'_>,
        other_tables: &[&Predicate],
    ) -> Result<Vec<Stage>, PlanError> {
        let mut layout = Layout::new();
        let mut stages: Vec<Stage> = Vec::new();

        // --- Trigger.
        let trigger_binding = layout
            .bind_predicate(trigger, true)
            .map_err(|e| PlanError::in_rule(&rule.id, e.message))?;
        let mut trigger_checks: Vec<PExpr> = Vec::new();
        for (col, value) in &trigger_binding.const_checks {
            trigger_checks.push(PExpr::bin(
                BinOp::Eq,
                PExpr::Field(*col),
                PExpr::Const(value.clone()),
            ));
        }
        for (a, b) in &trigger_binding.repeat_checks {
            trigger_checks.push(PExpr::bin(BinOp::Eq, PExpr::Field(*a), PExpr::Field(*b)));
        }
        if !trigger_checks.is_empty() && !matches!(source, TriggerSource::Periodic(_)) {
            let filter = PelProgram::compile(&and_all(trigger_checks));
            stages.push(Stage::Select {
                label: format!("{}:trigger-select", rule.id),
                filter,
            });
        }

        // --- Aggregate analysis.
        let agg_spec = rule.head.args.iter().find_map(|a| match a {
            HeadArg::Agg(spec) => Some(spec),
            _ => None,
        });
        let agg_plan = match agg_spec {
            None => None,
            Some(spec) => {
                let table = self.choose_agg_table(rule, spec, trigger, other_tables)?;
                Some(AggPlan {
                    spec,
                    table: Some(table),
                })
            }
        };
        let join_tables: Vec<&Predicate> = other_tables
            .iter()
            .copied()
            .filter(|p| match &agg_plan {
                Some(a) => !std::ptr::eq(*p, a.table.expect("set above")),
                None => true,
            })
            .collect();

        // --- Equijoins against materialized tables.
        for pred in &join_tables {
            let base = layout.len();
            let binding = layout
                .bind_predicate(pred, true)
                .map_err(|e| PlanError::in_rule(&rule.id, e.message))?;
            let table = self.table_id(rule, &pred.name)?;
            self.declare_probe_index(table, &binding.join_keys);
            stages.push(Stage::Join {
                label: format!("{}:join:{}", rule.id, pred.name),
                table,
                key: binding.join_keys.clone(),
                out_name: format!("{}#{}", rule.id, pred.name).into(),
            });

            let mut checks: Vec<PExpr> = Vec::new();
            for (col, value) in &binding.const_checks {
                checks.push(PExpr::bin(
                    BinOp::Eq,
                    PExpr::Field(base + col),
                    PExpr::Const(value.clone()),
                ));
            }
            for (a, b) in &binding.repeat_checks {
                checks.push(PExpr::bin(
                    BinOp::Eq,
                    PExpr::Field(base + a),
                    PExpr::Field(base + b),
                ));
            }
            if !checks.is_empty() {
                let filter = PelProgram::compile(&and_all(checks));
                stages.push(Stage::Select {
                    label: format!("{}:join-select:{}", rule.id, pred.name),
                    filter,
                });
            }
        }

        // --- Anti-joins for negated predicates.
        for pred in rule.negated_predicates() {
            let binding = layout
                .bind_predicate(pred, false)
                .map_err(|e| PlanError::in_rule(&rule.id, e.message))?;
            if !binding.const_checks.is_empty() || !binding.repeat_checks.is_empty() {
                return Err(PlanError::in_rule(
                    &rule.id,
                    format!(
                        "negated predicate `{}` may only contain variables and wildcards",
                        pred.name
                    ),
                ));
            }
            let table = self.table_id(rule, &pred.name)?;
            self.declare_probe_index(table, &binding.join_keys);
            stages.push(Stage::AntiJoin {
                label: format!("{}:antijoin:{}", rule.id, pred.name),
                table,
                key: binding.join_keys,
            });
        }

        // --- Assignments (dependency order), excluding the aggregate
        // expression which is evaluated inside the AggProbe.
        let agg_var = agg_plan.as_ref().and_then(|a| a.spec.var.clone());
        let mut pending: Vec<(&String, &OExpr)> = rule
            .body
            .iter()
            .filter_map(|t| match t {
                BodyTerm::Assign { var, expr } => Some((var, expr)),
                _ => None,
            })
            .filter(|(var, _)| agg_var.as_deref() != Some(var.as_str()))
            .collect();
        let agg_assignment: Option<&OExpr> = rule.body.iter().find_map(|t| match t {
            BodyTerm::Assign { var, expr } if Some(var.clone()) == agg_var => Some(expr),
            _ => None,
        });
        let mut progress = true;
        while progress && !pending.is_empty() {
            progress = false;
            let mut remaining = Vec::new();
            for (var, expr) in pending {
                match layout.compile_expr(expr) {
                    Ok(compiled) => {
                        stages.push(Stage::Assign {
                            label: format!("{}:assign:{}", rule.id, var),
                            out_name: format!("{}#assign:{}", rule.id, var).into(),
                            expr: PelProgram::compile(&compiled),
                            prior_len: layout.len(),
                        });
                        layout.push_var(var.clone());
                        progress = true;
                    }
                    Err(_) => remaining.push((var, expr)),
                }
            }
            pending = remaining;
        }
        let unresolved_assignments = pending;
        if !unresolved_assignments.is_empty() && agg_plan.is_none() {
            let vars: Vec<&String> = unresolved_assignments.iter().map(|(v, _)| *v).collect();
            return Err(PlanError::in_rule(
                &rule.id,
                format!(
                    "assignments to {vars:?} reference variables bound by no table in this strand"
                ),
            ));
        }

        // --- Conditions: those compilable now become a selection; the rest
        // must reference the aggregate table and become the AggProbe filter.
        let mut pre_conditions: Vec<PExpr> = Vec::new();
        let mut deferred_conditions: Vec<&OExpr> = Vec::new();
        for term in &rule.body {
            if let BodyTerm::Condition(expr) = term {
                match layout.compile_expr(expr) {
                    Ok(compiled) => pre_conditions.push(compiled),
                    Err(e) => {
                        if agg_plan.is_some() {
                            deferred_conditions.push(expr);
                        } else {
                            return Err(PlanError::in_rule(&rule.id, e.message));
                        }
                    }
                }
            }
        }
        if !pre_conditions.is_empty() {
            let filter = PelProgram::compile(&and_all(pre_conditions));
            stages.push(Stage::Select {
                label: format!("{}:select", rule.id),
                filter,
            });
        }

        // --- Aggregation.
        let mut agg_field: Option<usize> = None;
        if let Some(aggp) = &agg_plan {
            let pred = aggp.table.expect("stream-trigger aggregates have a table");
            let base = layout.len();
            let mut agg_layout = layout.clone();
            let binding = agg_layout
                .bind_predicate(pred, true)
                .map_err(|e| PlanError::in_rule(&rule.id, e.message))?;
            let mut filter: Vec<PExpr> = Vec::new();
            for (existing, col) in &binding.join_keys {
                filter.push(PExpr::bin(
                    BinOp::Eq,
                    PExpr::Field(*existing),
                    PExpr::Field(base + col),
                ));
            }
            for (col, value) in &binding.const_checks {
                filter.push(PExpr::bin(
                    BinOp::Eq,
                    PExpr::Field(base + col),
                    PExpr::Const(value.clone()),
                ));
            }
            for (a, b) in &binding.repeat_checks {
                filter.push(PExpr::bin(
                    BinOp::Eq,
                    PExpr::Field(base + a),
                    PExpr::Field(base + b),
                ));
            }
            for cond in deferred_conditions {
                let compiled = agg_layout
                    .compile_expr(cond)
                    .map_err(|e| PlanError::in_rule(&rule.id, e.message))?;
                filter.push(compiled);
            }
            // Any assignment that could not be applied earlier must be
            // definable over the aggregate table's columns; it can only be
            // the aggregate expression itself (checked below).
            if !unresolved_assignments.is_empty() {
                let offending: Vec<&String> = unresolved_assignments
                    .iter()
                    .map(|(v, _)| *v)
                    .filter(|v| Some((*v).clone()) != agg_var)
                    .collect();
                if !offending.is_empty() {
                    return Err(PlanError::in_rule(
                        &rule.id,
                        format!(
                            "assignments to {offending:?} depend on the aggregated table `{}` and \
                             cannot be evaluated outside the aggregate",
                            pred.name
                        ),
                    ));
                }
            }
            let agg_expr = match (&aggp.spec.var, agg_assignment) {
                (None, _) => PExpr::Const(Value::Int(1)),
                (Some(var), _) if agg_layout.is_bound(var) => {
                    PExpr::Field(agg_layout.get(var).expect("checked bound"))
                }
                (Some(_), Some(assign_expr)) => agg_layout
                    .compile_expr(assign_expr)
                    .map_err(|e| PlanError::in_rule(&rule.id, e.message))?,
                (Some(var), None) => {
                    return Err(PlanError::in_rule(
                        &rule.id,
                        format!(
                        "aggregate variable `{var}` is bound by neither a table nor an assignment"
                    ),
                    ))
                }
            };
            let table = self.table_id(rule, &pred.name)?;
            let filter = if filter.is_empty() {
                None
            } else {
                Some(PelProgram::compile(&and_all(filter)))
            };
            let agg_expr = PelProgram::compile(&agg_expr);
            // Rule-level purity subsumes the per-program `can_increment`
            // scan (the debug_assert in `AggProbe::with_subscription`
            // still cross-checks the compiled programs).
            let incremental = self.config.materialize_views && self.current_class.pure;
            debug_assert!(!incremental || AggProbe::can_increment(&filter, &agg_expr));
            stages.push(Stage::Other {
                label: format!("{}:agg:{}", rule.id, pred.name),
                spec: ElementSpec::AggProbe {
                    table,
                    table_arity: pred.args.len(),
                    func: aggp.spec.func,
                    filter,
                    agg_expr,
                    out_name: format!("{}#agg", rule.id).into(),
                    incremental,
                },
            });
            layout = agg_layout;
            agg_field = Some(layout.push_anonymous());
        }

        // --- Head projection.
        let mut fields: Vec<PelProgram> = Vec::with_capacity(rule.head.args.len());
        for arg in &rule.head.args {
            match arg {
                HeadArg::Expr(e) => {
                    let compiled = layout
                        .compile_expr(e)
                        .map_err(|e| PlanError::in_rule(&rule.id, e.message))?;
                    fields.push(PelProgram::compile(&compiled));
                }
                HeadArg::Agg(_) => {
                    let pos = agg_field.ok_or_else(|| {
                        PlanError::in_rule(
                            &rule.id,
                            "aggregate head argument without an aggregate plan",
                        )
                    })?;
                    fields.push(PelProgram::compile(&PExpr::Field(pos)));
                }
            }
        }
        stages.push(Stage::Head {
            label: format!("{}:head", rule.id),
            out_name: rule.head.name.as_str().into(),
            fields,
        });
        Ok(stages)
    }

    /// Routes the head projection output: deletes go straight to the head
    /// table, everything else goes through a network egress element whose
    /// local side wraps around to the demultiplexer.
    fn route_head(&mut self, rule: &Rule, chain: &mut Vec<usize>) -> Result<(), PlanError> {
        if rule.delete {
            let body_loc = rule
                .positive_predicates()
                .iter()
                .find_map(|p| p.location.clone());
            if rule.head.location.is_some() && rule.head.location != body_loc {
                return Err(PlanError::in_rule(
                    &rule.id,
                    "delete rules must target the local node's table",
                ));
            }
            let table = self.table_id(rule, &rule.head.name)?;
            let id = self.add(
                format!("{}:delete:{}", rule.id, rule.head.name),
                ElementSpec::Delete { table },
            );
            chain.push(id);
            self.delete_ids
                .entry(rule.head.name.clone())
                .or_default()
                .push(id);
            return Ok(());
        }

        match &rule.head.location {
            None => {
                // No location specifier: the tuple stays local; feed it back
                // through the demultiplexer.
                let last = *chain.last().expect("head projection exists");
                self.connect(last, 0, self.demux_id, 0);
                Ok(())
            }
            Some(loc) => {
                let dest_field = Self::head_dest_field(rule, loc)?;
                let id = self.add(
                    format!("{}:netout", rule.id),
                    ElementSpec::NetOut { dest_field },
                );
                chain.push(id);
                // Local tuples wrap around into the demultiplexer.
                self.connect(id, 0, self.demux_id, 0);
                Ok(())
            }
        }
    }

    /// The head-argument position carrying the head's location variable
    /// (the field a network egress element reads the destination from).
    fn head_dest_field(rule: &Rule, loc: &str) -> Result<usize, PlanError> {
        rule.head
            .args
            .iter()
            .position(|a| match a {
                HeadArg::Expr(OExpr::Var(v)) => v == loc,
                HeadArg::Agg(spec) => spec.var.as_deref() == Some(loc),
                _ => false,
            })
            .ok_or_else(|| {
                PlanError::in_rule(
                    &rule.id,
                    format!("head location variable `{loc}` must appear among the head arguments"),
                )
            })
    }

    /// Builds the materialized-aggregate strand for a rule whose body is a
    /// single table and whose head aggregates over it.
    fn build_table_agg_strand(&mut self, rule: &Rule, pred: &Predicate) -> Result<(), PlanError> {
        let spec = rule
            .head
            .args
            .iter()
            .find_map(|a| match a {
                HeadArg::Agg(s) => Some(s),
                _ => None,
            })
            .expect("caller checked has_aggregate");

        if rule
            .body
            .iter()
            .any(|t| matches!(t, BodyTerm::Condition(_) | BodyTerm::Assign { .. }))
        {
            // Appendix rules of this shape (S1, N3) have no extra terms; the
            // assignment-carrying ones (N2) are stream-triggered instead.
            return Err(PlanError::in_rule(
                &rule.id,
                "materialized aggregates support only a bare table predicate in the body",
            ));
        }

        // Column of each table field, per variable.
        let mut columns: HashMap<&str, usize> = HashMap::new();
        for (col, arg) in pred.args.iter().enumerate() {
            if let OExpr::Var(v) = arg {
                columns.entry(v.as_str()).or_insert(col);
            }
        }

        let mut group_cols = Vec::new();
        for arg in &rule.head.args {
            match arg {
                HeadArg::Agg(_) => {}
                HeadArg::Expr(OExpr::Var(v)) => {
                    let col = columns.get(v.as_str()).ok_or_else(|| {
                        PlanError::in_rule(
                            &rule.id,
                            format!("head variable `{v}` is not a column of `{}`", pred.name),
                        )
                    })?;
                    group_cols.push(*col);
                }
                HeadArg::Expr(other) => {
                    return Err(PlanError::in_rule(
                        &rule.id,
                        format!(
                        "materialized aggregate heads must use plain variables, found {other:?}"
                    ),
                    ))
                }
            }
        }
        let agg_col = match &spec.var {
            None => None,
            Some(v) => Some(*columns.get(v.as_str()).ok_or_else(|| {
                PlanError::in_rule(
                    &rule.id,
                    format!(
                        "aggregate variable `{v}` is not a column of `{}`",
                        pred.name
                    ),
                )
            })?),
        };

        let table = self.table_id(rule, &pred.name)?;
        let agg_id = self.add(
            format!("{}:tableagg:{}", rule.id, pred.name),
            ElementSpec::TableAgg {
                table,
                func: spec.func,
                agg_col,
                group_cols: group_cols.clone(),
                out_name: format!("{}#tagg", rule.id).into(),
            },
        );
        self.table_aggs
            .entry(pred.name.clone())
            .or_default()
            .push(agg_id);

        // The TableAgg emits (group values in head order, aggregate); project
        // into the head's declared argument order.
        let group_len = group_cols.len();
        let mut group_cursor = 0usize;
        let mut fields = Vec::with_capacity(rule.head.args.len());
        for arg in &rule.head.args {
            match arg {
                HeadArg::Agg(_) => fields.push(PelProgram::compile(&PExpr::Field(group_len))),
                HeadArg::Expr(_) => {
                    fields.push(PelProgram::compile(&PExpr::Field(group_cursor)));
                    group_cursor += 1;
                }
            }
        }
        let head_id = self.add(
            format!("{}:head", rule.id),
            ElementSpec::Project {
                out_name: rule.head.name.as_str().into(),
                fields,
            },
        );
        let mut chain = vec![agg_id, head_id];
        self.route_head(rule, &mut chain)?;
        for pair in chain.windows(2) {
            self.connect(pair[0], 0, pair[1], 0);
        }
        Ok(())
    }

    /// Chooses which table predicate an aggregate rule aggregates over.
    ///
    /// Preference order: a table that binds the aggregate variable directly;
    /// otherwise a non-singleton table (declared size ≠ 1) binding a variable
    /// used in the aggregate's defining assignment; otherwise the last
    /// candidate in body order. (Singleton tables such as `node` act as
    /// parameters, not as the collection being aggregated.)
    fn choose_agg_table<'r>(
        &self,
        rule: &Rule,
        spec: &AggSpec,
        _trigger: &Predicate,
        candidates: &[&'r Predicate],
    ) -> Result<&'r Predicate, PlanError> {
        if candidates.is_empty() {
            return Err(PlanError::in_rule(
                &rule.id,
                "an aggregate rule must join at least one materialized table to aggregate over",
            ));
        }
        if candidates.len() == 1 {
            return Ok(candidates[0]);
        }
        let binds = |pred: &Predicate, var: &str| {
            pred.args
                .iter()
                .any(|a| matches!(a, OExpr::Var(v) if v == var))
        };
        if let Some(var) = &spec.var {
            if let Some(p) = candidates.iter().find(|p| binds(p, var)) {
                return Ok(p);
            }
            // The aggregate variable is assignment-defined; look at the
            // variables feeding that assignment.
            let assign_vars: Vec<String> = rule
                .body
                .iter()
                .find_map(|t| match t {
                    BodyTerm::Assign { var: v, expr } if v == var => Some(expr.variables()),
                    _ => None,
                })
                .unwrap_or_default();
            let non_singleton = |pred: &Predicate| {
                self.program
                    .materialization(&pred.name)
                    .map(|m| m.max_size != SizeBound::Rows(1))
                    .unwrap_or(true)
            };
            if let Some(p) = candidates
                .iter()
                .find(|p| non_singleton(p) && assign_vars.iter().any(|v| binds(p, v)))
            {
                return Ok(p);
            }
        }
        Ok(candidates[candidates.len() - 1])
    }

    /// Builds the `periodic` source spec for a rule.
    fn make_periodic(&self, rule: &Rule, pred: &Predicate) -> Result<ElementSpec, PlanError> {
        if pred.args.len() < 3 {
            return Err(PlanError::in_rule(
                &rule.id,
                "`periodic` requires at least (Node, EventId, Period) arguments",
            ));
        }
        let period_value = match &pred.args[2] {
            OExpr::Const(v) => v.clone(),
            other => {
                return Err(PlanError::in_rule(
                    &rule.id,
                    format!("`periodic` period must be a constant, found {other:?}"),
                ))
            }
        };
        let period = period_value
            .to_double()
            .map_err(|_| PlanError::in_rule(&rule.id, "`periodic` period must be numeric"))?;
        let mut count = None;
        let mut extra = Vec::new();
        for arg in pred.args.iter().skip(3) {
            match arg {
                OExpr::Const(v) => {
                    if count.is_none() {
                        count = Some(v.to_int().map_err(|_| {
                            PlanError::in_rule(&rule.id, "`periodic` count must be an integer")
                        })? as u64);
                    }
                    extra.push(v.clone());
                }
                other => {
                    return Err(PlanError::in_rule(
                        &rule.id,
                        format!("`periodic` extra arguments must be constants, found {other:?}"),
                    ))
                }
            }
        }
        Ok(ElementSpec::Periodic {
            period,
            count,
            period_value,
            extra_args: extra,
        })
    }
}

/// Conjunction of a non-empty list of boolean expressions.
fn and_all(mut exprs: Vec<PExpr>) -> PExpr {
    let mut acc = exprs.remove(0);
    for e in exprs {
        acc = PExpr::bin(BinOp::And, acc, e);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_overlog::compile_checked;

    fn plan_src(src: &str) -> Result<Planned, PlanError> {
        let program = compile_checked(src).expect("program should parse and validate");
        plan(&program, &PlanOptions::new("n1", 7).without_jitter())
    }

    #[test]
    fn plans_a_minimal_ping_program() {
        let src = r#"
            materialize(node, infinity, 1, keys(1)).
            P1 ping@Y(Y, X, E) :- pingEvent@X(X, Y, E).
            P2 pong@X(X, Y, E) :- ping@Y(Y, X, E).
        "#;
        let planned = plan_src(src).unwrap();
        let desc = planned.engine.describe();
        assert!(desc.contains("Demux"));
        assert!(desc.contains("NetOut"));
        assert!(desc.contains("P1:head"));
        assert!(desc.contains("P2:head"));
    }

    #[test]
    fn plans_periodic_join_and_aggregate_rules() {
        let src = r#"
            materialize(member, 120, infinity, keys(2)).
            materialize(sequence, infinity, 1, keys(1)).
            R1 refreshEvent@X(X) :- periodic@X(X, E, 3).
            R2 refreshSeq@X(X, NewSeq) :- refreshEvent@X(X), sequence@X(X, Seq), NewSeq := Seq + 1.
            R3 sequence@X(X, NewS) :- refreshSeq@X(X, NewS).
            P0 pingEvent@X(X, Y, E, max<R>) :- periodic@X(X, E, 2), member@X(X, Y, S, T, L), R := f_rand().
            S1 memberCount@X(X, count<*>) :- member@X(X, A, S, T, L).
        "#;
        let planned = plan_src(src).unwrap();
        let desc = planned.engine.describe();
        assert!(desc.contains("Periodic"));
        // R2 is a single-join rule: it compiles to a fused strand (with a
        // schedule-preserving pad chain), not a generic join element.
        assert!(desc.contains("R2:strand"), "{desc}");
        assert!(desc.contains("R2:pad"), "{desc}");
        assert!(!desc.contains("R2:join:sequence"));
        // Aggregation-probe rules keep the generic chain.
        assert!(desc.contains("P0:agg:member"));
        assert!(desc.contains("S1:tableagg:member"));
        assert!(planned.catalog.is_table("member"));
    }

    #[test]
    fn fusion_can_be_disabled_and_counts_strands() {
        let src = r#"
            materialize(sequence, infinity, 1, keys(1)).
            R1 refreshSeq@X(X, NewSeq) :- refreshEvent@X(X), sequence@X(X, Seq), NewSeq := Seq + 1.
        "#;
        let program = compile_checked(src).unwrap();
        let fused = PlannedProgram::compile(&program, &PlanConfig::new().without_jitter()).unwrap();
        assert_eq!(fused.fused_strand_count(), 1);
        assert!(fused
            .instantiate("n1", 1)
            .engine
            .describe()
            .contains("R1:strand"));

        let generic = PlannedProgram::compile(
            &program,
            &PlanConfig::new().without_jitter().without_fusion(),
        )
        .unwrap();
        assert_eq!(generic.fused_strand_count(), 0);
        let desc = generic.instantiate("n1", 1).engine.describe();
        assert!(desc.contains("R1:join:sequence"), "{desc}");
        assert!(!desc.contains("R1:strand"));
    }

    #[test]
    fn refresh_masks_cover_transitively_neutral_delta_strands() {
        // Each rule re-derives only a dead-end stream: the skipped
        // refresh cascade sustains no soft state, so every delta-strand
        // entry carries the suppression mask (two strands for the
        // two-table M1, one for the single-table M2). With view lowering
        // enabled the single-table M2 becomes a MatView instead —
        // delta-fed consumers are never masked statically (their
        // `would_wake` guards decide) — while M1 probes its co-trigger
        // table and therefore keeps its masked strands in both modes.
        let src = r#"
            materialize(peer, 30, infinity, keys(1,2)).
            materialize(link, infinity, infinity, keys(1,2)).
            M1 seen@X(X, Y) :- peer@X(X, Y), link@X(X, Y).
            M2 known@X(X, Y) :- peer@X(X, Y).
        "#;
        let program = compile_checked(src).unwrap();
        let strands = PlannedProgram::compile(
            &program,
            &PlanConfig::new().without_jitter().without_views(),
        )
        .unwrap();
        assert!(strands.delta_scheduled());
        assert_eq!(strands.refresh_mask_count(), 3);
        let viewed =
            PlannedProgram::compile(&program, &PlanConfig::new().without_jitter()).unwrap();
        assert_eq!(viewed.mat_view_count(), 1);
        assert_eq!(viewed.refresh_mask_count(), 2);
        assert!(!PlannedProgram::compile(
            &program,
            &PlanConfig::new().without_jitter().without_scheduling(),
        )
        .unwrap()
        .delta_scheduled());
    }

    #[test]
    fn refresh_masks_respect_downstream_soft_state() {
        // Identical shape, but the derived stream now sustains a
        // finite-lifetime table: the TTL-neutrality fixpoint un-marks
        // `seen`, so no strand entry may suppress refreshes — skipping
        // the re-derivation would let `cache` rows expire.
        let src = r#"
            materialize(peer, 30, infinity, keys(1,2)).
            materialize(link, infinity, infinity, keys(1,2)).
            materialize(cache, 30, infinity, keys(1,2)).
            M1 seen@X(X, Y) :- peer@X(X, Y), link@X(X, Y).
            M2 cache@X(X, Y) :- seen@X(X, Y).
        "#;
        let program = compile_checked(src).unwrap();
        let strands = PlannedProgram::compile(
            &program,
            &PlanConfig::new().without_jitter().without_views(),
        )
        .unwrap();
        assert_eq!(strands.refresh_mask_count(), 0);
    }

    #[test]
    fn rng_rules_are_never_fused() {
        // The assignment draws on the node RNG: fusing would change the
        // cross-strand evaluation order the RNG stream observes.
        let src = r#"
            materialize(member, 120, infinity, keys(2)).
            R1 pick@X(X, R) :- ev@X(X), member@X(X, A, S), R := f_rand().
        "#;
        let program = compile_checked(src).unwrap();
        let planned =
            PlannedProgram::compile(&program, &PlanConfig::new().without_jitter()).unwrap();
        assert_eq!(planned.fused_strand_count(), 0);
        assert!(planned
            .instantiate("n1", 1)
            .engine
            .describe()
            .contains("R1:join:member"));
    }

    #[test]
    fn fused_strand_matches_generic_chain_end_to_end() {
        // One rule in both translations, same inputs: identical outputs.
        let src = r#"
            materialize(member, 120, infinity, keys(2)).
            R1 out@Y(Y, X, D) :- ev@X(X, Y), member@X(X, Y, S), S > 1, D := S + 10.
        "#;
        let program = compile_checked(src).unwrap();
        let run = |fuse: bool| {
            let opts = if fuse {
                PlanOptions::new("n1", 7).without_jitter()
            } else {
                PlanOptions::new("n1", 7).without_jitter().without_fusion()
            };
            let mut planned = plan(&program, &opts).unwrap();
            planned.engine.set_entry(Route {
                element: 0,
                port: 0,
            });
            planned.engine.start(p2_value::SimTime::ZERO);
            for (y, s) in [("n7", 5i64), ("n8", 1), ("n9", 3)] {
                let member = p2_value::Tuple::new(
                    "member",
                    vec![Value::str("n1"), Value::str(y), Value::Int(s)],
                );
                planned
                    .engine
                    .deliver(member, p2_value::SimTime::from_secs(1));
            }
            let ev = p2_value::Tuple::new("ev", vec![Value::str("n1"), Value::str("n7")]);
            planned.engine.deliver(ev, p2_value::SimTime::from_secs(2))
        };
        let fused = run(true);
        let generic = run(false);
        assert_eq!(fused, generic);
        assert_eq!(fused.len(), 1);
        assert_eq!(&*fused[0].dst, "n7");
        assert_eq!(fused[0].tuple.values()[2], Value::Int(15));
    }

    #[test]
    fn plans_delete_rules_to_delete_elements() {
        let src = r#"
            materialize(neighbor, infinity, infinity, keys(2)).
            L3 delete neighbor@X(X, Y) :- deadNeighbor@X(X, Y).
        "#;
        let planned = plan_src(src).unwrap();
        assert!(planned.engine.describe().contains("Delete"));
    }

    #[test]
    fn rejects_stream_stream_joins() {
        let src = r#"
            R1 out@X(X, Y) :- a@X(X, Y), b@X(X, Y).
        "#;
        let err = plan_src(src).map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("stream-stream"), "{err}");
    }

    #[test]
    fn rejects_delete_of_non_table() {
        let src = r#"
            R1 delete ghost@X(X) :- trigger@X(X).
        "#;
        let err = plan_src(src).map(|_| ()).unwrap_err();
        assert!(
            err.to_string().contains("not a materialized table"),
            "{err}"
        );
    }

    #[test]
    fn rejects_missing_head_location_argument() {
        let src = r#"
            R1 out@Y(X) :- trigger@X(X, Y).
        "#;
        let err = plan_src(src).map(|_| ()).unwrap_err();
        assert!(
            err.to_string()
                .contains("must appear among the head arguments"),
            "{err}"
        );
    }

    #[test]
    fn rejects_aggregate_without_table() {
        let src = r#"
            R1 out@X(X, count<*>) :- trigger@X(X, Y).
        "#;
        let err = plan_src(src).map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("aggregate"), "{err}");
    }

    #[test]
    fn watches_create_collectors() {
        let src = r#"
            P2 pong@X(X, Y, E) :- ping@Y(Y, X, E).
        "#;
        let program = compile_checked(src).unwrap();
        let planned = plan(
            &program,
            &PlanOptions::new("n1", 7).watch("pong").without_jitter(),
        )
        .unwrap();
        assert!(planned.collectors.contains_key("pong"));
    }

    #[test]
    fn secondary_indices_are_created_for_join_columns() {
        let src = r#"
            materialize(member, 120, infinity, keys(2)).
            R1 out@X(X, A) :- trigger@X(X, A), member@X(X, A, S, T, L).
        "#;
        let planned = plan_src(src).unwrap();
        let table = planned.catalog.get("member").unwrap();
        let indexes = table.lock().indexes();
        assert!(indexes.contains(&vec![0, 1]), "indexes: {indexes:?}");
    }

    #[test]
    fn shared_plan_instantiates_identical_nodes() {
        let src = r#"
            materialize(member, 120, infinity, keys(2)).
            R1 out@X(X, A) :- trigger@X(X, A), member@X(X, A, S, T, L).
            S1 memberCount@X(X, count<*>) :- member@X(X, A, S, T, L).
        "#;
        let program = compile_checked(src).unwrap();
        let shared =
            PlannedProgram::compile(&program, &PlanConfig::new().without_jitter()).unwrap();
        assert!(shared.element_count() > 0);
        assert!(shared.edge_count() > 0);
        assert!(shared.has_table("member"));
        assert!(!shared.has_table("trigger"));

        let a = shared.instantiate("n1", 1);
        let b = shared.instantiate("n2", 2);
        // Same compiled structure...
        assert_eq!(a.engine.describe(), b.engine.describe());
        // ...but independent per-node state.
        assert!(a.catalog.get("member").is_some());
        assert!(
            !std::sync::Arc::ptr_eq(
                &a.catalog.get("member").unwrap(),
                &b.catalog.get("member").unwrap()
            ),
            "nodes must not share table storage"
        );
        // The shared plan matches the one-shot path structurally.
        let one_shot = plan(&program, &PlanOptions::new("n1", 1).without_jitter()).unwrap();
        assert_eq!(one_shot.engine.describe(), a.engine.describe());
    }

    #[test]
    fn shared_plan_resolves_facts_per_node() {
        let src = r#"
            materialize(landmark, infinity, 1, keys(1)).
            F0 landmark@NI(NI, "n0").
            J1 joinReq@LI(LI, NI) :- joinEvent@NI(NI), landmark@NI(NI, LI), LI != NI.
        "#;
        let program = compile_checked(src).unwrap();
        let shared =
            PlannedProgram::compile(&program, &PlanConfig::new().without_jitter()).unwrap();
        let facts = shared.facts_for("n5");
        assert_eq!(facts.len(), 1);
        assert_eq!(facts[0].name(), "landmark");
        assert_eq!(facts[0].field(0), &Value::str("n5"));
        assert_eq!(facts[0].field(1), &Value::str("n0"));
    }
}
