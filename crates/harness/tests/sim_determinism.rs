//! Golden determinism tests: the simulator must produce bit-identical
//! traffic statistics for a fixed seed, across runs and across refactors of
//! the event core (NodeId interner, timer index) *and* of the per-node
//! dataflow engine (compiled adjacency, scratch buffers, shared plans).
//!
//! Also property-tests that the engine's compiled adjacency table preserves
//! `Graph::connect` semantics for arbitrary edge sets.

use p2_dataflow::{Element, ElementCtx, Engine, Graph, Route};
use p2_harness::ChordCluster;
use p2_value::Tuple;
use proptest::prelude::*;
use std::collections::HashMap;

/// Runs the golden measurement window on an already-built cluster.
fn measure(mut cluster: ChordCluster) -> (u64, u64, u64, u64, u64) {
    cluster.sim.reset_stats();
    let events_before = cluster.sim.events_processed();
    cluster.run_for(60.0);
    let s = cluster.sim.stats();
    (
        s.messages_sent,
        s.messages_delivered,
        s.messages_dropped,
        s.bytes_sent,
        cluster.sim.events_processed() - events_before,
    )
}

fn ring_stats(n: usize, warmup: u64, seed: u64) -> (u64, u64, u64, u64, u64) {
    measure(ChordCluster::build(n, warmup, seed))
}

fn ring_stats_par(n: usize, warmup: u64, seed: u64, workers: usize) -> (u64, u64, u64, u64, u64) {
    measure(
        ChordCluster::builder(n, seed)
            .par_threads(workers)
            .build(warmup),
    )
}

/// The final ring state: every up node's best-successor pointer.
fn ring_pointers(cluster: &ChordCluster) -> Vec<(String, Option<String>)> {
    cluster
        .sim
        .up_addresses_iter()
        .map(|a| (a.to_string(), cluster.best_successor(a)))
        .collect()
}

#[test]
fn hundred_node_ring_matches_golden_stats() {
    let a = ring_stats(100, 120, 42);
    eprintln!("100-node ring stats: {a:?}");
    // Golden values captured from the pre-refactor (PR 1) simulator: the
    // NodeId/timer-index overhaul (PR 2) and the compiled-adjacency /
    // shared-plan engine overhaul (PR 3) both reproduce the seed's event
    // stream bit-for-bit — traffic counters *and* the number of simulator
    // events processed during the measurement window. Update these only for
    // a deliberate semantic change.
    assert_eq!(
        (a.0, a.1, a.2, a.3),
        (29_634, 29_638, 0, 2_787_660),
        "fixed-seed NetStats diverged from the golden run"
    );
    assert_eq!(
        a.4, 31_838,
        "fixed-seed event count diverged from the golden run"
    );
    let b = ring_stats(100, 120, 42);
    assert_eq!(a, b, "same seed must give identical NetStats across runs");
}

/// The observability layer must be a pure observer: with the rule-level
/// profiler enabled on every node, the golden run's NetStats and event
/// count stay bit-identical, and the profiler must actually have recorded
/// the window's work.
#[test]
fn golden_pin_holds_with_observability_enabled() {
    let mut cluster = ChordCluster::build(100, 120, 42);
    cluster.enable_observability();
    cluster.sim.reset_stats();
    let events_before = cluster.sim.events_processed();
    cluster.run_for(60.0);
    let s = cluster.sim.stats();
    assert_eq!(
        (
            s.messages_sent,
            s.messages_delivered,
            s.messages_dropped,
            s.bytes_sent
        ),
        (29_634, 29_638, 0, 2_787_660),
        "NetStats diverged from the golden run with observability on"
    );
    assert_eq!(
        cluster.sim.events_processed() - events_before,
        31_838,
        "event count diverged from the golden run with observability on"
    );
    let report = cluster.obs_report();
    assert!(report.total_pokes > 0, "profiler recorded no pokes");
    assert!(
        report.wasted_rate > 0.0 && report.wasted_rate < 1.0,
        "implausible wasted-poke rate {}",
        report.wasted_rate
    );
}

/// The parallel sharded simulator must reproduce the sequential golden run
/// bit-for-bit: same NetStats, same events-processed pin, at a worker count
/// that actually exercises cross-shard mailboxes and the conservative
/// window protocol.
#[test]
fn parallel_run_matches_the_sequential_golden_pin() {
    let p = ring_stats_par(100, 120, 42, 2);
    eprintln!("100-node ring stats (2 workers): {p:?}");
    assert_eq!(
        (p.0, p.1, p.2, p.3),
        (29_634, 29_638, 0, 2_787_660),
        "2-worker NetStats diverged from the sequential golden run"
    );
    assert_eq!(
        p.4, 31_838,
        "2-worker event count diverged from the sequential golden run"
    );
}

/// Parallel-vs-sequential equivalence on a small batched-bring-up ring:
/// every worker count yields the sequential run's NetStats, event counters,
/// and final successor pointers (the ring state itself, not just traffic
/// totals).
#[test]
fn worker_counts_agree_on_ring_state_and_stats() {
    let build = |workers: Option<usize>| {
        let builder = ChordCluster::builder(16, 23);
        let builder = match workers {
            None => builder,
            Some(w) => builder.par_threads(w),
        };
        let mut cluster = builder.build_fast(120);
        cluster.run_for(60.0);
        cluster.sim.check_consistency();
        let rounds = match &cluster.sim {
            p2_netsim::AnySimulator::Par(sim) => sim.sync_rounds(),
            p2_netsim::AnySimulator::Seq(_) => 0,
        };
        (
            (
                cluster.sim.stats().messages_sent,
                cluster.sim.stats().bytes_sent,
                cluster.sim.events_processed(),
                cluster.sim.wakeups_processed(),
                ring_pointers(&cluster),
            ),
            rounds,
        )
    };
    let (golden, _) = build(None);
    assert!(
        golden.4.iter().all(|(_, succ)| succ.is_some()),
        "sequential ring did not form"
    );
    let mut round_counts = Vec::new();
    for workers in [1, 3, 4] {
        let (got, rounds) = build(Some(workers));
        assert_eq!(
            got, golden,
            "{workers}-worker Chord run diverged from the sequential engine"
        );
        round_counts.push(rounds);
    }
    // The synchronization-round structure itself is sharding-invariant: a
    // divergence here is the earliest canary for event-timeline drift (it
    // is exactly how the HashSet-ordered secondary index bug was caught).
    assert!(
        round_counts.windows(2).all(|w| w[0] == w[1]),
        "sync round counts differ across worker counts: {round_counts:?}"
    );
}

/// Join-time successor-list seeding (JS1) must still form a correct ring
/// with the batched bring-up, and must not regress bring-up time.
#[test]
fn join_seeded_bring_up_forms_a_ring() {
    let base = ChordCluster::builder(16, 31).build_fast(60);
    let seeded = ChordCluster::builder(16, 31).join_seed(true).build_fast(60);
    seeded.assert_single_cycle();
    assert!(
        seeded.bring_up_virtual_secs() <= base.bring_up_virtual_secs(),
        "JS1 seeding slowed bring-up: {} s vs {} s",
        seeded.bring_up_virtual_secs(),
        base.bring_up_virtual_secs()
    );
}

/// A no-op element for adjacency-compilation tests.
struct Sink;

impl Element for Sink {
    fn class(&self) -> &'static str {
        "Sink"
    }
    fn push(&mut self, _port: usize, _tuple: &Tuple, _ctx: &mut ElementCtx<'_>) {}
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn compiled_adjacency_preserves_connect_semantics(
        n_elements in 1usize..12,
        edges in proptest::collection::vec(
            (0usize..12, 0usize..4, 0usize..12, 0usize..4),
            0..40,
        ),
    ) {
        // For arbitrary edge sets, the engine's compiled adjacency must
        // return exactly the routes declared through `Graph::connect`, in
        // call order, and empty route lists everywhere else.
        let mut graph = Graph::new();
        for i in 0..n_elements {
            graph.add(format!("e{i}"), Box::new(Sink));
        }
        // Mirror of what `connect` is asked to record, in call order.
        let mut expected: HashMap<(usize, usize), Vec<Route>> = HashMap::new();
        let mut max_port = 0usize;
        for (from, out_port, to, in_port) in edges {
            let (from, to) = (from % n_elements, to % n_elements);
            graph.connect(from, out_port, to, in_port);
            expected.entry((from, out_port)).or_default().push(Route {
                element: to,
                port: in_port,
            });
            max_port = max_port.max(out_port);
        }
        let engine = Engine::new(graph, "n1", 1);
        for e in 0..n_elements {
            for p in 0..=max_port + 1 {
                let compiled = engine.routes_of(e, p);
                let declared = expected.get(&(e, p)).map(Vec::as_slice).unwrap_or(&[]);
                prop_assert_eq!(
                    compiled, declared,
                    "adjacency mismatch at element {} port {}", e, p
                );
            }
        }
        // Unknown elements and ports answer empty, not panic.
        prop_assert!(engine.routes_of(n_elements + 1, 0).is_empty());
    }
}
