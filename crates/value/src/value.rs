//! The dynamically typed scalar passed between P2 dataflow elements.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::error::ValueError;
use crate::time::SimTime;
use crate::uint160::Uint160;

/// A dynamically typed P2 value.
///
/// P2's concrete type system ("Values ... include strings, integers,
/// timestamps, and large unique identifiers") is reproduced here together
/// with the conversion rules between the types. Node addresses are
/// represented as strings (the paper is deliberately vague about the
/// addressing scheme; the network simulator resolves address strings to
/// simulated endpoints).
#[derive(Debug, Clone)]
pub enum Value {
    /// The null / absent value (also the value of the `"-"` address in
    /// OverLog programs once parsed, though it is kept as a string there).
    Null,
    /// A boolean.
    Bool(bool),
    /// A 64-bit signed integer.
    Int(i64),
    /// A double-precision float.
    Double(f64),
    /// A string; also used for node addresses and tuple/table names.
    Str(Arc<str>),
    /// A 160-bit identifier on the Chord ring.
    Id(Uint160),
    /// A point in (simulated) time.
    Time(SimTime),
}

impl Value {
    /// Convenience constructor for strings.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Human-readable name of the value's type.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Double(_) => "double",
            Value::Str(_) => "str",
            Value::Id(_) => "id",
            Value::Time(_) => "time",
        }
    }

    /// True if the value is null.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interprets the value as a boolean.
    ///
    /// Numbers are truthy when non-zero; strings when non-empty; null is
    /// false.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Double(d) => *d != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::Id(id) => !id.is_zero(),
            Value::Time(t) => t.as_micros() != 0,
        }
    }

    /// Converts to a signed integer.
    pub fn to_int(&self) -> Result<i64, ValueError> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Bool(b) => Ok(*b as i64),
            Value::Double(d) => Ok(*d as i64),
            Value::Time(t) => Ok(t.as_micros() as i64),
            Value::Id(id) => Ok(id.low_u64() as i64),
            Value::Str(s) => s.parse::<i64>().map_err(|_| ValueError::TypeMismatch {
                op: "to_int",
                got: format!("{self}"),
            }),
            Value::Null => Err(ValueError::TypeMismatch {
                op: "to_int",
                got: "null".to_string(),
            }),
        }
    }

    /// Converts to a non-negative shift amount / small count.
    pub fn to_u32(&self) -> Result<u32, ValueError> {
        let i = self.to_int()?;
        if (0..=u32::MAX as i64).contains(&i) {
            Ok(i as u32)
        } else {
            Err(ValueError::TypeMismatch {
                op: "to_u32",
                got: format!("{self}"),
            })
        }
    }

    /// Converts to a double.
    ///
    /// Timestamps convert to seconds so that OverLog programs can write
    /// `f_now() - T > 20` with the paper's second-granularity thresholds.
    pub fn to_double(&self) -> Result<f64, ValueError> {
        match self {
            Value::Double(d) => Ok(*d),
            Value::Int(i) => Ok(*i as f64),
            Value::Bool(b) => Ok(*b as i64 as f64),
            Value::Time(t) => Ok(t.as_secs_f64()),
            Value::Str(s) => s.parse::<f64>().map_err(|_| ValueError::TypeMismatch {
                op: "to_double",
                got: format!("{self}"),
            }),
            Value::Id(_) | Value::Null => Err(ValueError::TypeMismatch {
                op: "to_double",
                got: format!("{self}"),
            }),
        }
    }

    /// Converts to a 160-bit identifier.
    ///
    /// Integers widen; strings are hashed into the identifier space (this is
    /// how node addresses become Chord IDs).
    pub fn to_id(&self) -> Result<Uint160, ValueError> {
        match self {
            Value::Id(id) => Ok(*id),
            Value::Int(i) if *i >= 0 => Ok(Uint160::from_u64(*i as u64)),
            Value::Str(s) => Ok(Uint160::hash_of(s.as_bytes())),
            _ => Err(ValueError::TypeMismatch {
                op: "to_id",
                got: format!("{self}"),
            }),
        }
    }

    /// Converts to a timestamp.
    pub fn to_time(&self) -> Result<SimTime, ValueError> {
        match self {
            Value::Time(t) => Ok(*t),
            Value::Int(i) if *i >= 0 => Ok(SimTime::from_secs(*i as u64)),
            Value::Double(d) => Ok(SimTime::from_secs_f64(*d)),
            _ => Err(ValueError::TypeMismatch {
                op: "to_time",
                got: format!("{self}"),
            }),
        }
    }

    /// Returns the string content if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Converts to an owned display string (used for address routing).
    pub fn to_display_string(&self) -> String {
        format!("{self}")
    }

    /// A rank used to order values of different types (so that heterogeneous
    /// comparisons and index keys are total).
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Double(_) => 3,
            Value::Time(_) => 4,
            Value::Id(_) => 5,
            Value::Str(_) => 6,
        }
    }

    /// Number of bytes this value occupies in the simulated wire encoding.
    ///
    /// The sizes approximate a tagged XDR-like encoding: one type tag byte
    /// plus the payload. Bandwidth figures only require the model to be
    /// consistent between the declarative and hand-coded implementations.
    pub fn wire_size(&self) -> usize {
        1 + match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Double(_) | Value::Time(_) => 8,
            Value::Id(_) => 20,
            Value::Str(s) => 4 + s.len(),
        }
    }

    /// Numeric comparison across Int/Double/Time/Bool; falls back to the
    /// structural ordering for other combinations.
    pub fn compare(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Id(a), Id(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Time(a), Time(b)) => a.cmp(b),
            (Int(_) | Double(_) | Bool(_) | Time(_), Int(_) | Double(_) | Bool(_) | Time(_)) => {
                let a = self.to_double().unwrap_or(f64::NAN);
                let b = other.to_double().unwrap_or(f64::NAN);
                a.total_cmp(&b)
            }
            (Id(a), Int(b)) if *b >= 0 => a.cmp(&Uint160::from_u64(*b as u64)),
            (Int(a), Id(b)) if *a >= 0 => Uint160::from_u64(*a as u64).cmp(b),
            _ => self
                .type_rank()
                .cmp(&other.type_rank())
                .then_with(|| self.structural_cmp(other)),
        }
    }

    fn structural_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Double(a), Double(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Id(a), Id(b)) => a.cmp(b),
            (Time(a), Time(b)) => a.cmp(b),
            _ => Ordering::Equal,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.compare(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.compare(other)
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Hash must be compatible with `compare`-based equality: numeric
        // types that can compare equal must hash identically, so all numeric
        // variants hash through their f64 bit pattern.
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(_) | Value::Int(_) | Value::Double(_) | Value::Time(_) => {
                1u8.hash(state);
                let d = self.to_double().unwrap_or(f64::NAN);
                d.to_bits().hash(state);
            }
            Value::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
            Value::Id(id) => {
                3u8.hash(state);
                id.limbs().hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Id(id) => write!(f, "{id}"),
            Value::Time(t) => write!(f, "{t}"),
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::str(v)
    }
}

impl From<Uint160> for Value {
    fn from(v: Uint160) -> Self {
        Value::Id(v)
    }
}

impl From<SimTime> for Value {
    fn from(v: SimTime) -> Self {
        Value::Time(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::Int(42).to_int().unwrap(), 42);
        assert_eq!(Value::Double(2.9).to_int().unwrap(), 2);
        assert_eq!(Value::Bool(true).to_int().unwrap(), 1);
        assert_eq!(Value::str("17").to_int().unwrap(), 17);
        assert!(Value::str("xyz").to_int().is_err());
        assert!(Value::Null.to_int().is_err());

        assert_eq!(Value::Int(3).to_double().unwrap(), 3.0);
        assert_eq!(
            Value::Time(SimTime::from_millis(2500)).to_double().unwrap(),
            2.5
        );

        assert_eq!(Value::Int(5).to_id().unwrap(), Uint160::from_u64(5));
        assert_eq!(Value::str("n1").to_id().unwrap(), Uint160::hash_of(b"n1"));
        assert!(Value::Double(1.0).to_id().is_err());

        assert_eq!(Value::Int(3).to_time().unwrap(), SimTime::from_secs(3));
        assert_eq!(
            Value::Double(0.5).to_time().unwrap(),
            SimTime::from_millis(500)
        );
    }

    #[test]
    fn truthiness() {
        assert!(!Value::Null.truthy());
        assert!(!Value::Bool(false).truthy());
        assert!(Value::Int(-3).truthy());
        assert!(!Value::Int(0).truthy());
        assert!(Value::str("x").truthy());
        assert!(!Value::str("").truthy());
        assert!(!Value::Id(Uint160::ZERO).truthy());
    }

    #[test]
    fn numeric_comparisons_cross_type() {
        assert_eq!(Value::Int(2), Value::Double(2.0));
        assert!(Value::Int(2) < Value::Double(2.5));
        assert!(Value::Time(SimTime::from_secs(3)) > Value::Int(2));
        assert_eq!(Value::Time(SimTime::from_secs(3)), Value::Int(3));
        assert!(Value::Bool(true) == Value::Int(1));
    }

    #[test]
    fn id_comparisons() {
        assert!(Value::Id(Uint160::from_u64(5)) < Value::Id(Uint160::from_u64(9)));
        assert_eq!(Value::Id(Uint160::from_u64(5)), Value::Int(5));
    }

    #[test]
    fn heterogeneous_ordering_is_total_and_consistent() {
        let vals = [
            Value::Null,
            Value::Bool(true),
            Value::Int(-1),
            Value::Double(0.5),
            Value::str("abc"),
            Value::Id(Uint160::from_u64(9)),
            Value::Time(SimTime::from_secs(1)),
        ];
        for a in &vals {
            for b in &vals {
                // Antisymmetry of the ordering.
                if a.compare(b) == Ordering::Less {
                    assert_eq!(b.compare(a), Ordering::Greater, "{a} vs {b}");
                }
                // Hash/eq consistency.
                if a == b {
                    assert_eq!(hash_of(a), hash_of(b));
                }
            }
        }
    }

    #[test]
    fn equal_numerics_hash_equal() {
        assert_eq!(hash_of(&Value::Int(7)), hash_of(&Value::Double(7.0)));
        assert_eq!(
            hash_of(&Value::Time(SimTime::from_secs(7))),
            hash_of(&Value::Int(7))
        );
    }

    #[test]
    fn wire_sizes() {
        assert_eq!(Value::Null.wire_size(), 1);
        assert_eq!(Value::Bool(true).wire_size(), 2);
        assert_eq!(Value::Int(1).wire_size(), 9);
        assert_eq!(Value::Id(Uint160::ONE).wire_size(), 21);
        assert_eq!(Value::str("abcd").wire_size(), 1 + 4 + 4);
    }

    #[test]
    fn display() {
        assert_eq!(Value::str("n3").to_string(), "n3");
        assert_eq!(Value::Int(-2).to_string(), "-2");
        assert_eq!(Value::Null.to_string(), "null");
    }
}
