//! Observability determinism gates: the rule-level profiler and the
//! provenance trace must be pure observers. The JSONL trace and the merged
//! profiler counters of a tagged lookup are bit-identical between the
//! sequential simulator and the sharded one at every worker count, and the
//! profile's wasted-poke audit must agree with the static analyzer's
//! refresh-transparency classification.

use p2_harness::ChordCluster;
use p2_obs::{ElemCounters, TraceKind};
use p2_value::Uint160;

/// Builds a 16-node ring, profiles a settle window, then traces one tagged
/// lookup; returns everything the observability layer produced.
fn traced_run(workers: Option<usize>) -> (String, Vec<ElemCounters>, Option<String>) {
    let builder = ChordCluster::builder(16, 23);
    let builder = match workers {
        None => builder,
        Some(w) => builder.par_threads(w),
    };
    let mut cluster = builder.build_fast(120);
    cluster.enable_observability();
    cluster.run_for(30.0);
    let key = Uint160::hash_of(b"traced determinism object");
    let origin = cluster.addrs()[5].clone();
    let handle = cluster.issue_traced_lookup(&origin, key);
    cluster.run_for(10.0);
    let owner = cluster.outcome(&handle).map(|o| o.owner);
    (cluster.drain_trace_jsonl(), cluster.obs_counters(), owner)
}

#[test]
fn trace_and_profile_are_identical_across_worker_counts() {
    let (jsonl, counters, owner) = traced_run(None);
    assert!(owner.is_some(), "sequential traced lookup did not complete");
    assert!(!jsonl.is_empty(), "tagged lookup left no trace");
    assert!(
        jsonl.lines().any(|l| l.contains("lookupResults")),
        "trace never derived the lookup result"
    );
    assert!(
        counters.iter().any(|c| c.invocations > 0),
        "profiler recorded no work"
    );
    for w in [1, 2, 4] {
        let (j, c, o) = traced_run(Some(w));
        assert_eq!(o, owner, "{w}-worker lookup owner diverged");
        assert_eq!(j, jsonl, "{w}-worker JSONL trace diverged");
        assert_eq!(c, counters, "{w}-worker profiler counters diverged");
    }
}

/// The wasted-poke audit in both scheduling regimes. With the delta
/// scheduler off, the historical PR 9 claim holds: refresh-transparent
/// rules carry the bulk of the ran-and-wasted pokes. With the scheduler on
/// (the default), those same invocations are counted as suppressed-never-ran
/// instead of ran-and-wasted — the audit's PR 10 blind-spot fix — and
/// because the two runs process identical event streams, pokes are
/// conserved: every poke the scheduler suppressed is one the unscheduled
/// engine ran.
#[test]
fn wasted_poke_audit_matches_rule_classification() {
    let profile = |schedule: bool| {
        let mut cluster = ChordCluster::builder(16, 23)
            .delta_schedule(schedule)
            .build_fast(120);
        cluster.enable_observability();
        cluster.run_for(60.0);
        cluster.obs_report()
    };

    let off = profile(false);
    assert!(off.total_pokes > 0, "no pokes profiled");
    assert_eq!(
        off.total_suppressed_pokes, 0,
        "poke-everything run reported suppressed pokes"
    );
    assert!(
        off.total_wasted_pokes > 0,
        "steady-state maintenance should contain refresh no-ops"
    );
    // The PR-8 classification predicted that refresh-transparent rules
    // (the SU0/SU1-style soft-state refresh paths) account for the bulk of
    // the no-op pokes; the measured audit must agree.
    assert!(
        off.refresh_transparent.wasted_pokes >= off.other_rules.wasted_pokes,
        "refresh-transparent rules no longer dominate wasted pokes: {} vs {}",
        off.refresh_transparent.wasted_pokes,
        off.other_rules.wasted_pokes
    );
    // Every rule the analyzer classified appears in the profile.
    assert!(
        off.rules.iter().filter(|r| r.class.is_some()).count() > 30,
        "rule attribution lost most rules"
    );

    let on = profile(true);
    assert!(
        on.total_suppressed_pokes > 0,
        "delta scheduling suppressed no pokes"
    );
    // Poke conservation across regimes: identical event streams mean every
    // suppressed poke corresponds to an invocation the unscheduled engine
    // performed (suppressed pokes are counted separately, never as ran).
    assert_eq!(
        on.total_pokes + on.total_suppressed_pokes,
        off.total_pokes,
        "ran + suppressed pokes with scheduling on must equal the \
         poke-everything run's invocations"
    );
    // The scheduler's whole point: the refresh-transparent bucket's
    // ran-and-wasted pokes collapse (the `would_wake` guards catch the
    // refresh no-ops before they run) and the overall wasted rate drops.
    assert!(
        on.refresh_transparent.wasted_pokes < off.refresh_transparent.wasted_pokes,
        "scheduling did not reduce refresh-transparent waste: {} vs {}",
        on.refresh_transparent.wasted_pokes,
        off.refresh_transparent.wasted_pokes
    );
    assert!(
        on.wasted_rate < off.wasted_rate,
        "scheduling did not reduce the wasted-poke rate: {:.3} vs {:.3}",
        on.wasted_rate,
        off.wasted_rate
    );
}

#[test]
fn observability_is_off_by_default_and_trace_is_scoped_to_the_tag() {
    let mut cluster = ChordCluster::builder(8, 7).build_fast(120);
    // Off by default: no counters exist, draining yields nothing.
    assert!(cluster.obs_counters().is_empty());
    assert!(cluster.drain_trace().is_empty());

    cluster.enable_observability();
    let key = Uint160::hash_of(b"scoped trace");
    let origin = cluster.addrs()[3].clone();
    let handle = cluster.issue_traced_lookup(&origin, key);
    cluster.run_for(10.0);
    let events = cluster.drain_trace();
    assert!(!events.is_empty());
    // Every traced tuple carries the tag (the lookup's event id).
    let tag = format!("{}", handle.event);
    for e in &events {
        assert!(
            e.tuple.contains(&tag),
            "untagged tuple in trace: {}",
            e.tuple
        );
    }
    // The cascade re-enters remote nodes: arrivals recorded on more than
    // one node, and the sends pair up with them.
    let recv_nodes: std::collections::BTreeSet<_> = events
        .iter()
        .filter(|e| e.kind == TraceKind::Recv)
        .map(|e| e.node.clone())
        .collect();
    assert!(recv_nodes.len() > 1, "trace never left the origin");
    assert!(events.iter().any(|e| e.kind == TraceKind::Send));
    // Draining consumed the rings.
    assert!(cluster.drain_trace().is_empty());
}
