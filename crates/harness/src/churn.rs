//! Churn generation following Rhea et al. ("Handling Churn in a DHT"), the
//! methodology cited by §5.2 of the paper.
//!
//! Node session times are drawn from an exponential distribution with the
//! configured mean; when a session ends the node crashes and is immediately
//! replaced by a fresh node at the same address, which rejoins through the
//! landmark. The population therefore stays constant while membership turns
//! over, exactly as in the paper's churn experiments.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Schedule of upcoming churn events for a fixed node population.
#[derive(Debug)]
pub struct ChurnSchedule {
    mean_session_secs: f64,
    rng: SmallRng,
    /// Min-heap of (death time bits, node index); death times are positive
    /// finite seconds, whose IEEE-754 bit patterns order like the floats, so
    /// pop and reschedule are O(log n) (the seed kept a sorted `Vec` and
    /// shifted it per event). The landmark (index 0) is never churned so
    /// rejoining nodes always have a working entry point.
    deaths: BinaryHeap<Reverse<(u64, usize)>>,
}

impl ChurnSchedule {
    /// Creates a schedule for `n` nodes with the given mean session time.
    pub fn new(n: usize, mean_session_secs: f64, start_secs: f64, seed: u64) -> ChurnSchedule {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut deaths = BinaryHeap::with_capacity(n.saturating_sub(1));
        for i in 1..n {
            let lifetime = sample_exponential(&mut rng, mean_session_secs);
            deaths.push(Reverse(((start_secs + lifetime).to_bits(), i)));
        }
        ChurnSchedule {
            mean_session_secs,
            rng,
            deaths,
        }
    }

    /// The time (in seconds) of the next churn event, if any.
    pub fn next_event_at(&self) -> Option<f64> {
        self.deaths.peek().map(|Reverse((t, _))| f64::from_bits(*t))
    }

    /// Pops the next churn event, returning `(time, node index)` and
    /// scheduling that node's next death (after it rejoins).
    pub fn pop(&mut self) -> Option<(f64, usize)> {
        let Reverse((bits, idx)) = self.deaths.pop()?;
        let at = f64::from_bits(bits);
        let next_lifetime = sample_exponential(&mut self.rng, self.mean_session_secs);
        self.deaths
            .push(Reverse(((at + next_lifetime).to_bits(), idx)));
        Some((at, idx))
    }

    /// Expected number of churn events per second across the population.
    pub fn expected_rate(&self, population: usize) -> f64 {
        if self.mean_session_secs <= 0.0 {
            return 0.0;
        }
        population.saturating_sub(1) as f64 / self.mean_session_secs
    }
}

fn sample_exponential(rng: &mut SmallRng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_time_ordered_and_continuous() {
        let mut schedule = ChurnSchedule::new(50, 600.0, 100.0, 7);
        let mut last = 0.0;
        for _ in 0..200 {
            let (at, idx) = schedule.pop().unwrap();
            assert!(at >= last, "events must be non-decreasing in time");
            assert!(at >= 100.0);
            assert!((1..50).contains(&idx), "landmark must never churn");
            last = at;
        }
    }

    #[test]
    fn mean_lifetime_approximates_the_configured_session_time() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mean = 480.0;
        let samples: Vec<f64> = (0..20_000)
            .map(|_| sample_exponential(&mut rng, mean))
            .collect();
        let observed = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(
            (observed - mean).abs() / mean < 0.05,
            "observed mean {observed} too far from {mean}"
        );
    }

    #[test]
    fn expected_rate_scales_inversely_with_session_time() {
        let short = ChurnSchedule::new(100, 8.0 * 60.0, 0.0, 1);
        let long = ChurnSchedule::new(100, 128.0 * 60.0, 0.0, 1);
        assert!(short.expected_rate(100) > long.expected_rate(100) * 10.0);
    }
}
