//! The imperative Chord node.

use std::collections::HashMap;

use p2_netsim::{Envelope, Host};
use p2_value::{SimTime, Tuple, TupleBuilder, Uint160, Value};

/// Protocol constants for the baseline node.
///
/// Defaults match the OverLog specification so that the comparison measures
/// the implementation style, not the protocol parameters.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Maximum number of successors kept (OverLog evicts above 4).
    pub successor_count: usize,
    /// Stabilization period in seconds.
    pub stabilize_period: f64,
    /// Finger-fixing period in seconds.
    pub fix_finger_period: f64,
    /// Liveness-ping period in seconds.
    pub ping_period: f64,
    /// Seconds of silence after which a peer is considered dead.
    pub liveness_timeout: f64,
    /// Number of identifier bits (160 for Chord).
    pub finger_bits: u32,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            successor_count: 4,
            stabilize_period: 15.0,
            fix_finger_period: 10.0,
            ping_period: 5.0,
            liveness_timeout: 20.0,
            finger_bits: 160,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Peer {
    id: Uint160,
    addr: String,
}

/// A hand-coded Chord node implementing the simulator [`Host`] interface.
///
/// Wire messages reuse the tuple names of the OverLog specification
/// (`lookup`, `lookupResults`, `stabilizeRequest`, `pingReq`, ...) so the
/// simulator's per-name byte accounting remains comparable between the two
/// implementations.
pub struct BaselineChord {
    addr: String,
    id: Uint160,
    landmark: Option<String>,
    config: BaselineConfig,
    successors: Vec<Peer>,
    predecessor: Option<Peer>,
    fingers: Vec<Option<Peer>>,
    next_finger: u32,
    pending_finger: HashMap<i64, u32>,
    join_event: Option<i64>,
    joined: bool,
    last_heard: HashMap<String, SimTime>,
    next_stabilize: Option<SimTime>,
    next_fix: Option<SimTime>,
    next_ping: Option<SimTime>,
    lookup_results: Vec<(SimTime, Tuple)>,
    rng: u64,
    now: SimTime,
}

impl BaselineChord {
    /// Creates a node. `landmark` is `None` for the bootstrap node.
    pub fn new(addr: &str, landmark: Option<&str>, seed: u64, config: BaselineConfig) -> Self {
        let bits = config.finger_bits as usize;
        BaselineChord {
            addr: addr.to_string(),
            id: Uint160::hash_of(addr.as_bytes()),
            landmark: landmark.map(str::to_string),
            config,
            successors: Vec::new(),
            predecessor: None,
            fingers: vec![None; bits],
            next_finger: 0,
            pending_finger: HashMap::new(),
            join_event: None,
            joined: false,
            last_heard: HashMap::new(),
            next_stabilize: None,
            next_fix: None,
            next_ping: None,
            lookup_results: Vec::new(),
            rng: if seed == 0 { 1 } else { seed },
            now: SimTime::ZERO,
        }
    }

    /// The node's address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The node's 160-bit identifier.
    pub fn id(&self) -> Uint160 {
        self.id
    }

    /// Current successor list (closest first).
    pub fn successors(&self) -> Vec<String> {
        self.successors.iter().map(|p| p.addr.clone()).collect()
    }

    /// Current predecessor address, if known.
    pub fn predecessor(&self) -> Option<String> {
        self.predecessor.as_ref().map(|p| p.addr.clone())
    }

    /// Number of distinct finger entries currently populated.
    pub fn fingers_filled(&self) -> usize {
        self.fingers.iter().filter(|f| f.is_some()).count()
    }

    /// True once the node has at least one successor.
    pub fn is_joined(&self) -> bool {
        !self.successors.is_empty()
    }

    /// `lookupResults` tuples that arrived at this node, with arrival times.
    pub fn lookup_results(&self) -> &[(SimTime, Tuple)] {
        &self.lookup_results
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn fresh_event(&mut self) -> i64 {
        (self.next_rand() >> 1) as i64
    }

    fn best_successor(&self) -> Option<&Peer> {
        self.successors.first()
    }

    fn mark_heard(&mut self, addr: &str) {
        self.last_heard.insert(addr.to_string(), self.now);
    }

    fn add_successor(&mut self, id: Uint160, addr: &str) {
        if addr == self.addr {
            // Self-successor is only meaningful for a single-node ring.
            if !self.successors.is_empty() {
                return;
            }
        } else {
            // A real peer supersedes the bootstrap self-successor.
            let me = self.addr.clone();
            self.successors.retain(|p| p.addr != me);
        }
        if self.successors.iter().any(|p| p.addr == addr) {
            return;
        }
        self.successors.push(Peer {
            id,
            addr: addr.to_string(),
        });
        let me = self.id;
        self.successors.sort_by_key(|p| me.ring_distance_to(p.id));
        self.successors.truncate(self.config.successor_count);
        // Third-party information starts the liveness clock but does not
        // count as hearing from the peer itself.
        self.last_heard.entry(addr.to_string()).or_insert(self.now);
    }

    fn remove_peer(&mut self, addr: &str) {
        self.successors.retain(|p| p.addr != addr);
        if self.predecessor.as_ref().map(|p| p.addr.as_str()) == Some(addr) {
            self.predecessor = None;
        }
        for f in self.fingers.iter_mut() {
            if f.as_ref().map(|p| p.addr.as_str()) == Some(addr) {
                *f = None;
            }
        }
    }

    /// The finger (or successor) closest to, but preceding, `key`.
    fn closest_preceding(&self, key: Uint160) -> Option<&Peer> {
        let mut best: Option<&Peer> = None;
        let candidates = self.fingers.iter().flatten().chain(self.successors.iter());
        for peer in candidates {
            if peer.addr == self.addr {
                continue;
            }
            if peer.id.in_oo(self.id, key) {
                let better = match best {
                    None => true,
                    Some(b) => peer.id.ring_distance_to(key) < b.id.ring_distance_to(key),
                };
                if better {
                    best = Some(peer);
                }
            }
        }
        best.or_else(|| self.successors.iter().find(|p| p.addr != self.addr))
    }

    fn handle_lookup(
        &mut self,
        key: Uint160,
        requester: &str,
        event: i64,
        out: &mut Vec<Envelope>,
    ) {
        if let Some(succ) = self.best_successor() {
            if key.in_oc(self.id, succ.id) {
                let result = TupleBuilder::new("lookupResults")
                    .push(requester)
                    .push(Value::Id(key))
                    .push(Value::Id(succ.id))
                    .push(succ.addr.as_str())
                    .push(event)
                    .build();
                out.push(Envelope::new(requester, result));
                return;
            }
        }
        if let Some(next) = self.closest_preceding(key) {
            let fwd = TupleBuilder::new("lookup")
                .push(next.addr.as_str())
                .push(Value::Id(key))
                .push(requester)
                .push(event)
                .build();
            let dst = next.addr.clone();
            out.push(Envelope::new(dst, fwd));
        }
        // With no routing state at all the lookup is dropped, as in the
        // declarative specification.
    }

    fn do_stabilize(&mut self, out: &mut Vec<Envelope>) {
        let me = self.addr.clone();
        let my_id = self.id;
        // Classic Chord stabilization on a self-successor: adopt our own
        // predecessor as successor (this is how the bootstrap node's ring
        // pointer leaves itself once the first peer joins).
        if self.best_successor().map(|s| s.addr == self.addr) == Some(true) {
            if let Some(pred) = self.predecessor.clone() {
                self.add_successor(pred.id, &pred.addr);
            }
        }
        if let Some(succ) = self.best_successor().cloned() {
            if succ.addr != self.addr {
                out.push(Envelope::new(
                    succ.addr.clone(),
                    TupleBuilder::new("stabilizeRequest")
                        .push(succ.addr.as_str())
                        .push(me.as_str())
                        .build(),
                ));
                out.push(Envelope::new(
                    succ.addr.clone(),
                    TupleBuilder::new("notifyPredecessor")
                        .push(succ.addr.as_str())
                        .push(Value::Id(my_id))
                        .push(me.as_str())
                        .build(),
                ));
            }
        }
        for succ in self.successors.clone() {
            if succ.addr != self.addr {
                out.push(Envelope::new(
                    succ.addr.clone(),
                    TupleBuilder::new("sendSuccessors")
                        .push(succ.addr.as_str())
                        .push(me.as_str())
                        .build(),
                ));
            }
        }
    }

    fn do_fix_fingers(&mut self, out: &mut Vec<Envelope>) {
        let i = self.next_finger % self.config.finger_bits;
        self.next_finger = (self.next_finger + 1) % self.config.finger_bits;
        let target = self.id.wrapping_add(Uint160::pow2(i));
        let event = self.fresh_event();
        self.pending_finger.insert(event, i);
        let mut envs = Vec::new();
        self.handle_lookup(target, &self.addr.clone(), event, &mut envs);
        out.extend(envs);
    }

    fn do_ping(&mut self, out: &mut Vec<Envelope>) {
        let mut targets: Vec<String> = self
            .successors
            .iter()
            .map(|p| p.addr.clone())
            .chain(self.predecessor.iter().map(|p| p.addr.clone()))
            .filter(|a| *a != self.addr)
            .collect();
        targets.dedup();
        for t in targets {
            let event = self.fresh_event();
            out.push(Envelope::new(
                t.clone(),
                TupleBuilder::new("pingReq")
                    .push(t.as_str())
                    .push(self.addr.as_str())
                    .push(event)
                    .build(),
            ));
        }
        // Evict peers that have been silent too long.
        let timeout = SimTime::from_secs_f64(self.config.liveness_timeout);
        let dead: Vec<String> = self
            .successors
            .iter()
            .map(|p| p.addr.clone())
            .chain(self.predecessor.iter().map(|p| p.addr.clone()))
            .filter(|a| *a != self.addr)
            .filter(|a| {
                self.last_heard
                    .get(a)
                    .map(|t| self.now.saturating_sub(*t) > timeout)
                    .unwrap_or(false)
            })
            .collect();
        for d in dead {
            self.remove_peer(&d);
        }
        // A node that has lost every successor rejoins through its landmark.
        if self.successors.is_empty() {
            if let Some(envs) = self.initiate_join() {
                out.extend(envs);
            }
        }
    }

    fn initiate_join(&mut self) -> Option<Vec<Envelope>> {
        match self.landmark.clone() {
            None => {
                let me = self.addr.clone();
                let id = self.id;
                self.add_successor(id, &me);
                self.joined = true;
                None
            }
            Some(landmark) => {
                let event = self.fresh_event();
                self.join_event = Some(event);
                Some(vec![Envelope::new(
                    landmark.clone(),
                    TupleBuilder::new("lookup")
                        .push(landmark.as_str())
                        .push(Value::Id(self.id))
                        .push(self.addr.as_str())
                        .push(event)
                        .build(),
                )])
            }
        }
    }
}

impl Host for BaselineChord {
    fn start(&mut self, now: SimTime) -> Vec<Envelope> {
        self.now = now;
        // Jitter the initial phases so nodes do not act in lock-step.
        let phase = |period: f64, r: u64| {
            SimTime::from_secs_f64(period * ((r >> 11) as f64 / (1u64 << 53) as f64))
        };
        let r1 = self.next_rand();
        let r2 = self.next_rand();
        let r3 = self.next_rand();
        self.next_stabilize = Some(now + phase(self.config.stabilize_period, r1));
        self.next_fix = Some(now + phase(self.config.fix_finger_period, r2));
        self.next_ping = Some(now + phase(self.config.ping_period, r3));
        self.initiate_join().unwrap_or_default()
    }

    fn deliver(&mut self, tuple: Tuple, now: SimTime) -> Vec<Envelope> {
        self.now = self.now.max(now);
        let mut out = Vec::new();
        match tuple.name() {
            "join" => {
                if let Some(envs) = self.initiate_join() {
                    out.extend(envs);
                }
            }
            "lookup" => {
                let (Ok(key), Ok(requester), Ok(event)) =
                    (tuple.get(1), tuple.get(2), tuple.get(3))
                else {
                    return out;
                };
                let key = key.to_id().unwrap_or(Uint160::ZERO);
                let requester = requester.to_display_string();
                let event = event.to_int().unwrap_or(0);
                self.handle_lookup(key, &requester, event, &mut out);
            }
            "lookupResults" => {
                self.lookup_results.push((now, tuple.clone()));
                let (Ok(succ_id), Ok(succ_addr), Ok(event)) =
                    (tuple.get(2), tuple.get(3), tuple.get(4))
                else {
                    return out;
                };
                let succ_id = succ_id.to_id().unwrap_or(Uint160::ZERO);
                let succ_addr = succ_addr.to_display_string();
                let event = event.to_int().unwrap_or(0);
                if self.join_event == Some(event) {
                    self.add_successor(succ_id, &succ_addr);
                    self.joined = true;
                } else if let Some(i) = self.pending_finger.remove(&event) {
                    self.fingers[i as usize] = Some(Peer {
                        id: succ_id,
                        addr: succ_addr.clone(),
                    });
                }
            }
            "stabilizeRequest" => {
                let Ok(from) = tuple.get(1) else { return out };
                let from = from.to_display_string();
                if let Some(pred) = &self.predecessor {
                    out.push(Envelope::new(
                        from.clone(),
                        TupleBuilder::new("sendPredecessor")
                            .push(from.as_str())
                            .push(Value::Id(pred.id))
                            .push(pred.addr.as_str())
                            .build(),
                    ));
                }
            }
            "sendPredecessor" => {
                let (Ok(pid), Ok(paddr)) = (tuple.get(1), tuple.get(2)) else {
                    return out;
                };
                let pid = pid.to_id().unwrap_or(Uint160::ZERO);
                let paddr = paddr.to_display_string();
                if let Some(succ) = self.best_successor() {
                    if pid.in_oo(self.id, succ.id) {
                        self.add_successor(pid, &paddr);
                    }
                }
            }
            "sendSuccessors" => {
                let Ok(from) = tuple.get(1) else { return out };
                let from = from.to_display_string();
                for succ in self.successors.clone() {
                    out.push(Envelope::new(
                        from.clone(),
                        TupleBuilder::new("returnSuccessor")
                            .push(from.as_str())
                            .push(Value::Id(succ.id))
                            .push(succ.addr.as_str())
                            .build(),
                    ));
                }
            }
            "returnSuccessor" => {
                let (Ok(sid), Ok(saddr)) = (tuple.get(1), tuple.get(2)) else {
                    return out;
                };
                let sid = sid.to_id().unwrap_or(Uint160::ZERO);
                let saddr = saddr.to_display_string();
                self.add_successor(sid, &saddr);
            }
            "notifyPredecessor" => {
                let (Ok(nid), Ok(naddr)) = (tuple.get(1), tuple.get(2)) else {
                    return out;
                };
                let nid = nid.to_id().unwrap_or(Uint160::ZERO);
                let naddr = naddr.to_display_string();
                let accept = match &self.predecessor {
                    None => true,
                    Some(p) => nid.in_oo(p.id, self.id),
                };
                if accept && naddr != self.addr {
                    self.predecessor = Some(Peer {
                        id: nid,
                        addr: naddr.clone(),
                    });
                }
                self.mark_heard(&naddr);
            }
            "pingReq" => {
                let (Ok(from), Ok(event)) = (tuple.get(1), tuple.get(2)) else {
                    return out;
                };
                let from = from.to_display_string();
                let event = event.to_int().unwrap_or(0);
                out.push(Envelope::new(
                    from.clone(),
                    TupleBuilder::new("pingResp")
                        .push(from.as_str())
                        .push(self.addr.as_str())
                        .push(event)
                        .build(),
                ));
            }
            "pingResp" => {
                if let Ok(from) = tuple.get(1) {
                    let from = from.to_display_string();
                    self.mark_heard(&from);
                }
            }
            _ => {}
        }
        out
    }

    fn advance_to(&mut self, now: SimTime) -> Vec<Envelope> {
        self.now = self.now.max(now);
        let mut out = Vec::new();
        if let Some(t) = self.next_stabilize {
            if t <= now {
                self.do_stabilize(&mut out);
                self.next_stabilize =
                    Some(t + SimTime::from_secs_f64(self.config.stabilize_period));
            }
        }
        if let Some(t) = self.next_fix {
            if t <= now {
                self.do_fix_fingers(&mut out);
                self.next_fix = Some(t + SimTime::from_secs_f64(self.config.fix_finger_period));
            }
        }
        if let Some(t) = self.next_ping {
            if t <= now {
                self.do_ping(&mut out);
                self.next_ping = Some(t + SimTime::from_secs_f64(self.config.ping_period));
            }
        }
        out
    }

    fn next_deadline(&self) -> Option<SimTime> {
        [self.next_stabilize, self.next_fix, self.next_ping]
            .into_iter()
            .flatten()
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_netsim::{NetworkConfig, Simulator};

    fn addr(i: usize) -> String {
        format!("base{i}:2000")
    }

    fn bring_up(n: usize) -> Simulator<BaselineChord> {
        let mut sim = Simulator::new(NetworkConfig::emulab_default(5));
        for i in 0..n {
            let landmark = if i == 0 { None } else { Some(addr(0)) };
            let node = BaselineChord::new(
                &addr(i),
                landmark.as_deref(),
                100 + i as u64,
                BaselineConfig::default(),
            );
            sim.add_node(addr(i), node);
        }
        for i in 0..n {
            sim.start_node(&addr(i));
            sim.run_for(SimTime::from_secs(1));
        }
        sim.run_for(SimTime::from_secs(200));
        sim
    }

    #[test]
    fn single_node_ring_points_to_itself() {
        let node = BaselineChord::new("solo:1", None, 1, BaselineConfig::default());
        let mut sim = Simulator::new(NetworkConfig::emulab_default(1));
        sim.add_node("solo:1", node);
        sim.start_node("solo:1");
        sim.run_for(SimTime::from_secs(30));
        let n = sim.node("solo:1").unwrap();
        assert!(n.is_joined());
        assert_eq!(n.successors(), vec!["solo:1".to_string()]);
    }

    #[test]
    fn ring_forms_and_lookups_route_correctly() {
        let n = 8;
        let mut sim = bring_up(n);
        let nodes: Vec<String> = (0..n).map(addr).collect();

        // Every node joined and knows its correct ring successor.
        let mut ids: Vec<(Uint160, String)> = nodes
            .iter()
            .map(|a| (Uint160::hash_of(a.as_bytes()), a.clone()))
            .collect();
        ids.sort();
        for a in &nodes {
            let node = sim.node(a).unwrap();
            assert!(node.is_joined(), "{a} did not join");
            let pos = ids.iter().position(|(_, x)| x == a).unwrap();
            let expect = &ids[(pos + 1) % ids.len()].1;
            let succs = node.successors();
            assert_eq!(&succs[0], expect, "{a} has wrong first successor");
        }

        // Lookups route to the correct owner.
        let owner_of = |key: Uint160| -> String {
            for (id, a) in &ids {
                if key <= *id {
                    return a.clone();
                }
            }
            ids[0].1.clone()
        };
        let mut correct = 0;
        for k in 0..20 {
            let key = Uint160::hash_of(format!("key-{k}").as_bytes());
            let origin = &nodes[k % n];
            let event = 90_000 + k as i64;
            let lookup = TupleBuilder::new("lookup")
                .push(origin.as_str())
                .push(Value::Id(key))
                .push(origin.as_str())
                .push(event)
                .build();
            sim.inject(origin, lookup);
            sim.run_for(SimTime::from_secs(5));
            let results = sim.node(origin).unwrap().lookup_results();
            let answer = results
                .iter()
                .rev()
                .find(|(_, t)| t.field(4) == &Value::Int(event))
                .map(|(_, t)| t.field(3).to_display_string());
            if answer.as_deref() == Some(owner_of(key).as_str()) {
                correct += 1;
            }
        }
        assert!(correct >= 18, "only {correct}/20 lookups correct");
    }

    #[test]
    fn failed_successors_are_evicted() {
        let mut sim = bring_up(4);
        let victim = addr(1);
        sim.take_down(&victim);
        sim.run_for(SimTime::from_secs(120));
        for i in [0usize, 2, 3] {
            let node = sim.node(&addr(i)).unwrap();
            assert!(
                !node.successors().contains(&victim),
                "node{} still lists the failed node as successor",
                i
            );
        }
    }
}
