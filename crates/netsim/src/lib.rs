//! Deterministic discrete-event network simulator.
//!
//! The paper evaluates P2 on the Emulab testbed: 100 stub nodes spread over
//! 10 domains, one router per domain, 2 ms intra-domain and 100 ms
//! inter-domain latency, 10 Mbps access links and 100 Mbps core links. This
//! crate reproduces that substrate in simulation so that hundreds of P2
//! nodes (or hand-coded baseline nodes) can run in-process with a virtual
//! clock:
//!
//! * [`Topology`] models the transit-stub layout and computes end-to-end
//!   latencies;
//! * [`Simulator`] hosts [`Host`] implementations (one per overlay node),
//!   delivers tuples with serialization + propagation delay, drives each
//!   host's timers, applies optional packet loss, and records per-tuple-name
//!   byte counters for the bandwidth experiments;
//! * churn is supported by marking nodes down (in-flight packets to them are
//!   dropped, their timers stop) and replacing them with fresh hosts.
//!
//! The simulator is fully deterministic for a given seed.
//!
//! Internally the event loop runs on interned [`NodeId`]s (dense `u32`
//! indices into the slot table) rather than string addresses, packet
//! latencies come from a precomputed domain×domain matrix, and node wakeups
//! live in a tombstone-free timer index separate from the delivery heap.
//! String addresses appear only at the public API boundary.

pub mod host;
pub mod id;
pub mod sim;
pub mod stats;
mod timer;
pub mod topology;

pub use host::{Envelope, Host};
pub use id::{AddrInterner, NodeId};
pub use sim::{NetworkConfig, Simulator};
pub use stats::NetStats;
pub use topology::Topology;
