//! Reproduces Figure 3 of the paper: performance of static Chord networks.
//!
//! * (i)   lookup hop-count distribution;
//! * (ii)  per-node maintenance bandwidth while idle;
//! * (iii) lookup-latency CDF.
//!
//! By default a scaled-down configuration is used so the binary finishes in
//! a few minutes; pass `--paper` for the paper's 100/300/500-node networks.
//! Pass `--json` to additionally dump the raw results as JSON.

use p2_bench::{paper_scale, print_cdf_summary, to_json};
use p2_harness::experiments::{static_chord, StaticParams};

fn main() {
    let params = if paper_scale() {
        StaticParams::paper()
    } else {
        StaticParams::quick()
    };
    eprintln!(
        "running static Chord experiment: sizes {:?}, {} lookups each (use --paper for full scale)",
        params.sizes, params.lookups
    );

    let results = static_chord(&params);

    println!("=== Figure 3(i): lookup hop-count distribution ===");
    println!(
        "{:>6} {:>10} {:>12}   frequency by hop count",
        "N", "mean", "log2(N)/2"
    );
    for r in &results {
        let freqs: Vec<String> = r
            .hop_frequencies
            .iter()
            .map(|(h, f)| format!("{h}:{f:.3}"))
            .collect();
        println!(
            "{:>6} {:>10.2} {:>12.2}   {}",
            r.n,
            r.mean_hops,
            (r.n as f64).log2() / 2.0,
            freqs.join(" ")
        );
    }

    println!();
    println!("=== Figure 3(ii): maintenance bandwidth vs population ===");
    println!("{:>6} {:>22}", "N", "maintenance (bytes/s)");
    for r in &results {
        println!("{:>6} {:>22.1}", r.n, r.maintenance_bw_per_node);
    }

    println!();
    println!("=== Figure 3(iii): lookup latency CDF ===");
    for r in &results {
        print_cdf_summary(&format!("N={}", r.n), &r.latency_cdf);
        println!(
            "    within 6s: {:.1}%   completion: {:.1}%   correct owner: {:.1}%   ring ok: {:.1}%",
            r.within_6s * 100.0,
            r.completion_rate * 100.0,
            r.correctness * 100.0,
            r.ring_correctness * 100.0
        );
    }

    println!();
    println!("=== Working set (§1 claim: ~800 kB per node) ===");
    for r in &results {
        println!(
            "  N={:>4}: mean resident soft state = {:.1} kB/node",
            r.n,
            r.mean_resident_bytes / 1024.0
        );
    }

    if std::env::args().any(|a| a == "--json") {
        println!("{}", to_json(&results));
    }
}
