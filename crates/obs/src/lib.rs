//! Cross-layer observability: rule-level profiling and tuple provenance
//! tracing for the compiled dataflow engine.
//!
//! # Tap-point architecture
//!
//! The paper's pitch is that compiling OverLog to a dataflow graph makes the
//! running overlay *inspectable*: every rule firing is an element invocation
//! you can tap. This crate holds the passive data structures for those taps;
//! the taps themselves live in the layers that own the events:
//!
//! - **Compile time (`p2-core` planner).** `PlannedProgram` builds one
//!   [`ObsMeta`] per program: for every `ElementSpec` it records the element
//!   name, the owning rule id (parsed from the `"<rule>:"` name prefix the
//!   planner already assigns), the element kind, and the rule's
//!   `RuleClass` from the PR 8 analyzer (mirrored here as [`RuleClassBits`]
//!   so the engine does not depend on the frontend). Element indices in the
//!   instantiated engine equal spec indices, so the meta table is shared
//!   read-only (`Arc`) by every node of a cluster.
//! - **Run time (`p2-dataflow` engine).** When observability is enabled the
//!   engine owns one [`NodeObs`] (boxed option field — a single branch per
//!   push when disabled). The drain loop taps each element invocation with
//!   (emissions, sends, state-changed) deltas it already knows, and the
//!   element API gains `ElementCtx::note_state_change()` so stateful
//!   elements (table writers, materialized views, incremental aggregates)
//!   can distinguish a real mutation from a soft-state refresh no-op.
//!   A **wasted poke** is an invocation of a pokeable element (strand /
//!   view / agg / rule-body operator) that produced zero emissions, zero
//!   sends and zero state change — exactly the work a delta-driven rule
//!   scheduler could suppress.
//! - **Trace mode.** Provenance tracing is content-addressed: the trace tag
//!   is a [`Value`] matched by equality against any tuple field. Chord
//!   lookups already thread a globally unique event id from `lookup` to
//!   `lookupResults` — including across the network, because the id rides
//!   *inside* the tuple — so tagging needs no envelope or simulator
//!   changes and is deterministic under any `ParSimulator` worker count.
//!   Tagged derivations are recorded into a bounded per-node ring buffer
//!   ([`TraceRing`]) as [`TraceEvent`]s: tuple received at the node entry,
//!   rule fired (element invocation consuming a tagged tuple), tagged
//!   tuple sent to a remote node. The harness drains the rings into a
//!   deterministic JSONL trace ([`trace_jsonl`]). Limitation: a derivation
//!   that projects the tag value away is not followed further.
//!
//! # Overhead contract
//!
//! - **Off (default):** one `Option` test per element invocation in the
//!   engine drain loop and nothing else — no allocation, no counters, no
//!   tuple inspection. Golden pins stay bit-identical because the taps
//!   never influence scheduling, routing or evaluation.
//! - **Profiling on:** a handful of integer increments per invocation into
//!   a dense per-element table; no allocation on the hot path.
//! - **Tracing on:** adds one equality scan over the tuple's fields per
//!   invocation; `TraceEvent` construction (allocating) happens only for
//!   tagged tuples. Ring capacity bounds memory; overflow increments a
//!   `dropped` counter rather than growing.
//!
//! Observability never changes engine behaviour: with taps on or off, the
//! same tuples flow in the same order and the golden determinism pins hold.

use std::sync::Arc;

use p2_value::{SimTime, Tuple, Value};
use serde::{Json, Serialize};

/// Delta-safety classification of a rule, mirrored from
/// `p2_overlog::analyze::RuleClass` so runtime crates need no frontend
/// dependency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct RuleClassBits {
    /// Rule output is a deterministic function of its inputs.
    pub deterministic: bool,
    /// No side conditions beyond the joined tables (no aggregates etc.).
    pub pure: bool,
    /// Monotone in its positive body predicates.
    pub monotone: bool,
    /// Keyed soft-state refreshes provably cannot change the rule's output.
    pub refresh_transparent: bool,
}

/// What kind of element a spec compiled to (a stable, serializable mirror of
/// the planner's `ElementSpec` variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElemKind {
    Demux,
    Insert,
    Delete,
    Join,
    AntiJoin,
    Select,
    Project,
    AggProbe,
    TableAgg,
    Strand,
    Pad,
    MatView,
    Periodic,
    NetOut,
    Collector,
}

impl ElemKind {
    /// Stable lowercase name used in reports and traces.
    pub fn as_str(self) -> &'static str {
        match self {
            ElemKind::Demux => "demux",
            ElemKind::Insert => "insert",
            ElemKind::Delete => "delete",
            ElemKind::Join => "join",
            ElemKind::AntiJoin => "antijoin",
            ElemKind::Select => "select",
            ElemKind::Project => "project",
            ElemKind::AggProbe => "agg_probe",
            ElemKind::TableAgg => "table_agg",
            ElemKind::Strand => "strand",
            ElemKind::Pad => "pad",
            ElemKind::MatView => "mat_view",
            ElemKind::Periodic => "periodic",
            ElemKind::NetOut => "netout",
            ElemKind::Collector => "collector",
        }
    }

    /// Whether an invocation of this element counts as a *poke*: rule-body
    /// work that a delta-driven scheduler could in principle suppress. A
    /// poke that yields zero emissions, zero sends and zero state change is
    /// recorded as wasted. Forwarding/IO elements (demux, pad, netout,
    /// periodic, collector, project) and table writers are excluded — their
    /// invocations are either unconditional plumbing or real mutations.
    pub fn pokeable(self) -> bool {
        matches!(
            self,
            ElemKind::Strand
                | ElemKind::MatView
                | ElemKind::AggProbe
                | ElemKind::TableAgg
                | ElemKind::Join
                | ElemKind::AntiJoin
                | ElemKind::Select
        )
    }
}

/// Compile-time metadata for one element.
#[derive(Debug, Clone)]
pub struct ElemMeta {
    /// The planner-assigned element name (e.g. `"SU1:strand"`, `"insert:succ"`).
    pub name: Arc<str>,
    /// Owning rule id, if the element implements a rule body.
    pub rule: Option<Arc<str>>,
    /// Element kind.
    pub kind: ElemKind,
    /// Delta-safety class of the owning rule, if any.
    pub class: Option<RuleClassBits>,
}

/// Compile-time observability metadata for a whole program: one entry per
/// element, indexable by engine element index (== planner spec index).
#[derive(Debug, Clone, Default)]
pub struct ObsMeta {
    /// Per-element metadata in spec order.
    pub elems: Vec<ElemMeta>,
}

impl ObsMeta {
    /// Number of elements described.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// True when no elements are described.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }
}

/// Per-element profile counters. All counts are cumulative since enable (or
/// the last reset) and sum across nodes with [`merge_counters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct ElemCounters {
    /// Tuple pushes into the element.
    pub invocations: u64,
    /// Tuples consumed (== invocations; kept separate from timer fires).
    pub tuples_in: u64,
    /// Tuples emitted downstream.
    pub emitted: u64,
    /// Tuples handed to the network layer.
    pub sent: u64,
    /// Invocations that mutated element-owned or table state.
    pub state_changes: u64,
    /// Pokes (invocations of a pokeable element) with zero emissions, zero
    /// sends and zero state change.
    pub wasted_pokes: u64,
    /// Pokes the delta-driven scheduler suppressed before the element ran
    /// (static refresh mask or dynamic wake guard). Counted separately
    /// from `wasted_pokes`, which only covers invocations that actually
    /// happened and wasted — with scheduling on the audit stays
    /// meaningful: would-have-wasted work shows up here instead.
    pub suppressed_pokes: u64,
    /// Timer callbacks delivered to the element.
    pub timer_fires: u64,
}

impl ElemCounters {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &ElemCounters) {
        self.invocations += other.invocations;
        self.tuples_in += other.tuples_in;
        self.emitted += other.emitted;
        self.sent += other.sent;
        self.state_changes += other.state_changes;
        self.wasted_pokes += other.wasted_pokes;
        self.suppressed_pokes += other.suppressed_pokes;
        self.timer_fires += other.timer_fires;
    }
}

/// Sums per-element counter tables from many nodes into one.
pub fn merge_counters(into: &mut Vec<ElemCounters>, from: &[ElemCounters]) {
    if into.len() < from.len() {
        into.resize(from.len(), ElemCounters::default());
    }
    for (dst, src) in into.iter_mut().zip(from) {
        dst.merge(src);
    }
}

/// What happened, for one [`TraceEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A tagged tuple entered the node (local injection or network delivery).
    Recv,
    /// An element consumed a tagged tuple.
    Fire,
    /// A tagged tuple was handed to the network layer.
    Send,
}

impl TraceKind {
    /// Stable lowercase name used in the JSONL trace.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceKind::Recv => "recv",
            TraceKind::Fire => "fire",
            TraceKind::Send => "send",
        }
    }
}

/// One step of a tagged tuple's derivation cascade.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Per-node monotone sequence number (engine processing order).
    pub seq: u64,
    /// Simulated time of the step, in microseconds.
    pub at: u64,
    /// Address of the node the step happened on.
    pub node: Arc<str>,
    /// Step kind.
    pub kind: TraceKind,
    /// Element name (`Fire` only; empty otherwise).
    pub elem: String,
    /// Owning rule id, when the element implements a rule.
    pub rule: Option<String>,
    /// Display form of the tuple involved.
    pub tuple: String,
    /// Total emissions of the invocation (`Fire` only).
    pub emitted: u64,
    /// Display forms of the *tagged* tuples emitted (`Fire` only).
    pub out: Vec<String>,
    /// Destination address (`Send` only).
    pub dst: Option<String>,
}

impl Serialize for TraceEvent {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("seq".to_string(), Json::UInt(self.seq)),
            ("at".to_string(), Json::UInt(self.at)),
            ("node".to_string(), Json::Str(self.node.to_string())),
            (
                "kind".to_string(),
                Json::Str(self.kind.as_str().to_string()),
            ),
        ];
        if self.kind == TraceKind::Fire {
            fields.push(("elem".to_string(), Json::Str(self.elem.clone())));
            fields.push((
                "rule".to_string(),
                match &self.rule {
                    Some(r) => Json::Str(r.clone()),
                    None => Json::Null,
                },
            ));
        }
        fields.push(("tuple".to_string(), Json::Str(self.tuple.clone())));
        if self.kind == TraceKind::Fire {
            fields.push(("emitted".to_string(), Json::UInt(self.emitted)));
            fields.push((
                "out".to_string(),
                Json::Array(self.out.iter().map(|s| Json::Str(s.clone())).collect()),
            ));
        }
        if let Some(dst) = &self.dst {
            fields.push(("dst".to_string(), Json::Str(dst.clone())));
        }
        Json::Object(fields)
    }
}

/// Bounded per-node trace buffer. Overflow drops the newest events (and
/// counts them) instead of growing, so a forgotten trace cannot exhaust
/// memory.
#[derive(Debug, Default)]
pub struct TraceRing {
    events: Vec<TraceEvent>,
    cap: usize,
    /// Events discarded because the ring was full.
    pub dropped: u64,
    next_seq: u64,
}

/// Default per-node trace ring capacity.
pub const DEFAULT_TRACE_CAP: usize = 65_536;

impl TraceRing {
    /// Creates a ring holding at most `cap` events.
    pub fn new(cap: usize) -> TraceRing {
        TraceRing {
            events: Vec::new(),
            cap: cap.max(1),
            dropped: 0,
            next_seq: 0,
        }
    }

    /// Appends an event (stamping its per-node sequence number), dropping it
    /// if the ring is full.
    pub fn push(&mut self, mut ev: TraceEvent) {
        ev.seq = self.next_seq;
        self.next_seq += 1;
        if self.events.len() >= self.cap {
            self.dropped += 1;
        } else {
            self.events.push(ev);
        }
    }

    /// Removes and returns all buffered events, keeping the ring (and its
    /// sequence counter) live for further tracing.
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Active trace state: the content-addressed tag plus the ring.
#[derive(Debug)]
pub struct TraceState {
    /// Tuples carrying this value in any field are traced.
    pub tag: Value,
    /// Buffered events.
    pub ring: TraceRing,
}

/// Per-engine observability state, owned by the engine behind
/// `Option<Box<NodeObs>>` so the disabled path costs one branch.
#[derive(Debug)]
pub struct NodeObs {
    meta: Arc<ObsMeta>,
    node: Arc<str>,
    counters: Vec<ElemCounters>,
    trace: Option<TraceState>,
}

impl NodeObs {
    /// Creates profiling state for a node; tracing starts disabled.
    pub fn new(meta: Arc<ObsMeta>, node: Arc<str>) -> NodeObs {
        let n = meta.len();
        NodeObs {
            meta,
            node,
            counters: vec![ElemCounters::default(); n],
            trace: None,
        }
    }

    /// The shared compile-time metadata.
    pub fn meta(&self) -> &Arc<ObsMeta> {
        &self.meta
    }

    /// The per-element counter table (index == engine element index).
    pub fn counters(&self) -> &[ElemCounters] {
        &self.counters
    }

    /// Resets all counters to zero (trace state is untouched).
    pub fn reset_counters(&mut self) {
        for c in &mut self.counters {
            *c = ElemCounters::default();
        }
    }

    /// Records one tuple push into element `idx`.
    #[inline]
    pub fn record_push(&mut self, idx: usize, emitted: u64, sent: u64, state_changed: bool) {
        let c = &mut self.counters[idx];
        c.invocations += 1;
        c.tuples_in += 1;
        c.emitted += emitted;
        c.sent += sent;
        if state_changed {
            c.state_changes += 1;
        }
        if emitted == 0 && sent == 0 && !state_changed && self.meta.elems[idx].kind.pokeable() {
            c.wasted_pokes += 1;
        }
    }

    /// Records one poke of element `idx` suppressed by the delta-driven
    /// scheduler (static refresh mask or dynamic wake guard) before the
    /// element ran.
    #[inline]
    pub fn record_suppressed(&mut self, idx: usize) {
        self.counters[idx].suppressed_pokes += 1;
    }

    /// Records one timer callback into element `idx`.
    #[inline]
    pub fn record_timer(&mut self, idx: usize, emitted: u64, sent: u64, state_changed: bool) {
        let c = &mut self.counters[idx];
        c.timer_fires += 1;
        c.emitted += emitted;
        c.sent += sent;
        if state_changed {
            c.state_changes += 1;
        }
    }

    /// Enables provenance tracing for tuples carrying `tag`, replacing any
    /// previous trace state.
    pub fn set_trace(&mut self, tag: Value, cap: usize) {
        self.trace = Some(TraceState {
            tag,
            ring: TraceRing::new(cap),
        });
    }

    /// Disables tracing, returning any buffered events.
    pub fn clear_trace(&mut self) -> Vec<TraceEvent> {
        self.trace
            .take()
            .map(|mut t| t.ring.drain())
            .unwrap_or_default()
    }

    /// True when tracing is enabled.
    pub fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// True when tracing is on and `tuple` carries the tag in any field.
    #[inline]
    pub fn tagged(&self, tuple: &Tuple) -> bool {
        match &self.trace {
            Some(t) => tuple.values().contains(&t.tag),
            None => false,
        }
    }

    /// Records a tagged tuple entering the node.
    pub fn trace_recv(&mut self, now: SimTime, tuple: &Tuple) {
        let node = self.node.clone();
        if let Some(t) = &mut self.trace {
            t.ring.push(TraceEvent {
                seq: 0,
                at: now.as_micros(),
                node,
                kind: TraceKind::Recv,
                elem: String::new(),
                rule: None,
                tuple: tuple.to_string(),
                emitted: 0,
                out: Vec::new(),
                dst: None,
            });
        }
    }

    /// Records an element consuming a tagged tuple. `out` iterates the
    /// invocation's emitted tuples; only tagged ones are included in the
    /// event. Generic over the iterator so the engine can feed its
    /// kind-tagged scratch buffer without this crate knowing the layout.
    pub fn trace_fire<'t>(
        &mut self,
        now: SimTime,
        idx: usize,
        tuple: &Tuple,
        emitted: u64,
        out: impl IntoIterator<Item = &'t Tuple>,
    ) {
        let node = self.node.clone();
        let meta = &self.meta.elems[idx];
        let elem = meta.name.to_string();
        let rule = meta.rule.as_ref().map(|r| r.to_string());
        if let Some(t) = &mut self.trace {
            let tagged_out: Vec<String> = out
                .into_iter()
                .filter(|tp| tp.values().contains(&t.tag))
                .map(|tp| tp.to_string())
                .collect();
            t.ring.push(TraceEvent {
                seq: 0,
                at: now.as_micros(),
                node,
                kind: TraceKind::Fire,
                elem,
                rule,
                tuple: tuple.to_string(),
                emitted,
                out: tagged_out,
                dst: None,
            });
        }
    }

    /// Records a tagged tuple being handed to the network layer.
    pub fn trace_send(&mut self, now: SimTime, dst: &str, tuple: &Tuple) {
        let node = self.node.clone();
        if let Some(t) = &mut self.trace {
            t.ring.push(TraceEvent {
                seq: 0,
                at: now.as_micros(),
                node,
                kind: TraceKind::Send,
                elem: String::new(),
                rule: None,
                tuple: tuple.to_string(),
                emitted: 0,
                out: Vec::new(),
                dst: Some(dst.to_string()),
            });
        }
    }

    /// Removes and returns buffered trace events (tracing stays enabled).
    pub fn drain_trace(&mut self) -> Vec<TraceEvent> {
        match &mut self.trace {
            Some(t) => t.ring.drain(),
            None => Vec::new(),
        }
    }

    /// Trace events dropped due to ring overflow.
    pub fn trace_dropped(&self) -> u64 {
        self.trace.as_ref().map(|t| t.ring.dropped).unwrap_or(0)
    }
}

/// Serializes trace events as deterministic JSONL: one compact JSON object
/// per line, in the order given.
pub fn trace_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&serde_json::to_string(ev).expect("trace event serializes"));
        out.push('\n');
    }
    out
}

/// Orders drained multi-node trace events deterministically: by simulated
/// time, then node address, then per-node sequence number.
pub fn sort_trace(events: &mut [TraceEvent]) {
    events.sort_by(|a, b| {
        a.at.cmp(&b.at)
            .then_with(|| a.node.cmp(&b.node))
            .then_with(|| a.seq.cmp(&b.seq))
    });
}

/// Aggregated profile for one rule (all its elements summed).
#[derive(Debug, Clone, Serialize)]
pub struct RuleProfile {
    /// Rule id (e.g. `"SU1"`).
    pub rule: String,
    /// Delta-safety class from the analyzer.
    pub class: Option<RuleClassBits>,
    /// Number of elements implementing the rule.
    pub elements: u64,
    /// Summed counters over those elements.
    pub counters: ElemCounters,
    /// Invocations of the rule's pokeable elements (pokes that ran;
    /// scheduler-suppressed pokes are not included).
    pub pokes: u64,
    /// Pokes with zero emissions, sends and state change.
    pub wasted_pokes: u64,
    /// Pokes the delta-driven scheduler suppressed before the element ran.
    pub suppressed_pokes: u64,
    /// `wasted_pokes / pokes` (0 when no pokes).
    pub wasted_rate: f64,
}

/// Per-table insert profile: how many insert invocations were pure
/// soft-state refreshes (no state change).
#[derive(Debug, Clone, Serialize)]
pub struct TableProfile {
    /// Table name.
    pub table: String,
    /// Insert-element invocations.
    pub inserts: u64,
    /// Invocations that changed table state (new row, replacement, eviction).
    pub state_changes: u64,
    /// Refresh no-op inserts: `inserts - state_changes`.
    pub refresh_inserts: u64,
    /// `refresh_inserts / inserts` (0 when no inserts).
    pub refresh_rate: f64,
}

/// Poke/waste totals for a class bucket.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ClassBucket {
    /// Rules in the bucket.
    pub rules: u64,
    /// Pokes into the bucket's rules (ran; suppressed not included).
    pub pokes: u64,
    /// Wasted pokes.
    pub wasted_pokes: u64,
    /// Scheduler-suppressed pokes.
    pub suppressed_pokes: u64,
    /// `wasted_pokes / pokes` (0 when no pokes).
    pub wasted_rate: f64,
}

impl ClassBucket {
    fn finish(&mut self) {
        self.wasted_rate = rate(self.wasted_pokes, self.pokes);
    }
}

/// Cluster-wide rule-level profile report.
#[derive(Debug, Clone, Serialize)]
pub struct ProfileReport {
    /// Per-rule profiles, sorted by rule id.
    pub rules: Vec<RuleProfile>,
    /// Per-table insert refresh profiles, sorted by table name.
    pub tables: Vec<TableProfile>,
    /// Counters summed over elements not owned by any rule (demux, table
    /// writers, netout, ...).
    pub infra: ElemCounters,
    /// Counters summed over every element.
    pub totals: ElemCounters,
    /// Total pokes across all rules (ran; suppressed not included).
    pub total_pokes: u64,
    /// Total wasted pokes across all rules.
    pub total_wasted_pokes: u64,
    /// Total scheduler-suppressed pokes across all rules.
    pub total_suppressed_pokes: u64,
    /// `total_wasted_pokes / total_pokes` — the steady-state waste among
    /// pokes that actually ran. Suppressed pokes cost nothing, so they
    /// appear in `total_suppressed_pokes` instead of this rate.
    pub wasted_rate: f64,
    /// Bucket for refresh-transparent rules.
    pub refresh_transparent: ClassBucket,
    /// Bucket for classified rules that are not refresh-transparent.
    pub other_rules: ClassBucket,
}

fn rate(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Builds the rule-level report from compile-time metadata plus a (possibly
/// cluster-merged) counter table.
pub fn build_report(meta: &ObsMeta, counters: &[ElemCounters]) -> ProfileReport {
    use std::collections::BTreeMap;

    let mut by_rule: BTreeMap<&str, RuleProfile> = BTreeMap::new();
    let mut by_table: BTreeMap<&str, TableProfile> = BTreeMap::new();
    let mut infra = ElemCounters::default();
    let mut totals = ElemCounters::default();

    for (em, c) in meta.elems.iter().zip(counters) {
        totals.merge(c);
        match &em.rule {
            Some(rule) => {
                let entry = by_rule.entry(rule.as_ref()).or_insert_with(|| RuleProfile {
                    rule: rule.to_string(),
                    class: em.class,
                    elements: 0,
                    counters: ElemCounters::default(),
                    pokes: 0,
                    wasted_pokes: 0,
                    suppressed_pokes: 0,
                    wasted_rate: 0.0,
                });
                entry.elements += 1;
                entry.counters.merge(c);
                if em.kind.pokeable() {
                    entry.pokes += c.invocations;
                    entry.wasted_pokes += c.wasted_pokes;
                    entry.suppressed_pokes += c.suppressed_pokes;
                }
            }
            None => {
                infra.merge(c);
                if em.kind == ElemKind::Insert {
                    if let Some(table) = em.name.strip_prefix("insert:") {
                        let entry = by_table.entry(table).or_insert_with(|| TableProfile {
                            table: table.to_string(),
                            inserts: 0,
                            state_changes: 0,
                            refresh_inserts: 0,
                            refresh_rate: 0.0,
                        });
                        entry.inserts += c.invocations;
                        entry.state_changes += c.state_changes;
                    }
                }
            }
        }
    }

    let mut rules: Vec<RuleProfile> = by_rule.into_values().collect();
    let mut total_pokes = 0;
    let mut total_wasted = 0;
    let mut total_suppressed = 0;
    let mut rt = ClassBucket::default();
    let mut other = ClassBucket::default();
    for r in &mut rules {
        r.wasted_rate = rate(r.wasted_pokes, r.pokes);
        total_pokes += r.pokes;
        total_wasted += r.wasted_pokes;
        total_suppressed += r.suppressed_pokes;
        let bucket = match r.class {
            Some(c) if c.refresh_transparent => &mut rt,
            _ => &mut other,
        };
        bucket.rules += 1;
        bucket.pokes += r.pokes;
        bucket.wasted_pokes += r.wasted_pokes;
        bucket.suppressed_pokes += r.suppressed_pokes;
    }
    rt.finish();
    other.finish();

    let mut tables: Vec<TableProfile> = by_table.into_values().collect();
    for t in &mut tables {
        t.refresh_inserts = t.inserts - t.state_changes.min(t.inserts);
        t.refresh_rate = rate(t.refresh_inserts, t.inserts);
    }

    ProfileReport {
        rules,
        tables,
        infra,
        totals,
        total_pokes,
        total_wasted_pokes: total_wasted,
        total_suppressed_pokes: total_suppressed,
        wasted_rate: rate(total_wasted, total_pokes),
        refresh_transparent: rt,
        other_rules: other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> ObsMeta {
        let class_rt = RuleClassBits {
            deterministic: true,
            pure: true,
            monotone: true,
            refresh_transparent: true,
        };
        let class_other = RuleClassBits::default();
        ObsMeta {
            elems: vec![
                ElemMeta {
                    name: Arc::from("demux"),
                    rule: None,
                    kind: ElemKind::Demux,
                    class: None,
                },
                ElemMeta {
                    name: Arc::from("SU1:strand"),
                    rule: Some(Arc::from("SU1")),
                    kind: ElemKind::Strand,
                    class: Some(class_rt),
                },
                ElemMeta {
                    name: Arc::from("L2:agg"),
                    rule: Some(Arc::from("L2")),
                    kind: ElemKind::AggProbe,
                    class: Some(class_other),
                },
                ElemMeta {
                    name: Arc::from("insert:succ"),
                    rule: None,
                    kind: ElemKind::Insert,
                    class: None,
                },
            ],
        }
    }

    #[test]
    fn wasted_pokes_require_pokeable_and_no_effect() {
        let m = Arc::new(meta());
        let mut obs = NodeObs::new(m, Arc::from("n0"));
        // Demux: not pokeable, never wasted.
        obs.record_push(0, 0, 0, false);
        // Strand: emitted nothing -> wasted.
        obs.record_push(1, 0, 0, false);
        // Strand: emitted one -> not wasted.
        obs.record_push(1, 1, 0, false);
        // Strand: state change only -> not wasted.
        obs.record_push(1, 0, 0, true);
        assert_eq!(obs.counters()[0].wasted_pokes, 0);
        assert_eq!(obs.counters()[1].wasted_pokes, 1);
        assert_eq!(obs.counters()[1].invocations, 3);
        assert_eq!(obs.counters()[1].state_changes, 1);
        // Scheduler suppressions are a separate count: they never ran, so
        // they must not inflate invocations or wasted pokes.
        obs.record_suppressed(1);
        obs.record_suppressed(1);
        assert_eq!(obs.counters()[1].suppressed_pokes, 2);
        assert_eq!(obs.counters()[1].invocations, 3);
        assert_eq!(obs.counters()[1].wasted_pokes, 1);
    }

    #[test]
    fn report_buckets_by_rule_class() {
        let m = meta();
        let mut counters = vec![ElemCounters::default(); 4];
        counters[1] = ElemCounters {
            invocations: 10,
            tuples_in: 10,
            emitted: 4,
            sent: 0,
            state_changes: 0,
            wasted_pokes: 6,
            suppressed_pokes: 3,
            timer_fires: 0,
        };
        counters[2] = ElemCounters {
            invocations: 5,
            tuples_in: 5,
            emitted: 5,
            sent: 0,
            state_changes: 5,
            wasted_pokes: 0,
            suppressed_pokes: 0,
            timer_fires: 0,
        };
        counters[3] = ElemCounters {
            invocations: 8,
            tuples_in: 8,
            emitted: 8,
            sent: 0,
            state_changes: 2,
            wasted_pokes: 0,
            suppressed_pokes: 0,
            timer_fires: 0,
        };
        let report = build_report(&m, &counters);
        assert_eq!(report.rules.len(), 2);
        assert_eq!(report.total_pokes, 15);
        assert_eq!(report.total_wasted_pokes, 6);
        assert_eq!(report.total_suppressed_pokes, 3);
        assert_eq!(report.refresh_transparent.rules, 1);
        assert_eq!(report.refresh_transparent.pokes, 10);
        assert_eq!(report.refresh_transparent.wasted_pokes, 6);
        assert_eq!(report.refresh_transparent.suppressed_pokes, 3);
        assert!((report.refresh_transparent.wasted_rate - 0.6).abs() < 1e-12);
        assert_eq!(report.other_rules.pokes, 5);
        assert_eq!(report.tables.len(), 1);
        assert_eq!(report.tables[0].refresh_inserts, 6);
        assert!((report.tables[0].refresh_rate - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_counter_tables() {
        let a = vec![
            ElemCounters {
                invocations: 1,
                tuples_in: 1,
                emitted: 2,
                sent: 3,
                state_changes: 1,
                wasted_pokes: 0,
                suppressed_pokes: 5,
                timer_fires: 4,
            };
            2
        ];
        let mut acc = Vec::new();
        merge_counters(&mut acc, &a);
        merge_counters(&mut acc, &a);
        assert_eq!(acc.len(), 2);
        assert_eq!(acc[0].emitted, 4);
        assert_eq!(acc[1].timer_fires, 8);
    }

    #[test]
    fn tracing_is_content_addressed_and_deterministic() {
        let m = Arc::new(meta());
        let mut obs = NodeObs::new(m, Arc::from("n0"));
        let tag = Value::Int(1_000_042);
        obs.set_trace(tag.clone(), 8);
        let tagged = Tuple::new("lookup", vec![Value::str("n0"), tag.clone()]);
        let untagged = Tuple::new("lookup", vec![Value::str("n0"), Value::Int(7)]);
        assert!(obs.tagged(&tagged));
        assert!(!obs.tagged(&untagged));

        obs.trace_recv(SimTime::from_micros(10), &tagged);
        obs.trace_fire(
            SimTime::from_micros(10),
            1,
            &tagged,
            2,
            [&tagged, &untagged],
        );
        obs.trace_send(SimTime::from_micros(10), "n1", &tagged);
        let events = obs.drain_trace();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, TraceKind::Recv);
        assert_eq!(events[1].kind, TraceKind::Fire);
        // Only the tagged emission appears in `out`.
        assert_eq!(events[1].out.len(), 1);
        assert_eq!(events[2].kind, TraceKind::Send);
        assert_eq!(events[2].dst.as_deref(), Some("n1"));
        // Sequence numbers are per-node monotone and survive the drain.
        assert_eq!(events[2].seq, 2);
        obs.trace_recv(SimTime::from_micros(20), &tagged);
        assert_eq!(obs.drain_trace()[0].seq, 3);

        let jsonl = trace_jsonl(&events);
        assert_eq!(jsonl.lines().count(), 3);
        assert!(jsonl.lines().next().unwrap().contains("\"kind\": \"recv\""));
    }

    #[test]
    fn ring_overflow_drops_and_counts() {
        let mut ring = TraceRing::new(2);
        for i in 0..4 {
            ring.push(TraceEvent {
                seq: 0,
                at: i,
                node: Arc::from("n0"),
                kind: TraceKind::Recv,
                elem: String::new(),
                rule: None,
                tuple: String::new(),
                emitted: 0,
                out: Vec::new(),
                dst: None,
            });
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped, 2);
    }
}
