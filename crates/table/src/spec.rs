//! Table declarations (`materialize` statements).

use p2_value::SimTime;

/// Declaration of a materialized table, mirroring OverLog's
/// `materialize(name, lifetime, size, keys(...))`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSpec {
    /// Relation name.
    pub name: String,
    /// Soft-state lifetime of each tuple; `None` means `infinity`.
    pub lifetime: Option<SimTime>,
    /// Maximum number of rows; `None` means `infinity`.
    pub max_size: Option<usize>,
    /// Zero-based field positions forming the primary key. An empty key
    /// means the whole tuple is the key.
    pub primary_key: Vec<usize>,
}

impl TableSpec {
    /// Creates a spec with unbounded lifetime and size keyed on the given
    /// (zero-based) field positions.
    pub fn new(name: impl Into<String>, primary_key: Vec<usize>) -> TableSpec {
        TableSpec {
            name: name.into(),
            lifetime: None,
            max_size: None,
            primary_key,
        }
    }

    /// Sets the soft-state lifetime in seconds.
    pub fn with_lifetime_secs(mut self, secs: u64) -> TableSpec {
        self.lifetime = Some(SimTime::from_secs(secs));
        self
    }

    /// Sets the soft-state lifetime.
    pub fn with_lifetime(mut self, lifetime: Option<SimTime>) -> TableSpec {
        self.lifetime = lifetime;
        self
    }

    /// Sets the maximum number of rows.
    pub fn with_max_size(mut self, size: usize) -> TableSpec {
        self.max_size = Some(size);
        self
    }

    /// Returns the key positions used to extract a primary key from a tuple
    /// of the given arity (falls back to all fields when the declared key is
    /// empty).
    pub fn key_positions(&self, arity: usize) -> Vec<usize> {
        if self.primary_key.is_empty() {
            (0..arity).collect()
        } else {
            self.primary_key.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let s = TableSpec::new("member", vec![1])
            .with_lifetime_secs(120)
            .with_max_size(1000);
        assert_eq!(s.name, "member");
        assert_eq!(s.lifetime, Some(SimTime::from_secs(120)));
        assert_eq!(s.max_size, Some(1000));
        assert_eq!(s.primary_key, vec![1]);
    }

    #[test]
    fn key_positions_default_to_whole_tuple() {
        let s = TableSpec::new("link", vec![]);
        assert_eq!(s.key_positions(3), vec![0, 1, 2]);
        let s = TableSpec::new("succ", vec![1]);
        assert_eq!(s.key_positions(3), vec![1]);
    }
}
