//! Golden determinism tests: the simulator must produce bit-identical
//! traffic statistics for a fixed seed, across runs and across refactors of
//! the event core (NodeId interner, timer index) *and* of the per-node
//! dataflow engine (compiled adjacency, scratch buffers, shared plans).
//!
//! Also property-tests that the engine's compiled adjacency table preserves
//! `Graph::connect` semantics for arbitrary edge sets.

use p2_dataflow::{Element, ElementCtx, Engine, Graph, Route};
use p2_harness::ChordCluster;
use p2_value::Tuple;
use proptest::prelude::*;
use std::collections::HashMap;

fn ring_stats(n: usize, warmup: u64, seed: u64) -> (u64, u64, u64, u64, u64) {
    let mut cluster = ChordCluster::build(n, warmup, seed);
    cluster.sim.reset_stats();
    let events_before = cluster.sim.events_processed();
    cluster.run_for(60.0);
    let s = cluster.sim.stats();
    (
        s.messages_sent,
        s.messages_delivered,
        s.messages_dropped,
        s.bytes_sent,
        cluster.sim.events_processed() - events_before,
    )
}

#[test]
fn hundred_node_ring_matches_golden_stats() {
    let a = ring_stats(100, 120, 42);
    eprintln!("100-node ring stats: {a:?}");
    // Golden values captured from the pre-refactor (PR 1) simulator: the
    // NodeId/timer-index overhaul (PR 2) and the compiled-adjacency /
    // shared-plan engine overhaul (PR 3) both reproduce the seed's event
    // stream bit-for-bit — traffic counters *and* the number of simulator
    // events processed during the measurement window. Update these only for
    // a deliberate semantic change.
    assert_eq!(
        (a.0, a.1, a.2, a.3),
        (29_634, 29_638, 0, 2_787_660),
        "fixed-seed NetStats diverged from the golden run"
    );
    assert_eq!(
        a.4, 31_838,
        "fixed-seed event count diverged from the golden run"
    );
    let b = ring_stats(100, 120, 42);
    assert_eq!(a, b, "same seed must give identical NetStats across runs");
}

/// A no-op element for adjacency-compilation tests.
struct Sink;

impl Element for Sink {
    fn class(&self) -> &'static str {
        "Sink"
    }
    fn push(&mut self, _port: usize, _tuple: &Tuple, _ctx: &mut ElementCtx<'_>) {}
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn compiled_adjacency_preserves_connect_semantics(
        n_elements in 1usize..12,
        edges in proptest::collection::vec(
            (0usize..12, 0usize..4, 0usize..12, 0usize..4),
            0..40,
        ),
    ) {
        // For arbitrary edge sets, the engine's compiled adjacency must
        // return exactly the routes declared through `Graph::connect`, in
        // call order, and empty route lists everywhere else.
        let mut graph = Graph::new();
        for i in 0..n_elements {
            graph.add(format!("e{i}"), Box::new(Sink));
        }
        // Mirror of what `connect` is asked to record, in call order.
        let mut expected: HashMap<(usize, usize), Vec<Route>> = HashMap::new();
        let mut max_port = 0usize;
        for (from, out_port, to, in_port) in edges {
            let (from, to) = (from % n_elements, to % n_elements);
            graph.connect(from, out_port, to, in_port);
            expected.entry((from, out_port)).or_default().push(Route {
                element: to,
                port: in_port,
            });
            max_port = max_port.max(out_port);
        }
        let engine = Engine::new(graph, "n1", 1);
        for e in 0..n_elements {
            for p in 0..=max_port + 1 {
                let compiled = engine.routes_of(e, p);
                let declared = expected.get(&(e, p)).map(Vec::as_slice).unwrap_or(&[]);
                prop_assert_eq!(
                    compiled, declared,
                    "adjacency mismatch at element {} port {}", e, p
                );
            }
        }
        // Unknown elements and ports answer empty, not panic.
        prop_assert!(engine.routes_of(n_elements + 1, 0).is_empty());
    }
}
