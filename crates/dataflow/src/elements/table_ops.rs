//! Elements bridging the dataflow graph and stored tables: insert, delete,
//! per-event aggregation probes, and materialized table aggregates.

use std::collections::{HashMap, HashSet};

use p2_pel::Program;
use p2_table::{AggFunc, TableRef};
use p2_value::{Tuple, Value};

use crate::element::{Element, ElementCtx};

/// Stores arriving tuples into a table and re-emits them as *deltas*.
///
/// Every accepted insert (new row, replacement, or soft-state refresh) is
/// forwarded on port 0 so that downstream rules triggered by updates to this
/// table (e.g. `bestSucc :- succ, ...`) see the change. Rows evicted by the
/// size bound are emitted on port 1 for optional handling.
pub struct Insert {
    table: TableRef,
    /// Number of inserts that failed (malformed tuples).
    pub errors: u64,
    /// Reused eviction spill buffer: eviction-heavy tables hit the
    /// size-bound path on every insert, and this keeps that path from
    /// allocating a fresh `Vec` per tuple (`Table::insert_spill`).
    spill: Vec<Tuple>,
}

impl Insert {
    /// Creates an insert bridge for `table`.
    pub fn new(table: TableRef) -> Insert {
        Insert {
            table,
            errors: 0,
            spill: Vec::new(),
        }
    }
}

impl Element for Insert {
    fn class(&self) -> &'static str {
        "Insert"
    }

    fn push(&mut self, _port: usize, tuple: &Tuple, ctx: &mut ElementCtx<'_>) {
        debug_assert!(self.spill.is_empty(), "spill buffer drained every call");
        let result = self
            .table
            .lock()
            .insert_spill(tuple.clone(), ctx.now(), &mut self.spill);
        match result {
            Ok(_outcome) => {
                ctx.emit(0, tuple.clone());
                for e in self.spill.drain(..) {
                    ctx.emit(1, e);
                }
            }
            Err(_) => {
                self.errors += 1;
                self.spill.clear();
            }
        }
    }
}

/// Removes the arriving tuple from a table (OverLog `delete` rules).
///
/// Removed rows are emitted on port 0 so deletions can drive further
/// processing (e.g. re-computing a materialized aggregate).
pub struct Delete {
    table: TableRef,
    /// Number of deletes that failed (malformed tuples).
    pub errors: u64,
}

impl Delete {
    /// Creates a delete bridge for `table`.
    pub fn new(table: TableRef) -> Delete {
        Delete { table, errors: 0 }
    }
}

impl Element for Delete {
    fn class(&self) -> &'static str {
        "Delete"
    }

    fn push(&mut self, _port: usize, tuple: &Tuple, ctx: &mut ElementCtx<'_>) {
        let result = self.table.lock().delete_matching(tuple);
        match result {
            Ok(removed) => {
                for r in removed {
                    ctx.emit(0, r);
                }
            }
            Err(_) => self.errors += 1,
        }
    }
}

/// Per-event aggregation over a table (Figure 2's "Agg min<D> on finger").
///
/// For every arriving (partially joined) event tuple, the probe scans the
/// configured table; each candidate row is concatenated onto the event
/// tuple, the optional `filter` decides whether it contributes, and
/// `agg_expr` computes the contributed value.
///
/// The emitted tuple is `event ++ witness_row ++ [aggregate]`:
///
/// * for `min`/`max` the witness is the table row achieving the extremum
///   (first one scanned on ties), which gives OverLog its "choose the member
///   associated with the maximum random number" / "first address of a finger
///   with that minimum distance" semantics — the head of the rule may refer
///   to columns of the winning row;
/// * for `count`/`sum`/`avg` there is no meaningful witness, so the row part
///   is null-padded; `count` and `sum` emit a zero even when no row
///   contributes (Narada's `membersFound ... count<*>` relies on seeing 0),
///   while `min`/`max`/`avg` emit nothing.
pub struct AggProbe {
    table: TableRef,
    table_arity: usize,
    func: AggFunc,
    filter: Option<Program>,
    agg_expr: Program,
    out_name: String,
}

impl AggProbe {
    /// Creates an aggregation probe over a table whose rows have
    /// `table_arity` fields.
    pub fn new(
        table: TableRef,
        table_arity: usize,
        func: AggFunc,
        filter: Option<Program>,
        agg_expr: Program,
        out_name: impl Into<String>,
    ) -> AggProbe {
        AggProbe {
            table,
            table_arity,
            func,
            filter,
            agg_expr,
            out_name: out_name.into(),
        }
    }
}

impl Element for AggProbe {
    fn class(&self) -> &'static str {
        "AggProbe"
    }

    fn push(&mut self, _port: usize, tuple: &Tuple, ctx: &mut ElementCtx<'_>) {
        // Scan the table through the borrowing iterator, evaluating the
        // filter and aggregate expression against the *virtual* join
        // `event ++ row` (`Program::eval_joined`): no per-row joined-tuple
        // materialization; only the winning witness row is cloned.
        let guard = self.table.lock();
        let mut contributions: Vec<Value> = Vec::new();
        let mut witness: Option<(Value, Tuple)> = None;
        for row in guard.scan_iter() {
            if let Some(filter) = &self.filter {
                match filter.eval_bool_joined(tuple, row, ctx.eval()) {
                    Ok(true) => {}
                    _ => continue,
                }
            }
            let Ok(v) = self.agg_expr.eval_joined(tuple, row, ctx.eval()) else {
                continue;
            };
            let better = match (&witness, self.func) {
                (None, _) => true,
                (Some((best, _)), AggFunc::Min) => v < *best,
                (Some((best, _)), AggFunc::Max) => v > *best,
                _ => false,
            };
            if better {
                witness = Some((v.clone(), row.clone()));
            }
            contributions.push(v);
        }
        drop(guard);
        let aggregate = match self.func.apply(&contributions) {
            Ok(Some(v)) => v,
            _ => return,
        };
        // min/max/avg over an empty contribution set produce no tuple at all;
        // count/sum legitimately produce 0.
        if contributions.is_empty() && !matches!(self.func, AggFunc::Count | AggFunc::Sum) {
            return;
        }
        let row_part: Vec<Value> = match (self.func, witness) {
            (AggFunc::Min | AggFunc::Max, Some((_, row))) => row.values().to_vec(),
            _ => vec![Value::Null; self.table_arity],
        };
        let mut extra = row_part;
        extra.push(aggregate);
        ctx.emit(0, tuple.extended(extra).renamed(&self.out_name));
    }
}

/// Materialized aggregate over a table, re-emitted whenever it changes.
///
/// Implements rules whose body consists solely of a table and whose head
/// carries an aggregate (`succCount(NI, count<*>) :- succ(NI, S, SI)`):
/// whenever the underlying table changes (the planner routes that table's
/// insert and delete deltas here), the aggregate is recomputed per group and
/// groups whose value changed are emitted as `out_name(group..., agg)`.
pub struct TableAgg {
    table: TableRef,
    func: AggFunc,
    agg_col: Option<usize>,
    group_cols: Vec<usize>,
    out_name: String,
    last: HashMap<Vec<Value>, Value>,
}

impl TableAgg {
    /// Creates a materialized table aggregate.
    pub fn new(
        table: TableRef,
        func: AggFunc,
        agg_col: Option<usize>,
        group_cols: Vec<usize>,
        out_name: impl Into<String>,
    ) -> TableAgg {
        TableAgg {
            table,
            func,
            agg_col,
            group_cols,
            out_name: out_name.into(),
            last: HashMap::new(),
        }
    }

    fn recompute(&mut self, ctx: &mut ElementCtx<'_>) {
        let groups = match self
            .table
            .lock()
            .aggregate(self.func, self.agg_col, &self.group_cols)
        {
            Ok(g) => g,
            Err(_) => return,
        };
        // Groups whose key no longer appears must retract: a deleted or
        // expired last row means downstream should see the empty-group
        // value (count/sum emit 0; min/max/avg have none, so the entry is
        // just forgotten and a later re-appearance re-emits).
        if !self.last.is_empty() {
            let live: HashSet<&Vec<Value>> = groups.iter().map(|(k, _)| k).collect();
            let mut vanished: Vec<Vec<Value>> = self
                .last
                .keys()
                .filter(|k| !live.contains(k))
                .cloned()
                .collect();
            // HashMap iteration order is nondeterministic; retractions must
            // come out in a stable order or same-seed runs diverge.
            vanished.sort();
            let empty_value = self.func.apply(&[]).ok().flatten();
            for key in vanished {
                self.last.remove(&key);
                if let Some(v) = &empty_value {
                    let mut values = key;
                    values.push(v.clone());
                    ctx.emit(0, Tuple::new(&self.out_name, values));
                }
            }
        }
        for (key, agg) in groups {
            let changed = self.last.get(&key) != Some(&agg);
            if changed {
                self.last.insert(key.clone(), agg.clone());
                let mut values = key;
                values.push(agg);
                ctx.emit(0, Tuple::new(&self.out_name, values));
            }
        }
    }
}

impl Element for TableAgg {
    fn class(&self) -> &'static str {
        "TableAgg"
    }

    fn push(&mut self, _port: usize, _tuple: &Tuple, ctx: &mut ElementCtx<'_>) {
        self.recompute(ctx);
    }

    fn on_start(&mut self, ctx: &mut ElementCtx<'_>) {
        self.recompute(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::{Collector, Demux};
    use crate::engine::{Engine, Graph, Route};
    use p2_pel::{BinOp, Expr, IntervalKind};
    use p2_table::{Table, TableSpec};
    use p2_value::{SimTime, TupleBuilder, Uint160};
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn table(spec: TableSpec, rows: Vec<Tuple>) -> TableRef {
        let mut t = Table::new(spec);
        for r in rows {
            t.insert(r, SimTime::ZERO).unwrap();
        }
        Arc::new(Mutex::new(t))
    }

    fn run_one(element: Box<dyn Element>, inputs: Vec<Tuple>) -> Vec<Tuple> {
        let mut g = Graph::new();
        let e = g.add("elt", element);
        let (c, buf) = Collector::new();
        let c = g.add("tap", Box::new(c));
        g.connect(e, 0, c, 0);
        let mut engine = Engine::new(g, "n1", 1);
        engine.set_entry(Route {
            element: e,
            port: 0,
        });
        engine.start(SimTime::ZERO);
        for i in inputs {
            engine.deliver(i, SimTime::from_secs(1));
        }
        let out = buf.lock().iter().map(|(_, t)| t.clone()).collect();
        out
    }

    #[test]
    fn insert_stores_and_emits_delta() {
        let t = table(TableSpec::new("succ", vec![1]), vec![]);
        let insert = Insert::new(t.clone());
        let tup = TupleBuilder::new("succ")
            .push("n1")
            .push(5i64)
            .push("n5")
            .build();
        let out = run_one(Box::new(insert), vec![tup.clone()]);
        assert_eq!(out, vec![tup]);
        assert_eq!(t.lock().len(), 1);
    }

    #[test]
    fn insert_emits_evictions_on_port_one() {
        let t = table(TableSpec::new("succ", vec![1]).with_max_size(1), vec![]);
        let mut g = Graph::new();
        let e = g.add("insert", Box::new(Insert::new(t.clone())));
        let (c, evicted_buf) = Collector::new();
        let c = g.add("evicted", Box::new(c));
        g.connect(e, 1, c, 0);
        let mut engine = Engine::new(g, "n1", 1);
        engine.set_entry(Route {
            element: e,
            port: 0,
        });
        for s in [5i64, 9] {
            let tup = TupleBuilder::new("succ")
                .push("n1")
                .push(s)
                .push("x")
                .build();
            engine.deliver(tup, SimTime::from_secs(s as u64));
        }
        assert_eq!(t.lock().len(), 1);
        assert_eq!(evicted_buf.lock().len(), 1);
    }

    #[test]
    fn delete_removes_and_emits() {
        let row = TupleBuilder::new("neighbor").push("n1").push("n2").build();
        let t = table(TableSpec::new("neighbor", vec![1]), vec![row.clone()]);
        let delete = Delete::new(t.clone());
        let out = run_one(Box::new(delete), vec![row.clone()]);
        assert_eq!(out, vec![row]);
        assert!(t.lock().is_empty());
    }

    #[test]
    fn agg_probe_min_distance_like_chord_lookup() {
        // finger(NI, I, B, BI) rows; the event is lookup(NI, K, R, E) and we
        // aggregate D := K - B - 1 over fingers with B in (N, K).
        let fingers = vec![
            TupleBuilder::new("finger")
                .push("n1")
                .push(0i64)
                .push(Value::Id(Uint160::from_u64(10)))
                .push("n10")
                .build(),
            TupleBuilder::new("finger")
                .push("n1")
                .push(1i64)
                .push(Value::Id(Uint160::from_u64(40)))
                .push("n40")
                .build(),
            TupleBuilder::new("finger")
                .push("n1")
                .push(2i64)
                .push(Value::Id(Uint160::from_u64(90)))
                .push("n90")
                .build(),
        ];
        let t = table(TableSpec::new("finger", vec![2]), fingers);
        // Event tuple layout: (NI, K, R, E, N) — K at 1, N at 4.
        // Joined layout appends finger fields: I at 6, B at 7, BI at 8.
        let filter = Program::compile(&Expr::Interval {
            kind: IntervalKind::OpenOpen,
            value: Box::new(Expr::Field(7)),
            low: Box::new(Expr::Field(4)),
            high: Box::new(Expr::Field(1)),
        });
        let agg = Program::compile(&Expr::bin(
            BinOp::Sub,
            Expr::bin(BinOp::Sub, Expr::Field(1), Expr::Field(7)),
            Expr::int(1),
        ));
        let probe = AggProbe::new(t, 4, AggFunc::Min, Some(filter), agg, "bestLookupDist");
        let event = TupleBuilder::new("lookup_node")
            .push("n1")
            .push(Value::Id(Uint160::from_u64(70)))
            .push("n1")
            .push(123i64)
            .push(Value::Id(Uint160::from_u64(5)))
            .build();
        let out = run_one(Box::new(probe), vec![event]);
        assert_eq!(out.len(), 1);
        let got = &out[0];
        assert_eq!(got.name(), "bestLookupDist");
        // event (5 fields) ++ witness finger row (4 fields) ++ aggregate.
        assert_eq!(got.arity(), 10);
        // Fingers 10 and 40 are in (5, 70); min distance is 70-40-1 = 29,
        // achieved by the finger pointing at n40.
        assert_eq!(got.field(9), &Value::Id(Uint160::from_u64(29)));
        assert_eq!(got.field(8), &Value::str("n40"));
        assert_eq!(got.field(7), &Value::Id(Uint160::from_u64(40)));
    }

    #[test]
    fn agg_probe_max_picks_witness_row() {
        // Narada P0: pick the member with the maximum random number. Here we
        // use a deterministic "score" column instead of f_rand().
        let members = vec![
            TupleBuilder::new("member")
                .push("n1")
                .push("m1")
                .push(3i64)
                .build(),
            TupleBuilder::new("member")
                .push("n1")
                .push("m2")
                .push(9i64)
                .build(),
            TupleBuilder::new("member")
                .push("n1")
                .push("m3")
                .push(5i64)
                .build(),
        ];
        let t = table(TableSpec::new("member", vec![2]), members);
        // Event: (X, E); joined row starts at field 2, score at field 4.
        let agg = Program::compile(&Expr::Field(4));
        let probe = AggProbe::new(t, 3, AggFunc::Max, None, agg, "pingEvent");
        let event = TupleBuilder::new("periodic").push("n1").push(77i64).build();
        let out = run_one(Box::new(probe), vec![event]);
        assert_eq!(out.len(), 1);
        // Witness row is m2 (score 9).
        assert_eq!(out[0].field(3), &Value::str("m2"));
        assert_eq!(out[0].field(5), &Value::Int(9));
    }

    #[test]
    fn agg_probe_count_emits_zero_and_min_does_not() {
        let t = table(TableSpec::new("member", vec![1]), vec![]);
        let agg = Program::compile(&Expr::Field(0));
        let probe = AggProbe::new(t.clone(), 3, AggFunc::Count, None, agg, "membersFound");
        let event = TupleBuilder::new("refresh").push("n1").build();
        let out = run_one(Box::new(probe), vec![event.clone()]);
        assert_eq!(out.len(), 1);
        // event (1) ++ null row padding (3) ++ count.
        assert_eq!(out[0].arity(), 5);
        assert_eq!(out[0].field(1), &Value::Null);
        assert_eq!(out[0].field(4), &Value::Int(0));

        let agg = Program::compile(&Expr::Field(0));
        let probe = AggProbe::new(t, 3, AggFunc::Min, None, agg, "best");
        assert!(run_one(Box::new(probe), vec![event]).is_empty());
    }

    #[test]
    fn table_agg_emits_only_on_change() {
        let t = table(TableSpec::new("succ", vec![1]), vec![]);
        let mut g = Graph::new();
        let ins = g.add("insert", Box::new(Insert::new(t.clone())));
        let agg = g.add(
            "count",
            Box::new(TableAgg::new(
                t.clone(),
                AggFunc::Count,
                None,
                vec![0],
                "succCount",
            )),
        );
        let (c, buf) = Collector::new();
        let c = g.add("tap", Box::new(c));
        g.connect(ins, 0, agg, 0);
        g.connect(agg, 0, c, 0);
        let mut engine = Engine::new(g, "n1", 1);
        engine.set_entry(Route {
            element: ins,
            port: 0,
        });
        engine.start(SimTime::ZERO);

        let s1 = TupleBuilder::new("succ")
            .push("n1")
            .push(5i64)
            .push("n5")
            .build();
        engine.deliver(s1.clone(), SimTime::from_secs(1));
        // Re-inserting the identical tuple does not change the count, so no
        // new aggregate is emitted.
        engine.deliver(s1, SimTime::from_secs(2));
        let s2 = TupleBuilder::new("succ")
            .push("n1")
            .push(9i64)
            .push("n9")
            .build();
        engine.deliver(s2, SimTime::from_secs(3));

        let emitted: Vec<Tuple> = buf.lock().iter().map(|(_, t)| t.clone()).collect();
        assert_eq!(emitted.len(), 2);
        assert_eq!(emitted[0].values(), &[Value::str("n1"), Value::Int(1)]);
        assert_eq!(emitted[1].values(), &[Value::str("n1"), Value::Int(2)]);
    }

    /// Regression: when every row of a group is deleted, the materialized
    /// aggregate must emit the empty-group value (count 0) instead of
    /// keeping the stale last value forever, and must forget the group so a
    /// re-appearance re-emits from scratch.
    #[test]
    fn table_agg_retracts_when_group_vanishes() {
        let t = table(TableSpec::new("succ", vec![1]), vec![]);
        let mut g = Graph::new();
        // "succ" tuples insert, "zap" tuples (same layout) delete — the
        // planner's insert-delta and delete-delta wiring in miniature.
        let demux = g.add(
            "demux",
            Box::new(Demux::new(vec!["succ".into(), "zap".into()])),
        );
        let ins = g.add("insert", Box::new(Insert::new(t.clone())));
        let del = g.add("delete", Box::new(Delete::new(t.clone())));
        let agg = g.add(
            "count",
            Box::new(TableAgg::new(
                t.clone(),
                AggFunc::Count,
                None,
                vec![0],
                "succCount",
            )),
        );
        let (c, buf) = Collector::new();
        let c = g.add("tap", Box::new(c));
        g.connect(demux, 0, ins, 0);
        g.connect(demux, 1, del, 0);
        g.connect(ins, 0, agg, 0);
        g.connect(del, 0, agg, 0);
        g.connect(agg, 0, c, 0);
        let mut engine = Engine::new(g, "n1", 1);
        engine.set_entry(Route {
            element: demux,
            port: 0,
        });
        engine.start(SimTime::ZERO);

        let s1 = TupleBuilder::new("succ")
            .push("n1")
            .push(5i64)
            .push("n5")
            .build();
        engine.deliver(s1.clone(), SimTime::from_secs(1));
        let emitted: Vec<Tuple> = buf.lock().iter().map(|(_, t)| t.clone()).collect();
        assert_eq!(
            emitted.last().unwrap().values(),
            &[Value::str("n1"), Value::Int(1)]
        );

        // Delete the only row: the group vanishes and the aggregate must
        // report a count of zero, not stay silent at the stale 1.
        let zap = TupleBuilder::new("zap")
            .push("n1")
            .push(5i64)
            .push("n5")
            .build();
        engine.deliver(zap, SimTime::from_secs(2));
        assert!(t.lock().is_empty(), "delete did not remove the row");
        let emitted: Vec<Tuple> = buf.lock().iter().map(|(_, t)| t.clone()).collect();
        assert_eq!(
            emitted.last().unwrap().values(),
            &[Value::str("n1"), Value::Int(0)],
            "vanished group did not retract: {emitted:?}"
        );

        // Re-inserting the row re-emits count 1 (the group was dropped from
        // the memo, not left pinned at a stale value).
        engine.deliver(s1, SimTime::from_secs(3));
        let emitted: Vec<Tuple> = buf.lock().iter().map(|(_, t)| t.clone()).collect();
        assert_eq!(
            emitted.last().unwrap().values(),
            &[Value::str("n1"), Value::Int(1)]
        );
    }
}
