//! The per-node dataflow engine: graph construction, work queue, timers.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use p2_pel::EvalContext;
use p2_value::{SimTime, Tuple};

use crate::element::{Element, ElementCtx, Outgoing};

/// An input port of an element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Route {
    /// Element index in the graph.
    pub element: usize,
    /// Input port number on that element.
    pub port: usize,
}

/// A dataflow graph under construction: elements plus directed edges from
/// output ports to input ports.
///
/// An output port may be connected to several input ports; the engine
/// duplicates tuples across them (the explicit `Dup` element of the paper's
/// Figure 2 is folded into the edge representation).
#[derive(Default)]
pub struct Graph {
    elements: Vec<Box<dyn Element>>,
    names: Vec<String>,
    edges: HashMap<(usize, usize), Vec<Route>>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Graph {
        Graph::default()
    }

    /// Adds an element, returning its index.
    pub fn add(&mut self, name: impl Into<String>, element: Box<dyn Element>) -> usize {
        self.elements.push(element);
        self.names.push(name.into());
        self.elements.len() - 1
    }

    /// Connects `from`'s output port `out_port` to `to`'s input port `in_port`.
    pub fn connect(&mut self, from: usize, out_port: usize, to: usize, in_port: usize) {
        self.edges.entry((from, out_port)).or_default().push(Route {
            element: to,
            port: in_port,
        });
    }

    /// Number of elements in the graph.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// True if the graph has no elements.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Human-readable description of the graph (element classes and edges),
    /// used by the examples and for debugging planner output.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for (i, e) in self.elements.iter().enumerate() {
            out.push_str(&format!("[{i}] {} ({})\n", self.names[i], e.class()));
        }
        let mut edges: Vec<(&(usize, usize), &Vec<Route>)> = self.edges.iter().collect();
        edges.sort_by_key(|(k, _)| **k);
        for ((from, port), routes) in edges {
            for r in routes {
                out.push_str(&format!("  {from}:{port} -> {}:{}\n", r.element, r.port));
            }
        }
        out
    }
}

/// Counters describing engine activity (used by benchmarks and experiments).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Tuples pushed into element input ports.
    pub handoffs: u64,
    /// Tuples injected from outside (network arrivals, application events).
    pub injected: u64,
    /// Timers fired.
    pub timers_fired: u64,
    /// Tuples handed to the network.
    pub sent: u64,
}

#[derive(Debug, PartialEq, Eq)]
struct TimerEntry {
    fire_at: SimTime,
    seq: u64,
    element: usize,
    token: u64,
}

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.fire_at, self.seq).cmp(&(other.fire_at, other.seq))
    }
}

impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The per-node execution engine.
///
/// The engine owns the dataflow graph, a FIFO work queue of pending
/// `(route, tuple)` deliveries, and a timer heap. External drivers (the
/// network simulator or a unit test) interact with it through three calls:
/// [`Engine::start`], [`Engine::deliver`], and [`Engine::advance_to`]; each
/// returns the tuples the node wants transmitted.
pub struct Engine {
    graph: Graph,
    entry: Option<Route>,
    queue: VecDeque<(Route, Tuple)>,
    timers: BinaryHeap<Reverse<TimerEntry>>,
    timer_seq: u64,
    eval: EvalContext,
    now: SimTime,
    stats: EngineStats,
    started: bool,
}

impl Engine {
    /// Creates an engine for the node with the given address and RNG seed.
    pub fn new(graph: Graph, local_addr: impl Into<String>, seed: u64) -> Engine {
        Engine {
            graph,
            entry: None,
            queue: VecDeque::new(),
            timers: BinaryHeap::new(),
            timer_seq: 0,
            eval: EvalContext::new(local_addr.into(), seed),
            now: SimTime::ZERO,
            stats: EngineStats::default(),
            started: false,
        }
    }

    /// Declares the input port that externally injected tuples (network
    /// arrivals, application requests) are delivered to.
    pub fn set_entry(&mut self, route: Route) {
        self.entry = Some(route);
    }

    /// The node's address.
    pub fn local_addr(&self) -> String {
        self.eval.local_addr_str().to_string()
    }

    /// Current virtual time as seen by the node.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Engine activity counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Access to the underlying graph (for inspection).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    fn set_now(&mut self, now: SimTime) {
        if now > self.now {
            self.now = now;
        }
        self.eval.set_now(self.now);
    }

    /// Starts the engine: every element's `on_start` hook runs (emitting
    /// initial facts and scheduling periodic timers) and the resulting
    /// cascade is processed.
    pub fn start(&mut self, now: SimTime) -> Vec<Outgoing> {
        self.set_now(now);
        self.started = true;
        let mut outgoing = Vec::new();
        for idx in 0..self.graph.elements.len() {
            let mut emissions = Vec::new();
            let mut timers = Vec::new();
            {
                let mut ctx = ElementCtx::new(
                    self.now,
                    self.queue.len(),
                    &mut self.eval,
                    &mut emissions,
                    &mut outgoing,
                    &mut timers,
                );
                self.graph.elements[idx].on_start(&mut ctx);
            }
            self.absorb(idx, emissions, timers);
        }
        self.drain(&mut outgoing);
        self.stats.sent += outgoing.len() as u64;
        outgoing
    }

    /// Delivers an externally produced tuple (network arrival or application
    /// event) to the entry port and runs the graph to completion.
    pub fn deliver(&mut self, tuple: Tuple, now: SimTime) -> Vec<Outgoing> {
        self.set_now(now);
        self.stats.injected += 1;
        let mut outgoing = Vec::new();
        if let Some(entry) = self.entry {
            self.queue.push_back((entry, tuple));
            self.drain(&mut outgoing);
        }
        self.stats.sent += outgoing.len() as u64;
        outgoing
    }

    /// The next time at which a timer wants to fire, if any.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.timers.peek().map(|Reverse(t)| t.fire_at)
    }

    /// Advances virtual time to `now`, firing every timer due at or before
    /// it and processing the resulting cascades.
    pub fn advance_to(&mut self, now: SimTime) -> Vec<Outgoing> {
        let mut outgoing = Vec::new();
        loop {
            let due = matches!(self.timers.peek(), Some(Reverse(t)) if t.fire_at <= now);
            if !due {
                break;
            }
            let Reverse(entry) = self.timers.pop().expect("peeked");
            self.set_now(entry.fire_at);
            self.stats.timers_fired += 1;
            let idx = entry.element;
            let mut emissions = Vec::new();
            let mut timers = Vec::new();
            {
                let mut ctx = ElementCtx::new(
                    self.now,
                    self.queue.len(),
                    &mut self.eval,
                    &mut emissions,
                    &mut outgoing,
                    &mut timers,
                );
                self.graph.elements[idx].on_timer(entry.token, &mut ctx);
            }
            self.absorb(idx, emissions, timers);
            self.drain(&mut outgoing);
        }
        self.set_now(now);
        self.stats.sent += outgoing.len() as u64;
        outgoing
    }

    /// Routes buffered emissions from element `idx` into the work queue and
    /// registers requested timers.
    fn absorb(&mut self, idx: usize, emissions: Vec<(usize, Tuple)>, timers: Vec<(u64, SimTime)>) {
        for (port, tuple) in emissions {
            if let Some(routes) = self.graph.edges.get(&(idx, port)) {
                for r in routes {
                    self.queue.push_back((*r, tuple.clone()));
                }
            }
            // Emissions on unconnected ports are silently dropped, like
            // Click's Discard element.
        }
        for (token, fire_at) in timers {
            self.timer_seq += 1;
            self.timers.push(Reverse(TimerEntry {
                fire_at,
                seq: self.timer_seq,
                element: idx,
                token,
            }));
        }
    }

    /// Processes the work queue until empty (run to completion).
    fn drain(&mut self, outgoing: &mut Vec<Outgoing>) {
        while let Some((route, tuple)) = self.queue.pop_front() {
            self.stats.handoffs += 1;
            let idx = route.element;
            let mut emissions = Vec::new();
            let mut timers = Vec::new();
            {
                let mut ctx = ElementCtx::new(
                    self.now,
                    self.queue.len(),
                    &mut self.eval,
                    &mut emissions,
                    outgoing,
                    &mut timers,
                );
                self.graph.elements[idx].push(route.port, &tuple, &mut ctx);
            }
            self.absorb(idx, emissions, timers);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::{Element, ElementCtx};
    use p2_value::{TupleBuilder, Value};

    /// Appends a constant field to every tuple and forwards it on port 0.
    struct Tag(i64);

    impl Element for Tag {
        fn class(&self) -> &'static str {
            "Tag"
        }
        fn push(&mut self, _port: usize, tuple: &Tuple, ctx: &mut ElementCtx<'_>) {
            ctx.emit(0, tuple.extended(vec![Value::Int(self.0)]));
        }
    }

    /// Sends every tuple to a fixed remote address.
    struct SendAway;

    impl Element for SendAway {
        fn class(&self) -> &'static str {
            "SendAway"
        }
        fn push(&mut self, _port: usize, tuple: &Tuple, ctx: &mut ElementCtx<'_>) {
            ctx.send("n9", tuple.clone());
        }
    }

    /// Emits a `tick` tuple every second, up to a bound.
    struct Ticker {
        remaining: u32,
    }

    impl Element for Ticker {
        fn class(&self) -> &'static str {
            "Ticker"
        }
        fn push(&mut self, _port: usize, _tuple: &Tuple, _ctx: &mut ElementCtx<'_>) {}
        fn on_start(&mut self, ctx: &mut ElementCtx<'_>) {
            ctx.schedule(0, SimTime::from_secs(1));
        }
        fn on_timer(&mut self, _token: u64, ctx: &mut ElementCtx<'_>) {
            ctx.emit(
                0,
                TupleBuilder::new("tick")
                    .push(ctx.now().as_secs_f64())
                    .build(),
            );
            self.remaining -= 1;
            if self.remaining > 0 {
                ctx.schedule(0, SimTime::from_secs(1));
            }
        }
    }

    #[test]
    fn pipeline_and_fanout() {
        let mut g = Graph::new();
        let a = g.add("tagA", Box::new(Tag(1)));
        let b = g.add("tagB", Box::new(Tag(2)));
        let c = g.add("send", Box::new(SendAway));
        // a fans out to b and c; b feeds c.
        g.connect(a, 0, b, 0);
        g.connect(a, 0, c, 0);
        g.connect(b, 0, c, 0);
        assert_eq!(g.len(), 3);
        assert!(g.describe().contains("Tag"));

        let mut engine = Engine::new(g, "n1", 1);
        engine.set_entry(Route {
            element: a,
            port: 0,
        });
        engine.start(SimTime::ZERO);
        let out = engine.deliver(
            TupleBuilder::new("x").push(0i64).build(),
            SimTime::from_secs(1),
        );
        // Two tuples reach the network: one via a->c, one via a->b->c.
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|o| o.dst == "n9"));
        let arities: Vec<usize> = out.iter().map(|o| o.tuple.arity()).collect();
        assert!(arities.contains(&2) && arities.contains(&3));
        assert_eq!(engine.stats().injected, 1);
        assert!(engine.stats().handoffs >= 3);
    }

    #[test]
    fn timers_fire_in_order_and_stop() {
        let mut g = Graph::new();
        let t = g.add("ticker", Box::new(Ticker { remaining: 3 }));
        let s = g.add("send", Box::new(SendAway));
        g.connect(t, 0, s, 0);
        let mut engine = Engine::new(g, "n1", 1);
        engine.start(SimTime::ZERO);
        assert_eq!(engine.next_deadline(), Some(SimTime::from_secs(1)));

        let out = engine.advance_to(SimTime::from_secs(10));
        assert_eq!(out.len(), 3);
        assert_eq!(engine.next_deadline(), None);
        assert_eq!(engine.stats().timers_fired, 3);
        // The ticks carried their fire times.
        assert_eq!(out[0].tuple.field(0), &Value::Double(1.0));
        assert_eq!(out[2].tuple.field(0), &Value::Double(3.0));
    }

    #[test]
    fn unconnected_ports_drop_tuples() {
        let mut g = Graph::new();
        let a = g.add("tag", Box::new(Tag(1)));
        let mut engine = Engine::new(g, "n1", 1);
        engine.set_entry(Route {
            element: a,
            port: 0,
        });
        let out = engine.deliver(TupleBuilder::new("x").build(), SimTime::ZERO);
        assert!(out.is_empty());
    }

    #[test]
    fn deliver_without_entry_is_noop() {
        let g = Graph::new();
        let mut engine = Engine::new(g, "n1", 1);
        let out = engine.deliver(TupleBuilder::new("x").build(), SimTime::ZERO);
        assert!(out.is_empty());
    }
}
