//! The fused rule-strand element and its schedule-preserving padding.
//!
//! # Why fuse
//!
//! The planner's generic translation runs a rule body as a chain of
//! elements (`Select → Join → Select → Project… → Project(head)`), with a
//! work-queue hand-off between every pair. Each hop pays an element call,
//! emission-buffer traffic, and — worst of all — a **materialized
//! intermediate tuple**: every `Join` allocates the concatenated tuple and
//! every assignment `Project` re-copies the entire strand tuple through
//! per-field PEL programs just to append one value.
//!
//! [`FusedStrand`] collapses the dominant rule shapes (a single table join
//! — or none — plus selections, anti-joins, and assignments, ending in the
//! head projection) into **one element call**: filters and assignments are
//! evaluated against the *virtual* concatenation `trigger ++ joined-row ++
//! assigned-values` ([`Program::eval_concat`]), the join probes the table
//! through the borrowing lookup iterator, and the only tuple ever
//! materialized is the final head tuple.
//!
//! # Why pad
//!
//! The engine's FIFO work queue processes emissions in breadth-first level
//! order, and the simulator's determinism contract
//! (`p2_netsim::parsim`) keys packet ordering on the per-sender emission
//! index — so the *relative order* of sends produced by different rule
//! strands triggered by the same tuple is observable. A chain of length
//! `k` emits its head tuples at BFS level `k`; a fused strand computing
//! everything at level 1 would emit them `k − 1` levels early and reorder
//! sends relative to longer/shorter sibling strands.
//!
//! Each fused strand is therefore followed by `k − 1` [`Pad`] elements:
//! trivial forwarders (an `Arc` bump and a queue hop each, no PEL, no
//! materialization) that carry the finished head tuples to exactly the
//! level the generic chain would have emitted them at. Because the queue
//! keeps each parent's children contiguous, the final emission sequence of
//! the padded strand is **bit-identical** to the generic chain's — the
//! 100-node golden pins and the `sim_bench` strand gate both hold with
//! fusion enabled. Dead tuples (filtered out mid-chain) never enter the
//! pad chain, which is where the queue-traffic savings come from on top of
//! the per-hop work savings.
//!
//! # Probe-time caveat
//!
//! Pads preserve emission *levels*, not probe *times*: a fused strand
//! probes its tables when it executes (one level after its trigger),
//! while the generic chain's joins probe a few levels later. The two can
//! disagree only when **the same engine cascade mutates a probed table in
//! between** — a program shape where a sibling strand of the same trigger
//! writes a table that another sibling probes deeply. None of the shipped
//! OverLog programs has that shape (their table writes wrap around
//! through the demultiplexer, landing after every sibling probe), and the
//! equivalence is verified per program rather than assumed: the
//! `sim_bench` strand gate and the fused-vs-generic ring A/B assert
//! bit-identical event streams end-to-end and fail CI on divergence. A
//! program that trips the gate should plan with
//! `PlanConfig::without_fusion` until its rules are restructured.

use p2_pel::{EvalContext, Program};
use p2_table::TableRef;
use p2_value::{Tuple, Value};

use crate::element::{Element, ElementCtx};
use crate::elements::relational::{ProbeKey, INLINE_PROBE, NULL_VALUE};

/// Maximum number of segments a strand's virtual tuple can have: the
/// trigger, up to [`MAX_STRAND_PROBES`] joined rows, and the assigned
/// values. Planners must not fuse strands with more probes.
pub const MAX_STRAND_PROBES: usize = 4;
const MAX_PARTS: usize = MAX_STRAND_PROBES + 2;

/// One operation of a fused strand, in original chain order.
pub enum StrandOp {
    /// Selection over the virtual strand tuple; a false or failed filter
    /// drops the current row combination (mirroring the generic `Select`).
    Filter(Program),
    /// Equijoin probe: the table is probed with key values drawn from the
    /// virtual strand tuple, and execution continues once per matching
    /// row, in the table's deterministic lookup order (mirroring the
    /// generic `Join`, minus the materialized intermediate tuple).
    Probe { table: TableRef, key: ProbeKey },
    /// Anti-join over the virtual strand tuple: execution continues only
    /// when no table row matches (mirroring the generic `AntiJoin`).
    AntiJoin { table: TableRef, key: ProbeKey },
    /// Assignment: evaluates one expression over the virtual strand tuple
    /// and appends the result (the generic form is a whole-tuple `Project`
    /// with one extra field).
    Assign(Program),
}

/// A whole planned rule strand — trigger filters, table join probes,
/// anti-joins, assignments, conditions, and the head projection — executed
/// in a single element call. See the module docs for the fusion and
/// padding contract.
pub struct FusedStrand {
    /// Filters over the bare trigger tuple (constant/repeat checks).
    pre_filters: Vec<Program>,
    /// The strand body, in chain order. Probes nest: each match of an
    /// earlier probe runs the remaining ops once, depth-first, which
    /// enumerates row combinations in exactly the order the generic
    /// chain's breadth-first expansion emits them.
    ops: Vec<StrandOp>,
    /// Head projection programs over the final virtual strand tuple.
    head_fields: Vec<Program>,
    out_name: String,
    /// Scratch buffer for assigned values, reused across rows and calls.
    extras: Vec<Value>,
    /// Tuples dropped because a filter, assignment, or head field raised an
    /// evaluation error (the union of the generic chain's per-element
    /// `eval_errors`).
    pub eval_errors: u64,
    /// Whether the scheduling guard may walk this strand: every pre-filter
    /// and body program is RNG-free, so pre-evaluating one in
    /// [`Element::would_wake`] returns exactly what `push` would compute
    /// without desyncing the node's deterministic RNG stream. Computed
    /// once at construction.
    guardable: bool,
}

impl FusedStrand {
    /// Creates a fused strand. The `ops` must contain at most
    /// [`MAX_STRAND_PROBES`] probes, and a probe's table must not recur in
    /// a later probe or anti-join (the planner's fusability check
    /// guarantees both; violating the latter would self-deadlock on the
    /// table guard).
    pub fn new(
        pre_filters: Vec<Program>,
        ops: Vec<StrandOp>,
        head_fields: Vec<Program>,
        out_name: impl Into<String>,
    ) -> FusedStrand {
        assert!(
            ops.iter()
                .filter(|op| matches!(op, StrandOp::Probe { .. }))
                .count()
                <= MAX_STRAND_PROBES,
            "fused strand exceeds MAX_STRAND_PROBES"
        );
        let guardable = pre_filters.iter().all(|p| !p.uses_random())
            && ops.iter().all(|op| match op {
                StrandOp::Filter(p) | StrandOp::Assign(p) => !p.uses_random(),
                StrandOp::Probe { .. } | StrandOp::AntiJoin { .. } => true,
            });
        FusedStrand {
            pre_filters,
            ops,
            head_fields,
            out_name: out_name.into(),
            extras: Vec::new(),
            eval_errors: 0,
            guardable,
        }
    }

    /// Creates a probe op from raw `(strand field, table column)` key pairs
    /// (normalized exactly like the generic `Join`).
    pub fn probe_op(table: TableRef, key: Vec<(usize, usize)>) -> StrandOp {
        StrandOp::Probe {
            table,
            key: ProbeKey::new(key),
        }
    }

    /// Creates an anti-join op from raw `(strand field, table column)` key
    /// pairs (normalized exactly like the generic `AntiJoin`).
    pub fn anti_op(table: TableRef, key: Vec<(usize, usize)>) -> StrandOp {
        StrandOp::AntiJoin {
            table,
            key: ProbeKey::new(key),
        }
    }
}

/// Collects the probe values for `key` out of the virtual strand tuple
/// `parts`, then runs `body`. `None` when a referenced field is missing
/// (malformed tuple — the generic chain drops it too).
fn with_view_probe<R>(
    key: &ProbeKey,
    parts: &[&[Value]],
    body: impl FnOnce(&[&Value]) -> R,
) -> Option<R> {
    // Shared segmented-field resolution (`p2_pel::concat_get`): probe keys
    // and PEL programs agree on what a field index means by construction.
    let view = |i: usize| p2_pel::concat_get(parts, i);
    let n = key.pairs.len();
    let mut stack: [&Value; INLINE_PROBE] = [&NULL_VALUE; INLINE_PROBE];
    let mut heap: Vec<&Value>;
    let probe: &[&Value] = if n <= INLINE_PROBE {
        for (slot, (s, _)) in stack.iter_mut().zip(&key.pairs) {
            *slot = view(*s)?;
        }
        &stack[..n]
    } else {
        heap = Vec::with_capacity(n);
        for (s, _) in &key.pairs {
            heap.push(view(*s)?);
        }
        &heap
    };
    Some(body(probe))
}

/// Whether the folded duplicate-column constraints hold over the virtual
/// strand tuple (`None` when a field is missing), mirroring
/// `ProbeKey::stream_checks_hold`.
fn view_stream_checks(key: &ProbeKey, parts: &[&[Value]]) -> Option<bool> {
    let view = |i: usize| p2_pel::concat_get(parts, i);
    for &(a, b) in &key.stream_checks {
        match (view(a), view(b)) {
            (Some(x), Some(y)) if x == y => {}
            (Some(_), Some(_)) => return Some(false),
            _ => return None,
        }
    }
    Some(true)
}

/// Appends `row` to the segment list (bounded by [`MAX_PARTS`]).
fn pushed<'a>(rows: &[&'a [Value]], row: &'a [Value]) -> ([&'a [Value]; MAX_PARTS], usize) {
    let mut next: [&[Value]; MAX_PARTS] = [&[]; MAX_PARTS];
    next[..rows.len()].copy_from_slice(rows);
    next[rows.len()] = row;
    (next, rows.len() + 1)
}

/// Runs the remaining ops of a strand for the current row combination,
/// depth-first, handing one head tuple to `sink` per surviving combination
/// (the fused strand's sink emits on port 0; `MatView` reuses the same
/// executor — so exactly the same probe order, error drops, and
/// depth-first enumeration — both for live emission on its per-input ports
/// and for delta-time derivation into a buffer). `rows` holds the trigger
/// plus the rows matched by earlier probes; `extras` holds the assigned
/// values (pushed and popped around the recursion so sibling combinations
/// never see each other's assignments). Free function over explicit field
/// borrows so callers can hold probe guards.
#[allow(clippy::too_many_arguments)]
pub(crate) fn exec<S: FnMut(&mut ElementCtx<'_>, Tuple)>(
    ops: &[StrandOp],
    rows: &[&[Value]],
    extras: &mut Vec<Value>,
    head_fields: &[Program],
    out_name: &str,
    eval_errors: &mut u64,
    ctx: &mut ElementCtx<'_>,
    sink: &mut S,
) {
    // The evaluation view is `rows ++ extras`; rebuilt per op because
    // `extras` may have grown.
    let Some((op, rest)) = ops.split_first() else {
        let mut values = Vec::with_capacity(head_fields.len());
        for program in head_fields {
            let (view, n) = pushed(rows, extras);
            match program.eval_concat(&view[..n], ctx.eval()) {
                Ok(v) => values.push(v),
                Err(_) => {
                    *eval_errors += 1;
                    return;
                }
            }
        }
        sink(ctx, Tuple::new(out_name, values));
        return;
    };
    match op {
        StrandOp::Filter(filter) => {
            let ok = {
                let (view, n) = pushed(rows, extras);
                filter.eval_bool_concat(&view[..n], ctx.eval())
            };
            match ok {
                Ok(true) => exec(
                    rest,
                    rows,
                    extras,
                    head_fields,
                    out_name,
                    eval_errors,
                    ctx,
                    sink,
                ),
                Ok(false) => {}
                Err(_) => *eval_errors += 1,
            }
        }
        StrandOp::Assign(expr) => {
            let v = {
                let (view, n) = pushed(rows, extras);
                expr.eval_concat(&view[..n], ctx.eval())
            };
            match v {
                Ok(v) => {
                    extras.push(v);
                    exec(
                        rest,
                        rows,
                        extras,
                        head_fields,
                        out_name,
                        eval_errors,
                        ctx,
                        sink,
                    );
                    extras.pop();
                }
                Err(_) => *eval_errors += 1,
            }
        }
        StrandOp::AntiJoin { table, key } => {
            let any_match = {
                let guard = table.lock();
                if key.is_empty() {
                    Some(!guard.is_empty())
                } else {
                    let (view, n) = pushed(rows, extras);
                    match view_stream_checks(key, &view[..n]) {
                        // Conflicting constraints: nothing can match.
                        Some(false) => Some(false),
                        None => None,
                        Some(true) => with_view_probe(key, &view[..n], |probe| {
                            guard.contains_match(&key.table_cols, probe)
                        }),
                    }
                }
            };
            // Malformed (None) drops the combination, like the generic
            // element.
            if any_match == Some(false) {
                exec(
                    rest,
                    rows,
                    extras,
                    head_fields,
                    out_name,
                    eval_errors,
                    ctx,
                    sink,
                );
            }
        }
        StrandOp::Probe { table, key } => {
            // Probe keys reference only fields bound before this probe
            // (trigger and earlier rows), so the probe view excludes
            // `extras` — which also keeps it mutably free for the
            // recursion.
            let guard = table.lock();
            if key.is_empty() {
                for row in guard.scan_iter() {
                    let (next, n) = pushed(rows, row.values());
                    exec(
                        rest,
                        &next[..n],
                        extras,
                        head_fields,
                        out_name,
                        eval_errors,
                        ctx,
                        sink,
                    );
                }
                return;
            }
            if view_stream_checks(key, rows) != Some(true) {
                return; // conflicting constraints or malformed tuple
            }
            with_view_probe(key, rows, |probe| {
                for row in guard.lookup_iter(&key.table_cols, probe) {
                    let (next, n) = pushed(rows, row.values());
                    exec(
                        rest,
                        &next[..n],
                        extras,
                        head_fields,
                        out_name,
                        eval_errors,
                        ctx,
                        sink,
                    );
                }
            });
        }
    }
}

/// The scheduling guard's no-op proof: walks the strand's single live
/// combination the way [`exec`] would and reports whether any head tuple
/// could come out. Returns `true` (wake) whenever it cannot decide
/// cheaply. The walk mirrors `exec`'s drop semantics exactly:
///
/// * a `Filter` evaluating `false` kills the combination — suppress;
/// * an `Assign` binds its value and the walk continues (programs are
///   RNG-free here, so re-evaluating in `push` yields the same value);
/// * a `Probe` with no matching row yields zero combinations — suppress;
///   a probe of a **singleton** table (`max_size == 1`) with a match
///   binds the one row and continues; any other match fans out into
///   multiple combinations the guard will not enumerate — wake;
/// * an `AntiJoin` whose table matches kills the combination — suppress;
///   no match continues the walk;
/// * malformed tuples / failed stream checks are dropped by `exec` too —
///   suppress; evaluation **errors** wake, so `push` re-raises them and
///   the error counters stay exact;
/// * running out of ops means the head projection would run — wake.
fn guard_walk(
    ops: &[StrandOp],
    rows: &[&[Value]],
    extras: &mut Vec<Value>,
    eval: &mut EvalContext,
) -> bool {
    let Some((op, rest)) = ops.split_first() else {
        return true;
    };
    match op {
        StrandOp::Filter(filter) => {
            let ok = {
                let (view, n) = pushed(rows, extras);
                filter.eval_bool_concat(&view[..n], eval)
            };
            match ok {
                Ok(true) => guard_walk(rest, rows, extras, eval),
                Ok(false) => false,
                Err(_) => true,
            }
        }
        StrandOp::Assign(expr) => {
            let v = {
                let (view, n) = pushed(rows, extras);
                expr.eval_concat(&view[..n], eval)
            };
            match v {
                Ok(v) => {
                    extras.push(v);
                    let wake = guard_walk(rest, rows, extras, eval);
                    extras.pop();
                    wake
                }
                Err(_) => true,
            }
        }
        StrandOp::AntiJoin { table, key } => {
            let any_match = {
                let guard = table.lock();
                if key.is_empty() {
                    Some(!guard.is_empty())
                } else {
                    let (view, n) = pushed(rows, extras);
                    match view_stream_checks(key, &view[..n]) {
                        Some(false) => Some(false),
                        None => None,
                        Some(true) => with_view_probe(key, &view[..n], |probe| {
                            guard.contains_match(&key.table_cols, probe)
                        }),
                    }
                }
            };
            match any_match {
                // No match: the combination survives, keep walking.
                Some(false) => guard_walk(rest, rows, extras, eval),
                // A match (or a malformed tuple) drops it in `exec` too.
                Some(true) | None => false,
            }
        }
        StrandOp::Probe { table, key } => {
            let guard = table.lock();
            if key.is_empty() {
                // Unkeyed scan: an empty table yields zero combinations;
                // anything else fans out — wake.
                return !guard.is_empty();
            }
            if view_stream_checks(key, rows) != Some(true) {
                return false; // exec drops the combination here too
            }
            let singleton = guard.spec().max_size == Some(1);
            with_view_probe(key, rows, |probe| {
                if !guard.contains_match(&key.table_cols, probe) {
                    return false;
                }
                if !singleton {
                    return true;
                }
                // At most one row in the whole table, and it matches:
                // bind it and keep walking the single combination.
                match guard.lookup_iter(&key.table_cols, probe).next() {
                    Some(row) => {
                        let (next, n) = pushed(rows, row.values());
                        guard_walk(rest, &next[..n], extras, eval)
                    }
                    None => false,
                }
            })
            .unwrap_or(false)
        }
    }
}

impl Element for FusedStrand {
    fn class(&self) -> &'static str {
        "FusedStrand"
    }

    fn push(&mut self, _port: usize, tuple: &Tuple, ctx: &mut ElementCtx<'_>) {
        // Disjoint field borrows: the op list stays borrowed while the
        // executor mutates the scratch/error fields.
        let FusedStrand {
            pre_filters,
            ops,
            head_fields,
            out_name,
            extras,
            eval_errors,
            ..
        } = self;

        for filter in pre_filters.iter() {
            match filter.eval_bool(tuple, ctx.eval()) {
                Ok(true) => {}
                Ok(false) => return,
                Err(_) => {
                    *eval_errors += 1;
                    return;
                }
            }
        }
        extras.clear();
        exec(
            ops,
            &[tuple.values()],
            extras,
            head_fields,
            out_name,
            eval_errors,
            ctx,
            &mut |ctx: &mut ElementCtx<'_>, t| ctx.emit(0, t),
        );
    }

    /// Provable no-op check for the delta-driven scheduler: pre-filters
    /// and then [`guard_walk`] over the strand body. Only strands whose
    /// programs are RNG-free participate (`guardable`); everything else —
    /// and every undecidable case — wakes.
    fn would_wake(&self, _port: usize, tuple: &Tuple, eval: &mut EvalContext) -> bool {
        if !self.guardable {
            return true;
        }
        for filter in &self.pre_filters {
            match filter.eval_bool(tuple, eval) {
                Ok(true) => {}
                Ok(false) => return false,
                Err(_) => return true,
            }
        }
        let mut extras = Vec::new();
        guard_walk(&self.ops, &[tuple.values()], &mut extras, eval)
    }
}

/// A schedule-preserving forwarder: re-emits every tuple unchanged on port
/// 0. Chains of pads keep a fused strand's head tuples at the BFS level
/// the generic element chain would have emitted them at (see the module
/// docs); each hop costs one `Arc` clone and one queue round-trip.
pub struct Pad;

impl Element for Pad {
    fn class(&self) -> &'static str {
        "Pad"
    }

    fn push(&mut self, _port: usize, tuple: &Tuple, ctx: &mut ElementCtx<'_>) {
        ctx.emit(0, tuple.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::Collector;
    use crate::engine::{Engine, Graph, Route};
    use p2_pel::{BinOp, Expr};
    use p2_table::{Table, TableSpec};
    use p2_value::{SimTime, TupleBuilder};
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn succ_table() -> TableRef {
        let mut t = Table::new(TableSpec::new("succ", vec![1]));
        t.add_index(vec![0]);
        for (s, si) in [(5i64, "n5"), (9, "n9")] {
            t.insert(
                TupleBuilder::new("succ")
                    .push("n1")
                    .push(s)
                    .push(si)
                    .build(),
                SimTime::ZERO,
            )
            .unwrap();
        }
        Arc::new(Mutex::new(t))
    }

    fn run_one(element: Box<dyn Element>, input: Tuple) -> Vec<Tuple> {
        let mut g = Graph::new();
        let e = g.add("elt", element);
        let (c, buf) = Collector::new();
        let c = g.add("tap", Box::new(c));
        g.connect(e, 0, c, 0);
        let mut engine = Engine::new(g, "n1", 1);
        engine.set_entry(Route {
            element: e,
            port: 0,
        });
        engine.deliver(input, SimTime::ZERO);
        let out = buf.lock().iter().map(|(_, t)| t.clone()).collect();
        out
    }

    fn field(i: usize) -> Program {
        Program::compile(&Expr::Field(i))
    }

    #[test]
    fn fused_join_filter_assign_head() {
        // Rule shape: out(SI, D) :- ev(NI, X), succ(NI, S, SI), S > 4,
        //                           D := S + X.
        // Virtual layout: ev(0..2) ++ succ(2..5) ++ [D at 5].
        let strand = FusedStrand::new(
            vec![],
            vec![
                FusedStrand::probe_op(succ_table(), vec![(0, 0)]),
                StrandOp::Filter(Program::compile(&Expr::bin(
                    BinOp::Gt,
                    Expr::Field(3),
                    Expr::int(4),
                ))),
                StrandOp::Assign(Program::compile(&Expr::bin(
                    BinOp::Add,
                    Expr::Field(3),
                    Expr::Field(1),
                ))),
            ],
            vec![field(4), field(5)],
            "out",
        );
        let input = TupleBuilder::new("ev").push("n1").push(100i64).build();
        let out = run_one(Box::new(strand), input);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|t| t.name() == "out" && t.arity() == 2));
        let got: Vec<(Value, Value)> = out
            .iter()
            .map(|t| (t.field(0).clone(), t.field(1).clone()))
            .collect();
        assert!(got.contains(&(Value::str("n5"), Value::Int(105))));
        assert!(got.contains(&(Value::str("n9"), Value::Int(109))));
    }

    #[test]
    fn fused_pre_filter_and_no_join() {
        // out(X) :- ev(NI, X), NI == "n1".
        let mk = || {
            FusedStrand::new(
                vec![Program::compile(&Expr::bin(
                    BinOp::Eq,
                    Expr::Field(0),
                    Expr::Const(Value::str("n1")),
                ))],
                vec![],
                vec![field(1)],
                "out",
            )
        };
        let hit = TupleBuilder::new("ev").push("n1").push(7i64).build();
        assert_eq!(run_one(Box::new(mk()), hit).len(), 1);
        let miss = TupleBuilder::new("ev").push("n2").push(7i64).build();
        assert!(run_one(Box::new(mk()), miss).is_empty());
    }

    #[test]
    fn fused_multi_probe_nests_depth_first() {
        // out(SI, P) :- ev(NI), succ(NI, S, SI), pref(SI, P):
        // two chained probes, the second keyed off the first's row.
        let pref = {
            let mut t = Table::new(TableSpec::new("pref", vec![0, 1]));
            for (si, p) in [("n5", 50i64), ("n5", 51), ("n9", 90)] {
                t.insert(
                    TupleBuilder::new("pref").push(si).push(p).build(),
                    SimTime::ZERO,
                )
                .unwrap();
            }
            std::sync::Arc::new(Mutex::new(t))
        };
        let strand = FusedStrand::new(
            vec![],
            vec![
                FusedStrand::probe_op(succ_table(), vec![(0, 0)]),
                // succ row occupies fields 1..4 (ev has arity 1); SI at 3.
                FusedStrand::probe_op(pref, vec![(3, 0)]),
            ],
            vec![field(3), field(5)],
            "out",
        );
        let out = run_one(Box::new(strand), TupleBuilder::new("ev").push("n1").build());
        let got: Vec<(Value, Value)> = out
            .iter()
            .map(|t| (t.field(0).clone(), t.field(1).clone()))
            .collect();
        assert_eq!(got.len(), 3);
        assert!(got.contains(&(Value::str("n5"), Value::Int(50))));
        assert!(got.contains(&(Value::str("n5"), Value::Int(51))));
        assert!(got.contains(&(Value::str("n9"), Value::Int(90))));
    }

    #[test]
    fn fused_antijoin_drops_matches() {
        // out(X) :- ev(NI, X), not succ(NI, _, _): anti-join on column 0.
        let mk = || {
            FusedStrand::new(
                vec![],
                vec![FusedStrand::anti_op(succ_table(), vec![(0, 0)])],
                vec![field(1)],
                "out",
            )
        };
        let hit = TupleBuilder::new("ev").push("n1").push(1i64).build();
        assert!(run_one(Box::new(mk()), hit).is_empty());
        let miss = TupleBuilder::new("ev").push("n7").push(1i64).build();
        assert_eq!(run_one(Box::new(mk()), miss).len(), 1);
    }

    #[test]
    fn fused_errors_drop_the_row_only() {
        // The head references a missing field for one of the two rows'
        // payloads: only that row is dropped.
        let strand = FusedStrand::new(
            vec![],
            vec![
                FusedStrand::probe_op(succ_table(), vec![(0, 0)]),
                StrandOp::Filter(Program::compile(&Expr::bin(
                    BinOp::Gt,
                    Expr::Field(9),
                    Expr::int(0),
                ))),
            ],
            vec![field(0)],
            "out",
        );
        let input = TupleBuilder::new("ev").push("n1").build();
        assert!(run_one(Box::new(strand), input).is_empty());
    }

    #[test]
    fn pad_forwards_unchanged() {
        let t = TupleBuilder::new("x").push(1i64).build();
        let out = run_one(Box::new(Pad), t.clone());
        assert_eq!(out, vec![t]);
    }
}
