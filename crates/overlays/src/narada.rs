//! Narada-style mesh membership maintenance (Appendix A of the paper).

use std::sync::OnceLock;

use p2_core::{NodeConfig, P2Node, PlanError};
use p2_overlog::{compile_checked, Program};
use p2_value::{Tuple, TupleBuilder};

use crate::host::P2Host;

/// The OverLog source text of the Narada mesh specification.
pub const NARADA_OLG: &str = include_str!("../programs/narada_mesh.olg");

/// Parses and validates the Narada program (cached after the first call).
pub fn program() -> &'static Program {
    static PROGRAM: OnceLock<Program> = OnceLock::new();
    PROGRAM.get_or_init(|| {
        compile_checked(NARADA_OLG).expect("the shipped Narada program must parse and validate")
    })
}

/// Number of rules in the mesh-maintenance specification.
///
/// The paper quotes "a Narada-style mesh network in 16 rules"; the
/// executable form reproduced here carries 16 rules: the 15 of Appendix A
/// plus one bootstrap rule (M0) installing the node's own member entry,
/// without which an Appendix-A mesh whose member tables start empty never
/// begins propagating membership.
pub fn rule_count() -> usize {
    program().rule_count()
}

/// Environment facts declaring a node's initial mesh neighbours.
pub fn env_facts(addr: &str, neighbors: &[&str]) -> Vec<Tuple> {
    neighbors
        .iter()
        .map(|n| {
            TupleBuilder::new("env")
                .push(addr)
                .push("neighbor")
                .push(*n)
                .build()
        })
        .collect()
}

/// Builds a ready-to-run Narada mesh node wrapped for the simulator.
pub fn build_node(
    addr: &str,
    neighbors: &[&str],
    seed: u64,
    jitter: bool,
) -> Result<P2Host, PlanError> {
    let mut config = NodeConfig::new(addr, seed).watch("refresh");
    if !jitter {
        config = config.without_jitter();
    }
    let node = P2Node::with_facts(program(), config, env_facts(addr, neighbors))?;
    Ok(P2Host::new(node))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_parses_and_matches_the_papers_compactness_claim() {
        // 16 rules, matching the paper's "Narada-style mesh in 16 rules"
        // claim (see EXPERIMENTS.md, E7).
        assert_eq!(rule_count(), 16);
        assert!(program().is_materialized("member"));
        assert!(program().is_materialized("env"));
    }

    #[test]
    fn node_plans_with_neighbors() {
        let host = build_node("n1", &["n2", "n3"], 7, false).unwrap();
        assert_eq!(host.node().table("env").unwrap().lock().len(), 2);
        let desc = host.node().graph_description();
        assert!(desc.contains("R5:agg:member"));
        assert!(desc.contains("L3:delete:neighbor"));
    }

    #[test]
    fn env_facts_shape() {
        let facts = env_facts("n1", &["n9"]);
        assert_eq!(facts.len(), 1);
        assert_eq!(facts[0].name(), "env");
        assert_eq!(facts[0].arity(), 3);
    }
}
