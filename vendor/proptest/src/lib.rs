//! Vendored stand-in for the `proptest` crate.
//!
//! Offline builds cannot fetch the real proptest, so this crate implements
//! the subset of its API the workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_recursive` /
//! `boxed`, range and tuple strategies, `any::<T>()`, `Just`, a
//! regex-subset string strategy, `collection::vec`, and the `proptest!`,
//! `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`, `prop_assume!` macros.
//!
//! Differences from upstream: generation is driven by a fixed-seed
//! deterministic RNG (reproducible runs, no persistence files) and failing
//! cases are *not* shrunk — the panic message reports the raw case inputs
//! via the assertion message instead.

/// Deterministic test RNG and run configuration.
pub mod test_runner {
    /// xoshiro256++ with SplitMix64 seeding; deterministic per test fn.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// Creates the deterministic generator used for a test run.
        pub fn deterministic() -> TestRng {
            TestRng::from_seed(0xC0FF_EE00_D15E_A5E5)
        }

        /// Creates a generator from an explicit seed.
        pub fn from_seed(seed: u64) -> TestRng {
            let mut sm = seed;
            TestRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0);
            self.next_u64() % bound
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Run configuration consumed by the `proptest!` macro.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to execute per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }
}

/// The strategy (value-generator) abstraction.
pub mod strategy {
    use std::ops::Range;
    use std::rc::Rc;

    use crate::test_runner::TestRng;

    /// A recipe for generating random values of an output type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a recursive strategy: `f` receives the strategy for the
        /// previous depth level and returns the next level. `depth` bounds
        /// recursion; `_desired_size` and `_expected_branch_size` are
        /// accepted for API compatibility and ignored.
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
            S: Strategy<Value = Self::Value> + 'static,
        {
            let mut level = self.boxed();
            for _ in 0..depth {
                level = f(level.clone()).boxed();
            }
            level
        }

        /// Type-erases this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    trait DynStrategy<V> {
        fn gen_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.gen_value(rng)
        }
    }

    /// A cheaply clonable type-erased strategy.
    pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn gen_value(&self, rng: &mut TestRng) -> V {
            self.0.gen_dyn(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Mapping combinator returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Creates a union over the given alternatives.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn gen_value(&self, rng: &mut TestRng) -> V {
            let ix = rng.below(self.options.len() as u64) as usize;
            self.options[ix].gen_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(i64, u64, usize, u32, i32);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn gen_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.gen_value(rng), self.1.gen_value(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.gen_value(rng),
                self.1.gen_value(rng),
                self.2.gen_value(rng),
            )
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.gen_value(rng),
                self.1.gen_value(rng),
                self.2.gen_value(rng),
                self.3.gen_value(rng),
            )
        }
    }

    /// String strategies written as regex literals (subset: literal
    /// characters, `[..]` classes with ranges, and `{m}` / `{m,n}` / `?` /
    /// `*` / `+` quantifiers).
    impl Strategy for &'static str {
        type Value = String;
        fn gen_value(&self, rng: &mut TestRng) -> String {
            generate_from_regex(self, rng)
        }
    }

    fn generate_from_regex(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a character class or a literal character.
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed [ in regex strategy {pattern:?}"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        for c in lo..=hi {
                            set.push(char::from_u32(c).unwrap());
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            // Optional quantifier.
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed {{ in regex strategy {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().expect("regex {m,n} bound"),
                        n.trim().parse::<usize>().expect("regex {m,n} bound"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("regex {m} bound");
                        (n, n)
                    }
                }
            } else if i < chars.len() && (chars[i] == '*' || chars[i] == '+' || chars[i] == '?') {
                let q = chars[i];
                i += 1;
                match q {
                    '*' => (0, 8),
                    '+' => (1, 8),
                    _ => (0, 1),
                }
            } else {
                (1, 1)
            };
            let count = min + rng.below((max - min + 1) as u64) as usize;
            for _ in 0..count {
                let ix = rng.below(alphabet.len() as u64) as usize;
                out.push(alphabet[ix]);
            }
        }
        out
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one uniformly distributed value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> i64 {
            rng.next_u64() as i64
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            (rng.next_u64() >> 56) as u8
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A length specification for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// Generates vectors of `element` values with a length drawn from
    /// `size` (an exact `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Uniform choice among the listed strategies (all must generate the same
/// value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Asserts a property within a `proptest!` case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality within a `proptest!` case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `config.cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        #[test]
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut proptest_rng = $crate::test_runner::TestRng::deterministic();
            for proptest_case in 0..config.cases {
                $(let $arg =
                    $crate::strategy::Strategy::gen_value(&($strategy), &mut proptest_rng);)*
                // Run the case in a closure so `prop_assume!` can skip it
                // with `return`.
                #[allow(clippy::redundant_closure_call)]
                (|| $body)();
                let _ = proptest_case;
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Shape {
        Leaf(i64),
        Node(Box<Shape>, Box<Shape>),
    }

    fn depth(s: &Shape) -> usize {
        match s {
            Shape::Leaf(_) => 0,
            Shape::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    fn arb_shape() -> impl Strategy<Value = Shape> {
        (0i64..100)
            .prop_map(Shape::Leaf)
            .prop_recursive(3, 8, 2, |inner| {
                prop_oneof![
                    (inner.clone(), inner).prop_map(|(a, b)| Shape::Node(Box::new(a), Box::new(b))),
                    (0i64..100).prop_map(Shape::Leaf),
                ]
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs_respect_bounds(
            x in 3i64..9,
            v in crate::collection::vec(0u64..5, 2..6),
        ) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|e| *e < 5));
        }

        #[test]
        fn recursion_is_depth_bounded(s in arb_shape()) {
            prop_assert!(depth(&s) <= 3);
        }

        #[test]
        fn regex_strategy_matches_shape(name in "[a-z][a-z0-9]{0,4}") {
            prop_assert!(!name.is_empty() && name.len() <= 5);
            prop_assert!(name.chars().next().unwrap().is_ascii_lowercase());
        }

        #[test]
        fn assume_skips_cases(a in any::<u64>(), b in any::<u64>()) {
            prop_assume!(a != b);
            prop_assert!(a != b);
        }
    }
}
