//! Micro-benchmarks for the P2 runtime primitives (experiment E8):
//! element handoff cost, PEL evaluation, tuple marshaling, and table
//! operations. These back the paper's §3.3 claim that inter-element
//! transitions are cheap ("most take about 50 machine instructions").

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use parking_lot::Mutex;

use p2_dataflow::elements::{Join, Queue, Select};
use p2_dataflow::{Engine, Graph, Route};
use p2_pel::{BinOp, EvalContext, Expr, Program};
use p2_table::{Table, TableRef, TableSpec};
use p2_value::{wire, SimTime, Tuple, TupleBuilder, Uint160, Value};

fn sample_tuple() -> Tuple {
    TupleBuilder::new("lookup")
        .push("node17:11111")
        .push(Value::Id(Uint160::hash_of(b"some key")))
        .push("node3:11111")
        .push(123_456_789i64)
        .build()
}

fn bench_pel(c: &mut Criterion) {
    let expr = Expr::bin(
        BinOp::And,
        Expr::bin(BinOp::Ne, Expr::Field(0), Expr::str("-")),
        Expr::bin(
            BinOp::Gt,
            Expr::bin(BinOp::Sub, Expr::Field(3), Expr::int(1_000_000)),
            Expr::int(0),
        ),
    );
    let program = Program::compile(&expr);
    let tuple = sample_tuple();
    let mut ctx = EvalContext::new("node17:11111", 7);
    c.bench_function("pel_vm_eval_filter", |b| {
        b.iter(|| program.eval(black_box(&tuple), &mut ctx).unwrap())
    });

    let ring = Expr::Interval {
        kind: p2_pel::IntervalKind::OpenClosed,
        value: Box::new(Expr::Field(1)),
        low: Box::new(Expr::Const(Value::Id(Uint160::from_u64(10)))),
        high: Box::new(Expr::Const(Value::Id(Uint160::MAX))),
    };
    let ring = Program::compile(&ring);
    c.bench_function("pel_vm_ring_interval", |b| {
        b.iter(|| ring.eval(black_box(&tuple), &mut ctx).unwrap())
    });
}

fn bench_tuples(c: &mut Criterion) {
    let tuple = sample_tuple();
    c.bench_function("tuple_clone_refcounted", |b| {
        b.iter(|| black_box(tuple.clone()))
    });
    c.bench_function("tuple_marshal", |b| {
        b.iter(|| wire::marshal(black_box(&tuple)))
    });
    let bytes = wire::marshal(&tuple);
    c.bench_function("tuple_unmarshal", |b| {
        b.iter(|| wire::unmarshal(black_box(&bytes)).unwrap())
    });
}

fn bench_table(c: &mut Criterion) {
    let mut t = Table::new(TableSpec::new("member", vec![1]).with_max_size(1000));
    t.add_index(vec![2]);
    for i in 0..500i64 {
        let tup = TupleBuilder::new("member")
            .push("n0")
            .push(i)
            .push(i % 10)
            .build();
        t.insert(tup, SimTime::ZERO).unwrap();
    }
    c.bench_function("table_indexed_lookup_500_rows", |b| {
        b.iter(|| t.lookup(black_box(&[2]), black_box(&[Value::Int(7)])))
    });
    c.bench_function("table_insert_refresh", |b| {
        let tup = TupleBuilder::new("member")
            .push("n0")
            .push(42i64)
            .push(2i64)
            .build();
        b.iter(|| {
            t.insert(black_box(tup.clone()), SimTime::from_secs(1))
                .unwrap()
        })
    });
}

fn bench_elements(c: &mut Criterion) {
    // A three-element chain: Queue -> Select -> Queue; measures per-tuple
    // handoff cost through the engine's work queue.
    let mut g = Graph::new();
    let q1 = g.add("q1", Box::new(Queue::new(None)));
    let sel = g.add(
        "sel",
        Box::new(Select::new(Program::compile(&Expr::bin(
            BinOp::Ne,
            Expr::Field(0),
            Expr::str("-"),
        )))),
    );
    let q2 = g.add("q2", Box::new(Queue::new(None)));
    g.connect(q1, 0, sel, 0);
    g.connect(sel, 0, q2, 0);
    let mut engine = Engine::new(g, "n0", 1);
    engine.set_entry(Route {
        element: q1,
        port: 0,
    });
    let tuple = sample_tuple();
    c.bench_function("element_handoff_chain_of_3", |b| {
        b.iter(|| engine.deliver(black_box(tuple.clone()), SimTime::ZERO))
    });

    // Stream-table equijoin probing a 100-row indexed table.
    let mut table = Table::new(TableSpec::new("succ", vec![1]));
    table.add_index(vec![0]);
    for i in 0..100i64 {
        let tup = TupleBuilder::new("succ")
            .push("node0:11111")
            .push(Value::Id(Uint160::hash_of(&i.to_be_bytes())))
            .push(format!("node{i}"))
            .build();
        table.insert(tup, SimTime::ZERO).unwrap();
    }
    let table: TableRef = Arc::new(Mutex::new(table));
    let mut g = Graph::new();
    let join = g.add("join", Box::new(Join::new(table, vec![(0, 0)], "probe")));
    let mut engine = Engine::new(g, "node0:11111", 1);
    engine.set_entry(Route {
        element: join,
        port: 0,
    });
    let probe = TupleBuilder::new("ev")
        .push("node0:11111")
        .push(1i64)
        .build();
    c.bench_function("equijoin_probe_100_row_table", |b| {
        b.iter(|| engine.deliver(black_box(probe.clone()), SimTime::ZERO))
    });
}

/// Storage-engine benchmarks backing the table overhaul's perf claims:
/// bounded insert (O(log n) eviction instead of an O(n) victim scan),
/// expiry ticks (O(expired) instead of a full-row sweep), and indexed
/// probes at growing row counts.
fn bench_table_storage(c: &mut Criterion) {
    let mut group = c.benchmark_group("table_storage");

    fn filled(rows: i64) -> Table {
        let mut t = Table::new(
            TableSpec::new("member", vec![1])
                .with_lifetime_secs(3600)
                .with_max_size(rows as usize),
        );
        t.add_index(vec![2]);
        for i in 0..rows {
            let tup = TupleBuilder::new("member")
                .push("n0")
                .push(i)
                .push(i % 64)
                .build();
            t.insert(tup, SimTime::from_secs(i as u64)).unwrap();
        }
        t
    }

    for rows in [1_000i64, 10_000, 100_000] {
        // Insert at the size bound: every insert evicts the stalest row.
        let mut t = filled(rows);
        let mut next = rows;
        group.bench_function(format!("insert_with_eviction_{rows}"), |b| {
            b.iter(|| {
                next += 1;
                let tup = TupleBuilder::new("member")
                    .push("n0")
                    .push(next)
                    .push(next % 64)
                    .build();
                t.insert(black_box(tup), SimTime::from_secs(next as u64))
                    .unwrap()
            })
        });

        // Idle expiry tick: nothing has expired; the engine must answer in
        // O(log n) rather than scanning every row.
        let mut t = filled(rows);
        group.bench_function(format!("expire_tick_idle_{rows}"), |b| {
            b.iter(|| black_box(t.expire_count(SimTime::from_secs(10))))
        });

        // Indexed probe on the secondary index.
        let t = filled(rows);
        group.bench_function(format!("indexed_probe_{rows}"), |b| {
            let probe = [Value::Int(7)];
            b.iter(|| t.lookup_iter(black_box(&[2]), black_box(&probe)).count())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pel,
    bench_tuples,
    bench_table,
    bench_table_storage,
    bench_elements
);
criterion_main!(benches);
