//! Overlay specifications shipped with the P2 reproduction.
//!
//! Each overlay is an OverLog program (the `programs/` directory contains
//! the exact text) plus a thin Rust module providing typed helpers for the
//! per-node base facts and application events the overlay expects:
//!
//! * [`chord`] — the full 45-rule / 2-fact Chord DHT of Appendix B
//!   (lookups, ring and finger maintenance, joins, stabilization,
//!   connectivity monitoring);
//! * [`narada`] — Narada-style mesh membership maintenance of Appendix A;
//! * [`gossip`] — an epidemic push-gossip overlay (one of the "breadth"
//!   overlays listed in §7);
//! * [`monitor`] — the round-trip latency monitor of §2.3 (rules P0–P3).
//!
//! [`host::P2Host`] adapts a planned [`p2_core::P2Node`] to the network
//! simulator's [`p2_netsim::Host`] interface so whole overlays can run
//! in-process on the simulated Emulab-like topology.

pub mod chord;
pub mod gossip;
pub mod host;
pub mod monitor;
pub mod narada;

pub use host::P2Host;
